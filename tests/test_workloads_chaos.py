"""Chaos scenario family and client retry policy: the availability story.

Every named ``chaos-*`` scenario must replay on a small fault-injected
cluster with *zero lost admitted queries* and every answer verified against
the oracle; replays are bit-deterministic; and the client-side
:class:`~repro.workloads.RetryPolicy` accounting obeys its invariant —
``queries_retried + queries_abandoned == queries_shed`` (every first-attempt
shed is either eventually admitted on retry or loudly abandoned).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import BatchPolicy, make_router
from repro.workloads import (
    CHAOS_SCENARIOS,
    RetryPolicy,
    make_chaos_scenario,
    make_scenario,
    replay,
    replay_chaos,
    transient_storm,
)

POLICY = BatchPolicy(max_batch_size=256, max_wait_s=2e-4)


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------


def test_make_chaos_scenario_validation():
    with pytest.raises(ConfigurationError):
        make_chaos_scenario("chaos-nope")
    with pytest.raises(ConfigurationError):
        make_chaos_scenario("chaos-replica-kill", scale=0.0)
    with pytest.raises(ConfigurationError):
        make_chaos_scenario("chaos-replica-kill", nodes_scale=-1.0)


def test_chaos_scenarios_carry_schedules():
    for name in CHAOS_SCENARIOS:
        chaos = make_chaos_scenario(name, scale=0.2, seed=1)
        assert chaos.name == chaos.scenario.name
        assert chaos.events, name
        injector = chaos.injector()
        assert injector.pending == len(chaos.events)
        # Fresh injector per call: cursors are never shared between runs.
        assert chaos.injector() is not injector
        horizon = sum(p.duration_s for p in chaos.scenario.phases)
        assert all(0.0 <= e.time_s <= horizon for e in chaos.events), name


def test_transient_storm_is_seeded_and_bounded():
    a = transient_storm(200.0, 0.5, replica=1, seed=42)
    b = transient_storm(200.0, 0.5, replica=1, seed=42)
    c = transient_storm(200.0, 0.5, replica=1, seed=43)
    assert [e.time_s for e in a] == [e.time_s for e in b]
    assert [e.time_s for e in a] != [e.time_s for e in c]
    assert all(e.action == "transient" and e.replica == 1 for e in a)
    assert all(0.0 <= e.time_s <= 0.5 for e in a)


def test_replay_chaos_rejects_unreachable_replica_targets():
    chaos = make_chaos_scenario("chaos-rolling-restart", scale=0.2)
    with pytest.raises(ConfigurationError):
        replay_chaos(chaos, n_replicas=2)  # restarts replica 2 of a 2-cluster


# ----------------------------------------------------------------------
# The availability property: zero lost, verified answers, deterministic
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_chaos_replay_loses_nothing_and_verifies(name):
    chaos = make_chaos_scenario(name, scale=0.25, seed=3)
    replicas = max(2, chaos.min_replicas())
    report = replay_chaos(
        chaos,
        n_replicas=replicas,
        policy=POLICY,
        max_pending=8192,
        check_answers=True,  # every answer checked against the oracle
    )
    stats = report.stats
    assert report.queries_admitted > 0
    assert stats.queries_answered == stats.queries_submitted  # zero lost
    if name in ("chaos-replica-kill", "chaos-kill-flash", "chaos-rolling-restart"):
        assert stats.queries_retried > 0, "the kill should strand work"
    assert stats.faults_injected == len(chaos.events)


def test_chaos_replay_is_deterministic():
    chaos = make_chaos_scenario("chaos-replica-kill", scale=0.25, seed=5)
    reports = [
        replay_chaos(chaos, n_replicas=2, policy=POLICY) for _ in range(2)
    ]
    assert reports[0].stats == reports[1].stats
    assert reports[0].latency_p99_s == reports[1].latency_p99_s
    for a, b in zip(reports[0].phases, reports[1].phases):
        assert a == b


def test_chaos_scale_out_changes_membership():
    chaos = make_chaos_scenario("chaos-scale-out", scale=0.25, seed=7)
    report = replay_chaos(
        chaos, n_replicas=2, policy=POLICY, check_answers=True
    )
    assert report.stats.membership_events == 2  # one add, one retire
    assert report.stats.queries_answered == report.stats.queries_submitted


# ----------------------------------------------------------------------
# Client-side retry policy
# ----------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_backoff_s=0.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_backoff_s=1e-6)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.0)


def test_retry_policy_backoff_is_capped_and_seeded():
    policy = RetryPolicy(
        base_backoff_s=1e-3, max_backoff_s=4e-3, max_attempts=8, jitter=0.1
    )
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    delays_a = [policy.backoff_s(k, rng_a) for k in range(8)]
    delays_b = [policy.backoff_s(k, rng_b) for k in range(8)]
    assert delays_a == delays_b  # same rng stream, same jitter
    for k, d in enumerate(delays_a):
        base = min(1e-3 * 2**k, 4e-3)
        assert 0.9 * base <= d <= 1.1 * base


def test_retry_accounting_invariant_on_an_overloaded_cluster():
    # A flash crowd on a tightly bounded service sheds heavily; with a
    # client retry policy every shed query is either admitted on a later
    # attempt or abandoned after max_attempts — never silently dropped.
    from repro.service import ClusterService

    scenario = make_scenario("flash-crowd", scale=0.3, seed=9)

    def run(retry):
        cluster = ClusterService(
            2,
            policy=POLICY,
            router=make_router("least-outstanding"),
            max_pending=256,
        )
        return replay(cluster, scenario, retry=retry)

    plain = run(None)
    assert plain.queries_shed > 0
    assert plain.queries_retried == plain.queries_abandoned == 0

    report = run(RetryPolicy(max_attempts=3, seed=1))
    assert report.queries_shed > 0
    assert report.queries_retried + report.queries_abandoned == report.queries_shed
    assert report.queries_retried > 0  # backoff lands some in the lull
    # Retried admissions are extra admitted work on top of the plain run.
    assert report.queries_admitted == plain.queries_admitted + report.queries_retried
    # Per-phase counters roll up to the scenario totals.
    assert sum(p.queries_retried for p in report.phases) == report.queries_retried
    assert sum(p.queries_abandoned for p in report.phases) == report.queries_abandoned
    # The formatted report surfaces the client-retry line.
    assert "admitted on retry" in report.format()
    assert "admitted on retry" not in plain.format()


def test_retry_policy_is_deterministic():
    scenario = make_scenario("flash-crowd", scale=0.25, seed=11)
    from repro.service import ClusterService

    def run():
        cluster = ClusterService(2, policy=POLICY, max_pending=256)
        return replay(cluster, scenario, retry=RetryPolicy(seed=2))

    a, b = run(), run()
    assert a.queries_retried == b.queries_retried
    assert a.queries_abandoned == b.queries_abandoned
    assert a.stats == b.stats
