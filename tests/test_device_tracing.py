"""Tests for trace summarization and breakdown reporting."""

import pytest

from repro.device import (
    GTX980,
    ExecutionContext,
    PhaseBreakdown,
    compare_totals,
    format_breakdown_table,
    speedup,
    summarize_kernels,
)


def _ctx_with_phases():
    ctx = ExecutionContext(GTX980, trace=True)
    with ctx.phase("build"):
        ctx.kernel("scan", threads=1000, ops=2000, bytes_read=8000, bytes_written=8000)
        ctx.kernel("scan", threads=1000, ops=2000, bytes_read=8000, bytes_written=8000)
    with ctx.phase("query"):
        ctx.kernel("lookup", threads=500, ops=500)
    return ctx


class TestPhaseBreakdown:
    def test_from_context_captures_phases(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("run1", ctx)
        assert bd.label == "run1"
        assert set(bd.as_dict()) == {"build", "query"}
        assert bd.total == pytest.approx(ctx.elapsed)

    def test_compare_totals(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("run1", ctx)
        assert compare_totals([bd]) == {"run1": pytest.approx(ctx.elapsed)}


class TestSummarizeKernels:
    def test_aggregates_by_name(self):
        ctx = _ctx_with_phases()
        summary = summarize_kernels(ctx.records)
        assert summary["scan"]["launches"] == 2
        assert summary["scan"]["ops"] == 4000
        assert summary["lookup"]["launches"] == 1

    def test_empty_trace(self):
        assert summarize_kernels([]) == {}


class TestFormatBreakdownTable:
    def test_contains_all_phases_and_runs(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("algorithm-a", ctx)
        text = format_breakdown_table([bd])
        assert "algorithm-a" in text
        assert "build" in text
        assert "query" in text
        assert "total" in text

    def test_missing_phase_shown_as_dash(self):
        a = PhaseBreakdown("a", (("p1", 1e-3),))
        b = PhaseBreakdown("b", (("p2", 2e-3),))
        text = format_breakdown_table([a, b])
        assert "-" in text

    def test_unit_conversion(self):
        a = PhaseBreakdown("a", (("p1", 1.0),))
        ms = format_breakdown_table([a], time_unit="ms")
        s = format_breakdown_table([a], time_unit="s")
        assert "1000.00" in ms
        assert "1.00" in s

    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            format_breakdown_table([], time_unit="minutes")


class TestSpeedup:
    def test_speedup_ratio(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_candidate_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
