"""Tests for trace summarization and breakdown reporting."""

import pytest

from repro.device import (
    GTX980,
    ExecutionContext,
    PhaseBreakdown,
    compare_totals,
    format_breakdown_table,
    speedup,
    summarize_kernels,
)


def _ctx_with_phases():
    ctx = ExecutionContext(GTX980, trace=True)
    with ctx.phase("build"):
        ctx.kernel("scan", threads=1000, ops=2000, bytes_read=8000, bytes_written=8000)
        ctx.kernel("scan", threads=1000, ops=2000, bytes_read=8000, bytes_written=8000)
    with ctx.phase("query"):
        ctx.kernel("lookup", threads=500, ops=500)
    return ctx


class TestPhaseBreakdown:
    def test_from_context_captures_phases(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("run1", ctx)
        assert bd.label == "run1"
        assert set(bd.as_dict()) == {"build", "query"}
        assert bd.total == pytest.approx(ctx.elapsed)

    def test_compare_totals(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("run1", ctx)
        assert compare_totals([bd]) == {"run1": pytest.approx(ctx.elapsed)}


class TestSummarizeKernels:
    def test_aggregates_by_name(self):
        ctx = _ctx_with_phases()
        summary = summarize_kernels(ctx.records)
        assert summary["scan"]["launches"] == 2
        assert summary["scan"]["ops"] == 4000
        assert summary["lookup"]["launches"] == 1

    def test_empty_trace(self):
        assert summarize_kernels([]) == {}


class TestFormatBreakdownTable:
    def test_contains_all_phases_and_runs(self):
        ctx = _ctx_with_phases()
        bd = PhaseBreakdown.from_context("algorithm-a", ctx)
        text = format_breakdown_table([bd])
        assert "algorithm-a" in text
        assert "build" in text
        assert "query" in text
        assert "total" in text

    def test_missing_phase_shown_as_dash(self):
        a = PhaseBreakdown("a", (("p1", 1e-3),))
        b = PhaseBreakdown("b", (("p2", 2e-3),))
        text = format_breakdown_table([a, b])
        assert "-" in text

    def test_unit_conversion(self):
        a = PhaseBreakdown("a", (("p1", 1.0),))
        ms = format_breakdown_table([a], time_unit="ms")
        s = format_breakdown_table([a], time_unit="s")
        assert "1000.00" in ms
        assert "1.00" in s

    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            format_breakdown_table([], time_unit="minutes")


class TestSpeedup:
    def test_speedup_ratio(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_candidate_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestHeterogeneousBackendTrace:
    """Kernel records from different real backends interleave in one trace."""

    def _mixed_trace_ctx(self):
        import numpy as np

        from repro.backends import get_kernel_backend
        from repro.graphs.generators import random_attachment_tree

        parents = random_attachment_tree(96, seed=5)
        xs = np.array([3, 17, 40], dtype=np.int64)
        ys = np.array([90, 2, 55], dtype=np.int64)
        ctx = ExecutionContext(GTX980, trace=True)
        for key in ("numpy", "smallbatch"):
            kernel = get_kernel_backend(key).compile(parents, ctx=ctx)
            kernel.query(xs, ys, ctx=ctx)
        return ctx

    def test_records_from_both_backends_interleave(self):
        ctx = self._mixed_trace_ctx()
        names = [rec.name for rec in ctx.records]
        numpy_q = names.index("inlabel_query_batch")
        small_pre = names.index("smallbatch_inlabel_preprocess")
        small_q = names.index("smallbatch_inlabel_query_batch")
        # One shared timeline: the numpy query ran before the smallbatch
        # backend even compiled, and every record carries a real cost.
        assert numpy_q < small_pre < small_q
        assert all(rec.time_s > 0.0 for rec in ctx.records)

    def test_summary_aggregates_across_backends(self):
        ctx = self._mixed_trace_ctx()
        summary = summarize_kernels(ctx.records)
        assert summary["inlabel_query_batch"]["launches"] == 1
        assert summary["smallbatch_inlabel_query_batch"]["launches"] == 1
        assert summary["smallbatch_inlabel_preprocess"]["launches"] == 1

    def test_phase_breakdown_spans_both_backends(self):
        ctx = self._mixed_trace_ctx()
        bd = PhaseBreakdown.from_context("mixed", ctx)
        assert set(bd.as_dict()) == {"preprocessing", "queries"}
        assert bd.total == pytest.approx(ctx.elapsed)

    def test_chrome_export_is_clean(self, tmp_path):
        import json

        from repro.obs.export import kernel_records_to_chrome, write_chrome_trace

        ctx = self._mixed_trace_ctx()
        events = kernel_records_to_chrome(ctx.records)
        spans = [ev for ev in events if ev.get("ph") == "X"]
        assert len(spans) == len(ctx.records)
        assert {ev["tid"] for ev in spans} == {"preprocessing", "queries"}
        # Spans tile the modeled timeline back-to-back, in record order.
        cursor = 0.0
        for ev in spans:
            assert ev["ts"] == pytest.approx(cursor)
            cursor += ev["dur"]
        path = tmp_path / "mixed_trace.json"
        n = write_chrome_trace(str(path), events)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == n
        assert {"smallbatch_inlabel_query_batch", "inlabel_query_batch"} <= {
            ev["name"] for ev in payload["traceEvents"]
        }
