"""Tests for sorting primitives."""

import numpy as np
import pytest

from repro.primitives import argsort_values, sort_key_value, sort_pairs, sort_values


class TestSortValues:
    def test_sorted_output(self):
        out = sort_values(np.asarray([3, 1, 2]))
        assert out.tolist() == [1, 2, 3]

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10**6, size=5000)
        assert np.array_equal(sort_values(values), np.sort(values))

    def test_empty(self):
        assert sort_values(np.asarray([], dtype=np.int64)).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sort_values(np.zeros((2, 2)))

    def test_charges_more_for_wider_keys(self, gpu_ctx):
        from repro.device import ExecutionContext, GTX980

        small_ctx = ExecutionContext(GTX980)
        sort_values(np.arange(1000) % 100, ctx=small_ctx)
        wide_ctx = ExecutionContext(GTX980)
        sort_values(np.arange(1000) * 10**6, ctx=wide_ctx)
        assert wide_ctx.total_launches > small_ctx.total_launches


class TestArgsortValues:
    def test_stable_and_correct(self):
        values = np.asarray([2, 1, 2, 0])
        order = argsort_values(values)
        assert values[order].tolist() == [0, 1, 2, 2]
        # stability: the two 2s keep their original relative order
        assert order.tolist() == [3, 1, 0, 2]


class TestSortPairs:
    def test_lexicographic_order(self):
        first = np.asarray([2, 0, 2, 1])
        second = np.asarray([1, 5, 0, 3])
        sf, ss, order = sort_pairs(first, second)
        pairs = list(zip(sf.tolist(), ss.tolist()))
        assert pairs == sorted(zip(first.tolist(), second.tolist()))
        assert np.array_equal(first[order], sf)
        assert np.array_equal(second[order], ss)

    def test_order_is_permutation(self):
        rng = np.random.default_rng(1)
        first = rng.integers(0, 100, size=1000)
        second = rng.integers(0, 100, size=1000)
        _, _, order = sort_pairs(first, second)
        assert np.array_equal(np.sort(order), np.arange(1000))

    def test_matches_lexsort(self):
        rng = np.random.default_rng(2)
        first = rng.integers(0, 50, size=500)
        second = rng.integers(0, 50, size=500)
        sf, ss, _ = sort_pairs(first, second)
        ref = np.lexsort((second, first))
        assert np.array_equal(sf, first[ref])
        assert np.array_equal(ss, second[ref])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sort_pairs(np.asarray([1, 2]), np.asarray([1]))

    def test_empty(self):
        sf, ss, order = sort_pairs(np.asarray([], dtype=np.int64),
                                   np.asarray([], dtype=np.int64))
        assert sf.size == ss.size == order.size == 0


class TestSortKeyValue:
    def test_values_follow_keys(self):
        keys = np.asarray([3, 1, 2])
        values = np.asarray([30, 10, 20])
        sk, sv = sort_key_value(keys, values)
        assert sk.tolist() == [1, 2, 3]
        assert sv.tolist() == [10, 20, 30]

    def test_stability(self):
        keys = np.asarray([1, 1, 0])
        values = np.asarray([100, 200, 300])
        _, sv = sort_key_value(keys, values)
        assert sv.tolist() == [300, 100, 200]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            sort_key_value(np.asarray([1, 2]), np.asarray([1]))
