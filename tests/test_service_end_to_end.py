"""End-to-end service tests: correctness vs the oracle, stats, and dispatch mix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.service import (
    CPU_SEQUENTIAL_BACKEND,
    BatchPolicy,
    LCAQueryService,
    estimate_batch_query_time,
)

from .conftest import make_tree


def build_service(parents, name="t", **kwargs):
    service = LCAQueryService(**kwargs)
    service.register_tree(name, parents)
    return service


# ----------------------------------------------------------------------
# The acceptance-criterion scenario: 10k single submissions, mixed load
# ----------------------------------------------------------------------

def test_ten_thousand_queries_match_reference_with_mixed_load():
    n, q = 30_000, 10_000
    parents = random_attachment_tree(n, seed=0)
    xs, ys = generate_random_queries(n, q, seed=1)
    # Two-phase offered load: the first 200 queries trickle in slower than
    # the wait budget (forced singleton batches), the rest flood in at 2M qps
    # (device-sized batches).
    slow = np.arange(200, dtype=np.float64) * 5e-4
    fast = slow[-1] + 1e-3 + np.arange(q - 200, dtype=np.float64) * 5e-7
    arrivals = np.concatenate([slow, fast])

    service = build_service(
        parents, policy=BatchPolicy(max_batch_size=256, max_wait_s=2e-4)
    )
    tickets = service.submit_many("t", xs, ys, at=arrivals)
    service.drain()

    answers = service.results(tickets)
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    assert np.array_equal(answers, expected)

    stats = service.stats()
    assert stats.queries_submitted == q
    assert stats.queries_answered == q
    # Non-trivial batch-size histogram: singleton batches from the trickle
    # phase and large batches from the flood phase.
    assert 1 in stats.batch_size_histogram
    assert max(stats.batch_size_histogram) >= 256
    assert len(stats.batch_size_histogram) >= 2
    # The dispatcher sent the singletons to the CPU and the bulk to the GPU.
    assert stats.backend_choices["cpu1"] >= 200
    assert stats.backend_choices["gpu"] >= 1
    # Both flush triggers occurred, and the index cache amortized: one build
    # per backend, everything else hits.
    assert stats.flush_triggers["wait"] > 0
    assert stats.flush_triggers["size"] > 0
    assert stats.cache_misses == 2
    assert stats.cache_hit_rate > 0.9
    assert stats.throughput_qps > 0
    assert stats.latency_p99_s >= stats.latency_p50_s > 0
    # The snapshot renders without blowing up.
    rendered = stats.format()
    assert "batch histogram" in rendered and "index cache" in rendered


# ----------------------------------------------------------------------
# Latency decomposition
# ----------------------------------------------------------------------

def test_warm_singleton_latency_is_wait_plus_service_time():
    parents = random_attachment_tree(4_096, seed=3)
    max_wait = 1e-3
    service = build_service(
        parents, policy=BatchPolicy(max_batch_size=64, max_wait_s=max_wait)
    )
    # Warm the CPU index with a throwaway query...
    warm = service.submit("t", 1, 2, at=0.0)
    service.advance_to(0.1)
    cold_latency = service.latency(warm)
    # ...then a singleton on the warm cache: its latency is exactly the wait
    # budget plus the modeled one-query CPU service time.
    ticket = service.submit("t", 3, 4, at=1.0)
    service.advance_to(2.0)
    expected = max_wait + estimate_batch_query_time(CPU_SEQUENTIAL_BACKEND, 1)
    assert service.latency(ticket) == pytest.approx(expected)
    # The cold query additionally paid the index build.
    assert cold_latency > service.latency(ticket)


# ----------------------------------------------------------------------
# Multiple datasets, one clock
# ----------------------------------------------------------------------

def test_submitting_to_one_dataset_fires_anothers_deadline():
    pa = random_attachment_tree(1_000, seed=4)
    pb = random_attachment_tree(1_000, seed=5)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=64, max_wait_s=1e-3))
    service.register_tree("a", pa)
    service.register_tree("b", pb)

    ta = service.submit("a", 10, 20, at=0.0)
    # Advancing time through a *different* dataset's submission must still
    # flush dataset a's expired queue — the clock is shared.
    service.submit("b", 30, 40, at=5e-3)
    assert service.result(ta) == int(BinaryLiftingLCA(pa).query([10], [20])[0])
    assert service.pending_count("a") == 0
    assert service.pending_count("b") == 1
    assert service.pending_count() == 1


def test_cross_dataset_batches_queue_in_flush_time_order():
    pa = random_attachment_tree(1_000, seed=16)
    pb = random_attachment_tree(1_000, seed=17)
    max_wait = 1e-3
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=64,
                                                 max_wait_s=max_wait))
    service.register_tree("a", pa)   # registered first -> earlier in dict order
    service.register_tree("b", pb)
    # Warm both datasets' CPU indexes so latencies are pure wait + service.
    service.submit("a", 1, 2, at=0.0)
    service.submit("b", 1, 2, at=0.0)
    service.advance_to(10.0)
    # Dataset b's deadline (20.0 + wait) precedes a's (20.0005 + wait): the
    # backend must serve b first even though a iterates first, so neither
    # batch is charged queueing delay behind the other.
    tb = service.submit("b", 3, 4, at=20.0)
    ta = service.submit("a", 5, 6, at=20.0005)
    service.advance_to(30.0)
    singleton = estimate_batch_query_time(CPU_SEQUENTIAL_BACKEND, 1)
    assert service.latency(tb) == pytest.approx(max_wait + singleton)
    assert service.latency(ta) == pytest.approx(max_wait + singleton)


def test_answers_stay_per_dataset():
    pa = random_attachment_tree(2_000, seed=6)
    pb = random_attachment_tree(2_000, seed=7)
    xs, ys = generate_random_queries(2_000, 300, seed=8)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=128, max_wait_s=1e-4))
    service.register_tree("a", pa)
    service.register_tree("b", pb)
    t = np.arange(300, dtype=np.float64) * 1e-6
    tickets_a = service.submit_many("a", xs, ys, at=t)
    tickets_b = service.submit_many("b", xs, ys)
    service.drain()
    assert np.array_equal(service.results(tickets_a),
                          BinaryLiftingLCA(pa).query(xs, ys))
    assert np.array_equal(service.results(tickets_b),
                          BinaryLiftingLCA(pb).query(xs, ys))


# ----------------------------------------------------------------------
# Cache pressure
# ----------------------------------------------------------------------

def test_correct_under_eviction_thrash():
    pa = random_attachment_tree(8_192, seed=9)
    pb = random_attachment_tree(8_192, seed=10)
    # Capacity fits roughly one index: alternating datasets must thrash the
    # cache yet never affect answers.
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=4, max_wait_s=0.0),
                              capacity_bytes=600_000)
    service.register_tree("a", pa)
    service.register_tree("b", pb)
    xs, ys = generate_random_queries(8_192, 40, seed=11)
    tickets = []
    for i in range(40):
        name = "a" if i % 2 == 0 else "b"
        tickets.append((name, i, service.submit(name, int(xs[i]), int(ys[i]),
                                                at=i * 1e-3)))
    service.drain()
    oracle = {"a": BinaryLiftingLCA(pa), "b": BinaryLiftingLCA(pb)}
    for name, i, ticket in tickets:
        expected = int(oracle[name].query([xs[i]], [ys[i]])[0])
        assert service.result(ticket) == expected
    stats = service.stats()
    assert stats.cache_evictions > 0
    assert stats.cache_misses > 2  # rebuilt after eviction


# ----------------------------------------------------------------------
# Error surface
# ----------------------------------------------------------------------

def test_overload_saturates_at_backend_capacity():
    parents = random_attachment_tree(2_048, seed=14)
    service = build_service(parents, policy=BatchPolicy(max_batch_size=1,
                                                        max_wait_s=0.0))
    # Pass-through serving on the CPU backend has a hard modeled capacity of
    # one query per singleton service time; offering 100x that rate must
    # deliver roughly the capacity (not the offered rate) with queueing
    # delay dominating the tail latency.
    per_query = estimate_batch_query_time(CPU_SEQUENTIAL_BACKEND, 1)
    capacity = 1.0 / per_query
    offered = 100.0 * capacity
    q = 20_000
    at = np.arange(q, dtype=np.float64) / offered
    xs, ys = generate_random_queries(2_048, q, seed=15)
    service.submit_many("t", xs, ys, at=at)
    service.drain()
    stats = service.stats()
    assert stats.queries_answered == q
    assert stats.throughput_qps < 0.1 * offered
    # Within ~2x of capacity (the cold index build also occupies the device).
    assert stats.throughput_qps == pytest.approx(capacity, rel=1.0)
    # Queries at the back of the overloaded queue waited far longer than the
    # front: the tail is queueing delay, not service time.
    assert stats.latency_p99_s > 50 * per_query


def test_prepopulated_store_is_servable():
    from repro.service import ForestStore

    parents = random_attachment_tree(500, seed=13)
    store = ForestStore()
    store.add_tree("pre", parents)
    service = LCAQueryService(store)
    ticket = service.submit("pre", 5, 9, at=0.0)
    service.drain()
    assert service.result(ticket) == int(BinaryLiftingLCA(parents).query([5], [9])[0])


def test_invalid_query_rejected_at_submit_without_poisoning_batch():
    from repro.errors import InvalidQueryError

    parents = random_attachment_tree(100, seed=12)
    service = build_service(parents)
    good = service.submit("t", 1, 2, at=0.0)
    # The bad query is rejected at its own submit call — it never enters a
    # batch, consumes no ticket, and leaves the queued query unharmed.
    with pytest.raises(InvalidQueryError):
        service.submit("t", 5, 500, at=1e-6)
    with pytest.raises(InvalidQueryError):
        service.submit("t", -1, 2)
    after = service.submit("t", 3, 4, at=2e-6)
    assert after == good + 1
    service.drain()
    oracle = BinaryLiftingLCA(parents)
    assert service.result(good) == int(oracle.query([1], [2])[0])
    assert service.result(after) == int(oracle.query([3], [4])[0])
    assert service.stats().queries_submitted == 2


def test_error_surface():
    service = build_service(random_attachment_tree(100, seed=12))
    with pytest.raises(ServiceError):
        service.submit("nope", 1, 2)
    with pytest.raises(ServiceError):
        service.result(999)  # never issued
    ticket = service.submit("t", 1, 2, at=0.0)
    with pytest.raises(ServiceError):
        service.result(ticket)  # still queued
    service.drain()
    assert service.result(ticket) >= 0
    with pytest.raises(ServiceError):
        service.register_tree("t", random_attachment_tree(10, seed=0))
    with pytest.raises(ServiceError):
        service.submit_many("t", np.asarray([1, 2]), np.asarray([3]))


# ----------------------------------------------------------------------
# Property: service answers == reference answers, any tree / policy / load
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(("shallow", "deep", "path", "scale-free", "star")),
    n=st.integers(min_value=2, max_value=300),
    q=st.integers(min_value=1, max_value=60),
    max_batch=st.integers(min_value=1, max_value=32),
    max_wait_us=st.sampled_from((0.0, 10.0, 1000.0)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_service_matches_reference(kind, n, q, max_batch, max_wait_us, seed):
    parents = make_tree(kind, n, seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    arrivals = np.cumsum(rng.exponential(1e-4, size=q))
    service = build_service(
        parents,
        policy=BatchPolicy(max_batch_size=max_batch, max_wait_s=max_wait_us * 1e-6),
    )
    tickets = service.submit_many("t", xs, ys, at=arrivals)
    service.drain()
    assert np.array_equal(service.results(tickets),
                          BinaryLiftingLCA(parents).query(xs, ys))
    stats = service.stats()
    assert stats.queries_answered == q
    assert sum(stats.flush_triggers.values()) == stats.batches_flushed
