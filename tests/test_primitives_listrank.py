"""Tests for list-ranking algorithms (Wyllie, Wei–JaJa, sequential)."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.primitives import (
    list_rank,
    order_from_ranks,
    sequential_rank,
    wei_jaja_rank,
    wyllie_rank,
)

ALGORITHMS = [sequential_rank, wyllie_rank, wei_jaja_rank]


def make_list(n: int, seed: int):
    """Random linked list over n elements; returns (succ, head, expected_rank)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    succ[perm[:-1]] = perm[1:]
    expected = np.empty(n, dtype=np.int64)
    expected[perm] = np.arange(n)
    return succ, int(perm[0]), expected


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 65, 1000])
    def test_random_lists(self, algorithm, n):
        succ, head, expected = make_list(n, seed=n)
        assert np.array_equal(algorithm(succ, head), expected)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identity_list(self, algorithm):
        # 0 -> 1 -> 2 -> ... -> n-1
        n = 50
        succ = np.arange(1, n + 1, dtype=np.int64)
        succ[-1] = -1
        assert np.array_equal(algorithm(succ, 0), np.arange(n))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reversed_list(self, algorithm):
        n = 50
        succ = np.arange(-1, n - 1, dtype=np.int64)
        assert np.array_equal(algorithm(succ, n - 1), np.arange(n)[::-1])

    def test_wei_jaja_matches_wyllie_on_many_seeds(self):
        for seed in range(10):
            succ, head, _ = make_list(257, seed=seed)
            assert np.array_equal(wei_jaja_rank(succ, head, seed=seed),
                                  wyllie_rank(succ, head))

    @pytest.mark.parametrize("splitters", [1, 2, 5, 64, 300])
    def test_wei_jaja_any_splitter_count(self, splitters):
        succ, head, expected = make_list(300, seed=3)
        out = wei_jaja_rank(succ, head, num_splitters=splitters)
        assert np.array_equal(out, expected)


class TestValidation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_list_rejected(self, algorithm):
        with pytest.raises(InvalidGraphError):
            algorithm(np.asarray([], dtype=np.int64), 0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_head_out_of_range_rejected(self, algorithm):
        with pytest.raises(InvalidGraphError):
            algorithm(np.asarray([-1]), 5)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bad_successor_rejected(self, algorithm):
        with pytest.raises(InvalidGraphError):
            algorithm(np.asarray([7]), 0)

    @pytest.mark.parametrize("algorithm", [sequential_rank, wei_jaja_rank])
    def test_unreachable_elements_detected(self, algorithm):
        # Two disjoint lists: 0 -> 1, 2 -> 3; ranking from 0 must fail.
        succ = np.asarray([1, -1, 3, -1], dtype=np.int64)
        with pytest.raises(InvalidGraphError):
            algorithm(succ, 0)

    def test_cycle_detected_sequential(self):
        succ = np.asarray([1, 2, 0], dtype=np.int64)
        with pytest.raises(InvalidGraphError):
            sequential_rank(succ, 0)


class TestDispatcher:
    def test_method_names(self):
        succ, head, expected = make_list(40, seed=9)
        for method in ("wei-jaja", "weijaja", "wyllie", "sequential", "WEI_JAJA"):
            assert np.array_equal(list_rank(succ, head, method=method), expected)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            list_rank(np.asarray([-1]), 0, method="quantum")


class TestCostAccounting:
    def test_wyllie_charges_log_rounds(self, gpu_ctx):
        succ, head, _ = make_list(1024, seed=0)
        wyllie_rank(succ, head, ctx=gpu_ctx)
        # Wyllie needs ~log2(n) rounds of kernels.
        assert 8 <= gpu_ctx.total_launches <= 16

    def test_wei_jaja_charges_fewer_launches_than_wyllie(self):
        from repro.device import ExecutionContext, GTX980

        succ, head, _ = make_list(4096, seed=1)
        wy = ExecutionContext(GTX980)
        wyllie_rank(succ, head, ctx=wy)
        wj = ExecutionContext(GTX980)
        wei_jaja_rank(succ, head, ctx=wj)
        assert wj.total_launches < wy.total_launches
        # Wei-JaJa is work-optimal: fewer total operations than Wyllie's n log n.
        assert wj.total_ops < wy.total_ops


class TestOrderFromRanks:
    def test_inverse_permutation(self):
        ranks = np.asarray([2, 0, 1])
        assert order_from_ranks(ranks).tolist() == [1, 2, 0]

    def test_roundtrip_with_rank(self):
        succ, head, expected = make_list(128, seed=5)
        ranks = wei_jaja_rank(succ, head)
        order = order_from_ranks(ranks)
        assert np.array_equal(ranks[order], np.arange(128))
        assert np.array_equal(order[expected], np.arange(128))
