"""Tests for the dataset registry (Table 1 stand-ins)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    BREAKDOWN_DATASETS,
    DATASETS,
    KRONECKER_DATASETS,
    REALWORLD_DATASETS,
    get_dataset_spec,
    list_datasets,
    load_dataset,
)
from repro.graphs import is_connected


class TestRegistry:
    def test_sixteen_datasets_like_table1(self):
        assert len(DATASETS) == 16

    def test_categories(self):
        assert len(KRONECKER_DATASETS) == 6
        assert len(REALWORLD_DATASETS) == 10
        assert set(list_datasets("kronecker")) == set(KRONECKER_DATASETS)
        assert set(list_datasets("road")) <= set(REALWORLD_DATASETS)
        assert set(list_datasets()) == set(DATASETS)

    def test_breakdown_subset(self):
        assert set(BREAKDOWN_DATASETS) <= set(DATASETS)

    def test_every_dataset_has_paper_stats(self):
        for name in DATASETS:
            spec = get_dataset_spec(name)
            nodes, edges, bridges, diameter = spec.paper_stats
            assert nodes > 0 and edges > 0 and bridges >= 0 and diameter > 0
            assert spec.paper_name

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_dataset_spec("facebook-2045")
        with pytest.raises(ConfigurationError):
            load_dataset("facebook-2045")


class TestLoading:
    @pytest.mark.parametrize("name", ["kron-s10", "web-wikipedia-like", "road-east-like"])
    def test_loaded_graphs_are_connected(self, name):
        graph = load_dataset(name, scale=0.05)
        assert graph.num_nodes > 0
        assert is_connected(graph)

    def test_scale_changes_size(self):
        small = load_dataset("road-east-like", scale=0.02)
        large = load_dataset("road-east-like", scale=0.08)
        assert large.num_nodes > 2 * small.num_nodes

    def test_deterministic(self):
        import numpy as np

        a = load_dataset("kron-s10", scale=0.1)
        b = load_dataset("kron-s10", scale=0.1)
        assert a.num_nodes == b.num_nodes
        assert np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            load_dataset("kron-s10", scale=0.0)

    def test_scale_env_var(self, monkeypatch):
        from repro.experiments.datasets import SCALE_ENV_VAR

        monkeypatch.setenv(SCALE_ENV_VAR, "0.05")
        small = load_dataset("road-east-like")
        assert small.num_nodes < 10_000
        monkeypatch.setenv(SCALE_ENV_VAR, "not-a-number")
        with pytest.raises(ConfigurationError):
            load_dataset("road-east-like")

    def test_family_characteristics(self):
        """The three families must occupy the regimes the paper relies on:
        small-diameter dense-ish kron/social vs. large-diameter sparse road."""
        from repro.graphs import pseudo_diameter

        kron = load_dataset("kron-s10", scale=0.5)
        road = load_dataset("road-east-like", scale=0.05)
        assert kron.num_edges / kron.num_nodes > 4
        assert road.num_edges / road.num_nodes < 2
        assert pseudo_diameter(road) > 5 * pseudo_diameter(kron)
