"""Tests for the EdgeList representation."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graphs import EdgeList


class TestConstruction:
    def test_basic(self):
        g = EdgeList(np.asarray([0, 1]), np.asarray([1, 2]), 3)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert len(g) == 2

    def test_from_pairs_infers_n(self):
        g = EdgeList.from_pairs([(0, 1), (1, 4)])
        assert g.num_nodes == 5
        assert list(g.edges()) == [(0, 1), (1, 4)]

    def test_from_pairs_explicit_n(self):
        g = EdgeList.from_pairs([(0, 1)], n=10)
        assert g.num_nodes == 10

    def test_from_pairs_empty(self):
        g = EdgeList.from_pairs([])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(InvalidGraphError):
            EdgeList(np.asarray([0]), np.asarray([5]), 3)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(InvalidGraphError):
            EdgeList(np.asarray([-1]), np.asarray([0]), 3)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(InvalidGraphError):
            EdgeList(np.asarray([0, 1]), np.asarray([1]), 3)

    def test_malformed_pairs_rejected(self):
        with pytest.raises(InvalidGraphError):
            EdgeList.from_pairs([(0, 1, 2)])


class TestNormalization:
    def test_self_loop_detection_and_removal(self):
        g = EdgeList.from_pairs([(0, 0), (0, 1)], n=2)
        assert g.has_self_loops()
        clean = g.without_self_loops()
        assert not clean.has_self_loops()
        assert clean.num_edges == 1

    def test_canonical_undirected(self):
        g = EdgeList.from_pairs([(2, 1), (0, 3)], n=4).canonical_undirected()
        assert list(g.edges()) == [(1, 2), (0, 3)]

    def test_deduplicated_removes_parallel_edges_and_loops(self):
        g = EdgeList.from_pairs([(0, 1), (1, 0), (0, 1), (2, 2)], n=3)
        d = g.deduplicated()
        assert d.num_edges == 1
        assert list(d.edges()) == [(0, 1)]

    def test_degrees(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (1, 3)], n=4)
        assert g.degrees().tolist() == [1, 3, 1, 1]

    def test_degrees_count_self_loops_twice(self):
        g = EdgeList.from_pairs([(0, 0)], n=1)
        assert g.degrees().tolist() == [2]


class TestDerivedRepresentations:
    def test_directed_halfedges_layout(self):
        g = EdgeList.from_pairs([(0, 2), (1, 2)], n=3)
        src, dst, eid = g.directed_halfedges()
        assert src.tolist() == [0, 2, 1, 2]
        assert dst.tolist() == [2, 0, 2, 1]
        assert eid.tolist() == [0, 0, 1, 1]

    def test_relabeled_preserves_structure(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2)], n=3)
        perm = np.asarray([2, 0, 1])
        r = g.relabeled(perm)
        assert sorted(map(tuple, map(sorted, r.edges()))) == [(0, 1), (0, 2)]

    def test_relabeled_requires_bijection(self):
        g = EdgeList.from_pairs([(0, 1)], n=2)
        with pytest.raises(InvalidGraphError):
            g.relabeled(np.asarray([0, 0]))

    def test_relabeled_requires_full_length(self):
        g = EdgeList.from_pairs([(0, 1)], n=2)
        with pytest.raises(InvalidGraphError):
            g.relabeled(np.asarray([0]))

    def test_subgraph(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (2, 3)], n=4)
        sub, old_ids = g.subgraph(np.asarray([True, True, True, False]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert old_ids.tolist() == [0, 1, 2]

    def test_subgraph_renumbers_densely(self):
        g = EdgeList.from_pairs([(1, 3)], n=4)
        sub, old_ids = g.subgraph(np.asarray([False, True, False, True]))
        assert list(sub.edges()) == [(0, 1)]
        assert old_ids.tolist() == [1, 3]

    def test_copy_is_deep(self):
        g = EdgeList.from_pairs([(0, 1)], n=2)
        c = g.copy()
        c.u[0] = 1
        assert g.u[0] == 0
