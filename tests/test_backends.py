"""Tests for the real kernel backends and measured calibration.

Covers the backend contract (compile → bind → launch → readback), the
bit-identity of every registered backend against the sequential oracle,
the calibration fit/profile machinery, and profile-driven dispatch —
including the property that a calibrated dispatcher always picks the
argmin of the profile's predicted costs.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    DEFAULT_CALIBRATION_GRID,
    BackendCalibration,
    BackendCapabilities,
    CalibrationProfile,
    NumpyBackend,
    SmallBatchBackend,
    available_backends,
    calibrate_backends,
    fit_launch_cost,
    get_kernel_backend,
    register_backend,
)
from repro.device import GTX980, XEON_X5650_SINGLE, ExecutionContext
from repro.errors import DeviceError, InvalidQueryError, ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.lca.reference import BinaryLiftingLCA
from repro.service import (
    CostModelDispatcher,
    LCAQueryService,
    ServiceConfig,
    estimate_batch_query_time,
    make_backend,
)
from repro.service.dispatch import dispatcher_for


def _tree(n=257, seed=7):
    return random_attachment_tree(n, seed=seed)


def _queries(n, q, seed=11):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n, size=q, dtype=np.int64),
        rng.integers(0, n, size=q, dtype=np.int64),
    )


class TestBackendContract:
    def test_available_backends_lists_builtins(self):
        keys = available_backends()
        for key in ("numpy", "numpy-seq", "smallbatch", "pool"):
            assert key in keys

    def test_get_kernel_backend_unknown_key(self):
        with pytest.raises(ServiceError, match="unknown kernel backend"):
            get_kernel_backend("tpu")

    def test_get_kernel_backend_memoizes(self):
        assert get_kernel_backend("numpy") is get_kernel_backend("numpy")

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ServiceError):
            register_backend("numpy", NumpyBackend)

    def test_capabilities_validate_batch(self):
        caps = BackendCapabilities(max_batch=4)
        caps.validate_batch(4)  # at the limit is fine
        with pytest.raises(ServiceError):
            caps.validate_batch(5)
        BackendCapabilities().validate_batch(1 << 30)  # unbounded

    def test_launch_is_idempotent(self):
        parents = _tree(64)
        kernel = get_kernel_backend("smallbatch").compile(parents)
        xs, ys = _queries(64, 8)
        launch = kernel.bind(xs, ys)
        launch.launch()
        first = launch.readback().copy()
        launch.launch()  # second launch is a no-op
        assert np.array_equal(launch.readback(), first)

    def test_all_backends_match_oracle(self):
        parents = _tree(257)
        oracle = BinaryLiftingLCA(parents)
        xs, ys = _queries(257, 301)
        expected = oracle.query(xs, ys)
        for key in available_backends():
            kernel = get_kernel_backend(key).compile(parents)
            try:
                got = kernel.query(xs, ys)
                assert np.array_equal(got, expected), key
                assert got.dtype == np.int64
            finally:
                close = getattr(kernel, "close", None)
                if close is not None:
                    close()

    def test_backend_charges_modeled_context(self):
        parents = _tree(128)
        xs, ys = _queries(128, 16)
        for key, spec in (("numpy", GTX980), ("smallbatch", XEON_X5650_SINGLE)):
            ctx = ExecutionContext(spec)
            kernel = get_kernel_backend(key).compile(parents, ctx=ctx)
            before = ctx.elapsed
            assert before > 0.0  # preprocessing was charged
            kernel.query(xs, ys, ctx=ctx)
            assert ctx.elapsed > before  # queries were charged


class TestSmallBatchKernel:
    def test_scalar_path_matches_vectorized(self):
        parents = _tree(511, seed=3)
        oracle = BinaryLiftingLCA(parents)
        kernel = SmallBatchBackend(scratch_size=64).compile(parents)
        for q in (1, 2, 7, 63, 64):
            xs, ys = _queries(511, q, seed=q)
            assert np.array_equal(kernel.query(xs, ys), oracle.query(xs, ys))

    def test_oversized_batch_falls_back(self):
        parents = _tree(511, seed=3)
        oracle = BinaryLiftingLCA(parents)
        kernel = SmallBatchBackend(scratch_size=16).compile(parents)
        xs, ys = _queries(511, 100, seed=5)  # 100 > 16 → vectorized fallback
        assert np.array_equal(kernel.query(xs, ys), oracle.query(xs, ys))

    def test_result_valid_until_next_launch(self):
        parents = _tree(64)
        kernel = SmallBatchBackend().compile(parents)
        xs, ys = _queries(64, 4)
        first = kernel.query(xs, ys).copy()
        kernel.query(ys, xs)
        assert np.array_equal(first, kernel.query(xs, ys))

    def test_out_of_range_nodes_rejected(self):
        parents = _tree(32)
        kernel = SmallBatchBackend().compile(parents)
        with pytest.raises(InvalidQueryError):
            kernel.query(np.array([0]), np.array([32]))
        with pytest.raises(InvalidQueryError):
            kernel.query(np.array([-1]), np.array([0]))

    def test_shape_mismatch_rejected(self):
        parents = _tree(32)
        kernel = SmallBatchBackend().compile(parents)
        with pytest.raises(InvalidQueryError):
            kernel.query(np.array([0, 1]), np.array([2]))

    def test_charge_matches_sequential_model(self):
        # The smallbatch backend answers on the real CPU but must book the
        # same modeled cost as the sequential inlabel artifact it replaces.
        parents = _tree(128)
        xs, ys = _queries(128, 24)
        ctx_a = ExecutionContext(XEON_X5650_SINGLE)
        SmallBatchBackend().compile(parents, ctx=ctx_a).query(xs, ys, ctx=ctx_a)
        ctx_b = ExecutionContext(XEON_X5650_SINGLE)
        get_kernel_backend("numpy-seq").compile(parents, ctx=ctx_b).query(
            xs, ys, ctx=ctx_b
        )
        assert ctx_a.elapsed == pytest.approx(ctx_b.elapsed)


class TestPoolBackend:
    def test_pool_matches_oracle_and_survives_close(self):
        pool_backend = get_kernel_backend("pool")
        parents = _tree(200, seed=9)
        oracle = BinaryLiftingLCA(parents)
        xs, ys = _queries(200, 50, seed=13)
        expected = oracle.query(xs, ys)
        kernel = pool_backend.compile(parents)
        try:
            assert np.array_equal(kernel.query(xs, ys), expected)
        finally:
            kernel.close()
        # After close the kernel degrades to the in-process path.
        assert np.array_equal(kernel.query(xs, ys), expected)
        kernel.close()  # idempotent

    def test_pool_capabilities_are_bounded(self):
        caps = get_kernel_backend("pool").capabilities()
        assert caps.parallel
        assert caps.max_batch is not None


def _profile(entries, *, meta=None):
    return CalibrationProfile(entries=dict(entries), meta=dict(meta or {}))


def _entry(key, overhead, per_query, lo=1, hi=1024):
    return BackendCalibration(
        backend=key,
        launch_overhead_s=overhead,
        per_query_s=per_query,
        min_batch=lo,
        max_batch=hi,
        samples=8,
        residual=0.0,
    )


class TestCalibrationProfile:
    def test_predict_is_affine(self):
        prof = _profile({"numpy": _entry("numpy", 1e-5, 1e-7)})
        assert prof.predict("numpy", 10) == pytest.approx(1e-5 + 10 * 1e-7)

    def test_predict_refuses_to_extrapolate(self):
        prof = _profile({"numpy": _entry("numpy", 1e-5, 1e-7, lo=2, hi=64)})
        with pytest.raises(DeviceError, match="calibrated range"):
            prof.predict("numpy", 1)
        with pytest.raises(DeviceError, match="calibrated range"):
            prof.predict("numpy", 65)
        with pytest.raises(DeviceError, match="no calibration"):
            prof.predict("pool", 8)

    def test_batch_range_intersects_windows(self):
        prof = _profile(
            {
                "a": _entry("a", 1e-5, 1e-7, lo=1, hi=64),
                "b": _entry("b", 1e-5, 1e-7, lo=4, hi=256),
            }
        )
        assert prof.batch_range(["a", "b"]) == (4, 64)
        with pytest.raises(DeviceError):
            prof.batch_range(["a", "c"])

    def test_json_round_trip(self, tmp_path):
        prof = _profile(
            {
                "numpy": _entry("numpy", 7.5e-5, 8.6e-8),
                "smallbatch": _entry("smallbatch", 9.5e-6, 2.6e-7),
            },
            meta={"n_nodes": 4096, "seed": 0},
        )
        path = tmp_path / "profile.json"
        prof.save(path)
        loaded = CalibrationProfile.load(path)
        assert loaded == prof

    def test_from_dict_rejects_bad_version(self):
        payload = json.loads(_profile({}).to_json())
        payload["version"] = 999
        with pytest.raises(ServiceError, match="version"):
            CalibrationProfile.from_dict(payload)

    def test_from_dict_rejects_unknown_keys(self):
        payload = json.loads(
            _profile({"numpy": _entry("numpy", 1e-5, 1e-7)}).to_json()
        )
        payload["backends"]["numpy"]["surprise"] = 1
        with pytest.raises(ServiceError):
            CalibrationProfile.from_dict(payload)


class TestFitLaunchCost:
    def test_recovers_exact_line(self):
        sizes = [1, 2, 4, 8, 16, 32, 64]
        times = [2e-5 + 3e-7 * s for s in sizes]
        a, b, residual = fit_launch_cost(sizes, times)
        assert a == pytest.approx(2e-5, rel=1e-6)
        assert b == pytest.approx(3e-7, rel=1e-6)
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_robust_to_one_outlier(self):
        sizes = [1, 2, 4, 8, 16, 32, 64, 128]
        times = [2e-5 + 3e-7 * s for s in sizes]
        times[3] *= 25.0  # a descheduled sample
        a, b, _ = fit_launch_cost(sizes, times)
        assert a == pytest.approx(2e-5, rel=0.05)
        assert b == pytest.approx(3e-7, rel=0.05)

    def test_clamps_to_physical_values(self):
        # A decreasing series would fit a negative overhead; clamp to zero.
        a, b, _ = fit_launch_cost([1, 2, 4], [3e-7, 5e-7, 9e-7])
        assert a >= 0.0
        assert b > 0.0

    def test_rejects_degenerate_input(self):
        with pytest.raises(ServiceError):
            fit_launch_cost([1], [1e-6])
        with pytest.raises(ServiceError):
            fit_launch_cost([1, 2], [1e-6])  # length mismatch


class TestCalibrateBackends:
    def test_smoke_profile_covers_requested_backends(self):
        prof = calibrate_backends(
            ["smallbatch", "numpy"],
            batch_sizes=(1, 4, 16, 64),
            repeats=2,
            warmup=1,
            n_nodes=256,
        )
        assert set(prof.backends()) == {"smallbatch", "numpy"}
        for key in ("smallbatch", "numpy"):
            assert prof.predict(key, 16) > 0.0
        assert prof.meta["n_nodes"] == 256

    def test_deterministic_with_injected_timer(self):
        ticks = iter(np.arange(0.0, 1e6).tolist())

        def timer():
            return next(ticks) * 1e-4

        prof = calibrate_backends(
            ["smallbatch"],
            batch_sizes=(1, 4, 16),
            repeats=1,
            warmup=0,
            n_nodes=128,
            timer=timer,
        )
        cal = prof.entries["smallbatch"]
        assert cal.min_batch == 1
        assert cal.max_batch == 16

    def test_rejects_unusable_grid(self):
        with pytest.raises(ServiceError):
            calibrate_backends(["smallbatch"], batch_sizes=(4,), n_nodes=64)


@st.composite
def profiles_with_batch(draw):
    keys = draw(
        st.lists(
            st.sampled_from(["numpy", "numpy-seq", "smallbatch"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    entries = {}
    for key in keys:
        overhead = draw(st.floats(1e-7, 1e-3, allow_nan=False))
        per_query = draw(st.floats(1e-9, 1e-5, allow_nan=False))
        entries[key] = _entry(key, overhead, per_query, lo=1, hi=2048)
    batch = draw(st.integers(1, 2048))
    return _profile(entries), keys, batch


class TestProfileDrivenDispatch:
    @settings(max_examples=60, deadline=None)
    @given(profiles_with_batch())
    def test_choice_is_argmin_of_predicted_cost(self, case):
        profile, keys, batch = case
        dispatcher = dispatcher_for(keys, profile=profile)
        backend, estimate = dispatcher.choose_with_estimate(batch)
        predicted = {k: profile.predict(k, batch) for k in keys}
        assert estimate == pytest.approx(min(predicted.values()))
        assert predicted[backend.key] == min(predicted.values())

    def test_estimate_uses_profile_over_model(self):
        profile = _profile({"numpy": _entry("numpy", 1e-5, 1e-7)})
        backend = make_backend("numpy")
        measured = estimate_batch_query_time(backend, 10, profile=profile)
        modeled = estimate_batch_query_time(backend, 10)
        assert measured == pytest.approx(1e-5 + 10 * 1e-7)
        assert measured != modeled

    def test_estimate_out_of_range_is_typed_error(self):
        profile = _profile({"numpy": _entry("numpy", 1e-5, 1e-7, lo=1, hi=64)})
        backend = make_backend("numpy")
        with pytest.raises(DeviceError):
            estimate_batch_query_time(backend, 65, profile=profile)
        # batch_size validation still wins over profile lookup
        with pytest.raises(ServiceError):
            estimate_batch_query_time(backend, 0, profile=profile)

    def test_dispatcher_requires_profile_coverage(self):
        profile = _profile({"numpy": _entry("numpy", 1e-5, 1e-7)})
        with pytest.raises(DeviceError):
            dispatcher_for(["numpy", "smallbatch"], profile=profile)

    def test_crossover_derived_from_profile(self):
        # smallbatch: cheap launch, costly per query; numpy: the reverse.
        # Crossover = overhead gap / per-query gap = 99e-6 / 99e-8 = 100.
        profile = _profile(
            {
                "smallbatch": _entry("smallbatch", 1e-6, 1e-6),
                "numpy": _entry("numpy", 1e-4, 1e-8),
            }
        )
        dispatcher = dispatcher_for(["smallbatch", "numpy"], profile=profile)
        assert dispatcher.choose(10).key == "smallbatch"
        assert dispatcher.choose(1000).key == "numpy"
        crossover = dispatcher.crossover_batch_size()
        assert crossover is not None
        assert 95 <= crossover <= 105

    def test_no_profile_dispatch_unchanged(self):
        dispatcher = dispatcher_for(["cpu1", "gpu"])
        baseline = CostModelDispatcher()
        for batch in (1, 8, 64, 512):
            assert dispatcher.choose(batch).key == baseline.choose(batch).key
            b = baseline.choose(batch)
            assert dispatcher.estimate(b, batch) == estimate_batch_query_time(
                b, batch
            )

    def test_dispatcher_for_rejects_path_and_profile(self, tmp_path):
        profile = _profile({"numpy": _entry("numpy", 1e-5, 1e-7)})
        path = tmp_path / "p.json"
        profile.save(path)
        with pytest.raises(ServiceError):
            dispatcher_for(["numpy"], str(path), profile=profile)


class TestServiceIntegration:
    def _profile_file(self, tmp_path):
        profile = _profile(
            {
                "smallbatch": _entry("smallbatch", 1e-6, 1e-6),
                "numpy": _entry("numpy", 1e-4, 1e-8),
            }
        )
        path = tmp_path / "profile.json"
        profile.save(path)
        return str(path), profile

    def test_config_builds_calibrated_service(self, tmp_path):
        path, profile = self._profile_file(tmp_path)
        config = ServiceConfig(
            max_batch_size=256,
            backends=("smallbatch", "numpy"),
            calibration_path=path,
        )
        service = LCAQueryService(config=config)
        assert service.dispatcher.profile == profile
        parents = _tree(300, seed=21)
        oracle = BinaryLiftingLCA(parents)
        service.register_tree("t", parents)
        xs, ys = _queries(300, 777, seed=23)
        tickets = service.submit_many("t", xs, ys)
        service.drain()
        assert np.array_equal(service.results(tickets), oracle.query(xs, ys))

    def test_estimate_equals_charge_under_profile(self, tmp_path):
        # The serving invariant survives measured profiles: the time a
        # batch is booked for equals the dispatcher's estimate for it.
        from repro.obs import TraceRecorder
        from repro.obs.report import batch_spans

        path, _ = self._profile_file(tmp_path)
        config = ServiceConfig(
            max_batch_size=64,
            backends=("smallbatch", "numpy"),
            calibration_path=path,
        )
        recorder = TraceRecorder()
        service = LCAQueryService(config=config, observer=recorder)
        parents = _tree(100, seed=2)
        service.register_tree("t", parents)
        for seed in (3, 4):  # second round serves on a warm index cache
            xs, ys = _queries(100, 40, seed=seed)
            service.submit_many("t", xs, ys)
            service.drain()
        spans = batch_spans(recorder.table())
        assert len(spans) >= 2
        for span in spans[1:]:  # first span may include the index build
            chosen = service.dispatcher.choose(span.size)
            estimate = service.dispatcher.estimate(chosen, span.size)
            assert span.service_s == pytest.approx(estimate)
            assert span.predicted_s == pytest.approx(estimate)
        assert service.stats().queries_answered == 80

    def test_config_round_trip_preserves_backends(self, tmp_path):
        path, _ = self._profile_file(tmp_path)
        config = ServiceConfig(
            backends=("smallbatch", "numpy"), calibration_path=path
        )
        restored = ServiceConfig.from_json(config.to_json())
        assert restored.backends == ("smallbatch", "numpy")
        assert restored.calibration_path == path

    def test_backends_config_without_profile_uses_model(self):
        config = ServiceConfig(backends=("cpu1", "gpu"))
        service = LCAQueryService(config=config)
        assert service.dispatcher.profile is None
        assert tuple(b.key for b in service.dispatcher.backends) == (
            "cpu1",
            "gpu",
        )

    def test_empty_backends_tuple_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(backends=())

    def test_duplicate_backends_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(backends=("numpy", "numpy"))
