"""Hypothesis property tests: Euler tour statistics and LCA algorithms on random trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler import tree_statistics_from_parents
from repro.graphs import depths_from_parents, subtree_sizes_from_parents
from repro.lca import (
    BinaryLiftingLCA,
    InlabelLCA,
    NaiveGPULCA,
    RMQLCA,
    SequentialInlabelLCA,
)


@st.composite
def random_parent_arrays(draw, max_nodes=80):
    """A random rooted tree as a parent array, with shuffled node labels."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    # Build in canonical order (parent index < child index), then relabel.
    canonical = [-1] + [draw(st.integers(0, i - 1)) for i in range(1, n)]
    label_perm = draw(st.permutations(list(range(n))))
    label = np.asarray(label_perm, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    for child in range(1, n):
        parents[label[child]] = label[canonical[child]]
    parents[label[0]] = -1
    return parents


@st.composite
def tree_with_queries(draw, max_nodes=80, max_queries=30):
    parents = draw(random_parent_arrays(max_nodes=max_nodes))
    n = parents.size
    q = draw(st.integers(min_value=1, max_value=max_queries))
    xs = np.asarray([draw(st.integers(0, n - 1)) for _ in range(q)], dtype=np.int64)
    ys = np.asarray([draw(st.integers(0, n - 1)) for _ in range(q)], dtype=np.int64)
    return parents, xs, ys


@settings(max_examples=50, deadline=None)
@given(random_parent_arrays())
def test_euler_stats_match_sequential_oracles(parents):
    stats = tree_statistics_from_parents(parents)
    assert np.array_equal(stats.parent, parents)
    assert np.array_equal(stats.depth, depths_from_parents(parents))
    assert np.array_equal(stats.subtree_size, subtree_sizes_from_parents(parents))
    assert sorted(stats.preorder.tolist()) == list(range(1, parents.size + 1))


@settings(max_examples=50, deadline=None)
@given(random_parent_arrays())
def test_preorder_intervals_nest_or_are_disjoint(parents):
    stats = tree_statistics_from_parents(parents)
    start, end = stats.preorder_interval()
    n = parents.size
    for v in range(min(n, 25)):
        for w in range(min(n, 25)):
            a = (start[v], end[v])
            b = (start[w], end[w])
            nested = (a[0] <= b[0] and b[1] <= a[1]) or (b[0] <= a[0] and a[1] <= b[1])
            disjoint = a[1] < b[0] or b[1] < a[0]
            assert nested or disjoint


@settings(max_examples=40, deadline=None)
@given(tree_with_queries())
def test_all_lca_algorithms_agree(data):
    parents, xs, ys = data
    oracle = BinaryLiftingLCA(parents).query(xs, ys)
    for cls in (InlabelLCA, SequentialInlabelLCA, NaiveGPULCA, RMQLCA):
        assert np.array_equal(cls(parents).query(xs, ys), oracle), cls.__name__


@settings(max_examples=40, deadline=None)
@given(tree_with_queries())
def test_lca_answer_is_a_common_ancestor_and_deepest(data):
    """Check the LCA definition directly, rather than against another solver."""
    parents, xs, ys = data
    depth = depths_from_parents(parents)
    answers = InlabelLCA(parents).query(xs, ys)

    def ancestors(node):
        out = set()
        while node != -1:
            out.add(int(node))
            node = parents[node]
        return out

    for x, y, z in zip(xs.tolist(), ys.tolist(), answers.tolist()):
        ax, ay = ancestors(x), ancestors(y)
        common = ax & ay
        assert z in common
        assert depth[z] == max(depth[list(common)])
