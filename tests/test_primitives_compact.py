"""Tests for stream compaction primitives."""

import numpy as np
import pytest

from repro.primitives import compact, compact_many, nonzero_indices


class TestCompact:
    def test_keeps_masked_elements_in_order(self):
        values = np.asarray([10, 20, 30, 40])
        mask = np.asarray([True, False, True, False])
        assert compact(values, mask).tolist() == [10, 30]

    def test_all_false(self):
        assert compact(np.arange(5), np.zeros(5, dtype=bool)).size == 0

    def test_all_true(self):
        values = np.arange(5)
        assert np.array_equal(compact(values, np.ones(5, dtype=bool)), values)

    def test_mismatched_mask_rejected(self):
        with pytest.raises(ValueError):
            compact(np.arange(3), np.asarray([True]))

    def test_charges_cost(self, gpu_ctx):
        compact(np.arange(100), np.ones(100, dtype=bool), ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0


class TestCompactMany:
    def test_shared_mask(self):
        a = np.asarray([1, 2, 3])
        b = np.asarray([10, 20, 30])
        mask = np.asarray([True, False, True])
        ca, cb = compact_many([a, b], mask)
        assert ca.tolist() == [1, 3]
        assert cb.tolist() == [10, 30]

    def test_empty_array_list(self):
        assert compact_many([], np.asarray([True, False])) == ()

    def test_misaligned_array_rejected(self):
        with pytest.raises(ValueError):
            compact_many([np.arange(3), np.arange(4)], np.ones(3, dtype=bool))


class TestNonzeroIndices:
    def test_matches_flatnonzero(self):
        rng = np.random.default_rng(0)
        mask = rng.random(1000) < 0.3
        assert np.array_equal(nonzero_indices(mask), np.flatnonzero(mask))

    def test_empty_mask(self):
        assert nonzero_indices(np.zeros(10, dtype=bool)).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            nonzero_indices(np.zeros((2, 2), dtype=bool))
