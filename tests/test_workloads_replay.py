"""Replay-harness contracts: legacy equivalence, shedding, determinism.

The two acceptance-grade properties live here:

* a ``steady`` scenario replayed on a single-node service reproduces the
  numbers the legacy hand-built uniform stream
  (:func:`~repro.experiments.service_experiments.serve_query_stream`, the
  row-maker of ``offered_load_sweep``) has always produced — bit for bit,
  down to the full ``ServiceStats`` snapshot;
* the ``flash-crowd`` scenario provably trips a bounded cluster's admission
  control (``Overloaded`` shedding, confined to the flash phase) while
  ``steady`` never sheds.
"""

import numpy as np
import pytest

from repro.experiments.service_experiments import scenario_suite, serve_query_stream
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.service import BatchPolicy, ClusterService, LCAQueryService, make_router
from repro.workloads import (
    DeterministicArrivals,
    Phase,
    PoissonArrivals,
    Scenario,
    TrafficSource,
    make_scenario,
    replay,
)

POLICY = BatchPolicy(max_batch_size=256, max_wait_s=2e-4)


def bounded_cluster(max_pending=8192, policy_name="least-outstanding"):
    return ClusterService(
        4, policy=POLICY, router=make_router(policy_name), max_pending=max_pending
    )


# ----------------------------------------------------------------------
# Steady scenario == the legacy offered_load_sweep stream
# ----------------------------------------------------------------------
def test_steady_replay_reproduces_offered_load_sweep_numbers():
    scenario = make_scenario("steady", scale=0.2, seed=0)
    # Reconstruct the exact stream offered_load_sweep would build for the
    # same tree / key seeds, rate and duration.
    source = scenario.sources[0]
    phase = scenario.phases[0]
    rate = phase.arrivals.rate_qps
    q = round(rate * phase.duration_s)
    parents = random_attachment_tree(source.nodes, seed=source.tree_seed)
    xs, ys = generate_random_queries(source.nodes, q, seed=source.key_seed)
    arrivals = np.arange(q, dtype=np.float64) / rate

    row = serve_query_stream(parents, xs, ys, arrivals, POLICY)
    report = replay(LCAQueryService(policy=POLICY), scenario, warm=False)

    assert report.queries_admitted == q == row["queries"]
    assert row["throughput_qps"] == float(f"{report.stats.throughput_qps:.4g}")
    assert row["latency_p50_us"] == round(report.stats.latency_p50_s * 1e6, 2)
    assert row["latency_p99_us"] == round(report.stats.latency_p99_s * 1e6, 2)
    assert row["batches"] == report.stats.batches_flushed
    assert row["mean_batch"] == round(report.stats.mean_batch_size, 1)
    assert row["cache_hit_rate"] == round(report.stats.cache_hit_rate, 3)


def test_steady_replay_stats_bit_identical_to_manual_stream():
    scenario = make_scenario("steady", scale=0.1, seed=0)
    source = scenario.sources[0]
    phase = scenario.phases[0]
    q = round(phase.arrivals.rate_qps * phase.duration_s)
    parents = random_attachment_tree(source.nodes, seed=source.tree_seed)
    xs, ys = generate_random_queries(source.nodes, q, seed=source.key_seed)
    arrivals = np.arange(q, dtype=np.float64) / phase.arrivals.rate_qps

    manual = LCAQueryService(policy=POLICY)
    manual.register_tree("steady", parents)
    tickets = manual.submit_many("steady", xs, ys, at=arrivals)
    manual.drain()

    replayed = LCAQueryService(policy=POLICY)
    report = replay(replayed, scenario, warm=False, check_answers=True)

    # The full snapshot — counts, histograms, latencies, cache accounting —
    # is equal, not merely close: the replay emitted the identical stream.
    assert report.stats == manual.stats()
    assert np.array_equal(replayed.latencies(np.arange(q)), manual.latencies(tickets))


# ----------------------------------------------------------------------
# Shedding: flash-crowd must shed on a bounded cluster, steady must not
# ----------------------------------------------------------------------
def test_flash_crowd_sheds_and_steady_does_not():
    flash_report = replay(bounded_cluster(), make_scenario("flash-crowd", scale=0.25))
    assert flash_report.queries_shed > 0
    by_name = {p.name: p for p in flash_report.phases}
    assert by_name["flash"].queries_shed > 0
    assert by_name["flash"].shed_rate > 0.3
    assert by_name["calm"].queries_shed == 0
    assert by_name["recovery"].queries_shed == 0
    # Admitted prefixes of partially shed blocks kept their tickets.
    assert flash_report.queries_admitted + flash_report.queries_shed == (
        flash_report.queries_offered
    )
    assert by_name["flash"].queries_admitted > 0

    steady_report = replay(bounded_cluster(), make_scenario("steady", scale=0.25))
    assert steady_report.queries_shed == 0
    assert steady_report.queries_admitted == steady_report.queries_offered


def test_unbounded_cluster_never_sheds_the_flash():
    cluster = ClusterService(4, policy=POLICY, router=make_router("round-robin"))
    report = replay(cluster, make_scenario("flash-crowd", scale=0.25))
    assert report.queries_shed == 0


# ----------------------------------------------------------------------
# Determinism and multi-source replay
# ----------------------------------------------------------------------
def test_replay_is_deterministic():
    scenario = make_scenario("multi-tenant", scale=0.25, seed=5)
    first = replay(bounded_cluster(), scenario)
    second = replay(bounded_cluster(), scenario)
    assert first.phases == second.phases
    assert first.queries_offered == second.queries_offered
    assert first.throughput_qps == second.throughput_qps
    assert first.latency_p99_s == second.latency_p99_s
    assert first.load_imbalance == second.load_imbalance


def test_multi_source_replay_on_single_service_verifies_answers():
    scenario = Scenario(
        name="two-tenants",
        sources=(
            TrafficSource("a", nodes=2_048, weight=0.7, tree_seed=1),
            TrafficSource("b", nodes=512, weight=0.3, tree_seed=2),
        ),
        phases=(Phase("p", PoissonArrivals(80_000.0), 0.05),),
        seed=9,
        mix_stride=16,
    )
    service = LCAQueryService(policy=POLICY)
    report = replay(service, scenario, check_answers=True)
    assert report.target_kind == "service"
    assert report.queries_shed == 0
    assert report.queries_admitted == report.queries_offered > 0
    # Both datasets actually saw traffic.
    assert set(service.datasets) == {"a", "b"}
    assert service.stats().queries_answered == report.queries_admitted


def test_replay_respects_preregistered_trees():
    parents = np.array([-1, 0, 0, 1, 1], dtype=np.int64)
    service = LCAQueryService(policy=POLICY)
    service.register_tree("tiny", parents)
    scenario = Scenario(
        name="prewired",
        sources=(TrafficSource("tiny", nodes=99),),  # nodes ignored: registered
        phases=(Phase("p", DeterministicArrivals(10_000.0), 0.02),),
    )
    report = replay(service, scenario, check_answers=True)
    assert report.queries_admitted == 200
    # Keys were sampled from the registered 5-node tree, not `nodes=99`.
    assert service.stats().queries_answered == 200


def test_replay_rejects_bad_window():
    with pytest.raises(ValueError, match="admission_window_s"):
        replay(
            LCAQueryService(),
            make_scenario("steady", scale=0.1),
            admission_window_s=0.0,
        )


# ----------------------------------------------------------------------
# The scenario_suite experiment
# ----------------------------------------------------------------------
def test_scenario_suite_rows_have_the_report_columns():
    rows = scenario_suite(
        ["steady", "flash-crowd"],
        policies=("least-outstanding",),
        scale=0.25,
        check_answers=True,
    )
    assert [r["scenario"] for r in rows] == ["steady", "flash-crowd"]
    for row in rows:
        for key in (
            "policy",
            "offered",
            "admitted",
            "shed_rate",
            "peak_phase_shed_rate",
            "throughput_qps",
            "latency_p50_us",
            "latency_p99_us",
            "load_imbalance",
        ):
            assert key in row
    steady_row, flash_row = rows
    assert steady_row["shed_rate"] == 0.0
    assert flash_row["shed_rate"] > 0.0
    assert flash_row["peak_phase_shed_rate"] >= flash_row["shed_rate"]
