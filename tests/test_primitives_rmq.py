"""Tests for range-minimum/maximum query structures."""

import numpy as np
import pytest

from repro.primitives import (
    SegmentTreeRMQ,
    SparseTableRMQ,
    build_rmq,
    range_minmax_over_subtrees,
)

BACKENDS = [SegmentTreeRMQ, SparseTableRMQ]


def brute_force(values, lo, hi, op):
    fn = np.min if op == "min" else np.max
    return np.asarray([
        fn(values[a:b + 1]) if a <= b else None for a, b in zip(lo, hi)
    ])


class TestCorrectness:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op", ["min", "max"])
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 17, 100, 257])
    def test_random_queries(self, backend, op, n):
        rng = np.random.default_rng(n)
        values = rng.integers(-1000, 1000, size=n)
        rmq = backend(values, op)
        q = 200
        lo = rng.integers(0, n, size=q)
        hi = rng.integers(0, n, size=q)
        lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
        expected = brute_force(values, lo, hi, op)
        got = rmq.query(lo, hi)
        assert np.array_equal(got, expected.astype(got.dtype))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_range(self, backend):
        values = np.asarray([5, -2, 9, 0])
        rmq = backend(values, "min")
        assert rmq.query(np.asarray([0]), np.asarray([3]))[0] == -2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_element_ranges(self, backend):
        values = np.asarray([3, 1, 4, 1, 5])
        rmq = backend(values, "max")
        idx = np.arange(5)
        assert np.array_equal(rmq.query(idx, idx), values)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_range_returns_identity(self, backend):
        values = np.asarray([3, 1, 4])
        rmq = backend(values, "min")
        out = rmq.query(np.asarray([2]), np.asarray([1]))
        assert out[0] == rmq.identity

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scalar_query(self, backend):
        rmq = backend(np.asarray([7, 3, 9]), "min")
        assert rmq.query(0, 2) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_float_values(self, backend):
        values = np.asarray([0.5, -1.5, 2.25])
        rmq = backend(values, "min")
        assert rmq.query(0, 2) == -1.5


class TestValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_input_rejected(self, backend):
        with pytest.raises(ValueError):
            backend(np.asarray([], dtype=np.int64), "min")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bad_op_rejected(self, backend):
        with pytest.raises(ValueError):
            backend(np.asarray([1]), "sum")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_out_of_bounds_query_rejected(self, backend):
        rmq = backend(np.asarray([1, 2, 3]), "min")
        with pytest.raises(IndexError):
            rmq.query(np.asarray([0]), np.asarray([3]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mismatched_query_shapes_rejected(self, backend):
        rmq = backend(np.asarray([1, 2, 3]), "min")
        with pytest.raises(ValueError):
            rmq.query(np.asarray([0, 1]), np.asarray([1]))


class TestBuildRmq:
    def test_backend_dispatch(self):
        values = np.asarray([1, 2, 3])
        assert isinstance(build_rmq(values, backend="segment-tree"), SegmentTreeRMQ)
        assert isinstance(build_rmq(values, backend="sparse-table"), SparseTableRMQ)
        assert isinstance(build_rmq(values, backend="segtree"), SegmentTreeRMQ)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_rmq(np.asarray([1]), backend="fenwick")


class TestSubtreeHelper:
    def test_range_minmax_over_subtrees(self):
        values = np.asarray([4, 7, 1, 9, 3])
        starts = np.asarray([0, 2])
        ends = np.asarray([4, 3])
        lows, highs = range_minmax_over_subtrees(values, starts, ends)
        assert lows.tolist() == [1, 1]
        assert highs.tolist() == [9, 9]


class TestCostAccounting:
    def test_build_batches_small_levels_into_one_launch(self, gpu_ctx):
        # All levels of a 1024-leaf tree are below the small-level threshold,
        # so the whole build is a single cleanup kernel.
        SegmentTreeRMQ(np.arange(1024), "min", ctx=gpu_ctx)
        assert gpu_ctx.total_launches == 1

    def test_build_charges_one_launch_per_large_level(self):
        from repro.device import ExecutionContext, GTX980

        ctx = ExecutionContext(GTX980)
        SegmentTreeRMQ(np.arange(1 << 14), "min", ctx=ctx)
        # Levels of size 8192 and 4096 get their own launches; the rest share one.
        assert ctx.total_launches == 3

    def test_sparse_table_uses_more_memory_but_single_query_round(self, gpu_ctx):
        values = np.arange(1 << 12)
        table = SparseTableRMQ(values, "min")
        tree = SegmentTreeRMQ(values, "min")
        assert table.table.nbytes > tree.tree.nbytes
        table.query(np.asarray([0]), np.asarray([100]), ctx=gpu_ctx)
        assert gpu_ctx.total_launches == 1
