"""Tests for scan primitives."""

import numpy as np
import pytest

from repro.primitives import (
    add_scan_offsets,
    exclusive_scan,
    inclusive_scan,
    segmented_inclusive_scan,
)


class TestInclusiveScan:
    def test_simple(self):
        out = inclusive_scan(np.asarray([1, 2, 3, 4]))
        assert out.tolist() == [1, 3, 6, 10]

    def test_matches_numpy_cumsum(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-50, 50, size=1000)
        assert np.array_equal(inclusive_scan(values), np.cumsum(values))

    def test_empty(self):
        assert inclusive_scan(np.asarray([], dtype=np.int64)).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            inclusive_scan(np.zeros((3, 3)))

    def test_charges_cost(self, gpu_ctx):
        inclusive_scan(np.arange(1000), ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0
        assert gpu_ctx.total_launches == 2


class TestExclusiveScan:
    def test_simple(self):
        out = exclusive_scan(np.asarray([1, 2, 3, 4]))
        assert out.tolist() == [0, 1, 3, 6]

    def test_relationship_with_inclusive(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10, size=500)
        inc = inclusive_scan(values)
        exc = exclusive_scan(values)
        assert np.array_equal(exc[1:], inc[:-1])
        assert exc[0] == 0

    def test_empty(self):
        assert exclusive_scan(np.asarray([], dtype=np.int64)).size == 0

    def test_single_element(self):
        assert exclusive_scan(np.asarray([7])).tolist() == [0]

    def test_float_dtype_preserved(self):
        out = exclusive_scan(np.asarray([1.5, 2.5]))
        assert out.dtype == np.float64
        assert out.tolist() == [0.0, 1.5]


class TestSegmentedScan:
    def test_restarts_at_boundaries(self):
        values = np.asarray([1, 1, 1, 1, 1, 1])
        segments = np.asarray([0, 0, 1, 1, 1, 2])
        out = segmented_inclusive_scan(values, segments)
        assert out.tolist() == [1, 2, 1, 2, 3, 1]

    def test_negative_values(self):
        # Depth computation on the Euler tour uses +1/-1 weights.
        values = np.asarray([1, -1, 1, 1, -1, -1])
        segments = np.asarray([0, 0, 0, 1, 1, 1])
        out = segmented_inclusive_scan(values, segments)
        assert out.tolist() == [1, 0, 1, 1, 0, -1]

    def test_single_segment_equals_plain_scan(self):
        rng = np.random.default_rng(2)
        values = rng.integers(-5, 5, size=200)
        segments = np.zeros(200, dtype=np.int64)
        assert np.array_equal(segmented_inclusive_scan(values, segments), np.cumsum(values))

    def test_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert segmented_inclusive_scan(empty, empty).size == 0

    def test_decreasing_segments_rejected(self):
        with pytest.raises(ValueError):
            segmented_inclusive_scan(np.asarray([1, 2]), np.asarray([1, 0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segmented_inclusive_scan(np.asarray([1, 2]), np.asarray([0]))


class TestAddScanOffsets:
    def test_with_initial(self):
        out = add_scan_offsets(np.asarray([2, 3, 4]), initial=10)
        assert out.tolist() == [10, 12, 15]

    def test_without_initial_is_exclusive_scan(self):
        values = np.asarray([5, 1, 2])
        assert np.array_equal(add_scan_offsets(values), exclusive_scan(values))
