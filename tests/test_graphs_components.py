"""Tests for connected components and spanning forests."""

import numpy as np

from repro.graphs import (
    EdgeList,
    connected_components,
    count_components,
    is_connected,
    is_tree,
    largest_connected_component,
    spanning_forest,
)
from repro.graphs.generators import cycle_graph, path_graph, rmat_graph, road_graph

from .conftest import random_connected_graph


def networkx_components(edges):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(edges.num_nodes))
    g.add_edges_from((int(a), int(b)) for a, b in edges.edges())
    return list(nx.connected_components(g))


class TestConnectedComponents:
    def test_two_components(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3)], n=5)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])
        assert count_components(g) == 3

    def test_connected_graph_single_label(self):
        g = random_connected_graph(200, 100, seed=0)
        labels = connected_components(g)
        assert np.unique(labels).size == 1
        assert is_connected(g)

    def test_matches_networkx_on_random_graphs(self):
        rng = np.random.default_rng(1)
        for trial in range(10):
            n = int(rng.integers(5, 80))
            m = int(rng.integers(0, 2 * n))
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            g = EdgeList(u, v, n)
            labels = connected_components(g)
            nx_comps = networkx_components(g)
            assert np.unique(labels).size == len(nx_comps)
            for comp in nx_comps:
                comp_labels = {int(labels[x]) for x in comp}
                assert len(comp_labels) == 1

    def test_empty_graph(self):
        g = EdgeList.from_pairs([], n=0)
        assert connected_components(g).size == 0
        assert count_components(g) == 0

    def test_self_loops_ignored(self):
        g = EdgeList.from_pairs([(0, 0), (1, 2)], n=3)
        labels = connected_components(g)
        assert labels[1] == labels[2] != labels[0]


class TestSpanningForest:
    def test_tree_edge_count_invariant(self):
        for seed in range(6):
            g = random_connected_graph(100, 80, seed=seed)
            forest = spanning_forest(g)
            assert forest.num_components == 1
            assert int(forest.tree_edge_mask.sum()) == 99

    def test_selected_edges_form_spanning_tree(self):
        g = random_connected_graph(150, 200, seed=10)
        forest = spanning_forest(g)
        tree = EdgeList(g.u[forest.tree_edge_mask], g.v[forest.tree_edge_mask], g.num_nodes)
        assert is_tree(tree)

    def test_disconnected_graph_gives_forest(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (3, 4)], n=6)
        forest = spanning_forest(g)
        assert forest.num_components == 3  # {0,1,2}, {3,4}, {5}
        assert int(forest.tree_edge_mask.sum()) == 3
        assert forest.tree_edges.tolist() == sorted(forest.tree_edges.tolist())

    def test_parallel_edges_never_both_selected(self):
        g = EdgeList.from_pairs([(0, 1), (0, 1), (1, 2), (2, 0)], n=3)
        forest = spanning_forest(g)
        assert int(forest.tree_edge_mask.sum()) == 2
        tree = EdgeList(g.u[forest.tree_edge_mask], g.v[forest.tree_edge_mask], 3)
        assert is_tree(tree)

    def test_self_loops_never_selected(self):
        g = EdgeList.from_pairs([(0, 0), (0, 1)], n=2)
        forest = spanning_forest(g)
        assert forest.tree_edge_mask.tolist() == [False, True]

    def test_structured_graphs(self):
        for g in (rmat_graph(8, 8, seed=1), road_graph(15, 20, seed=1),
                  path_graph(50), cycle_graph(50)):
            forest = spanning_forest(g)
            labels = connected_components(g)
            assert forest.num_components == np.unique(labels).size
            assert int(forest.tree_edge_mask.sum()) == g.num_nodes - forest.num_components

    def test_empty_and_edgeless(self):
        assert spanning_forest(EdgeList.from_pairs([], n=0)).num_components == 0
        assert spanning_forest(EdgeList.from_pairs([], n=4)).num_components == 4


class TestLargestComponent:
    def test_extracts_biggest(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (3, 4)], n=6)
        sub, old_ids = largest_connected_component(g)
        assert sub.num_nodes == 3
        assert sorted(old_ids.tolist()) == [0, 1, 2]
        assert sub.num_edges == 2

    def test_connected_graph_unchanged_in_size(self):
        g = random_connected_graph(50, 20, seed=2)
        sub, old_ids = largest_connected_component(g)
        assert sub.num_nodes == 50
        assert sub.num_edges == g.num_edges
        assert old_ids.tolist() == list(range(50))

    def test_result_is_connected(self):
        g = rmat_graph(9, 4, seed=5)
        sub, _ = largest_connected_component(g)
        assert is_connected(sub)
