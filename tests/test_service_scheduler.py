"""Scheduler tests: size- vs wait-triggered flushes on the simulated clock."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import BatchPolicy, MicroBatchScheduler, SimulatedClock


def submit_all(scheduler, queries, **kwargs):
    """Submit (ticket, x, y, at) tuples, collecting every flushed batch."""
    flushed = []
    for ticket, x, y, at in queries:
        flushed.extend(scheduler.submit(ticket, x, y, at=at))
    return flushed


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------

def test_clock_is_monotone():
    clock = SimulatedClock()
    assert clock.now == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.advance_to(1.5) == 1.5  # advancing to "now" is a no-op
    with pytest.raises(ServiceError):
        clock.advance_to(1.0)
    with pytest.raises(ServiceError):
        clock.advance(-0.1)


def test_policy_validation():
    with pytest.raises(ServiceError):
        BatchPolicy(max_batch_size=0)
    with pytest.raises(ServiceError):
        BatchPolicy(max_wait_s=-1e-3)


# ----------------------------------------------------------------------
# Size trigger
# ----------------------------------------------------------------------

def test_size_trigger_flushes_exactly_at_max_batch():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=4, max_wait_s=1.0))
    batches = submit_all(sched, [(i, i, i + 1, 0.0) for i in range(4)])
    assert len(batches) == 1
    (batch,) = batches
    assert batch.trigger == "size"
    assert batch.size == 4
    assert batch.flush_s == 0.0
    assert batch.tickets.tolist() == [0, 1, 2, 3]
    assert sched.pending_count == 0
    # Queries flushed by size at their own arrival instant waited zero time.
    assert np.all(batch.queue_wait_s == 0.0)


def test_no_flush_below_max_batch_before_deadline():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=4, max_wait_s=1.0))
    batches = submit_all(sched, [(i, i, i, 0.0) for i in range(3)])
    assert batches == []
    assert sched.pending_count == 3
    assert sched.next_deadline == 1.0


# ----------------------------------------------------------------------
# Wait trigger
# ----------------------------------------------------------------------

def test_wait_trigger_fires_at_exact_deadline():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=1e-3))
    submit_all(sched, [(0, 1, 2, 0.0), (1, 3, 4, 4e-4)])
    assert sched.advance_to(9e-4) == []  # before the oldest deadline
    batches = sched.advance_to(5e-3)
    assert len(batches) == 1
    (batch,) = batches
    assert batch.trigger == "wait"
    # Flushed at the deadline itself, not at the (later) observation time.
    assert batch.flush_s == 1e-3
    assert batch.size == 2
    assert batch.queue_wait_s.tolist() == pytest.approx([1e-3, 6e-4])


def test_submission_fires_expired_deadlines_of_older_queries():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=1e-3))
    batches = submit_all(sched, [(0, 1, 2, 0.0), (1, 3, 4, 2e-3)])
    # The second arrival advanced time past the first query's deadline, so
    # the first query flushed alone — it never shares a batch with a query
    # that arrived after its latency budget expired.
    assert len(batches) == 1
    assert batches[0].tickets.tolist() == [0]
    assert batches[0].flush_s == 1e-3
    assert sched.pending_count == 1


def test_advance_through_multiple_deadlines_yields_multiple_batches():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=1e-3))
    batches = submit_all(sched, [(0, 1, 2, 0.0), (1, 3, 4, 2e-3)])
    batches.extend(sched.advance_to(1.0))
    assert [b.flush_s for b in batches] == [1e-3, 3e-3]
    assert [b.trigger for b in batches] == ["wait", "wait"]


def test_wait_flush_respects_max_batch_size():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=2, max_wait_s=1e-3))
    # 5 queries at t=0 with max batch 2: two flush immediately by size, two
    # more by size, and the straggler flushes at the shared deadline.
    batches = submit_all(sched, [(i, i, i, 0.0) for i in range(5)])
    assert [b.trigger for b in batches] == ["size", "size"]
    batches = sched.advance_to(1e-3)
    assert [(b.trigger, b.size, b.flush_s) for b in batches] == [("wait", 1, 1e-3)]


def test_zero_max_wait_coalesces_same_instant_arrivals():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=0.0))
    # Three queries at the same instant join one batch (arrival exactly at
    # the pending deadline does not flush); the batch goes out as soon as
    # time is observed at or past that instant.
    flushed = submit_all(sched, [(i, i, i, 2.0) for i in range(3)])
    assert flushed == []
    batches = sched.advance_to(2.0)
    assert len(batches) == 1
    assert batches[0].size == 3
    assert batches[0].queue_wait_s.tolist() == [0.0, 0.0, 0.0]


def test_arrival_exactly_at_deadline_joins_the_batch():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=1e-3))
    sched.submit(0, 1, 2, at=0.0)
    assert sched.submit(1, 3, 4, at=1e-3) == []  # joins, doesn't orphan
    (batch,) = sched.advance_to(1e-3)
    assert batch.tickets.tolist() == [0, 1]
    assert batch.flush_s == 1e-3


def test_zero_max_wait_flushes_as_soon_as_time_moves():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=100, max_wait_s=0.0))
    sched.submit(0, 1, 2, at=0.0)
    batches = sched.advance_to(0.0)
    assert len(batches) == 1
    assert batches[0].flush_s == 0.0
    assert batches[0].queue_wait_s.tolist() == [0.0]


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------

def test_drain_flushes_everything_in_policy_sized_chunks():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=2, max_wait_s=10.0))
    submit_all(sched, [(0, 0, 0, 0.0)])
    sched.submit(1, 1, 1)  # at= omitted: arrives "now"
    sched.submit(2, 2, 2)
    # 3 pending (size trigger fired once at 2... no: max_batch_size=2 means the
    # second submission flushed [0, 1]); only ticket 2 is left.
    assert sched.pending_count == 1
    batches = sched.drain()
    assert [b.trigger for b in batches] == ["drain"]
    assert batches[0].tickets.tolist() == [2]
    assert sched.drain() == []


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_identical_traces_produce_identical_batches():
    def run():
        sched = MicroBatchScheduler(BatchPolicy(max_batch_size=8, max_wait_s=5e-4))
        rng = np.random.default_rng(42)
        arrivals = np.cumsum(rng.exponential(2e-4, size=50))
        out = []
        for i, t in enumerate(arrivals):
            out.extend(sched.submit(i, i, i + 1, at=float(t)))
        out.extend(sched.drain())
        return [(b.trigger, b.flush_s, b.tickets.tolist()) for b in out]

    assert run() == run()


def test_submitting_into_the_past_is_rejected():
    sched = MicroBatchScheduler(BatchPolicy())
    sched.submit(0, 1, 2, at=1.0)
    with pytest.raises(ServiceError):
        sched.submit(1, 3, 4, at=0.5)
