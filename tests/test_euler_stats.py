"""Tests for node statistics derived from the Euler tour."""

import numpy as np
import pytest

from repro.euler import (
    build_euler_tour_from_parents,
    compute_tree_stats,
    tree_statistics_from_parents,
)
from repro.graphs import (
    depths_from_parents,
    subtree_sizes_from_parents,
)

from .conftest import TREE_KINDS, make_tree


class TestAgainstSequentialOracles:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 333])
    def test_all_statistics(self, kind, n):
        parents = make_tree(kind, n, seed=n + 17)
        stats = tree_statistics_from_parents(parents)
        assert np.array_equal(stats.parent, parents)
        assert np.array_equal(stats.depth, depths_from_parents(parents))
        assert np.array_equal(stats.subtree_size, subtree_sizes_from_parents(parents))

    @pytest.mark.parametrize("n", [1, 2, 10, 100])
    def test_preorder_is_valid(self, n):
        parents = make_tree("shallow", n, seed=n)
        stats = tree_statistics_from_parents(parents)
        # 1-based permutation with the root first.
        assert sorted(stats.preorder.tolist()) == list(range(1, n + 1))
        assert stats.preorder[stats.root] == 1
        # Children have larger preorder numbers than their parents.
        for v in range(n):
            if v != stats.root:
                assert stats.preorder[v] > stats.preorder[parents[v]]

    def test_preorder_subtree_intervals_nest(self):
        parents = make_tree("shallow", 200, seed=5)
        stats = tree_statistics_from_parents(parents)
        start, end = stats.preorder_interval()
        for v in range(200):
            p = parents[v]
            if p < 0:
                continue
            # child interval contained in parent interval
            assert start[p] <= start[v] <= end[v] <= end[p]

    def test_subtree_interval_size_matches(self):
        parents = make_tree("scale-free", 150, seed=6)
        stats = tree_statistics_from_parents(parents)
        start, end = stats.preorder_interval()
        assert np.array_equal(end - start + 1, stats.subtree_size)


class TestFigure1:
    def test_exact_values(self, figure1_parents):
        stats = tree_statistics_from_parents(figure1_parents)
        assert stats.root == 0
        assert stats.depth.tolist() == [0, 2, 1, 1, 1, 2]
        assert stats.subtree_size.tolist() == [6, 1, 3, 1, 1, 1]
        assert stats.preorder[0] == 1
        # node 2's subtree {1, 2, 5} occupies a contiguous preorder interval
        pre = stats.preorder
        interval = sorted([pre[1], pre[2], pre[5]])
        assert interval == list(range(pre[2], pre[2] + 3))


class TestRootVariants:
    def test_stats_respect_chosen_root(self):
        from repro.graphs import parents_to_edgelist, edgelist_to_parents
        from repro.euler import build_euler_tour

        base = make_tree("shallow", 80, seed=9)
        edges = parents_to_edgelist(base)
        root = 42
        tour = build_euler_tour(edges, root)
        stats = compute_tree_stats(tour)
        expected_parents = edgelist_to_parents(edges, root)
        assert np.array_equal(stats.parent, expected_parents)
        assert np.array_equal(stats.depth, depths_from_parents(expected_parents))

    def test_single_node(self):
        stats = tree_statistics_from_parents(np.asarray([-1]))
        assert stats.parent.tolist() == [-1]
        assert stats.depth.tolist() == [0]
        assert stats.subtree_size.tolist() == [1]
        assert stats.preorder.tolist() == [1]


class TestCostAccounting:
    def test_charged_to_context(self, gpu_ctx):
        parents = make_tree("shallow", 500, seed=1)
        tree_statistics_from_parents(parents, ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0
        assert gpu_ctx.total_launches > 5

    def test_scan_based_stats_cheaper_than_tour_construction(self):
        """The §2.2 optimization: after the single list ranking, node
        statistics are plain array scans, much cheaper than the tour build."""
        from repro.device import ExecutionContext, GTX980

        parents = make_tree("shallow", 20_000, seed=2)
        tour_ctx = ExecutionContext(GTX980)
        tour = build_euler_tour_from_parents(parents, ctx=tour_ctx)
        stats_ctx = ExecutionContext(GTX980)
        compute_tree_stats(tour, ctx=stats_ctx)
        assert stats_ctx.elapsed < tour_ctx.elapsed
