"""Tests for the synthetic dataset generators."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    average_depth,
    depths_from_parents,
    is_tree,
    parents_to_edgelist,
    validate_parents,
)
from repro.graphs.generators import (
    INFINITE_GRASP,
    barabasi_albert_tree,
    citation_graph,
    collaboration_graph,
    cycle_graph,
    expected_average_depth,
    grasp_for_target_depth,
    grasp_tree,
    grid_graph,
    kron_g500,
    make_tree,
    path_graph,
    preferential_attachment_graph,
    random_attachment_tree,
    rmat_graph,
    road_graph,
    road_graph_with_target_size,
    social_graph,
    web_graph,
)


class TestRandomTrees:
    @pytest.mark.parametrize("n", [1, 2, 5, 100, 1000])
    def test_random_attachment_is_valid_tree(self, n):
        parents = random_attachment_tree(n, seed=n)
        validate_parents(parents)

    def test_shallow_tree_depth_close_to_log(self):
        n = 20_000
        parents = random_attachment_tree(n, seed=1)
        depth = average_depth(parents)
        assert depth < 3 * math.log(n)

    def test_grasp_one_is_a_path(self):
        parents = grasp_tree(200, 1, seed=0, relabel=False)
        assert depths_from_parents(parents).max() == 199

    def test_grasp_controls_depth(self):
        n = 20_000
        shallow = average_depth(grasp_tree(n, INFINITE_GRASP, seed=2))
        deep = average_depth(grasp_tree(n, 20, seed=2))
        assert deep > 10 * shallow
        # The expected depth formula should be in the right ballpark (±3x).
        assert deep == pytest.approx(expected_average_depth(n, 20), rel=2.0)

    def test_grasp_infinite_matches_shallow_distribution(self):
        a = grasp_tree(500, INFINITE_GRASP, seed=3, relabel=False)
        b = random_attachment_tree(500, seed=3, relabel=False)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("n", [1, 2, 10, 500])
    def test_barabasi_albert_is_valid_tree(self, n):
        validate_parents(barabasi_albert_tree(n, seed=n))

    def test_barabasi_albert_has_skewed_degrees(self):
        parents = barabasi_albert_tree(5000, seed=4, relabel=False)
        edges = parents_to_edgelist(parents)
        degrees = edges.degrees()
        assert degrees.max() > 20  # hubs exist
        assert (degrees == 1).sum() > 1000  # many leaves

    def test_relabel_flag_changes_ids_not_structure(self):
        raw = random_attachment_tree(300, seed=5, relabel=False)
        shuffled = random_attachment_tree(300, seed=5, relabel=True)
        assert sorted(depths_from_parents(raw).tolist()) == sorted(
            depths_from_parents(shuffled).tolist()
        )

    def test_deterministic_given_seed(self):
        assert np.array_equal(random_attachment_tree(100, seed=9),
                              random_attachment_tree(100, seed=9))

    def test_make_tree_dispatch(self):
        validate_parents(make_tree("shallow", 50))
        validate_parents(make_tree("deep", 50, grasp=4))
        validate_parents(make_tree("scale-free", 50))
        with pytest.raises(ConfigurationError):
            make_tree("deep", 50)
        with pytest.raises(ConfigurationError):
            make_tree("binary", 50)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            random_attachment_tree(0)
        with pytest.raises(ConfigurationError):
            grasp_tree(10, 0)
        with pytest.raises(ConfigurationError):
            barabasi_albert_tree(-5)

    def test_grasp_for_target_depth(self):
        n = 10_000
        assert grasp_for_target_depth(n, 1.0) == INFINITE_GRASP
        gamma = grasp_for_target_depth(n, 100.0)
        assert gamma != INFINITE_GRASP
        assert expected_average_depth(n, gamma) == pytest.approx(100.0, rel=0.2)


class TestKronecker:
    def test_basic_shape(self):
        g = rmat_graph(8, 8, seed=0)
        assert g.num_nodes == 256
        assert 0 < g.num_edges <= 256 * 8

    def test_no_self_loops_or_duplicates_after_dedup(self):
        g = rmat_graph(7, 16, seed=1)
        assert not g.has_self_loops()
        assert g.deduplicated().num_edges == g.num_edges

    def test_skewed_degree_distribution(self):
        g = rmat_graph(10, 16, seed=2)
        degrees = g.degrees()
        assert degrees.max() > 10 * max(1.0, float(np.median(degrees[degrees > 0])))

    def test_kron_g500_wrapper(self):
        g = kron_g500(7, edge_factor=4, seed=3)
        assert g.num_nodes == 128

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            rmat_graph(0)
        with pytest.raises(ConfigurationError):
            rmat_graph(5, edge_factor=0)
        with pytest.raises(ConfigurationError):
            rmat_graph(5, probs=(0.5, 0.5, 0.5, 0.5))

    def test_deterministic_given_seed(self):
        a = rmat_graph(6, 4, seed=11)
        b = rmat_graph(6, 4, seed=11)
        assert np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v)


class TestRoadGraphs:
    def test_grid_graph_structure(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_path_and_cycle(self):
        assert is_tree(path_graph(10))
        c = cycle_graph(10)
        assert c.num_edges == 10
        with pytest.raises(ConfigurationError):
            cycle_graph(2)
        with pytest.raises(ConfigurationError):
            path_graph(0)

    def test_road_graph_is_connected_and_sparse(self):
        from repro.graphs import is_connected

        g = road_graph(20, 25, removal_fraction=0.6, subdivide_fraction=0.2, seed=1)
        assert is_connected(g)
        assert g.num_edges < 2 * g.num_nodes

    def test_road_graph_without_removal_is_the_grid(self):
        g = road_graph(5, 6, removal_fraction=0.0, subdivide_fraction=0.0,
                       seed=0, permute=False)
        assert g.num_edges == grid_graph(5, 6).num_edges

    def test_road_graph_target_size(self):
        g, (rows, cols) = road_graph_with_target_size(900, seed=2)
        assert abs(rows * cols - 900) < 300
        assert g.num_nodes >= rows * cols  # subdivision can only add nodes

    def test_dead_ends_make_the_graph_bridge_rich(self):
        """Real road networks owe most of their bridges to dead-end streets;
        the deadend_fraction knob reproduces that regime (paper Table 1)."""
        from repro.bridges import find_bridges_dfs
        from repro.graphs import is_connected

        g = road_graph(40, 40, removal_fraction=0.45, subdivide_fraction=0.1,
                       deadend_fraction=0.5, seed=4)
        assert is_connected(g)
        bridges = find_bridges_dfs(g).num_bridges
        assert bridges > 0.25 * g.num_nodes

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            road_graph(10, 10, removal_fraction=1.5)
        with pytest.raises(ConfigurationError):
            road_graph(10, 10, subdivide_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            road_graph(10, 10, deadend_fraction=1.5)
        with pytest.raises(ConfigurationError):
            grid_graph(0, 5)


class TestSocialGraphs:
    @pytest.mark.parametrize("maker", [web_graph, citation_graph, social_graph,
                                       collaboration_graph])
    def test_families_produce_simple_graphs(self, maker):
        g = maker(500, seed=1)
        assert g.num_nodes == 500
        assert not g.has_self_loops()
        assert g.deduplicated().num_edges == g.num_edges

    def test_density_ordering(self):
        n = 1000
        assert collaboration_graph(n, seed=2).num_edges > social_graph(n, seed=2).num_edges
        assert social_graph(n, seed=2).num_edges > web_graph(n, seed=2).num_edges

    def test_power_law_ish_degrees(self):
        g = social_graph(2000, seed=3)
        degrees = g.degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment_graph(2)
        with pytest.raises(ConfigurationError):
            preferential_attachment_graph(100, edges_per_node=0)
        with pytest.raises(ConfigurationError):
            preferential_attachment_graph(100, pendant_fraction=2.0)
