"""Tests for parent-array tree utilities."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError, NotATreeError
from repro.graphs import (
    EdgeList,
    average_depth,
    brute_force_lca,
    depths_from_parents,
    edgelist_to_parents,
    generate_random_queries,
    parents_to_edgelist,
    random_relabel_tree,
    relabel_tree,
    subtree_sizes_from_parents,
    tree_height,
    tree_root,
    validate_parents,
)


class TestValidation:
    def test_valid_tree(self, figure1_parents):
        assert validate_parents(figure1_parents) == 0

    def test_single_node(self):
        assert validate_parents(np.asarray([-1])) == 0

    def test_no_root_rejected(self):
        with pytest.raises(NotATreeError):
            validate_parents(np.asarray([1, 0]))

    def test_two_roots_rejected(self):
        with pytest.raises(NotATreeError):
            validate_parents(np.asarray([-1, -1]))

    def test_cycle_rejected(self):
        with pytest.raises(NotATreeError):
            validate_parents(np.asarray([-1, 2, 3, 1]))

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(NotATreeError):
            validate_parents(np.asarray([-1, 9]))

    def test_empty_rejected(self):
        with pytest.raises(NotATreeError):
            validate_parents(np.asarray([], dtype=np.int64))

    def test_tree_root(self, figure1_parents):
        assert tree_root(figure1_parents) == 0


class TestConversions:
    def test_parents_to_edgelist(self, figure1_parents):
        edges = parents_to_edgelist(figure1_parents)
        assert edges.num_nodes == 6
        assert edges.num_edges == 5
        undirected = {(min(a, b), max(a, b)) for a, b in edges.edges()}
        assert undirected == {(0, 2), (0, 3), (0, 4), (1, 2), (2, 5)}

    def test_edgelist_to_parents_roundtrip(self, figure1_parents):
        edges = parents_to_edgelist(figure1_parents)
        back = edgelist_to_parents(edges, root=0)
        assert np.array_equal(back, figure1_parents)

    def test_edgelist_to_parents_other_root(self, figure1_parents):
        edges = parents_to_edgelist(figure1_parents)
        reparented = edgelist_to_parents(edges, root=5)
        assert reparented[5] == -1
        assert validate_parents(reparented) == 5

    def test_edgelist_to_parents_wrong_edge_count_rejected(self):
        edges = EdgeList.from_pairs([(0, 1), (1, 2), (0, 2)], n=3)
        with pytest.raises(NotATreeError):
            edgelist_to_parents(edges)

    def test_edgelist_to_parents_disconnected_rejected(self):
        edges = EdgeList.from_pairs([(0, 1), (0, 1)], n=3)
        with pytest.raises(NotATreeError):
            edgelist_to_parents(edges)

    def test_edgelist_to_parents_bad_root_rejected(self):
        edges = EdgeList.from_pairs([(0, 1)], n=2)
        with pytest.raises(InvalidGraphError):
            edgelist_to_parents(edges, root=7)


class TestStatistics:
    def test_depths_figure1(self, figure1_parents):
        assert depths_from_parents(figure1_parents).tolist() == [0, 2, 1, 1, 1, 2]

    def test_sizes_figure1(self, figure1_parents):
        assert subtree_sizes_from_parents(figure1_parents).tolist() == [6, 1, 3, 1, 1, 1]

    def test_path_depths(self):
        parents = np.asarray([-1, 0, 1, 2])
        assert depths_from_parents(parents).tolist() == [0, 1, 2, 3]
        assert tree_height(parents) == 3
        assert average_depth(parents) == pytest.approx(1.5)

    def test_star_sizes(self):
        parents = np.asarray([-1, 0, 0, 0])
        assert subtree_sizes_from_parents(parents).tolist() == [4, 1, 1, 1]


class TestRelabeling:
    def test_relabel_preserves_structure(self, figure1_parents):
        perm = np.asarray([3, 4, 5, 0, 1, 2])
        relabeled = relabel_tree(figure1_parents, perm)
        assert validate_parents(relabeled) == 3
        # depths are preserved under relabeling (as a multiset and pointwise
        # through the permutation)
        orig = depths_from_parents(figure1_parents)
        new = depths_from_parents(relabeled)
        assert np.array_equal(new[perm], orig)

    def test_random_relabel_is_bijection(self, figure1_parents):
        relabeled, perm = random_relabel_tree(figure1_parents, seed=3)
        assert sorted(perm.tolist()) == list(range(6))
        validate_parents(relabeled)

    def test_relabel_requires_bijection(self, figure1_parents):
        with pytest.raises(InvalidGraphError):
            relabel_tree(figure1_parents, np.zeros(6, dtype=np.int64))


class TestBruteForceLCA:
    def test_figure1_queries(self, figure1_parents):
        assert brute_force_lca(figure1_parents, 1, 5) == 2
        assert brute_force_lca(figure1_parents, 1, 3) == 0
        assert brute_force_lca(figure1_parents, 3, 4) == 0
        assert brute_force_lca(figure1_parents, 2, 5) == 2
        assert brute_force_lca(figure1_parents, 0, 5) == 0
        assert brute_force_lca(figure1_parents, 4, 4) == 4

    def test_out_of_range_rejected(self, figure1_parents):
        with pytest.raises(InvalidGraphError):
            brute_force_lca(figure1_parents, 0, 99)


class TestQueryGeneration:
    def test_shapes_and_ranges(self):
        xs, ys = generate_random_queries(100, 500, seed=1)
        assert xs.shape == ys.shape == (500,)
        assert xs.min() >= 0 and xs.max() < 100
        assert ys.min() >= 0 and ys.max() < 100

    def test_deterministic_given_seed(self):
        a = generate_random_queries(50, 10, seed=7)
        b = generate_random_queries(50, 10, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_zero_nodes_rejected(self):
        with pytest.raises(InvalidGraphError):
            generate_random_queries(0, 10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_random_queries(10, -1)
