"""Tests for the LCA oracles and the online batched-query driver."""

import numpy as np
import pytest

from repro.device import GTX980, XEON_X5650_SINGLE
from repro.errors import InvalidQueryError
from repro.graphs import generate_random_queries
from repro.lca import (
    BinaryLiftingLCA,
    InlabelLCA,
    SequentialInlabelLCA,
    brute_force_lca_batch,
    run_batched_queries,
)

from .conftest import TREE_KINDS, make_tree


class TestBinaryLifting:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 90])
    def test_against_brute_force(self, kind, n):
        parents = make_tree(kind, n, seed=n + 71)
        xs, ys = generate_random_queries(n, 60, seed=n)
        expected = brute_force_lca_batch(parents, xs, ys)
        assert np.array_equal(BinaryLiftingLCA(parents).query(xs, ys), expected)

    def test_out_of_range_rejected(self, figure1_parents):
        with pytest.raises(InvalidQueryError):
            BinaryLiftingLCA(figure1_parents).query(np.asarray([9]), np.asarray([0]))

    def test_empty_batch(self, figure1_parents):
        oracle = BinaryLiftingLCA(figure1_parents)
        assert oracle.query(np.asarray([], dtype=np.int64),
                            np.asarray([], dtype=np.int64)).size == 0


class TestBatchedQueries:
    def test_answers_identical_across_batch_sizes(self):
        n = 2000
        parents = make_tree("shallow", n, seed=80)
        xs, ys = generate_random_queries(n, 1000, seed=81)
        algo = InlabelLCA(parents)
        full = run_batched_queries(algo, xs, ys, 1000, GTX980)
        small = run_batched_queries(algo, xs, ys, 37, GTX980)
        assert np.array_equal(full.answers, small.answers)
        assert np.array_equal(full.answers, BinaryLiftingLCA(parents).query(xs, ys))

    def test_gpu_throughput_increases_with_batch_size(self):
        """The Figure 6 effect: per-batch launch overhead makes tiny batches slow."""
        n = 2000
        parents = make_tree("shallow", n, seed=82)
        xs, ys = generate_random_queries(n, 2000, seed=83)
        algo = InlabelLCA(parents)
        tiny = run_batched_queries(algo, xs, ys, 1, GTX980, keep_answers=False,
                                   max_batches=64)
        bulk = run_batched_queries(algo, xs, ys, 2000, GTX980, keep_answers=False)
        assert bulk.queries_per_second > 50 * tiny.queries_per_second

    def test_cpu_throughput_insensitive_to_batch_size(self):
        """Single-core CPU gains almost nothing from batching (Figure 6)."""
        n = 2000
        parents = make_tree("shallow", n, seed=84)
        xs, ys = generate_random_queries(n, 2000, seed=85)
        algo = SequentialInlabelLCA(parents)
        tiny = run_batched_queries(algo, xs, ys, 1, XEON_X5650_SINGLE,
                                   keep_answers=False, max_batches=256)
        bulk = run_batched_queries(algo, xs, ys, 2000, XEON_X5650_SINGLE,
                                   keep_answers=False)
        assert bulk.queries_per_second < 3 * tiny.queries_per_second

    def test_extrapolation_counts_all_batches(self):
        n = 500
        parents = make_tree("shallow", n, seed=86)
        xs, ys = generate_random_queries(n, 500, seed=87)
        algo = InlabelLCA(parents)
        limited = run_batched_queries(algo, xs, ys, 1, GTX980, keep_answers=False,
                                      max_batches=10)
        assert limited.num_batches == 500
        full = run_batched_queries(algo, xs, ys, 1, GTX980, keep_answers=False)
        assert limited.modeled_time_s == pytest.approx(full.modeled_time_s, rel=0.05)

    def test_invalid_batch_size_rejected(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        with pytest.raises(ValueError):
            run_batched_queries(algo, np.asarray([0]), np.asarray([1]), 0, GTX980)

    def test_mismatched_queries_rejected(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        with pytest.raises(ValueError):
            run_batched_queries(algo, np.asarray([0, 1]), np.asarray([1]), 1, GTX980)

    def test_empty_stream(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        result = run_batched_queries(algo, np.asarray([], dtype=np.int64),
                                     np.asarray([], dtype=np.int64), 10, GTX980)
        assert result.num_queries == 0
        assert result.modeled_time_s == 0
