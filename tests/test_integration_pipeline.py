"""End-to-end integration tests across the whole library.

These exercise the same pipelines the examples and benchmarks use: generate a
dataset, run every algorithm of a cast on the same instance with its own
simulated device, verify the answers agree with independent oracles, and check
that the modeled-cost bookkeeping is coherent.
"""

import numpy as np
import pytest

from repro import (
    GTX980,
    XEON_X5650_SINGLE,
    ExecutionContext,
    InlabelLCA,
    NaiveGPULCA,
    SequentialInlabelLCA,
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from repro.bridges import find_bridges_networkx
from repro.euler import build_euler_tour, compute_tree_stats
from repro.experiments import load_dataset, run_bridges, run_lca
from repro.graphs import (
    CSRGraph,
    bfs_gpu,
    generate_random_queries,
    largest_connected_component,
    spanning_forest,
)
from repro.graphs.generators import grasp_tree, rmat_graph
from repro.lca import BinaryLiftingLCA


class TestLCAPipeline:
    def test_full_lca_pipeline_on_deep_tree(self):
        n, q = 30_000, 10_000
        parents = grasp_tree(n, 100, seed=1)
        xs, ys = generate_random_queries(n, q, seed=2)

        gpu_pre = ExecutionContext(GTX980, trace=True)
        gpu = InlabelLCA(parents, ctx=gpu_pre)
        gpu_query = ExecutionContext(GTX980)
        answers = gpu.query(xs, ys, ctx=gpu_query)

        # Independent oracle.
        assert np.array_equal(answers, BinaryLiftingLCA(parents).query(xs, ys))
        # Every other cast member returns the same answers.
        assert np.array_equal(answers, SequentialInlabelLCA(parents).query(xs, ys))
        assert np.array_equal(answers, NaiveGPULCA(parents).query(xs, ys))
        # Cost bookkeeping: preprocessing dominated by the Euler tour phase,
        # trace totals consistent with the reported elapsed time.
        assert gpu_pre.breakdown()["preprocessing"] == pytest.approx(gpu_pre.elapsed)
        assert sum(r.time_s for r in gpu_pre.records) == pytest.approx(gpu_pre.elapsed)
        # The headline property: GPU Inlabel total beats single-core CPU total.
        cpu_pre = ExecutionContext(XEON_X5650_SINGLE)
        cpu = SequentialInlabelLCA(parents, ctx=cpu_pre)
        cpu_query = ExecutionContext(XEON_X5650_SINGLE)
        cpu.query(xs, ys, ctx=cpu_query)
        assert gpu_pre.elapsed + gpu_query.elapsed < cpu_pre.elapsed + cpu_query.elapsed

    def test_run_lca_on_registry_style_tree(self):
        parents = grasp_tree(5000, 31, seed=3)
        xs, ys = generate_random_queries(5000, 5000, seed=4)
        records = run_lca(parents, xs, ys)
        assert len(records) == 4


class TestBridgePipeline:
    def test_full_bridge_pipeline_on_road_stand_in(self):
        graph = load_dataset("road-east-like", scale=0.05)
        oracle = find_bridges_networkx(graph)
        results = {}
        for name, fn, spec in [
            ("dfs", find_bridges_dfs, XEON_X5650_SINGLE),
            ("tv", find_bridges_tarjan_vishkin, GTX980),
            ("ck", find_bridges_ck, GTX980),
            ("hybrid", find_bridges_hybrid, GTX980),
        ]:
            ctx = ExecutionContext(spec)
            result = fn(graph, ctx=ctx)
            assert result.agrees_with(oracle), name
            results[name] = ctx.elapsed
        # Paper's road-graph story: TV clearly beats CK.
        assert results["tv"] < results["ck"]

    def test_spanning_tree_plus_euler_tour_composition(self):
        """The exact composition TV/hybrid rely on: CC spanning tree → Euler
        tour rooting → statistics that agree with a BFS of the same tree."""
        graph, _ = largest_connected_component(rmat_graph(9, 8, seed=5))
        forest = spanning_forest(graph)
        from repro.graphs import EdgeList

        tree_edges = EdgeList(graph.u[forest.tree_edge_mask],
                              graph.v[forest.tree_edge_mask], graph.num_nodes)
        tour = build_euler_tour(tree_edges, root=0)
        stats = compute_tree_stats(tour)
        csr = CSRGraph.from_edgelist(tree_edges)
        bfs = bfs_gpu(csr, 0)
        # Same tree, same root: parents must agree up to both being valid
        # orientations, i.e. identical (a tree has a unique orientation).
        assert np.array_equal(stats.parent, bfs.parents)
        assert np.array_equal(stats.depth, bfs.levels)

    def test_run_bridges_on_two_families(self):
        for name, scale in [("kron-s10", 0.25), ("road-west-like", 0.03)]:
            graph = load_dataset(name, scale=scale)
            records = run_bridges(graph, dataset=name)
            assert len({r.num_bridges for r in records}) == 1
            assert all(r.total_time_s > 0 for r in records)
