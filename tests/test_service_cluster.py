"""Cluster service tests: replication, routing, backpressure, aggregation.

The heart of the file is the replica-count=1 equivalence property: a
1-replica cluster must be *bit-identical* to a plain ``LCAQueryService`` on
the same stream — tickets, answers, modeled latencies, and the full
per-replica statistics snapshot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidQueryError, Overloaded, ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.service import (
    BatchPolicy,
    ClusterService,
    ClusterStats,
    LCAQueryService,
    make_router,
)

from .conftest import make_tree

POLICY = BatchPolicy(max_batch_size=64, max_wait_s=1e-4)


def build_cluster(parents, n_replicas, *, replicas=None, **kwargs):
    cluster = ClusterService(n_replicas, **kwargs)
    cluster.register_tree(
        "t", parents, replicas=n_replicas if replicas is None else replicas
    )
    return cluster


def chunked_submit(cluster, dataset, xs, ys, arrivals, chunk):
    tickets = [
        cluster.submit_many(
            dataset, xs[i:i + chunk], ys[i:i + chunk], at=arrivals[i:i + chunk]
        )
        for i in range(0, xs.size, chunk)
    ]
    return np.concatenate(tickets)


# ----------------------------------------------------------------------
# Construction and registration surface
# ----------------------------------------------------------------------

def test_constructor_validation():
    with pytest.raises(ServiceError):
        ClusterService(0)
    with pytest.raises(ServiceError):
        ClusterService(2, max_pending=0)


def test_register_tree_validation():
    parents = random_attachment_tree(64, seed=0)
    cluster = ClusterService(3)
    cluster.register_tree("t", parents)
    with pytest.raises(ServiceError):
        cluster.register_tree("t", parents)  # duplicate
    with pytest.raises(ServiceError):
        cluster.register_tree("u", parents, replicas=4)  # > n_replicas
    with pytest.raises(ServiceError):
        cluster.register_tree("u", parents, replicas=-1)
    # replicas=0 is not an error: it tracks the full active replica set.
    cluster.register_tree("all", parents, replicas=0)
    assert len(cluster.placement("all")) == 3
    with pytest.raises(ServiceError):
        cluster.register_tree("u", parents, on=[0, 3])  # id out of range
    with pytest.raises(ServiceError):
        cluster.register_tree("u", parents, on=[])
    with pytest.raises(ServiceError):
        cluster.register_tree("u")  # neither parents nor loader
    with pytest.raises(ServiceError):
        cluster.submit("nope", 1, 2)


def test_placement_modes():
    parents = random_attachment_tree(64, seed=1)
    cluster = ClusterService(4)
    ring_copies = cluster.register_tree("ringed", parents, replicas=2)
    assert cluster.placement("ringed") == ring_copies
    assert len(set(ring_copies)) == 2
    # Ring placement agrees with the cluster's own ring.
    assert list(ring_copies) == cluster.ring.place("ringed", 2)
    # Explicit placement is respected verbatim (deduplicated, order kept).
    pinned = cluster.register_tree("pinned", parents, on=[3, 1, 3])
    assert pinned == (3, 1)
    assert set(cluster.datasets) == {"ringed", "pinned"}
    # Only the placed replicas know the dataset.
    for replica_id, worker in enumerate(cluster.replicas):
        assert worker.store.has_tree("pinned") == (replica_id in (1, 3))


def test_lazy_loader_is_shared_and_called_once():
    calls = []

    def loader():
        calls.append(1)
        return random_attachment_tree(128, seed=2)

    cluster = ClusterService(3, policy=POLICY)
    cluster.register_tree("lazy", loader=loader, replicas=3)
    assert calls == []  # nothing materialized yet
    xs, ys = generate_random_queries(128, 30, seed=3)
    arrivals = np.arange(30, dtype=np.float64) * 1e-6
    tickets = cluster.submit_many("lazy", xs, ys, at=arrivals)
    cluster.drain()
    # All three copies served from one materialization of the loader.
    assert len(calls) == 1
    expected = BinaryLiftingLCA(random_attachment_tree(128, seed=2)).query(xs, ys)
    assert np.array_equal(cluster.results(tickets), expected)


# ----------------------------------------------------------------------
# Correctness across replicas and policies
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "policy_name", ["round-robin", "least-outstanding", "consistent-hash"]
)
def test_cluster_answers_match_oracle(policy_name):
    n, q = 4_096, 3_000
    parents = random_attachment_tree(n, seed=4)
    xs, ys = generate_random_queries(n, q, seed=5)
    arrivals = np.arange(q, dtype=np.float64) * 5e-7
    cluster = build_cluster(parents, 4, policy=POLICY, router=make_router(policy_name))
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 512)
    cluster.drain()
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    assert np.array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.queries_answered == q
    assert stats.queries_shed == 0
    assert stats.router_policy == policy_name


def test_round_robin_columnar_equals_per_query_path():
    n, q = 1_024, 400
    parents = random_attachment_tree(n, seed=6)
    xs, ys = generate_random_queries(n, q, seed=7)
    arrivals = np.arange(q, dtype=np.float64) * 2e-6

    blocked = build_cluster(
        parents, 3, policy=POLICY, router=make_router("round-robin")
    )
    bt = chunked_submit(blocked, "t", xs, ys, arrivals, 128)
    blocked.drain()

    looped = build_cluster(parents, 3, policy=POLICY, router=make_router("round-robin"))
    lt = np.array([
        looped.submit("t", int(xs[i]), int(ys[i]), at=float(arrivals[i]))
        for i in range(q)
    ])
    looped.drain()

    assert np.array_equal(bt, lt)
    assert np.array_equal(blocked.results(bt), looped.results(lt))
    assert np.array_equal(blocked.latencies(bt), looped.latencies(lt))


# ----------------------------------------------------------------------
# Replica-count=1 equivalence (the acceptance-criterion property)
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(("shallow", "deep", "path", "scale-free", "star")),
    n=st.integers(min_value=2, max_value=200),
    q=st.integers(min_value=1, max_value=60),
    max_batch=st.integers(min_value=1, max_value=32),
    max_wait_us=st.sampled_from((0.0, 10.0, 1000.0)),
    chunk=st.sampled_from((1, 7, 64)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_single_replica_cluster_is_bit_identical(
    kind, n, q, max_batch, max_wait_us, chunk, seed
):
    parents = make_tree(kind, n, seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    arrivals = np.cumsum(rng.exponential(1e-4, size=q))
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_s=max_wait_us * 1e-6)

    plain = LCAQueryService(policy=policy)
    plain.register_tree("t", parents)
    cluster = build_cluster(parents, 1, policy=policy)

    pt = chunked_submit(plain, "t", xs, ys, arrivals, chunk)
    ct = chunked_submit(cluster, "t", xs, ys, arrivals, chunk)
    plain.drain()
    cluster.drain()

    assert np.array_equal(pt, ct)
    assert np.array_equal(plain.results(pt), cluster.results(ct))
    assert np.array_equal(plain.latencies(pt), cluster.latencies(ct))
    # The whole observable statistics surface agrees, field for field.
    assert plain.stats() == cluster.stats().replicas[0]


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------

def slow_policy():
    # A queue that never flushes on its own: everything stays pending until
    # time passes or the caller drains, so admission decisions are exact.
    return BatchPolicy(max_batch_size=1 << 15, max_wait_s=10.0)


def test_per_query_backpressure_sheds_and_recovers():
    parents = random_attachment_tree(256, seed=8)
    cluster = build_cluster(parents, 2, policy=slow_policy(), max_pending=3)
    for i in range(3):
        cluster.submit("t", 1, 2, at=i * 1e-6)
    with pytest.raises(Overloaded) as excinfo:
        cluster.submit("t", 3, 4, at=3e-6)
    exc = excinfo.value
    assert isinstance(exc, ServiceError)  # typed subclass
    assert (exc.pending, exc.capacity, exc.admitted, exc.shed) == (3, 3, 0, 1)
    stats = cluster.stats()
    assert stats.queries_shed == 1
    assert stats.queries_submitted == 3
    assert stats.queries_offered == 4
    assert stats.shed_rate == pytest.approx(0.25)
    # Draining frees the queue; admission recovers.
    cluster.advance_to(100.0)
    assert cluster.pending_count() == 0
    cluster.submit("t", 5, 6, at=101.0)
    assert cluster.stats().queries_shed == 1  # no new sheds


def test_block_backpressure_admits_prefix_and_reports_shed():
    parents = random_attachment_tree(256, seed=9)
    cluster = build_cluster(parents, 2, policy=slow_policy(), max_pending=100)
    xs, ys = generate_random_queries(256, 300, seed=10)
    arrivals = np.arange(300, dtype=np.float64) * 1e-6
    with pytest.raises(Overloaded) as excinfo:
        cluster.submit_many("t", xs, ys, at=arrivals)
    exc = excinfo.value
    assert (exc.admitted, exc.shed) == (100, 200)
    assert cluster.pending_count() == 100
    stats = cluster.stats()
    assert stats.queries_submitted == 100
    assert stats.queries_shed == 200
    assert stats.shed_rate == pytest.approx(200 / 300)
    # The admitted prefix is exactly the first 100 queries.
    cluster.drain()
    answers = cluster.results(np.arange(100))
    expected = BinaryLiftingLCA(parents).query(xs[:100], ys[:100])
    assert np.array_equal(answers, expected)


def test_clocks_stay_in_sync_after_shed():
    # Regression test: an Overloaded rejection advances the worker clocks
    # to the rejected arrival, so the cluster frontier must advance with
    # them — otherwise drain() and later legal submissions crash with a
    # backwards-clock error.
    parents = random_attachment_tree(256, seed=21)
    cluster = build_cluster(parents, 2, policy=slow_policy(), max_pending=1)
    cluster.submit("t", 1, 2, at=0.0)
    with pytest.raises(Overloaded):
        cluster.submit("t", 3, 4, at=5.0)
    cluster.drain()  # must not raise
    ticket = cluster.submit("t", 5, 6, at=6.0)  # later arrivals still legal
    cluster.drain()
    assert cluster.result(ticket) >= 0
    # Same for a block shed in its entirety.
    with pytest.raises(Overloaded):
        xs, ys = generate_random_queries(256, 10, seed=22)
        cluster.submit_many("t", xs, ys, at=np.full(10, 7.0))
    with pytest.raises(Overloaded):
        cluster.submit_many("t", xs, ys, at=np.full(10, 8.0))
    cluster.drain()
    assert cluster.pending_count() == 0


def test_unbounded_cluster_never_sheds():
    parents = random_attachment_tree(256, seed=11)
    cluster = build_cluster(parents, 2, policy=slow_policy())
    xs, ys = generate_random_queries(256, 500, seed=12)
    cluster.submit_many("t", xs, ys, at=np.arange(500) * 1e-6)
    assert cluster.stats().queries_shed == 0
    assert cluster.pending_count() == 500


# ----------------------------------------------------------------------
# Error surface
# ----------------------------------------------------------------------

def test_invalid_query_rejected_with_prefix_admitted():
    parents = random_attachment_tree(100, seed=13)
    cluster = build_cluster(parents, 2, policy=POLICY)
    xs = np.array([1, 2, 500, 3])
    ys = np.array([4, 5, 6, 7])
    with pytest.raises(InvalidQueryError):
        cluster.submit_many("t", xs, ys, at=np.arange(4) * 1e-6)
    # The clean prefix (2 queries) was admitted, exactly like the plain
    # service's per-query loop would have.
    assert cluster.stats().queries_submitted == 2
    with pytest.raises(InvalidQueryError):
        cluster.submit("t", -1, 2)
    with pytest.raises(ServiceError):
        cluster.submit("t", 1, 2, at=-1.0)  # backwards arrival


def test_ticket_surface_mirrors_single_node_service():
    parents = random_attachment_tree(100, seed=14)
    cluster = build_cluster(parents, 2, policy=POLICY)
    with pytest.raises(ServiceError):
        cluster.result(0)  # never issued
    ticket = cluster.submit("t", 1, 2, at=0.0)
    with pytest.raises(ServiceError):
        cluster.result(ticket)  # still queued
    with pytest.raises(ServiceError):
        cluster.results([ticket])
    cluster.drain()
    assert cluster.result(ticket) >= 0
    assert cluster.latency(ticket) > 0
    with pytest.raises(ServiceError):
        cluster.results([ticket, 999])
    assert cluster.results([]).size == 0
    assert cluster.latencies([]).size == 0


def test_still_queued_error_names_the_cluster_ticket():
    parents = random_attachment_tree(100, seed=15)
    cluster = build_cluster(
        parents, 2, policy=slow_policy(), router=make_router("round-robin")
    )
    tickets = [cluster.submit("t", 1, 2, at=i * 1e-6) for i in range(4)]
    cluster.advance_to(1e-3)
    with pytest.raises(ServiceError, match=f"ticket {tickets[0]} is still queued"):
        cluster.results(tickets)


# ----------------------------------------------------------------------
# Stats aggregation
# ----------------------------------------------------------------------

def test_cluster_stats_aggregate_per_replica_views():
    n, q = 2_048, 2_000
    parents = random_attachment_tree(n, seed=16)
    xs, ys = generate_random_queries(n, q, seed=17)
    arrivals = np.arange(q, dtype=np.float64) * 1e-6
    cluster = build_cluster(
        parents, 4, policy=POLICY, router=make_router("round-robin")
    )
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 256)
    cluster.drain()
    stats = cluster.stats()
    assert isinstance(stats, ClusterStats)
    per = stats.replicas
    assert len(per) == 4
    # Totals are the sums of the per-replica snapshots.
    assert stats.queries_answered == sum(s.queries_answered for s in per) == q
    assert stats.batches_flushed == sum(s.batches_flushed for s in per)
    assert stats.busy_time_s == pytest.approx(sum(s.busy_time_s for s in per))
    assert stats.cache_hits == sum(s.cache_hits for s in per)
    assert stats.cache_misses == sum(s.cache_misses for s in per)
    # Imbalance is max/mean of the per-replica answered counts.
    answered = np.array(stats.per_replica_answered, dtype=np.float64)
    assert stats.load_imbalance == pytest.approx(answered.max() / answered.mean())
    # Merged percentiles are exact: recompute from every query's latency.
    merged = np.sort(cluster.latencies(tickets))
    assert stats.latency_p50_s == pytest.approx(np.percentile(merged, 50.0))
    assert stats.latency_p99_s == pytest.approx(np.percentile(merged, 99.0))
    assert stats.latency_max_s == pytest.approx(merged.max())
    # Span covers earliest arrival to latest completion anywhere.
    firsts = [s for s in per if s.queries_answered]
    assert stats.span_s >= max(s.span_s for s in firsts)
    assert stats.throughput_qps == pytest.approx(q / stats.span_s)
    rendered = stats.format()
    assert "per-replica load" in rendered and "shed" in rendered


def test_warm_prebuilds_every_copy_and_stream_only_hits():
    parents = random_attachment_tree(1_024, seed=18)
    cluster = build_cluster(parents, 3, policy=POLICY)
    cluster.warm("t")
    misses_after_warm = cluster.stats().cache_misses
    assert misses_after_warm == 6  # 3 copies x 2 backends
    xs, ys = generate_random_queries(1_024, 600, seed=19)
    chunked_submit(cluster, "t", xs, ys, np.arange(600) * 1e-6, 128)
    cluster.drain()
    assert cluster.stats().cache_misses == misses_after_warm  # all hits


def test_pending_count_per_dataset_sums_over_copies():
    parents = random_attachment_tree(256, seed=20)
    cluster = ClusterService(3, policy=slow_policy(), router=make_router("round-robin"))
    cluster.register_tree("a", parents, replicas=2)
    cluster.register_tree("b", parents, replicas=1)
    for i in range(5):
        cluster.submit("a", 1, 2, at=i * 1e-6)
    cluster.submit("b", 3, 4, at=1e-5)
    assert cluster.pending_count("a") == 5
    assert cluster.pending_count("b") == 1
    assert cluster.pending_count() == 6
