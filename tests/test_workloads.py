"""Statistical and structural properties of the workload generators.

The arrival processes are stochastic, so their tests are statistical: the
empirical arrival rate must match the process's intensity function within a
six-sigma tolerance of the corresponding count distribution (Poisson counts
concentrate at ``rate * T`` with standard deviation ``sqrt(rate * T)``).
Hypothesis drives the rates/seeds; the tolerance makes false failures
astronomically unlikely while real rate bugs (off by a factor, ignoring the
intensity shape) fail immediately.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads import (
    SCENARIOS,
    DeterministicArrivals,
    HotspotKeys,
    InhomogeneousPoissonArrivals,
    MarkovModulatedArrivals,
    Phase,
    PoissonArrivals,
    Scenario,
    TrafficSource,
    UniformKeys,
    ZipfKeys,
    constant_intensity,
    diurnal_intensity,
    flash_crowd_intensity,
    make_scenario,
)
from repro.graphs.trees import generate_random_queries

# np.trapezoid on NumPy >= 2, np.trapz before.
_trapezoid = getattr(np, "trapezoid", None) or getattr(np, "trapz")


def assert_valid_arrivals(times, t0, duration):
    """Every process must emit sorted float64 times inside its window."""
    assert times.dtype == np.float64
    assert (times[1:] >= times[:-1]).all()
    if times.size:
        assert times[0] >= t0
        assert times[-1] < t0 + duration


# ----------------------------------------------------------------------
# Deterministic arrivals
# ----------------------------------------------------------------------
def test_deterministic_arrivals_match_legacy_axis():
    rng = np.random.default_rng(0)
    times = DeterministicArrivals(200_000.0).generate(0.0, 0.05, rng)
    expected = np.arange(10_000, dtype=np.float64) / 200_000.0
    assert np.array_equal(times, expected)


def test_deterministic_arrivals_offset_and_empty():
    rng = np.random.default_rng(0)
    times = DeterministicArrivals(100.0).generate(2.0, 0.05, rng)
    assert times.size == 5
    assert times[0] == 2.0
    assert DeterministicArrivals(0.0).generate(0.0, 1.0, rng).size == 0


# ----------------------------------------------------------------------
# Homogeneous Poisson: empirical rate matches the configured rate
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=2e3, max_value=2e5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_poisson_empirical_rate_matches_intensity(rate, seed):
    duration = 0.5
    times = PoissonArrivals(rate).generate(1.0, duration, np.random.default_rng(seed))
    assert_valid_arrivals(times, 1.0, duration)
    expected = rate * duration
    assert abs(times.size - expected) < 6.0 * np.sqrt(expected)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_poisson_gaps_are_memoryless(seed):
    rate = 50_000.0
    times = PoissonArrivals(rate).generate(0.0, 1.0, np.random.default_rng(seed))
    gaps = np.diff(times)
    # Exponential(1/rate) gaps: the mean gap must sit near 1/rate.
    assert abs(gaps.mean() * rate - 1.0) < 0.1


# ----------------------------------------------------------------------
# Inhomogeneous Poisson (thinning): binned counts track the intensity
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_inhomogeneous_rate_tracks_diurnal_intensity(seed):
    duration, bins = 1.0, 8
    base, peak = 20_000.0, 120_000.0
    intensity = diurnal_intensity(base, peak, period_s=duration)
    process = InhomogeneousPoissonArrivals(intensity, peak_qps=peak)
    times = process.generate(0.0, duration, np.random.default_rng(seed))
    assert_valid_arrivals(times, 0.0, duration)
    edges = np.linspace(0.0, duration, bins + 1)
    counts = np.histogram(times, bins=edges)[0]
    for b in range(bins):
        grid = np.linspace(edges[b], edges[b + 1], 257)
        expected = float(_trapezoid(intensity(grid), grid))
        assert abs(counts[b] - expected) < 6.0 * np.sqrt(expected), (
            f"bin {b}: {counts[b]} arrivals vs expected {expected:.0f}"
        )


def test_inhomogeneous_total_matches_expected_count():
    intensity = flash_crowd_intensity(
        10_000.0, 500_000.0, flash_start_s=0.2, flash_duration_s=0.1, ramp_s=0.05
    )
    process = InhomogeneousPoissonArrivals(intensity, peak_qps=500_000.0)
    times = process.generate(0.0, 0.5, np.random.default_rng(11))
    expected = process.expected_count(0.5)
    assert abs(times.size - expected) < 6.0 * np.sqrt(expected)


def test_thinning_rejects_intensity_above_peak():
    process = InhomogeneousPoissonArrivals(
        constant_intensity(2_000.0), peak_qps=1_000.0
    )
    with pytest.raises(ConfigurationError, match="exceeds peak_qps"):
        process.generate(0.0, 0.5, np.random.default_rng(0))


def test_flash_crowd_intensity_shape():
    fn = flash_crowd_intensity(
        10.0, 1000.0, flash_start_s=1.0, flash_duration_s=2.0, ramp_s=0.5
    )
    tau = np.array([0.0, 0.75, 1.0, 2.0, 3.0, 3.25, 4.0])
    rates = fn(tau)
    assert rates[0] == 10.0 and rates[-1] == 10.0
    assert rates[2] == 1000.0 and rates[3] == 1000.0 and rates[4] == 1000.0
    assert 10.0 < rates[1] < 1000.0 and 10.0 < rates[5] < 1000.0


# ----------------------------------------------------------------------
# Markov-modulated on/off
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_mmpp_long_run_rate_matches_duty_cycle(seed):
    process = MarkovModulatedArrivals(
        on_qps=40_000.0, mean_on_s=0.01, mean_off_s=0.03, off_qps=4_000.0
    )
    duration = 2.0  # ~50 on/off cycles: the duty cycle has averaged out
    times = process.generate(0.0, duration, np.random.default_rng(seed))
    assert_valid_arrivals(times, 0.0, duration)
    expected = process.expected_count(duration)
    # Sojourn-time randomness dominates Poisson noise; the relative sd of
    # the count over k cycles scales like 1/sqrt(k), so 50% is >5 sigma.
    assert abs(times.size - expected) < 0.5 * expected


def test_mmpp_off_state_can_be_silent():
    process = MarkovModulatedArrivals(
        on_qps=50_000.0, mean_on_s=0.005, mean_off_s=0.005
    )
    times = process.generate(0.0, 1.0, np.random.default_rng(3))
    # With off_qps=0 the arrivals cluster into bursts: large gaps exist.
    assert np.diff(times).max() > 10.0 / 50_000.0


# ----------------------------------------------------------------------
# Key distributions
# ----------------------------------------------------------------------
def test_uniform_keys_match_generate_random_queries():
    xs, ys = UniformKeys().sample(np.random.default_rng(42), 5_000, 777)
    ex, ey = generate_random_queries(777, 5_000, seed=42)
    assert np.array_equal(xs, ex) and np.array_equal(ys, ey)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=10, max_value=5_000),
)
def test_key_distributions_stay_in_range(seed, n):
    rng = np.random.default_rng(seed)
    for dist in (UniformKeys(), ZipfKeys(alpha=1.3), HotspotKeys()):
        xs, ys = dist.sample(rng, 500, n)
        for arr in (xs, ys):
            assert arr.dtype == np.int64
            assert arr.min() >= 0 and arr.max() < n


def test_zipf_keys_are_rank_skewed():
    xs, _ = ZipfKeys(alpha=1.2).sample(np.random.default_rng(0), 50_000, 1_000)
    counts = np.bincount(xs, minlength=1_000)
    # Popularity must decay with rank: top decile beats bottom decile by a lot.
    assert counts[:100].sum() > 5 * counts[-100:].sum()
    assert counts[0] > counts[100] > 0


def test_hotspot_keys_concentrate_on_the_hot_set():
    keys = HotspotKeys(hot_fraction=0.01, hot_weight=0.9)
    xs, _ = keys.sample(np.random.default_rng(1), 50_000, 10_000)
    hot_share = (xs < 100).mean()
    # 90% targeted + ~1% of the uniform remainder lands in the hot set.
    assert 0.88 < hot_share < 0.93


# ----------------------------------------------------------------------
# Scenario spec validation and library
# ----------------------------------------------------------------------
def test_scenario_library_builds_and_scales():
    for name in SCENARIOS:
        scenario = make_scenario(name, scale=0.5, seed=3)
        assert scenario.name == name
        assert scenario.seed == 3
        assert scenario.expected_queries() > 0
        full = make_scenario(name, scale=1.0, seed=3)
        assert scenario.total_duration_s <= full.total_duration_s


def test_make_scenario_rejects_unknowns():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        make_scenario("nope")
    with pytest.raises(ConfigurationError, match="scale"):
        make_scenario("steady", scale=0.0)


def test_scenario_validation():
    source = TrafficSource("t", nodes=16)
    phase = Phase("p", DeterministicArrivals(10.0), 1.0)
    with pytest.raises(ConfigurationError, match="at least one source"):
        Scenario(name="s", sources=(), phases=(phase,))
    with pytest.raises(ConfigurationError, match="at least one phase"):
        Scenario(name="s", sources=(source,), phases=())
    with pytest.raises(ConfigurationError, match="duplicate"):
        Scenario(name="s", sources=(source, source), phases=(phase,))
    with pytest.raises(ConfigurationError, match="duration"):
        Phase("p", DeterministicArrivals(10.0), 0.0)
    with pytest.raises(ConfigurationError, match="weights"):
        TrafficSource("t", nodes=16, weight=0.0)
