"""Tests for edge-list and parent-array IO."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graphs import EdgeList
from repro.graphs.generators import random_attachment_tree
from repro.graphs.io import (
    load_edgelist_npz,
    load_edgelist_text,
    load_parents_npz,
    save_edgelist_npz,
    save_edgelist_text,
    save_parents_npz,
)

from .conftest import random_connected_graph


class TestTextIO:
    def test_roundtrip(self, tmp_path):
        g = random_connected_graph(30, 20, seed=0)
        path = tmp_path / "graph.txt"
        save_edgelist_text(g, path)
        back = load_edgelist_text(path)
        assert back.num_nodes == g.num_nodes
        assert np.array_equal(back.u, g.u)
        assert np.array_equal(back.v, g.v)

    def test_roundtrip_preserves_isolated_trailing_nodes(self, tmp_path):
        g = EdgeList.from_pairs([(0, 1)], n=5)
        path = tmp_path / "iso.txt"
        save_edgelist_text(g, path)
        assert load_edgelist_text(path).num_nodes == 5

    def test_load_without_header_infers_n(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("% a comment\n0 3\n1 2\n")
        g = load_edgelist_text(path)
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_explicit_num_nodes_overrides(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n")
        assert load_edgelist_text(path, num_nodes=10).num_nodes == 10

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(InvalidGraphError):
            load_edgelist_text(path)


class TestNpzIO:
    def test_edgelist_roundtrip(self, tmp_path):
        g = random_connected_graph(25, 10, seed=1)
        path = tmp_path / "graph.npz"
        save_edgelist_npz(g, path)
        back = load_edgelist_npz(path)
        assert back.num_nodes == g.num_nodes
        assert np.array_equal(back.u, g.u)
        assert np.array_equal(back.v, g.v)

    def test_parents_roundtrip(self, tmp_path):
        parents = random_attachment_tree(40, seed=2)
        path = tmp_path / "tree.npz"
        save_parents_npz(parents, path)
        assert np.array_equal(load_parents_npz(path), parents)
