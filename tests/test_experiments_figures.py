"""Tests for the per-figure experiment runners (small-scale smoke + shape checks)."""

import numpy as np

from repro.experiments import format_rows, format_series, pivot_rows
from repro.experiments import bridges_experiments as bx
from repro.experiments import lca_experiments as lx


def by_algorithm(rows, **filters):
    out = {}
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            out.setdefault(row["algorithm"], []).append(row)
    return out


class TestLCAFigures:
    def test_general_comparison_rows(self):
        rows = lx.general_comparison(sizes=[2048, 4096], tree_kind="shallow")
        assert len(rows) == 2 * 4
        assert {row["tree_kind"] for row in rows} == {"shallow"}
        assert {row["n"] for row in rows} == {2048, 4096}

    def test_fig3_shallow_ordering(self):
        """Figure 3a/3c shape: naïve preprocessing fastest; GPU Inlabel queries
        fastest; single-core CPU slowest on both axes."""
        rows = lx.general_comparison(sizes=[16384], tree_kind="shallow")
        data = {row["algorithm"]: row for row in rows}
        assert data["GPU Naive"]["nodes_per_s"] > data["GPU Inlabel"]["nodes_per_s"]
        assert data["GPU Inlabel"]["nodes_per_s"] > data["Single-core CPU Inlabel"]["nodes_per_s"]
        assert data["GPU Inlabel"]["queries_per_s"] > data["Multi-core CPU Inlabel"]["queries_per_s"]
        assert data["Multi-core CPU Inlabel"]["queries_per_s"] > data["Single-core CPU Inlabel"]["queries_per_s"]

    def test_fig3_deep_naive_query_collapse(self):
        """Figure 3d shape: on deep trees the naïve GPU algorithm's query
        throughput collapses below the single-core CPU Inlabel baseline.

        The collapse depends on the *absolute* average depth (the paper's deep
        trees have depth ≥ 1000), so the scaled-down test tree uses a small
        grasp value to reach a comparable depth at 16K nodes.
        """
        rows = lx.general_comparison(sizes=[16384], tree_kind="deep", grasp=4)
        data = {row["algorithm"]: row for row in rows}
        assert data["GPU Naive"]["queries_per_s"] < data["Single-core CPU Inlabel"]["queries_per_s"]
        assert data["GPU Inlabel"]["queries_per_s"] > 50 * data["GPU Naive"]["queries_per_s"]

    def test_fig4_crossover_with_ratio(self):
        """Figure 4 shape: the naïve algorithm wins at low queries-to-nodes
        ratios, the Inlabel algorithm wins at high ratios."""
        rows = lx.queries_to_nodes_ratio(n=16384, ratios=(0.125, 16.0))
        data = by_algorithm(rows)
        naive = {row["ratio"]: row["total_ms"] for row in data["GPU Naive"]}
        inlabel = {row["ratio"]: row["total_ms"] for row in data["GPU Inlabel"]}
        assert naive[0.125] < inlabel[0.125]
        assert inlabel[16.0] < naive[16.0]

    def test_fig5_depth_sweep_shape(self):
        """Figure 5 shape: GPU Inlabel total time is flat in depth while the
        naïve algorithm degrades sharply on deep trees."""
        n = 8192
        rows = lx.depth_sweep(n=n, target_depths=[np.log(n), n / 4.0])
        data = by_algorithm(rows)
        inlabel = [row["total_ms"] for row in data["GPU Inlabel"]]
        naive = [row["total_ms"] for row in data["GPU Naive"]]
        assert inlabel[1] < 1.5 * inlabel[0]          # flat
        assert naive[1] > 10 * naive[0]               # collapses
        assert naive[0] < inlabel[0]                  # naive wins on shallowest
        assert naive[1] > inlabel[1]                  # inlabel wins on deep

    def test_fig6_batch_sweep_shape(self):
        """Figure 6 shape: GPU throughput grows with batch size and overtakes
        both CPU variants once batches are large."""
        rows = lx.batch_size_sweep(n=8192, q=8192, batch_sizes=(1, 128, 8192),
                                   max_batches_per_size=64)
        data = by_algorithm(rows)
        gpu = {row["batch_size"]: row["queries_per_s"] for row in data["GPU Inlabel"]}
        cpu1 = {row["batch_size"]: row["queries_per_s"] for row in data["Single-core CPU Inlabel"]}
        assert gpu[8192] > 100 * gpu[1]
        assert cpu1[1] > gpu[1]          # single queries favour the CPU
        assert gpu[8192] > cpu1[8192]    # large batches favour the GPU

    def test_fig7_8_scale_free(self):
        rows = lx.scale_free_comparison(sizes=[4096])
        assert {row["tree_kind"] for row in rows} == {"scale-free"}
        assert len(rows) == 4

    def test_prelim_shape(self):
        """§3.1: RMQ preprocesses faster, Inlabel answers queries faster."""
        rows = lx.cpu_preliminary(n=16384)
        data = {row["algorithm"]: row for row in rows}
        rmq = data["Single-core CPU RMQ"]
        inlabel = data["Single-core CPU Inlabel"]
        assert rmq["preprocess_ms"] < inlabel["preprocess_ms"]
        assert inlabel["query_ms"] < rmq["query_ms"]


class TestBridgeFigures:
    def test_table1_rows(self):
        rows = bx.dataset_table(names=["kron-s10", "road-east-like"], scale=0.05)
        assert len(rows) == 2
        for row in rows:
            assert row["nodes"] > 0
            assert row["edges"] >= row["nodes"] - 1
            assert 0 <= row["bridges"] < row["edges"]
            assert row["paper_nodes"] > row["nodes"]  # stand-ins are scaled down

    def test_fig9_rows_and_agreement(self):
        rows = bx.kronecker_comparison(names=["kron-s10"], scale=0.25)
        assert {row["algorithm"] for row in rows} == {
            "Single-core CPU DFS", "Multi-core CPU CK", "GPU CK", "GPU TV"}
        assert len({row["bridges"] for row in rows}) == 1

    def test_fig10_road_shape(self):
        """Figure 10 shape: on road graphs GPU TV beats GPU CK decisively."""
        rows = bx.realworld_comparison(names=["road-east-like"], scale=0.08)
        data = {row["algorithm"]: row["total_ms"] for row in rows}
        assert data["GPU TV"] < data["GPU CK"]
        assert data["GPU TV"] < data["Single-core CPU DFS"]

    def test_fig11_breakdown_phases(self):
        breakdowns = bx.breakdown(names=["road-east-like"], scale=0.05)
        labels = {bd.label for bd in breakdowns}
        assert labels == {
            "road-east-like / GPU CK",
            "road-east-like / GPU TV",
            "road-east-like / GPU Hybrid",
        }
        for bd in breakdowns:
            assert bd.total > 0
            if "GPU TV" in bd.label:
                assert dict(bd.phases).keys() == {"Spanning tree", "Euler tour",
                                                  "Detect bridges"}

    def test_speedup_summary(self):
        rows = bx.kronecker_comparison(names=["kron-s10"], scale=0.25)
        speedups = bx.speedup_summary(rows)
        assert len(speedups) == 1
        assert speedups[0]["speedup"] > 0


class TestReportFormatting:
    def test_format_rows_alignment_and_content(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yyy"}]
        text = format_rows(rows, title="demo")
        assert text.splitlines()[0] == "demo"
        assert "22" in text and "yyy" in text

    def test_format_rows_empty(self):
        assert "(no rows)" in format_rows([])

    def test_pivot(self):
        rows = [
            {"n": 1, "algorithm": "A", "t": 10},
            {"n": 1, "algorithm": "B", "t": 20},
            {"n": 2, "algorithm": "A", "t": 30},
        ]
        wide = pivot_rows(rows, index="n", column="algorithm", value="t")
        assert wide == [{"n": 1, "A": 10, "B": 20}, {"n": 2, "A": 30}]

    def test_format_series(self):
        rows = [
            {"n": 1, "algorithm": "A", "t": 10},
            {"n": 1, "algorithm": "B", "t": 20},
        ]
        text = format_series(rows, x="n", y="t", series="algorithm")
        assert "A" in text and "B" in text and "10" in text
