"""Hypothesis property tests for the bridge-finding algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bridges import (
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_networkx,
    find_bridges_tarjan_vishkin,
)
from repro.graphs import EdgeList, connected_components


@st.composite
def connected_multigraphs(draw, max_nodes=40, max_extra=60):
    """A random connected multigraph (random spanning tree + random extra
    edges, which may include duplicates and self-loops)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    tree_u = []
    tree_v = []
    for child in range(1, n):
        tree_u.append(child)
        tree_v.append(draw(st.integers(0, child - 1)))
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    extra_u = [draw(st.integers(0, n - 1)) for _ in range(extra)]
    extra_v = [draw(st.integers(0, n - 1)) for _ in range(extra)]
    u = np.asarray(tree_u + extra_u, dtype=np.int64)
    v = np.asarray(tree_v + extra_v, dtype=np.int64)
    return EdgeList(u, v, n)


PARALLEL = [find_bridges_tarjan_vishkin, find_bridges_ck, find_bridges_hybrid]


@settings(max_examples=40, deadline=None)
@given(connected_multigraphs())
def test_all_algorithms_agree_with_networkx(graph):
    oracle = find_bridges_networkx(graph)
    assert find_bridges_dfs(graph).agrees_with(oracle)
    for algorithm in PARALLEL:
        assert algorithm(graph).agrees_with(oracle), algorithm.__name__


@settings(max_examples=25, deadline=None)
@given(connected_multigraphs(max_nodes=25, max_extra=30))
def test_removing_a_bridge_disconnects_removing_a_nonbridge_does_not(graph):
    """Check the bridge definition directly: deleting a bridge increases the
    component count, deleting a non-bridge does not."""
    result = find_bridges_tarjan_vishkin(graph)
    base_components = np.unique(connected_components(graph)).size
    m = graph.num_edges
    # Check a handful of edges of each kind to keep the test fast.
    checked_bridges = list(result.bridge_edge_indices[:3])
    non_bridges = [i for i in range(m) if not result.bridge_mask[i]][:3]
    for edge_index in checked_bridges + non_bridges:
        keep = np.ones(m, dtype=bool)
        keep[edge_index] = False
        reduced = EdgeList(graph.u[keep], graph.v[keep], graph.num_nodes)
        components = np.unique(connected_components(reduced)).size
        if result.bridge_mask[edge_index]:
            assert components == base_components + 1
        else:
            assert components == base_components


@settings(max_examples=25, deadline=None)
@given(connected_multigraphs(max_nodes=30, max_extra=40))
def test_bridge_count_invariants(graph):
    result = find_bridges_dfs(graph)
    # Bridges are a subset of any spanning tree, so there are at most n-1.
    assert result.num_bridges <= graph.num_nodes - 1
    # A duplicated (parallel) edge is never a bridge.
    key = {}
    for idx, (a, b) in enumerate(graph.edges()):
        key.setdefault((min(a, b), max(a, b)), []).append(idx)
    for indices in key.values():
        if len(indices) > 1:
            for idx in indices:
                assert not result.bridge_mask[idx]
