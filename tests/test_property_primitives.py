"""Hypothesis property tests for the parallel primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    SegmentTreeRMQ,
    SparseTableRMQ,
    exclusive_scan,
    inclusive_scan,
    segmented_inclusive_scan,
    segreduce_by_key,
    sort_pairs,
    wei_jaja_rank,
    wyllie_rank,
)

ints = st.integers(min_value=-10**6, max_value=10**6)


@settings(max_examples=60, deadline=None)
@given(st.lists(ints, min_size=0, max_size=300))
def test_scan_last_element_is_total_sum(values):
    arr = np.asarray(values, dtype=np.int64)
    out = inclusive_scan(arr)
    if arr.size:
        assert out[-1] == arr.sum()
    assert np.array_equal(out, np.cumsum(arr))


@settings(max_examples=60, deadline=None)
@given(st.lists(ints, min_size=1, max_size=300))
def test_inclusive_minus_exclusive_is_the_value(values):
    arr = np.asarray(values, dtype=np.int64)
    assert np.array_equal(inclusive_scan(arr) - exclusive_scan(arr), arr)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), ints), min_size=1, max_size=200))
def test_segmented_scan_matches_per_segment_cumsum(pairs):
    pairs.sort(key=lambda p: p[0])
    segments = np.asarray([p[0] for p in pairs], dtype=np.int64)
    values = np.asarray([p[1] for p in pairs], dtype=np.int64)
    out = segmented_inclusive_scan(values, segments)
    for seg in np.unique(segments):
        mask = segments == seg
        assert np.array_equal(out[mask], np.cumsum(values[mask]))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), ints), min_size=0, max_size=200),
       st.sampled_from(["min", "max", "sum"]))
def test_segreduce_matches_python_groupby(pairs, op):
    keys = np.asarray([p[0] for p in pairs], dtype=np.int64)
    values = np.asarray([p[1] for p in pairs], dtype=np.int64)
    out = segreduce_by_key(keys, values, 10, op, identity=0 if op == "sum" else None)
    reducer = {"min": min, "max": max, "sum": sum}[op]
    for k in range(10):
        group = [int(v) for key, v in pairs if key == k]
        if group:
            assert out[k] == reducer(group)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                min_size=0, max_size=200))
def test_sort_pairs_is_a_sorted_permutation(pairs):
    first = np.asarray([p[0] for p in pairs], dtype=np.int64)
    second = np.asarray([p[1] for p in pairs], dtype=np.int64)
    sf, ss, order = sort_pairs(first, second)
    assert sorted(zip(first.tolist(), second.tolist())) == list(zip(sf.tolist(), ss.tolist()))
    if pairs:
        assert np.array_equal(np.sort(order), np.arange(len(pairs)))


@settings(max_examples=40, deadline=None)
@given(st.permutations(list(range(40))), st.integers(1, 60))
def test_list_ranking_algorithms_agree(order, num_splitters):
    order = np.asarray(order, dtype=np.int64)
    n = order.size
    succ = np.full(n, -1, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    head = int(order[0])
    expected = np.empty(n, dtype=np.int64)
    expected[order] = np.arange(n)
    assert np.array_equal(wyllie_rank(succ, head), expected)
    assert np.array_equal(wei_jaja_rank(succ, head, num_splitters=num_splitters), expected)


@settings(max_examples=40, deadline=None)
@given(st.lists(ints, min_size=1, max_size=300), st.data(),
       st.sampled_from(["min", "max"]))
def test_rmq_backends_agree_and_match_numpy(values, data, op):
    arr = np.asarray(values, dtype=np.int64)
    n = arr.size
    lo = np.asarray(data.draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=30)))
    hi = np.asarray(data.draw(st.lists(st.integers(0, n - 1), min_size=lo.size, max_size=lo.size)))
    lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
    tree = SegmentTreeRMQ(arr, op).query(lo, hi)
    table = SparseTableRMQ(arr, op).query(lo, hi)
    reference = np.asarray([
        (arr[a:b + 1].min() if op == "min" else arr[a:b + 1].max())
        for a, b in zip(lo, hi)
    ])
    assert np.array_equal(tree, reference)
    assert np.array_equal(table, reference)
