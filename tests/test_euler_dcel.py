"""Tests for the DCEL half-edge structure (paper §2.1)."""

import pytest

from repro.errors import NotATreeError
from repro.euler import build_dcel
from repro.graphs import EdgeList, parents_to_edgelist
from repro.graphs.generators import random_attachment_tree

from .conftest import PAPER_FIGURE1_PARENTS


def figure1_edges():
    return parents_to_edgelist(PAPER_FIGURE1_PARENTS)


class TestStructure:
    def test_twin_is_involution_and_reverses(self):
        dcel = build_dcel(figure1_edges())
        h = dcel.num_halfedges
        assert h == 10
        for e in range(h):
            t = int(dcel.twin[e])
            assert int(dcel.twin[t]) == e
            assert dcel.src[e] == dcel.dst[t]
            assert dcel.dst[e] == dcel.src[t]

    def test_next_permutes_edges_within_source(self):
        dcel = build_dcel(figure1_edges())
        h = dcel.num_halfedges
        # next is a permutation of the half-edges...
        assert sorted(dcel.next.tolist()) == list(range(h))
        # ...that never leaves the source node's out-star.
        for e in range(h):
            assert dcel.src[int(dcel.next[e])] == dcel.src[e]

    def test_next_cycles_cover_each_out_star(self):
        parents = random_attachment_tree(50, seed=1)
        edges = parents_to_edgelist(parents)
        dcel = build_dcel(edges)
        degrees = edges.degrees()
        for node in range(50):
            start = int(dcel.first[node])
            if degrees[node] == 0:
                assert start == -1
                continue
            seen = set()
            e = start
            while e not in seen:
                seen.add(e)
                assert dcel.src[e] == node
                e = int(dcel.next[e])
            assert len(seen) == degrees[node]

    def test_first_points_to_lexicographically_smallest_neighbor(self):
        dcel = build_dcel(figure1_edges())
        for node in range(6):
            e = int(dcel.first[node])
            if e == -1:
                continue
            neighbors = dcel.dst[dcel.src == node]
            assert dcel.dst[e] == neighbors.min()

    def test_undirected_edge_ids(self):
        dcel = build_dcel(figure1_edges())
        assert dcel.undirected_edge_ids.tolist() == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]

    def test_single_node_tree(self):
        dcel = build_dcel(EdgeList.from_pairs([], n=1))
        assert dcel.num_halfedges == 0
        assert dcel.first.tolist() == [-1]

    def test_two_node_tree(self):
        dcel = build_dcel(EdgeList.from_pairs([(0, 1)], n=2))
        assert dcel.num_halfedges == 2
        assert dcel.next.tolist() == [0, 1]  # each out-star is a singleton cycle
        assert dcel.twin.tolist() == [1, 0]


class TestValidation:
    def test_wrong_edge_count_rejected(self):
        with pytest.raises(NotATreeError):
            build_dcel(EdgeList.from_pairs([(0, 1), (1, 2), (0, 2)], n=3))

    def test_self_loop_rejected(self):
        with pytest.raises(NotATreeError):
            build_dcel(EdgeList.from_pairs([(0, 0), (1, 2)], n=3))

    def test_empty_tree_rejected(self):
        with pytest.raises(NotATreeError):
            build_dcel(EdgeList.from_pairs([], n=0))


class TestCost:
    def test_sort_dominates_charged_cost(self, gpu_ctx):
        parents = random_attachment_tree(2000, seed=2)
        build_dcel(parents_to_edgelist(parents), ctx=gpu_ctx)
        from repro.device import summarize_kernels

        summary = summarize_kernels(gpu_ctx.records)
        sort_time = summary["radix_sort_pairs"]["time_s"]
        assert sort_time > 0.3 * gpu_ctx.elapsed
