"""Tests for the device specifications and presets."""

import dataclasses

import pytest

from repro.device import GTX980, XEON_X5650_MULTI, XEON_X5650_SINGLE, DeviceSpec, get_device


class TestPresets:
    def test_gpu_preset_is_gpu(self):
        assert GTX980.kind == "gpu"
        assert GTX980.cores == 2048

    def test_cpu_presets_are_cpu(self):
        assert XEON_X5650_SINGLE.kind == "cpu"
        assert XEON_X5650_SINGLE.cores == 1
        assert XEON_X5650_MULTI.kind == "cpu"
        assert XEON_X5650_MULTI.cores == 6

    def test_gpu_has_more_throughput_than_single_core(self):
        assert GTX980.peak_ops_per_second > 10 * XEON_X5650_SINGLE.peak_ops_per_second

    def test_multi_core_faster_than_single_core(self):
        assert XEON_X5650_MULTI.peak_ops_per_second > XEON_X5650_SINGLE.peak_ops_per_second

    def test_gpu_launch_overhead_dominates_cpu_call_overhead(self):
        assert GTX980.launch_overhead_s > XEON_X5650_SINGLE.launch_overhead_s

    def test_scalar_seconds_per_op_positive(self):
        for spec in (GTX980, XEON_X5650_SINGLE, XEON_X5650_MULTI):
            assert spec.scalar_seconds_per_op > 0

    def test_presets_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX980.cores = 1  # type: ignore[misc]


class TestGetDevice:
    @pytest.mark.parametrize("name,expected", [
        ("gpu", GTX980),
        ("gtx980", GTX980),
        ("GPU", GTX980),
        ("cpu-single", XEON_X5650_SINGLE),
        ("cpu1", XEON_X5650_SINGLE),
        ("cpu", XEON_X5650_MULTI),
        ("cpu-multi", XEON_X5650_MULTI),
    ])
    def test_lookup(self, name, expected):
        assert get_device(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown device"):
            get_device("tpu")


class TestValidation:
    def _base_kwargs(self):
        return dict(name="x", kind="cpu", cores=1, clock_hz=1e9, ops_per_cycle=1.0,
                    mem_bandwidth_bytes=1e9, launch_overhead_s=0.0)

    def test_bad_kind_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["kind"] = "fpga"
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    @pytest.mark.parametrize("field,value", [
        ("cores", 0),
        ("clock_hz", 0.0),
        ("mem_bandwidth_bytes", -1.0),
        ("ops_per_cycle", 0.0),
        ("launch_overhead_s", -1e-6),
        ("dependent_latency_s", -1e-9),
    ])
    def test_nonpositive_parameters_rejected(self, field, value):
        kwargs = self._base_kwargs()
        kwargs[field] = value
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_with_cores_returns_modified_copy(self):
        doubled = XEON_X5650_MULTI.with_cores(12)
        assert doubled.cores == 12
        assert XEON_X5650_MULTI.cores == 6
        assert doubled.clock_hz == XEON_X5650_MULTI.clock_hz
