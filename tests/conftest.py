"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import GTX980, XEON_X5650_MULTI, XEON_X5650_SINGLE, ExecutionContext
from repro.graphs import EdgeList, parents_to_edgelist
from repro.graphs.generators import (
    barabasi_albert_tree,
    grasp_tree,
    random_attachment_tree,
)


@pytest.fixture
def gpu_ctx():
    """A fresh GPU execution context."""
    return ExecutionContext(GTX980, trace=True)


@pytest.fixture
def cpu_ctx():
    """A fresh single-core CPU execution context."""
    return ExecutionContext(XEON_X5650_SINGLE, trace=True)


@pytest.fixture
def multicore_ctx():
    """A fresh multi-core CPU execution context."""
    return ExecutionContext(XEON_X5650_MULTI, trace=True)


# ----------------------------------------------------------------------
# Tree helpers
# ----------------------------------------------------------------------

#: Hand-built example tree used across tests (mirrors the paper's Figure 1):
#: root 0 with children 2, 3, 4; node 2 with children 1 and 5.
PAPER_FIGURE1_PARENTS = np.asarray([-1, 2, 0, 0, 0, 2], dtype=np.int64)


@pytest.fixture
def figure1_parents():
    """The 6-node example tree from the paper's Figure 1."""
    return PAPER_FIGURE1_PARENTS.copy()


def make_tree(kind: str, n: int, seed: int) -> np.ndarray:
    """Build a test tree of the requested family."""
    if kind == "shallow":
        return random_attachment_tree(n, seed=seed)
    if kind == "deep":
        return grasp_tree(n, max(1, n // 16), seed=seed)
    if kind == "path":
        return grasp_tree(n, 1, seed=seed, relabel=False)
    if kind == "scale-free":
        return barabasi_albert_tree(n, seed=seed)
    if kind == "star":
        parents = np.zeros(n, dtype=np.int64)
        parents[0] = -1
        return parents
    raise ValueError(kind)


TREE_KINDS = ("shallow", "deep", "path", "scale-free", "star")


def random_connected_graph(n: int, extra_edges: int, seed: int) -> EdgeList:
    """A connected random graph: a random tree plus ``extra_edges`` random edges."""
    parents = random_attachment_tree(n, seed=seed, relabel=False)
    tree = parents_to_edgelist(parents)
    rng = np.random.default_rng(seed + 1)
    eu = rng.integers(0, n, size=extra_edges, dtype=np.int64)
    ev = rng.integers(0, n, size=extra_edges, dtype=np.int64)
    return EdgeList(
        np.concatenate([tree.u, eu]), np.concatenate([tree.v, ev]), n
    )
