"""Tests for BFS (GPU-style level-synchronous and sequential)."""

import numpy as np
import pytest

from repro.device import ExecutionContext, GTX980
from repro.errors import InvalidGraphError
from repro.graphs import CSRGraph, EdgeList, bfs, bfs_cpu, bfs_gpu
from repro.graphs.generators import grid_graph, path_graph, rmat_graph

from .conftest import random_connected_graph


def networkx_levels(edges, source):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(edges.num_nodes))
    g.add_edges_from((int(a), int(b)) for a, b in edges.edges())
    lengths = nx.single_source_shortest_path_length(g, source)
    out = np.full(edges.num_nodes, -1, dtype=np.int64)
    for node, dist in lengths.items():
        out[node] = dist
    return out


class TestCorrectness:
    @pytest.mark.parametrize("variant", [bfs_gpu, bfs_cpu])
    def test_levels_match_networkx(self, variant):
        for seed in range(5):
            g = random_connected_graph(80, 60, seed=seed)
            csr = CSRGraph.from_edgelist(g)
            result = variant(csr, 0)
            assert np.array_equal(result.levels, networkx_levels(g, 0))

    @pytest.mark.parametrize("variant", [bfs_gpu, bfs_cpu])
    def test_parents_consistent_with_levels(self, variant):
        g = random_connected_graph(120, 90, seed=7)
        csr = CSRGraph.from_edgelist(g)
        result = variant(csr, 3)
        for node in range(csr.num_nodes):
            if node == 3:
                assert result.parents[node] == -1
            else:
                parent = result.parents[node]
                assert result.levels[node] == result.levels[parent] + 1
                assert node in csr.neighbors(parent).tolist()

    @pytest.mark.parametrize("variant", [bfs_gpu, bfs_cpu])
    def test_tree_edges_form_bfs_tree(self, variant):
        from repro.graphs import is_tree

        g = random_connected_graph(60, 40, seed=8)
        csr = CSRGraph.from_edgelist(g)
        result = variant(csr, 0)
        mask = result.tree_edge_mask(g.num_edges)
        assert int(mask.sum()) == g.num_nodes - 1
        tree = EdgeList(g.u[mask], g.v[mask], g.num_nodes)
        assert is_tree(tree)

    def test_gpu_and_cpu_agree(self):
        g = rmat_graph(8, 6, seed=2)
        csr = CSRGraph.from_edgelist(g)
        a = bfs_gpu(csr, 0)
        b = bfs_cpu(csr, 0)
        assert np.array_equal(a.levels, b.levels)

    def test_disconnected_leaves_unreached(self):
        g = EdgeList.from_pairs([(0, 1)], n=4)
        csr = CSRGraph.from_edgelist(g)
        result = bfs_gpu(csr, 0)
        assert result.levels.tolist() == [0, 1, -1, -1]
        assert result.reached.tolist() == [True, True, False, False]

    def test_path_graph_levels(self):
        csr = CSRGraph.from_edgelist(path_graph(50))
        result = bfs_gpu(csr, 0)
        assert np.array_equal(result.levels, np.arange(50))
        assert result.num_levels == 50

    def test_source_out_of_range_rejected(self):
        csr = CSRGraph.from_edgelist(path_graph(5))
        with pytest.raises(InvalidGraphError):
            bfs_gpu(csr, 10)
        with pytest.raises(InvalidGraphError):
            bfs_cpu(csr, -1)

    def test_dispatch(self):
        csr = CSRGraph.from_edgelist(path_graph(5))
        assert bfs(csr, 0, device="gpu").levels.tolist() == bfs(csr, 0, device="cpu").levels.tolist()
        with pytest.raises(ValueError):
            bfs(csr, 0, device="quantum")


class TestCostModel:
    def test_diameter_sensitivity(self):
        """Per-level launches make the long path far more expensive per edge
        than the square grid of the same size — the effect behind the paper's
        CK-vs-TV road-graph results."""
        n = 2500
        path_csr = CSRGraph.from_edgelist(path_graph(n))
        grid_csr = CSRGraph.from_edgelist(grid_graph(50, 50))
        path_ctx = ExecutionContext(GTX980)
        bfs_gpu(path_csr, 0, ctx=path_ctx)
        grid_ctx = ExecutionContext(GTX980)
        bfs_gpu(grid_csr, 0, ctx=grid_ctx)
        assert path_ctx.elapsed > 5 * grid_ctx.elapsed
