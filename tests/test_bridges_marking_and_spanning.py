"""Tests for the shared marking walk and spanning-tree glue."""

import numpy as np
import pytest

from repro.bridges import TreeEdgeView, child_endpoints, mark_cycle_edges, split_tree_edges
from repro.errors import InvalidGraphError
from repro.graphs import EdgeList, depths_from_parents
from repro.graphs.generators import random_attachment_tree


class TestMarkCycleEdges:
    def test_no_nontree_edges_marks_nothing(self, figure1_parents):
        levels = depths_from_parents(figure1_parents)
        marked = mark_cycle_edges(figure1_parents, levels,
                                  np.asarray([], dtype=np.int64),
                                  np.asarray([], dtype=np.int64))
        assert not marked.any()

    def test_marks_exactly_the_cycle_path(self, figure1_parents):
        # Non-tree edge {1, 5}: both are children of 2, so exactly the tree
        # edges (1,2) and (5,2) lie on the cycle.
        levels = depths_from_parents(figure1_parents)
        marked = mark_cycle_edges(figure1_parents, levels,
                                  np.asarray([1]), np.asarray([5]))
        assert marked.tolist() == [False, True, False, False, False, True]

    def test_ancestor_descendant_cycle(self, figure1_parents):
        # Non-tree edge {0, 5} closes the cycle through nodes 5, 2, 0:
        # marks tree edges (5,2) and (2,0).
        levels = depths_from_parents(figure1_parents)
        marked = mark_cycle_edges(figure1_parents, levels,
                                  np.asarray([0]), np.asarray([5]))
        assert marked.tolist() == [False, False, True, False, False, True]

    def test_self_loop_marks_nothing(self, figure1_parents):
        levels = depths_from_parents(figure1_parents)
        marked = mark_cycle_edges(figure1_parents, levels,
                                  np.asarray([3]), np.asarray([3]))
        assert not marked.any()

    def test_root_never_marked(self):
        parents = random_attachment_tree(60, seed=1, relabel=False)
        levels = depths_from_parents(parents)
        rng = np.random.default_rng(2)
        u = rng.integers(0, 60, size=40)
        v = rng.integers(0, 60, size=40)
        marked = mark_cycle_edges(parents, levels, u, v)
        assert not marked[0]  # node 0 is the root of an unshuffled tree

    def test_mismatched_arrays_rejected(self, figure1_parents):
        levels = depths_from_parents(figure1_parents)
        with pytest.raises(InvalidGraphError):
            mark_cycle_edges(figure1_parents, levels, np.asarray([1]), np.asarray([1, 2]))

    def test_cost_scales_with_path_length(self, gpu_ctx):
        from repro.device import ExecutionContext, GTX980
        from repro.graphs.generators import grasp_tree

        n = 2000
        shallow = random_attachment_tree(n, seed=3, relabel=False)
        deep = grasp_tree(n, 1, seed=3, relabel=False)  # a path
        u = np.zeros(50, dtype=np.int64)
        v = np.full(50, n - 1, dtype=np.int64)
        ctx_shallow = ExecutionContext(GTX980)
        mark_cycle_edges(shallow, depths_from_parents(shallow), u, v, ctx=ctx_shallow)
        ctx_deep = ExecutionContext(GTX980)
        mark_cycle_edges(deep, depths_from_parents(deep), u, v, ctx=ctx_deep)
        assert ctx_deep.elapsed > 3 * ctx_shallow.elapsed


class TestSplitTreeEdges:
    def test_split(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (0, 2)], n=3)
        mask = np.asarray([True, True, False])
        view = split_tree_edges(g, mask)
        assert isinstance(view, TreeEdgeView)
        assert view.tree_edges.num_edges == 2
        assert view.tree_edge_indices.tolist() == [0, 1]
        assert view.nontree_indices.tolist() == [2]
        assert view.nontree_u.tolist() == [0]
        assert view.nontree_v.tolist() == [2]

    def test_wrong_mask_length_rejected(self):
        g = EdgeList.from_pairs([(0, 1)], n=2)
        with pytest.raises(InvalidGraphError):
            split_tree_edges(g, np.asarray([True, False]))


class TestChildEndpoints:
    def test_child_identification(self, figure1_parents):
        from repro.graphs import parents_to_edgelist

        tree = parents_to_edgelist(figure1_parents)
        view = split_tree_edges(tree, np.ones(tree.num_edges, dtype=bool))
        children = child_endpoints(view, figure1_parents)
        # parents_to_edgelist emits (child, parent) pairs in child order.
        assert children.tolist() == view.tree_edges.u.tolist()

    def test_inconsistent_parents_rejected(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3)], n=4)
        view = split_tree_edges(g, np.ones(2, dtype=bool))
        bad_parents = np.asarray([-1, 0, -1, -1])  # edge (2,3) not oriented
        with pytest.raises(InvalidGraphError):
            child_endpoints(view, bad_parents)
