"""Columnar fast-path tests: block admission ≡ per-query loop, ring buffers,
vectorized results, and the error surface of the vectorized paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidQueryError, ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.service import BatchPolicy, LCAQueryService, MicroBatchScheduler

from .conftest import make_tree


def arrival_schedule(q, seed, *, mean_gap_s=1e-4, tie_fraction=0.3):
    """Randomized non-decreasing arrivals with deliberate same-instant ties."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap_s, size=q)
    gaps[rng.random(q) < tie_fraction] = 0.0  # bursts arriving together
    return np.cumsum(gaps)


def batch_signature(batch):
    return (batch.trigger, batch.flush_s, batch.tickets.tolist(),
            batch.xs.tolist(), batch.ys.tolist(), batch.arrival_s.tolist())


def stats_signature(stats):
    return (stats.queries_submitted, stats.queries_answered,
            stats.batches_flushed, stats.batch_size_histogram,
            stats.flush_triggers, stats.backend_choices,
            stats.latency_mean_s, stats.latency_p50_s, stats.latency_p99_s,
            stats.latency_max_s, stats.busy_time_s, stats.span_s)


# ----------------------------------------------------------------------
# Scheduler: submit_block ≡ a loop of submit() calls
# ----------------------------------------------------------------------

@pytest.mark.parametrize("max_batch,max_wait,seed", [
    (1, 0.0, 0), (4, 0.0, 1), (8, 5e-5, 2), (64, 1e-3, 3), (1024, 1e-4, 4),
])
def test_submit_block_matches_per_query_submission(max_batch, max_wait, seed):
    q = 500
    arrivals = arrival_schedule(q, seed)
    xs = np.arange(q, dtype=np.int64)
    ys = xs + 1
    tickets = np.arange(q, dtype=np.int64)

    loop = MicroBatchScheduler(BatchPolicy(max_batch, max_wait))
    loop_batches = []
    for i in range(q):
        loop_batches.extend(loop.submit(i, int(xs[i]), int(ys[i]),
                                        at=float(arrivals[i])))
    block = MicroBatchScheduler(BatchPolicy(max_batch, max_wait))
    block_batches = block.submit_block(tickets, xs, ys, arrivals)

    assert [batch_signature(b) for b in block_batches] == \
           [batch_signature(b) for b in loop_batches]
    assert block.pending_count == loop.pending_count
    assert block.next_deadline == loop.next_deadline
    assert block.clock.now == loop.clock.now
    # Drain the stragglers identically too.
    assert [batch_signature(b) for b in block.drain()] == \
           [batch_signature(b) for b in loop.drain()]


def test_flushed_slices_survive_buffer_refills():
    # Tiny pending windows over many submissions force several buffer
    # refills; previously flushed zero-copy slices must stay intact.
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=2, max_wait_s=10.0))
    batches = []
    for i in range(5_000):
        batches.extend(sched.submit(i, 2 * i, 2 * i + 1, at=float(i) * 1e-6))
    assert len(batches) == 2_500
    for k, batch in enumerate(batches):
        assert batch.tickets.tolist() == [2 * k, 2 * k + 1]
        assert batch.xs.tolist() == [4 * k, 4 * k + 2]


def test_submit_block_rejects_backwards_arrivals():
    sched = MicroBatchScheduler(BatchPolicy())
    sched.submit(0, 1, 2, at=1.0)
    with pytest.raises(ServiceError):
        sched.submit_block(np.asarray([1]), np.asarray([3]), np.asarray([4]),
                           np.asarray([0.5]))


def test_pending_snapshot_is_row_wise():
    sched = MicroBatchScheduler(BatchPolicy(max_batch_size=8, max_wait_s=1.0))
    sched.submit(7, 1, 2, at=0.25)
    (pending,) = sched.pending
    assert (pending.ticket, pending.x, pending.y, pending.arrival_s) == \
           (7, 1, 2, 0.25)


# ----------------------------------------------------------------------
# Service: submit_many ≡ a loop of submit() calls (the satellite's
# property/equivalence test)
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(("shallow", "deep", "star")),
    n=st.integers(min_value=2, max_value=200),
    q=st.integers(min_value=1, max_value=80),
    max_batch=st.integers(min_value=1, max_value=32),
    max_wait_us=st.sampled_from((0.0, 10.0, 200.0, 1000.0)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_columnar_equals_per_query(kind, n, q, max_batch, max_wait_us,
                                            seed):
    parents = make_tree(kind, n, seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    arrivals = arrival_schedule(q, seed + 2)
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_s=max_wait_us * 1e-6)

    columnar = LCAQueryService(policy=policy)
    columnar.register_tree("t", parents)
    col_tickets = columnar.submit_many("t", xs, ys, at=arrivals)

    reference = LCAQueryService(policy=policy)
    reference.register_tree("t", parents)
    ref_tickets = np.asarray([
        reference.submit("t", int(xs[i]), int(ys[i]), at=float(arrivals[i]))
        for i in range(q)
    ])

    assert np.array_equal(col_tickets, ref_tickets)
    assert columnar.pending_count("t") == reference.pending_count("t")
    columnar.drain()
    reference.drain()
    assert np.array_equal(columnar.results(col_tickets),
                          reference.results(ref_tickets))
    assert np.array_equal(columnar.latencies(col_tickets),
                          reference.latencies(ref_tickets))
    # Same batches, same triggers, same backend mix, same tail percentiles.
    assert stats_signature(columnar.stats()) == stats_signature(reference.stats())


def test_columnar_interleaves_other_datasets_deadlines():
    # Queries pending on dataset b must flush (and queue on the backends, in
    # flush-time order) while a block is being admitted to dataset a —
    # exactly as they do under per-query submission.
    pa = random_attachment_tree(600, seed=0)
    pb = random_attachment_tree(600, seed=1)
    q = 120
    xs, ys = generate_random_queries(600, q, seed=2)
    # Starts after b's submissions (the shared clock is monotone), paced
    # slower than the wait budget so b's deadlines expire mid-block.
    arrivals = 4e-5 + np.arange(q, dtype=np.float64) * 2e-4

    def run(columnar: bool):
        service = LCAQueryService(
            policy=BatchPolicy(max_batch_size=16, max_wait_s=5e-4))
        service.register_tree("a", pa)
        service.register_tree("b", pb)
        tb = [service.submit("b", 3 * i, 3 * i + 1, at=float(i) * 1e-5)
              for i in range(4)]
        if columnar:
            ta = service.submit_many("a", xs, ys, at=arrivals)
        else:
            ta = [service.submit("a", int(xs[i]), int(ys[i]),
                                 at=float(arrivals[i])) for i in range(q)]
        service.drain()
        return (service.results(ta).tolist(), service.results(tb).tolist(),
                service.latencies(ta).tolist(),
                service.latencies(tb).tolist(),
                stats_signature(service.stats()))

    assert run(columnar=True) == run(columnar=False)


def test_same_instant_size_and_wait_batches_keep_submission_order():
    # Regression: with max_wait_s=0 and same-instant arrivals, a block can
    # produce a size-triggered batch and a later wait-triggered batch with
    # the *same* flush time.  The per-query path serves them in submission
    # order (the size batch completed first and occupies the backend first);
    # the columnar path must not let another dataset's pending queries
    # reshuffle that tie.
    pa = random_attachment_tree(64, seed=20)
    pb = random_attachment_tree(64, seed=21)

    def run(columnar: bool):
        service = LCAQueryService(
            policy=BatchPolicy(max_batch_size=2, max_wait_s=0.0))
        service.register_tree("a", pa)
        service.register_tree("b", pb)
        tb = service.submit("b", 1, 2, at=0.0)  # pending on another dataset
        xs, ys = np.asarray([3, 4, 5, 6]), np.asarray([7, 8, 9, 10])
        at = np.asarray([0.0, 0.0, 0.0, 1.0])
        if columnar:
            ta = service.submit_many("a", xs, ys, at=at)
        else:
            ta = [service.submit("a", int(xs[i]), int(ys[i]), at=float(at[i]))
                  for i in range(4)]
        service.drain()
        return (service.latencies(ta).tolist(), service.latency(tb),
                stats_signature(service.stats()))

    assert run(columnar=True) == run(columnar=False)


def test_submit_many_with_default_arrivals_coalesces_now():
    parents = random_attachment_tree(300, seed=5)
    xs, ys = generate_random_queries(300, 40, seed=6)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=8,
                                                 max_wait_s=1e-3))
    service.register_tree("t", parents)
    tickets = service.submit_many("t", xs, ys)  # all arrive "now"
    service.drain()
    assert np.array_equal(service.results(tickets),
                          BinaryLiftingLCA(parents).query(xs, ys))
    stats = service.stats()
    assert stats.flush_triggers.get("size", 0) == 5
    assert stats.queries_answered == 40


# ----------------------------------------------------------------------
# Vectorized admission: error positions match the per-query loop
# ----------------------------------------------------------------------

def test_submit_many_out_of_range_rejects_at_its_own_position():
    parents = random_attachment_tree(100, seed=7)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=4,
                                                 max_wait_s=1e-3))
    service.register_tree("t", parents)
    xs = np.asarray([1, 2, 3, 4, 5, 500, 6])  # index 5 is out of range
    ys = np.asarray([2, 3, 4, 5, 6, 7, 8])
    at = np.arange(7, dtype=np.float64) * 1e-6
    with pytest.raises(InvalidQueryError):
        service.submit_many("t", xs, ys, at=at)
    # The clean prefix was admitted (and its size-triggered batch served),
    # exactly like the per-query loop.
    assert service.stats().queries_submitted == 5
    assert service.pending_count("t") == 1
    service.drain()
    assert np.array_equal(
        service.results(np.arange(5)),
        BinaryLiftingLCA(parents).query(xs[:5], ys[:5]))
    # Negative nodes are caught by the same fused check.
    with pytest.raises(InvalidQueryError):
        service.submit_many("t", [-1], [3], at=[1e-3])


def test_submit_many_backwards_arrival_rejects_at_its_own_position():
    parents = random_attachment_tree(100, seed=8)
    service = LCAQueryService()
    service.register_tree("t", parents)
    with pytest.raises(ServiceError, match="backwards"):
        service.submit_many("t", [1, 2, 3], [4, 5, 6],
                            at=[1e-3, 2e-3, 1e-3])  # third query rewinds
    assert service.stats().queries_submitted == 2
    # A block starting before the current clock admits nothing.
    with pytest.raises(ServiceError, match="backwards"):
        service.submit_many("t", [1], [2], at=[1e-4])
    assert service.stats().queries_submitted == 2


# ----------------------------------------------------------------------
# Vectorized results(): one lookup, uniform error surface (regression
# tests for the former quadratic-ish per-ticket path)
# ----------------------------------------------------------------------

def test_results_vectorized_and_error_surface():
    parents = random_attachment_tree(200, seed=9)
    # max_batch_size > stream length: every query stays queued until drain().
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=16,
                                                 max_wait_s=1e-3))
    service.register_tree("t", parents)
    xs, ys = generate_random_queries(200, 8, seed=10)
    tickets = service.submit_many("t", xs, ys,
                                  at=np.arange(8, dtype=np.float64) * 1e-6)

    # Unknown tickets raise uniformly — never issued, negative, or mixed
    # with known ones.
    with pytest.raises(ServiceError, match="unknown ticket 999"):
        service.results([999])
    with pytest.raises(ServiceError, match="unknown ticket -1"):
        service.results([-1])
    with pytest.raises(ServiceError, match="unknown ticket"):
        service.results([0, 1, 999])
    # Queued tickets raise uniformly before the drain...
    with pytest.raises(ServiceError, match="still queued"):
        service.results(tickets)
    with pytest.raises(ServiceError, match="still queued"):
        service.result(int(tickets[0]))
    with pytest.raises(ServiceError, match="still queued"):
        service.latency(int(tickets[0]))
    # ...and unknown takes precedence over queued, as in result().
    with pytest.raises(ServiceError, match="unknown ticket"):
        service.results([int(tickets[0]), 999])

    service.drain()
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    assert np.array_equal(service.results(tickets), expected)
    # Scalars, lists, and duplicated / permuted fancy indexes all resolve.
    assert service.results(int(tickets[3])).tolist() == [int(expected[3])]
    perm = [int(tickets[5]), int(tickets[2]), int(tickets[5])]
    assert service.results(perm).tolist() == \
           [int(expected[5]), int(expected[2]), int(expected[5])]
    assert service.results([]).size == 0
    assert service.latencies([]).size == 0
    assert service.results([]).dtype == np.int64


def test_latencies_matches_scalar_latency():
    parents = random_attachment_tree(150, seed=11)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=4,
                                                 max_wait_s=1e-4))
    service.register_tree("t", parents)
    xs, ys = generate_random_queries(150, 12, seed=12)
    tickets = service.submit_many("t", xs, ys,
                                  at=np.arange(12, dtype=np.float64) * 1e-5)
    service.drain()
    vec = service.latencies(tickets)
    assert vec.tolist() == [service.latency(int(t)) for t in tickets]
    assert (vec > 0).all()


# ----------------------------------------------------------------------
# Ticket tables survive growth
# ----------------------------------------------------------------------

def test_ticket_tables_grow_past_initial_capacity():
    parents = random_attachment_tree(500, seed=13)
    q = 3_000  # > the initial 1024-slot ticket table
    xs, ys = generate_random_queries(500, q, seed=14)
    service = LCAQueryService(policy=BatchPolicy(max_batch_size=256,
                                                 max_wait_s=1e-4))
    service.register_tree("t", parents)
    at = np.arange(q, dtype=np.float64) * 1e-7
    tickets = service.submit_many("t", xs, ys, at=at)
    service.drain()
    assert np.array_equal(service.results(tickets),
                          BinaryLiftingLCA(parents).query(xs, ys))
    assert service.stats().queries_answered == q
