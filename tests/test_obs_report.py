"""repro.obs.report: decomposition, attribution and the CLI.

The load-bearing property is exactness: every answered query's recorded
latency splits into queue + lane wait + service with *zero* residual, on
single services and clusters alike, so the tail-attribution table is an
accounting identity rather than an estimate.
"""

import json

import numpy as np
import pytest

from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.obs import TraceRecorder
from repro.obs.events import EV_SHED
from repro.obs.report import (
    batch_spans,
    decomposition_summary,
    dispatch_error,
    main,
    query_breakdown,
    replica_utilization,
    tail_attribution,
)
from repro.service import BatchPolicy, ClusterService, LCAQueryService
from repro.workloads import make_scenario, replay

POLICY = BatchPolicy(max_batch_size=64, max_wait_s=2e-4)


@pytest.fixture(scope="module")
def traced_service():
    recorder = TraceRecorder()
    service = LCAQueryService(policy=POLICY, observer=recorder)
    parents = random_attachment_tree(512, seed=0)
    service.register_tree("t", parents)
    xs, ys = generate_random_queries(512, 600, seed=1)
    service.submit_many("t", xs, ys, at=np.arange(600, dtype=np.float64) / 1e5)
    service.drain()
    return service, recorder.table()


@pytest.fixture(scope="module")
def cluster_trace():
    recorder = TraceRecorder()
    cluster = ClusterService(4, policy=POLICY, max_pending=4096)
    report = replay(
        cluster, make_scenario("flash-crowd", scale=0.25), observer=recorder
    )
    return report, recorder.table()


# ----------------------------------------------------------------------
# Decomposition
# ----------------------------------------------------------------------
def test_breakdown_is_an_exact_accounting(traced_service):
    service, table = traced_service
    b = query_breakdown(table)
    assert b.n_queries == service.stats().queries_answered
    # The three components sum back to the recorded latency bit-for-bit.
    assert np.array_equal(
        b.queue_wait_s + b.lane_wait_s + b.service_s, b.latency_s
    )
    assert float(b.queue_wait_s.min()) >= 0.0
    assert float(b.lane_wait_s.min()) >= 0.0
    assert np.array_equal(b.latency_s, b.completion_s - b.arrival_s)
    assert not b.cache_lane.any()  # no answer cache in this run


def test_breakdown_decomposes_cluster_traces_too(cluster_trace):
    report, table = cluster_trace
    b = query_breakdown(table)
    assert b.n_queries == report.queries_admitted
    assert np.array_equal(
        b.queue_wait_s + b.lane_wait_s + b.service_s, b.latency_s
    )
    assert len(np.unique(b.replica)) == 4


def test_decomposition_summary_renders(traced_service):
    _, table = traced_service
    text = decomposition_summary(query_breakdown(table))
    assert "latency decomposition over 600 answered queries" in text
    for component in ("queue", "lane wait", "service", "total"):
        assert component in text


# ----------------------------------------------------------------------
# Batch spans, dispatch accuracy, utilization
# ----------------------------------------------------------------------
def test_batch_spans_join_the_lifecycle(traced_service):
    service, table = traced_service
    spans = batch_spans(table)
    assert len(spans) == service.stats().batches_flushed
    assert sum(span.size for span in spans) == 600
    triggers = set(service.stats().flush_triggers)
    for span in spans:
        assert span.flush_s <= span.start_s <= span.end_s
        assert span.queue_s >= 0.0 and span.service_s > 0.0
        assert span.trigger in triggers
        assert not np.isnan(span.predicted_s)


def test_dispatch_error_prices_every_batch(traced_service):
    service, table = traced_service
    err = dispatch_error(table)
    assert err.n_batches == service.stats().batches_flushed
    assert err.mean_predicted_s > 0.0
    assert err.mean_charged_s > 0.0
    assert err.bias > 0.0
    assert err.mean_abs_rel_error >= 0.0


def test_replica_utilization_bounds(cluster_trace):
    _, table = cluster_trace
    rows = replica_utilization(table)
    assert {row.replica for row in rows} == {0, 1, 2, 3}
    for row in rows:
        assert 0.0 < row.utilization <= 1.0 + 1e-9
        assert row.busy_s <= row.span_s + 1e-12


# ----------------------------------------------------------------------
# Tail attribution
# ----------------------------------------------------------------------
def test_tail_attribution_lists_the_worst_queries(traced_service):
    _, table = traced_service
    text = tail_attribution(table, quantile=0.99, worst=5)
    lines = text.splitlines()
    assert "p99 latency" in lines[0]
    assert "worst 5" in lines[0]
    assert len(lines) == 7  # header + column line + 5 rows
    assert "served in" in lines[1] and "behind" in lines[1]
    assert all("batch" in line for line in lines[2:])


def test_shed_events_account_for_every_shed_query(cluster_trace):
    report, table = cluster_trace
    shed = table.of_kind(EV_SHED)
    assert report.queries_shed > 0
    assert int(shed.detail.sum()) == report.queries_shed
    assert (shed.replica == -1).all()  # cluster-level events


def test_empty_trace_degrades_gracefully():
    table = TraceRecorder().table()
    assert query_breakdown(table).n_queries == 0
    assert batch_spans(table) == []
    assert dispatch_error(table).n_batches == 0
    assert replica_utilization(table) == []
    assert "no answered queries" in decomposition_summary(query_breakdown(table))
    assert "no answered queries" in tail_attribution(table)


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------
def test_report_cli_end_to_end(tmp_path, capsys):
    out = tmp_path / "obs"
    code = main(
        [
            "--scenario", "flash-crowd",
            "--scale", "0.1",
            "--replicas", "2",
            "--out", str(out),
            "--jsonl",
        ]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "latency decomposition" in stdout
    assert "p99 latency" in stdout
    assert "replica utilization" in stdout
    assert "dispatch accuracy" in stdout
    trace = json.loads((out / "trace_flash-crowd.json").read_text())
    assert trace["traceEvents"]
    assert (out / "events_flash-crowd.jsonl").read_text().splitlines()


def test_report_cli_single_replica_sampled(tmp_path, capsys):
    out = tmp_path / "obs"
    code = main(
        [
            "--scenario", "steady",
            "--scale", "0.05",
            "--replicas", "1",
            "--sample", "8",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert "latency decomposition" in capsys.readouterr().out
    assert (out / "trace_steady.json").exists()
