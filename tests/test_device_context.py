"""Tests for the execution context and the kernel cost model."""

import pytest

from repro.device import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    ExecutionContext,
    NullContext,
    ensure_context,
    modeled_kernel_time,
)
from repro.errors import DeviceError


class TestModeledKernelTime:
    def test_launch_overhead_charged_per_launch(self):
        t1 = modeled_kernel_time(GTX980, threads=1, ops=1, launches=1)
        t2 = modeled_kernel_time(GTX980, threads=1, ops=1, launches=3)
        assert t2 - t1 == pytest.approx(2 * GTX980.launch_overhead_s)

    def test_more_work_costs_more(self):
        small = modeled_kernel_time(GTX980, threads=10**6, ops=1e6, bytes_read=8e6)
        large = modeled_kernel_time(GTX980, threads=10**7, ops=1e7, bytes_read=8e7)
        assert large > small

    def test_bandwidth_bound_kernel_scales_with_bytes(self):
        base = modeled_kernel_time(GTX980, threads=10**7, ops=1e7, bytes_read=1e9, launches=0)
        double = modeled_kernel_time(GTX980, threads=10**7, ops=1e7, bytes_read=2e9, launches=0)
        assert double == pytest.approx(2 * base)

    def test_divergence_penalty_applies_to_compute(self):
        regular = modeled_kernel_time(GTX980, threads=10**7, ops=1e12, launches=0)
        divergent = modeled_kernel_time(GTX980, threads=10**7, ops=1e12, launches=0,
                                        divergent=True)
        assert divergent == pytest.approx(GTX980.divergence_penalty * regular)

    def test_random_access_penalty_applies_to_memory(self):
        streaming = modeled_kernel_time(GTX980, threads=10**7, ops=1, bytes_read=1e10,
                                        launches=0)
        scattered = modeled_kernel_time(GTX980, threads=10**7, ops=1, bytes_read=1e10,
                                        launches=0, random_access=True)
        assert scattered > streaming

    def test_single_thread_scattered_work_is_latency_bound(self):
        # One thread chasing 1e6 pointers: latency-bound, far slower than the
        # same work spread over a million threads.
        sequential = modeled_kernel_time(XEON_X5650_SINGLE, threads=1, ops=1e6,
                                         bytes_read=8e6, random_access=True, launches=0)
        assert sequential >= 1e6 / 64 * 8 * XEON_X5650_SINGLE.dependent_latency_s

    def test_gpu_tiny_batch_is_slower_per_item_than_large_batch(self):
        # The Figure 6 effect: 1 query per launch vs 100k queries per launch.
        one = modeled_kernel_time(GTX980, threads=1, ops=40, bytes_read=112,
                                  random_access=True)
        bulk = modeled_kernel_time(GTX980, threads=100_000, ops=40 * 100_000,
                                   bytes_read=112 * 100_000, random_access=True)
        assert one > bulk / 100_000 * 10

    def test_negative_parameters_rejected(self):
        with pytest.raises(DeviceError):
            modeled_kernel_time(GTX980, threads=-1, ops=1)
        with pytest.raises(DeviceError):
            modeled_kernel_time(GTX980, threads=1, ops=-1)

    def test_multicore_faster_than_single_core_on_bulk_work(self):
        single = modeled_kernel_time(XEON_X5650_SINGLE, threads=10**6, ops=1e8,
                                     bytes_read=8e8, launches=1)
        multi = modeled_kernel_time(XEON_X5650_MULTI, threads=10**6, ops=1e8,
                                    bytes_read=8e8, launches=1)
        assert multi < single


class TestExecutionContext:
    def test_elapsed_accumulates(self, gpu_ctx):
        t1 = gpu_ctx.kernel("a", threads=1000, ops=1000)
        t2 = gpu_ctx.kernel("b", threads=1000, ops=1000)
        assert gpu_ctx.elapsed == pytest.approx(t1 + t2)

    def test_ops_defaults_to_threads(self, gpu_ctx):
        gpu_ctx.kernel("a", threads=123)
        assert gpu_ctx.total_ops == 123

    def test_totals_tracked(self, gpu_ctx):
        gpu_ctx.kernel("a", threads=10, ops=20, bytes_read=30, bytes_written=40, launches=2)
        assert gpu_ctx.total_ops == 20
        assert gpu_ctx.total_bytes == 70
        assert gpu_ctx.total_launches == 2

    def test_phases_capture_time(self, gpu_ctx):
        with gpu_ctx.phase("alpha"):
            gpu_ctx.kernel("a", threads=10)
        with gpu_ctx.phase("beta"):
            gpu_ctx.kernel("b", threads=10)
        breakdown = gpu_ctx.breakdown()
        assert set(breakdown) == {"alpha", "beta"}
        assert sum(breakdown.values()) == pytest.approx(gpu_ctx.elapsed)

    def test_nested_phases_do_not_double_count(self, gpu_ctx):
        with gpu_ctx.phase("outer"):
            gpu_ctx.kernel("a", threads=10)
            with gpu_ctx.phase("inner"):
                gpu_ctx.kernel("b", threads=10)
        breakdown = gpu_ctx.breakdown()
        assert sum(breakdown.values()) == pytest.approx(gpu_ctx.elapsed)
        assert breakdown["inner"] > 0
        assert breakdown["outer"] > 0

    def test_untagged_time_reported(self, gpu_ctx):
        gpu_ctx.kernel("a", threads=10)
        assert "(untagged)" in gpu_ctx.breakdown()

    def test_empty_phase_name_rejected(self, gpu_ctx):
        with pytest.raises(DeviceError):
            with gpu_ctx.phase(""):
                pass

    def test_trace_records_kernels(self, gpu_ctx):
        gpu_ctx.kernel("mykernel", threads=10)
        assert len(gpu_ctx.records) == 1
        assert gpu_ctx.records[0].name == "mykernel"

    def test_no_trace_keeps_no_records(self):
        ctx = ExecutionContext(GTX980, trace=False)
        ctx.kernel("a", threads=10)
        assert ctx.records == []
        assert ctx.elapsed > 0

    def test_reset_clears_everything(self, gpu_ctx):
        with gpu_ctx.phase("p"):
            gpu_ctx.kernel("a", threads=10)
        gpu_ctx.reset()
        assert gpu_ctx.elapsed == 0
        assert gpu_ctx.breakdown() == {}
        assert gpu_ctx.records == []

    def test_merge_combines_totals_and_phases(self):
        a = ExecutionContext(GTX980)
        b = ExecutionContext(GTX980)
        with a.phase("p"):
            a.kernel("x", threads=10)
        with b.phase("p"):
            b.kernel("y", threads=10)
        with b.phase("q"):
            b.kernel("z", threads=10)
        total = a.elapsed + b.elapsed
        a.merge(b)
        assert a.elapsed == pytest.approx(total)
        assert set(a.breakdown()) == {"p", "q"}

    def test_merge_different_devices_rejected(self):
        a = ExecutionContext(GTX980)
        b = ExecutionContext(XEON_X5650_SINGLE)
        with pytest.raises(DeviceError):
            a.merge(b)

    def test_sequential_is_single_threaded_kernel(self, cpu_ctx):
        t = cpu_ctx.sequential("loop", ops=1000, bytes_touched=8000)
        assert t > 0
        assert cpu_ctx.total_launches == 1


class TestNullContext:
    def test_records_nothing(self):
        ctx = NullContext()
        assert ctx.kernel("a", threads=100) == 0.0
        assert ctx.sequential("b", ops=100) == 0.0
        assert ctx.elapsed == 0.0

    def test_ensure_context_passthrough(self, gpu_ctx):
        assert ensure_context(gpu_ctx) is gpu_ctx

    def test_ensure_context_none_gives_null(self):
        assert isinstance(ensure_context(None), NullContext)
