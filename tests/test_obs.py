"""repro.obs units and trace invariants.

Covers the recorder/table layer (journaling, sampling, ownership
transfer, merge/canonical), the metric registry (counters, gauges,
histograms, snapshot deltas), the exporters (JSONL, Prometheus text,
Chrome trace JSON) and the :class:`StageTimer` — plus the acceptance
invariants that tie a live trace back to the serving stack's own
aggregates:

* tracing is deterministic (two identical runs → bit-identical tables);
* a single service and a 1-replica cluster record the same event
  multiset (canonical forms are equal);
* a sampled trace is a strict subset of the full trace of the same run.
"""

import json

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    StageTimer,
    TraceRecorder,
    TraceTable,
    chrome_trace_events,
    kernel_records_to_chrome,
    prometheus_text,
    service_stats_metrics,
    summarize_kernel_records,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.events import (
    EVENT_NAMES,
    EV_ARRIVAL,
    EV_CACHE_LANE_HIT,
    EV_COMPLETE,
    EV_ENQUEUE,
    EV_FLUSH,
    EV_INDEX_EVICT,
    EV_INDEX_LOAD,
    EV_KERNEL_END,
    EV_KERNEL_START,
    PER_QUERY_KINDS,
)
from repro.service import BatchPolicy, ClusterService, LCAQueryService
from repro.workloads import make_scenario, replay

POLICY = BatchPolicy(max_batch_size=64, max_wait_s=2e-4)


def traced_run(sample=1, queries=600, nodes=512, seed=0, **service_kw):
    """A small single-service run with a recorder attached throughout."""
    recorder = TraceRecorder(sample=sample)
    service = LCAQueryService(policy=POLICY, observer=recorder, **service_kw)
    parents = random_attachment_tree(nodes, seed=seed)
    service.register_tree("t", parents)
    xs, ys = generate_random_queries(nodes, queries, seed=seed + 1)
    arrivals = np.arange(queries, dtype=np.float64) / 1e5
    service.submit_many("t", xs, ys, at=arrivals)
    service.drain()
    return service, recorder


def rowset(table):
    """The table as a set of fully resolved row tuples (order-free)."""
    return {
        (
            float(t),
            int(k),
            int(q),
            int(b),
            int(r),
            float(d),
            table.label_of(int(a)),
        )
        for t, k, q, b, r, d, a in zip(
            table.time_s,
            table.kind,
            table.ticket,
            table.batch,
            table.replica,
            table.detail,
            table.aux,
        )
    }


# ----------------------------------------------------------------------
# Recorder basics
# ----------------------------------------------------------------------
def test_scalar_record_lands_in_columns():
    rec = TraceRecorder()
    code = rec.intern("tree")
    rec.record(EV_ARRIVAL, 0.25, ticket=7, batch=3, replica=2, detail=1.5, aux=code)
    table = rec.table()
    assert table.n_events == len(table) == 1
    assert float(table.time_s[0]) == 0.25
    assert int(table.kind[0]) == EV_ARRIVAL
    assert int(table.ticket[0]) == 7
    assert int(table.batch[0]) == 3
    assert int(table.replica[0]) == 2
    assert float(table.detail[0]) == 1.5
    assert table.label_of(int(table.aux[0])) == "tree"
    assert table.label_code("tree") == code
    assert table.label_code("never") == -1


def test_empty_recorder_freezes_to_typed_empty_columns():
    table = TraceRecorder().table()
    assert table.n_events == 0
    assert table.time_s.dtype == np.float64
    assert table.kind.dtype == np.int16
    assert table.ticket.dtype == np.int64
    assert table.labels == ()


def test_intern_and_batch_ids_are_stable():
    rec = TraceRecorder()
    assert (rec.intern("gpu"), rec.intern("cpu"), rec.intern("gpu")) == (0, 1, 0)
    assert rec.labels == ("gpu", "cpu")
    assert [rec.next_batch_id() for _ in range(3)] == [0, 1, 2]


def test_invalid_sample_rejected():
    with pytest.raises(ServiceError, match="sample"):
        TraceRecorder(sample=0)


def test_table_is_cached_until_next_append():
    rec = TraceRecorder()
    rec.record(EV_FLUSH, 0.0, batch=0)
    first = rec.table()
    assert rec.table() is first
    rec.record(EV_FLUSH, 1.0, batch=1)
    second = rec.table()
    assert second is not first
    # The earlier snapshot is immutable — appends don't grow it.
    assert first.n_events == 1 and second.n_events == 2


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def test_scalar_sampling_keeps_divisible_tickets_and_all_batch_events():
    rec = TraceRecorder(sample=3)
    for ticket in range(7):
        rec.record(EV_COMPLETE, float(ticket), ticket=ticket)
    rec.record(EV_FLUSH, 9.0, batch=0)  # ticket=-1: never sampled out
    table = rec.table()
    assert table.of_kind(EV_COMPLETE).ticket.tolist() == [0, 3, 6]
    assert table.of_kind(EV_FLUSH).n_events == 1


def test_block_sampling_strided_fast_path_matches_predicate():
    tickets = np.arange(37, dtype=np.int64) + 5  # consecutive, offset start
    times = np.linspace(0.0, 1.0, 37)
    details = np.linspace(1.0, 2.0, 37)
    rec = TraceRecorder(sample=4)
    rec.record_block(EV_ENQUEUE, times, tickets, detail=details)
    table = rec.table()
    keep = tickets % 4 == 0
    assert np.array_equal(table.ticket, tickets[keep])
    assert np.array_equal(table.time_s, times[keep])
    assert np.array_equal(table.detail, details[keep])


def test_block_sampling_mask_path_matches_predicate():
    base = np.arange(40, dtype=np.int64)
    tickets = np.concatenate([base[:10], base[25:]])  # gap: not consecutive
    times = np.linspace(0.0, 1.0, tickets.size)
    rec = TraceRecorder(sample=4)
    rec.record_block(EV_ENQUEUE, times, tickets)
    table = rec.table()
    keep = tickets % 4 == 0
    assert np.array_equal(table.ticket, tickets[keep])
    assert np.array_equal(table.time_s, times[keep])


def test_block_sampling_can_drop_everything():
    rec = TraceRecorder(sample=100)
    rec.record_block(EV_ENQUEUE, 0.0, np.array([1, 2, 3], dtype=np.int64))
    assert rec.n_events == 0


def test_owned_block_defers_sampling_to_materialization():
    tickets = np.arange(24, dtype=np.int64)
    times = np.linspace(0.0, 1.0, 24)
    details = np.linspace(5.0, 6.0, 24)
    eager = TraceRecorder(sample=4)
    eager.record_block(EV_COMPLETE, times, tickets, batch=2, detail=details)
    deferred = TraceRecorder(sample=4)
    deferred.record_block(
        EV_COMPLETE, times.copy(), tickets.copy(), batch=2,
        detail=details.copy(), own=True,
    )
    assert eager.table().equals(deferred.table())


def test_block_copies_caller_arrays_by_default():
    tickets = np.arange(8, dtype=np.int64)
    times = np.zeros(8)
    rec = TraceRecorder()
    rec.record_block(EV_ENQUEUE, times, tickets)
    tickets[:] = -99
    times[:] = 42.0
    table = rec.table()
    assert table.ticket.tolist() == list(range(8))
    assert float(table.time_s.max()) == 0.0


def test_block_broadcasts_scalar_time_and_detail():
    rec = TraceRecorder()
    rec.record_block(
        EV_ENQUEUE, 0.5, np.array([3, 4, 5], dtype=np.int64),
        batch=7, replica=1, detail=2.5, aux=rec.intern("x"),
    )
    table = rec.table()
    assert table.time_s.tolist() == [0.5] * 3
    assert table.detail.tolist() == [2.5] * 3
    assert table.batch.tolist() == [7] * 3
    assert [table.label_of(int(a)) for a in table.aux] == ["x"] * 3


def test_record_span_appends_start_end_pair():
    rec = TraceRecorder()
    lane = rec.intern("gpu")
    rec.record_span(
        EV_KERNEL_START, EV_KERNEL_END, 1.0, 1.5,
        batch=4, replica=2, detail=0.5, aux=lane,
    )
    table = rec.table()
    assert table.kind.tolist() == [EV_KERNEL_START, EV_KERNEL_END]
    assert table.time_s.tolist() == [1.0, 1.5]
    assert table.detail.tolist() == [0.5, 0.0]  # detail rides the start row
    assert table.ticket.tolist() == [-1, -1]
    assert table.batch.tolist() == [4, 4]
    assert table.aux.tolist() == [lane, lane]


# ----------------------------------------------------------------------
# TraceTable operations
# ----------------------------------------------------------------------
def make_small_table():
    rec = TraceRecorder()
    rec.record(EV_FLUSH, 0.3, batch=1, detail=4.0, aux=rec.intern("size"))
    rec.record(EV_COMPLETE, 0.1, ticket=0, batch=0, replica=1)
    rec.record(EV_ARRIVAL, 0.2, ticket=1, aux=rec.intern("t"))
    return rec.table()


def test_of_kind_and_for_replica_filter_rows():
    table = make_small_table()
    assert table.of_kind(EV_FLUSH).n_events == 1
    assert table.of_kind(EV_COMPLETE, EV_ARRIVAL).n_events == 2
    assert table.for_replica(1).kind.tolist() == [EV_COMPLETE]


def test_canonical_is_emission_order_free():
    table = make_small_table()
    shuffled = table.select(np.array([2, 0, 1]))
    assert not shuffled.equals(table)
    assert shuffled.canonical().equals(table.canonical())
    assert table.canonical().time_s.tolist() == [0.1, 0.2, 0.3]


def test_equals_requires_identical_labels():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(EV_FLUSH, 0.0, aux=a.intern("size"))
    b.record(EV_FLUSH, 0.0, aux=b.intern("wait"))
    assert not a.table().equals(b.table())


def test_merge_orders_by_time_and_remaps_labels():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(EV_FLUSH, 0.2, batch=0, aux=a.intern("size"))
    a.record(EV_FLUSH, 0.4, batch=1, aux=a.intern("wait"))
    b.record(EV_FLUSH, 0.1, batch=0, aux=b.intern("wait"))
    b.record(EV_FLUSH, 0.2, batch=1, aux=b.intern("drain"))
    merged = TraceTable.merge([a.table(), b.table()])
    assert merged.time_s.tolist() == [0.1, 0.2, 0.2, 0.4]
    # Ties broken by input order: a's 0.2 row sorts before b's.
    assert [merged.label_of(int(c)) for c in merged.aux] == [
        "wait", "size", "drain", "wait",
    ]
    assert merged.labels == ("size", "wait", "drain")


def test_merge_of_nothing_is_empty():
    assert TraceTable.merge([]).n_events == 0


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
def test_counter_accumulates_per_label_set():
    c = Counter("hits_total", "Hits")
    c.inc(2.0, lane="cache")
    c.inc(3.0, lane="cache")
    c.inc(1.0, lane="gpu")
    c.inc()
    assert c.value(lane="cache") == 5.0
    assert c.value(lane="gpu") == 1.0
    assert c.value() == 1.0
    assert c.value(lane="never") == 0.0
    with pytest.raises(ServiceError, match="cannot decrease"):
        c.inc(-1.0)


def test_gauge_moves_both_ways():
    g = Gauge("depth", "Queue depth")
    g.set(7.0)
    g.set(3.0)
    assert g.value() == 3.0


def test_histogram_bulk_observation_equals_singles():
    bulk = Histogram("lat", "Latency", buckets=(1.0, 2.0, 4.0))
    single = Histogram("lat", "Latency", buckets=(1.0, 2.0, 4.0))
    values = np.array([0.5, 1.0, 1.5, 3.0, 9.0, 2.0])
    bulk.observe_many(values, lane="gpu")
    for v in values:
        single.observe(float(v), lane="gpu")
    assert bulk.value(lane="gpu") == single.value(lane="gpu")
    # le semantics: 1.0 lands in the first bucket, 9.0 overflows.
    assert bulk.value(lane="gpu").bucket_counts == (2, 2, 1, 1)
    assert bulk.value(lane="gpu").count == 6
    assert bulk.value(lane="gpu").sum == pytest.approx(float(values.sum()))
    assert bulk.value(lane="cold").count == 0


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ServiceError, match="ascending"):
        Histogram("h", "", buckets=(1.0, 1.0))
    with pytest.raises(ServiceError, match="bucket"):
        Histogram("h", "", buckets=())


def test_registry_get_or_create_and_type_conflicts():
    reg = MetricRegistry()
    reg.counter("a_total", "A").inc()
    assert reg.counter("a_total").value() == 1.0  # same underlying metric
    with pytest.raises(ServiceError, match="already registered"):
        reg.gauge("a_total")
    reg.gauge("b")
    reg.histogram("c")
    assert reg.names == ["a_total", "b", "c"]


def test_snapshot_delta_windows_counters_and_histograms():
    reg = MetricRegistry()
    c = reg.counter("q_total", "Queries")
    h = reg.histogram("lat", "Latency", buckets=(1.0, 2.0))
    g = reg.gauge("depth", "Depth")
    c.inc(3.0)
    h.observe(0.5)
    g.set(10.0)
    before = reg.snapshot()
    c.inc(2.0)
    h.observe(1.5)
    h.observe(0.7)
    g.set(4.0)
    delta = reg.snapshot().delta(before)
    assert delta.value("q_total") == 2.0
    hist = delta.value("lat")
    assert hist.bucket_counts == (1, 1, 0)
    assert hist.count == 2
    assert delta.value("depth") == 4.0  # gauges keep their current level
    with pytest.raises(ServiceError, match="no series"):
        delta.value("missing")


def test_service_stats_adapter_mirrors_the_snapshot():
    service, _ = traced_run()
    stats = service.stats()
    reg = service_stats_metrics(stats, replica=3)
    snap = reg.snapshot()
    assert snap.value(
        "repro_queries_answered_total", replica="3"
    ) == stats.queries_answered
    assert snap.value(
        "repro_batches_flushed_total", replica="3"
    ) == stats.batches_flushed
    assert snap.value(
        "repro_latency_p99_seconds", replica="3"
    ) == stats.latency_p99_s


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_prometheus_text_renders_cumulative_buckets():
    reg = MetricRegistry()
    h = reg.histogram("lat_seconds", "Latency", buckets=(1.0, 2.0))
    h.observe_many(np.array([0.5, 1.5, 9.0]), lane="gpu")
    reg.counter("up", "Liveness").inc()
    text = prometheus_text(reg.snapshot())
    assert "# TYPE lat_seconds histogram" in text
    assert 'lat_seconds_bucket{lane="gpu",le="1"} 1' in text
    assert 'lat_seconds_bucket{lane="gpu",le="2"} 2' in text
    assert 'lat_seconds_bucket{lane="gpu",le="+Inf"} 3' in text
    assert 'lat_seconds_sum{lane="gpu"} 11' in text
    assert 'lat_seconds_count{lane="gpu"} 3' in text
    assert "\nup 1\n" in text


def test_events_jsonl_round_trip(tmp_path):
    _, recorder = traced_run(queries=120)
    table = recorder.table()
    path = tmp_path / "events.jsonl"
    n = write_events_jsonl(str(path), table)
    lines = path.read_text().splitlines()
    assert n == len(lines) == table.n_events
    rows = [json.loads(line) for line in lines]
    assert all(row["kind"] in EVENT_NAMES for row in rows)
    assert {row["kind"] for row in rows} >= {"arrival", "flush", "complete"}


def test_chrome_trace_spans_cover_every_batch(tmp_path):
    service, recorder = traced_run()
    events = chrome_trace_events(recorder.table())
    kernels = [e for e in events if e.get("cat") == "kernel"]
    assert len(kernels) == service.stats().batches_flushed
    for span in kernels:
        assert span["ph"] == "X"
        assert span["dur"] >= 0.0
        assert span["args"]["size"] > 0
    assert any(
        e["ph"] == "M" and e["args"]["name"] == "replica 0" for e in events
    )
    path = tmp_path / "trace.json"
    assert write_chrome_trace(str(path), events) == len(events)
    payload = json.loads(path.read_text())
    assert payload["traceEvents"] == events


def test_kernel_records_convert_and_summarize(gpu_ctx):
    from repro.device.tracing import summarize_kernels
    from repro.primitives import exclusive_scan

    exclusive_scan(np.arange(256, dtype=np.int64), ctx=gpu_ctx)
    records = gpu_ctx.records
    assert records
    events = kernel_records_to_chrome(records, pid=2, start_s=1.0)
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == len(records)
    assert spans[0]["ts"] == pytest.approx(1.0 * 1e6)
    # Spans tile the serial execution: each starts where the last ended.
    for prev, span in zip(spans, spans[1:]):
        assert span["ts"] == pytest.approx(prev["ts"] + prev["dur"])
    # The device-layer summary is the same aggregation, by construction.
    assert summarize_kernels(records) == summarize_kernel_records(records)


# ----------------------------------------------------------------------
# StageTimer
# ----------------------------------------------------------------------
def test_stage_timer_accumulates_and_totals():
    timer = StageTimer()
    with timer.span("submit"):
        pass
    with timer.span("submit"):
        pass
    timer.add("drain", 0.5)
    assert timer.seconds("submit") >= 0.0
    assert timer.seconds("drain") == 0.5
    assert timer.seconds("never") == 0.0
    assert timer.total("drain") == 0.5
    assert timer.total() == pytest.approx(timer.seconds("submit") + 0.5)
    stages = timer.stages
    stages["drain"] = 99.0  # a copy: mutating it doesn't write back
    assert timer.seconds("drain") == 0.5


# ----------------------------------------------------------------------
# Serving-stack trace invariants
# ----------------------------------------------------------------------
def test_tracing_is_deterministic():
    _, first = traced_run()
    _, second = traced_run()
    assert first.table().equals(second.table())


def test_trace_counts_match_service_aggregates():
    service, recorder = traced_run()
    table = recorder.table()
    stats = service.stats()
    assert table.of_kind(EV_FLUSH).n_events == stats.batches_flushed
    answered = table.of_kind(EV_COMPLETE, EV_CACHE_LANE_HIT).n_events
    assert answered == stats.queries_answered
    assert table.of_kind(EV_KERNEL_START).n_events == stats.batches_flushed
    loads = table.of_kind(EV_INDEX_LOAD)
    assert loads.n_events > 0
    assert float(loads.detail.min()) >= 0.0


def test_index_evictions_are_traced():
    recorder = TraceRecorder()
    service = LCAQueryService(
        policy=POLICY, observer=recorder, capacity_bytes=1024
    )
    for name, seed in (("a", 0), ("b", 1)):
        parents = random_attachment_tree(512, seed=seed)
        service.register_tree(name, parents)
        xs, ys = generate_random_queries(512, 200, seed=seed + 2)
        service.submit_many(name, xs, ys, at=np.zeros(200))
        service.drain()
    evictions = recorder.table().of_kind(EV_INDEX_EVICT)
    assert evictions.n_events == service.stats().cache_evictions > 0
    assert float(evictions.detail.min()) > 0.0  # detail = freed bytes


def test_sampled_trace_is_strict_subset_of_full():
    _, full = traced_run(sample=1)
    _, sampled = traced_run(sample=4)
    full_rows = rowset(full.table())
    sampled_rows = rowset(sampled.table())
    assert sampled_rows < full_rows
    per_query = sampled.table().of_kind(*PER_QUERY_KINDS)
    assert per_query.n_events > 0
    assert not (per_query.ticket % 4).any()


def test_single_service_equals_one_replica_cluster():
    scenario = make_scenario("steady", scale=0.05, seed=3)
    single = TraceRecorder()
    replay(LCAQueryService(policy=POLICY), scenario, observer=single)
    clustered = TraceRecorder()
    replay(ClusterService(1, policy=POLICY), scenario, observer=clustered)
    assert single.table().canonical().equals(clustered.table().canonical())


def test_replay_report_carries_the_trace():
    recorder = TraceRecorder()
    report = replay(
        LCAQueryService(policy=POLICY),
        make_scenario("steady", scale=0.05, seed=1),
        observer=recorder,
    )
    assert report.trace is not None
    assert report.trace.n_events == recorder.table().n_events > 0
    # The per-stage host wall split tiles the serving wall.
    assert report.serve_wall_s == pytest.approx(
        report.submit_wall_s + report.drain_wall_s + report.latencies_wall_s
    )
