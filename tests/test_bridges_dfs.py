"""Tests for the sequential DFS bridge-finding baseline."""

import numpy as np
import pytest

from repro.bridges import find_bridges_dfs, find_bridges_networkx
from repro.graphs import EdgeList
from repro.graphs.generators import cycle_graph, path_graph, rmat_graph, road_graph, web_graph

from .conftest import random_connected_graph


class TestKnownGraphs:
    def test_path_all_bridges(self):
        result = find_bridges_dfs(path_graph(20))
        assert result.num_bridges == 19
        assert result.bridge_mask.all()

    def test_cycle_no_bridges(self):
        result = find_bridges_dfs(cycle_graph(20))
        assert result.num_bridges == 0

    def test_single_edge(self):
        result = find_bridges_dfs(EdgeList.from_pairs([(0, 1)], n=2))
        assert result.bridge_mask.tolist() == [True]

    def test_parallel_edge_is_not_a_bridge(self):
        g = EdgeList.from_pairs([(0, 1), (0, 1), (1, 2)], n=3)
        result = find_bridges_dfs(g)
        assert result.bridge_mask.tolist() == [False, False, True]

    def test_self_loop_is_not_a_bridge(self):
        g = EdgeList.from_pairs([(0, 0), (0, 1)], n=2)
        result = find_bridges_dfs(g)
        assert result.bridge_mask.tolist() == [False, True]

    def test_bowtie(self):
        # Two triangles joined by a single edge: only the joining edge is a bridge.
        g = EdgeList.from_pairs(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)], n=6
        )
        result = find_bridges_dfs(g)
        assert result.bridge_mask.tolist() == [False] * 6 + [True]

    def test_disconnected_graph_supported(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3), (3, 4), (4, 2)], n=5)
        result = find_bridges_dfs(g)
        assert result.bridge_mask.tolist() == [True, False, False, False]

    def test_empty_graph(self):
        result = find_bridges_dfs(EdgeList.from_pairs([], n=3))
        assert result.num_bridges == 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        extra = int(rng.integers(0, n))
        g = random_connected_graph(n, extra, seed)
        assert find_bridges_dfs(g).agrees_with(find_bridges_networkx(g))

    @pytest.mark.parametrize("maker", [
        lambda: rmat_graph(8, 6, seed=1),
        lambda: road_graph(15, 18, seed=2),
        lambda: web_graph(400, seed=3),
    ])
    def test_structured_graphs(self, maker):
        g = maker()
        assert find_bridges_dfs(g).agrees_with(find_bridges_networkx(g))


class TestMetadata:
    def test_result_fields(self):
        result = find_bridges_dfs(path_graph(5))
        assert result.algorithm == "Single-core CPU DFS"
        assert result.bridge_edge_indices.tolist() == [0, 1, 2, 3]
        assert result.total_time_s >= 0

    def test_cost_charged(self, cpu_ctx):
        find_bridges_dfs(path_graph(200), ctx=cpu_ctx)
        assert cpu_ctx.elapsed > 0
