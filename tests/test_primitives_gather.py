"""Tests for gather / scatter / elementwise instrumented wrappers."""

import numpy as np
import pytest

from repro.primitives import elementwise, gather, scatter


class TestGather:
    def test_indexing(self):
        out = gather(np.asarray([10, 20, 30]), np.asarray([2, 0, 2]))
        assert out.tolist() == [30, 10, 30]

    def test_empty_indices(self):
        assert gather(np.arange(5), np.asarray([], dtype=np.int64)).size == 0

    def test_charges_random_access(self, gpu_ctx):
        gather(np.arange(1000), np.arange(1000), ctx=gpu_ctx)
        assert gpu_ctx.records[0].random_access is True


class TestScatter:
    def test_in_place_write(self):
        target = np.zeros(5, dtype=np.int64)
        out = scatter(target, np.asarray([1, 3]), np.asarray([7, 9]))
        assert out is target
        assert target.tolist() == [0, 7, 0, 9, 0]

    def test_broadcast_scalar_value(self):
        target = np.zeros(4, dtype=np.int64)
        scatter(target, np.asarray([0, 2]), 5)
        assert target.tolist() == [5, 0, 5, 0]

    def test_charges_cost(self, gpu_ctx):
        scatter(np.zeros(10, dtype=np.int64), np.asarray([0]), 1, ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0


class TestElementwise:
    def test_returns_modeled_time(self, gpu_ctx):
        t = elementwise(10_000, ops_per_element=2.0, ctx=gpu_ctx)
        assert t > 0
        assert gpu_ctx.elapsed == pytest.approx(t)

    def test_zero_elements_still_valid(self, gpu_ctx):
        assert elementwise(0, ctx=gpu_ctx) >= 0
