"""Tests for the experiment runners (algorithm casts and single-run drivers)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    BRIDGE_ALGORITHMS,
    FIGURE_BRIDGE_ALGORITHMS,
    LCA_ALGORITHMS,
    run_bridges,
    run_lca,
)
from repro.graphs import generate_random_queries
from repro.graphs.generators import random_attachment_tree, rmat_graph
from repro.graphs import largest_connected_component

from .conftest import random_connected_graph


class TestLCACast:
    def test_cast_matches_paper(self):
        labels = {spec.label for spec in LCA_ALGORITHMS.values()}
        assert labels == {
            "Single-core CPU Inlabel",
            "Multi-core CPU Inlabel",
            "GPU Naive",
            "GPU Inlabel",
        }

    def test_run_lca_produces_one_record_per_algorithm(self):
        parents = random_attachment_tree(2000, seed=0)
        xs, ys = generate_random_queries(2000, 1000, seed=1)
        records = run_lca(parents, xs, ys)
        assert len(records) == 4
        assert {r.label for r in records} == {spec.label for spec in LCA_ALGORITHMS.values()}
        for record in records:
            assert record.n == 2000
            assert record.q == 1000
            assert record.preprocess_time_s > 0
            assert record.query_time_s > 0
            assert record.total_time_s == pytest.approx(
                record.preprocess_time_s + record.query_time_s
            )
            row = record.as_row()
            assert set(row) >= {"algorithm", "n", "q", "preprocess_ms", "query_ms",
                                "nodes_per_s", "queries_per_s"}

    def test_agreement_check_runs(self):
        parents = random_attachment_tree(500, seed=2)
        xs, ys = generate_random_queries(500, 200, seed=3)
        records = run_lca(parents, xs, ys, ["gpu-inlabel", "gpu-naive"], keep_answers=True)
        assert np.array_equal(records[0].answers, records[1].answers)

    def test_answers_dropped_by_default(self):
        parents = random_attachment_tree(100, seed=4)
        xs, ys = generate_random_queries(100, 50, seed=5)
        assert run_lca(parents, xs, ys, ["gpu-inlabel"])[0].answers is None

    def test_unknown_algorithm_rejected(self):
        parents = random_attachment_tree(10, seed=6)
        with pytest.raises(ConfigurationError):
            run_lca(parents, np.asarray([0]), np.asarray([1]), ["gpu-quantum"])

    def test_gpu_inlabel_fastest_queries(self):
        """A coarse sanity check of the Figure 3c ordering."""
        parents = random_attachment_tree(20_000, seed=7)
        xs, ys = generate_random_queries(20_000, 20_000, seed=8)
        records = {r.label: r for r in run_lca(parents, xs, ys)}
        assert (records["GPU Inlabel"].queries_per_second
                > records["Multi-core CPU Inlabel"].queries_per_second
                > records["Single-core CPU Inlabel"].queries_per_second)


class TestBridgeCast:
    def test_cast_matches_paper(self):
        labels = {spec.label for spec in BRIDGE_ALGORITHMS.values()}
        assert labels == {
            "Single-core CPU DFS",
            "Multi-core CPU CK",
            "GPU CK",
            "GPU TV",
            "GPU Hybrid",
        }
        assert len(FIGURE_BRIDGE_ALGORITHMS) == 4

    def test_run_bridges_records(self):
        g = random_connected_graph(300, 200, seed=9)
        records = run_bridges(g, dataset="toy")
        assert len(records) == 4
        bridge_counts = {r.num_bridges for r in records}
        assert len(bridge_counts) == 1  # all algorithms agree
        for record in records:
            assert record.dataset == "toy"
            assert record.total_time_s > 0
            assert record.as_row()["bridges"] == record.num_bridges

    def test_run_bridges_with_hybrid(self):
        g, _ = largest_connected_component(rmat_graph(8, 8, seed=10))
        records = run_bridges(g, algorithms=["gpu-tv", "gpu-hybrid"])
        assert [r.label for r in records] == ["GPU TV", "GPU Hybrid"]
        assert records[1].phase_times  # hybrid exposes its phase breakdown

    def test_unknown_algorithm_rejected(self):
        g = random_connected_graph(20, 5, seed=11)
        with pytest.raises(ConfigurationError):
            run_bridges(g, algorithms=["gpu-magic"])
