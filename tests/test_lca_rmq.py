"""Tests for the RMQ-based LCA baseline."""

import numpy as np
import pytest

from repro.device import ExecutionContext, XEON_X5650_SINGLE
from repro.errors import InvalidQueryError
from repro.graphs import generate_random_queries
from repro.lca import BinaryLiftingLCA, RMQLCA, brute_force_lca_batch

from .conftest import TREE_KINDS, make_tree


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["segment-tree", "sparse-table"])
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 3, 25, 130])
    def test_against_brute_force(self, backend, kind, n):
        parents = make_tree(kind, n, seed=n + 57)
        xs, ys = generate_random_queries(n, 60, seed=n)
        expected = brute_force_lca_batch(parents, xs, ys)
        algo = RMQLCA(parents, backend=backend)
        assert np.array_equal(algo.query(xs, ys), expected)

    def test_against_binary_lifting_large(self):
        parents = make_tree("deep", 3000, seed=60)
        xs, ys = generate_random_queries(3000, 2500, seed=61)
        expected = BinaryLiftingLCA(parents).query(xs, ys)
        assert np.array_equal(RMQLCA(parents).query(xs, ys), expected)

    def test_backends_agree(self):
        parents = make_tree("scale-free", 800, seed=62)
        xs, ys = generate_random_queries(800, 500, seed=63)
        a = RMQLCA(parents, backend="segment-tree").query(xs, ys)
        b = RMQLCA(parents, backend="sparse-table").query(xs, ys)
        assert np.array_equal(a, b)

    def test_identical_nodes(self, figure1_parents):
        algo = RMQLCA(figure1_parents)
        nodes = np.arange(6)
        assert np.array_equal(algo.query(nodes, nodes), nodes)

    def test_out_of_range_rejected(self, figure1_parents):
        with pytest.raises(InvalidQueryError):
            RMQLCA(figure1_parents).query(np.asarray([0]), np.asarray([6]))

    def test_mismatched_shapes_rejected(self, figure1_parents):
        with pytest.raises(InvalidQueryError):
            RMQLCA(figure1_parents).query(np.asarray([0, 1]), np.asarray([0]))


class TestPreliminaryExperimentShape:
    """The §3.1 preliminary comparison: RMQ preprocesses faster, Inlabel
    queries faster."""

    def test_rmq_preprocessing_faster_than_inlabel(self):
        from repro.lca import SequentialInlabelLCA

        parents = make_tree("shallow", 20_000, seed=64)
        rmq_ctx = ExecutionContext(XEON_X5650_SINGLE)
        RMQLCA(parents, ctx=rmq_ctx)
        inlabel_ctx = ExecutionContext(XEON_X5650_SINGLE)
        SequentialInlabelLCA(parents, ctx=inlabel_ctx)
        assert rmq_ctx.elapsed < inlabel_ctx.elapsed

    def test_inlabel_queries_faster_than_rmq(self):
        from repro.lca import SequentialInlabelLCA

        parents = make_tree("shallow", 20_000, seed=65)
        xs, ys = generate_random_queries(20_000, 20_000, seed=66)
        rmq = RMQLCA(parents)
        inlabel = SequentialInlabelLCA(parents)
        rmq_ctx = ExecutionContext(XEON_X5650_SINGLE)
        rmq.query(xs, ys, ctx=rmq_ctx)
        inlabel_ctx = ExecutionContext(XEON_X5650_SINGLE)
        inlabel.query(xs, ys, ctx=inlabel_ctx)
        assert inlabel_ctx.elapsed < rmq_ctx.elapsed
