"""Autoscaling harness: the ``n_replicas`` knob under a reactive policy.

The contracts under test are the ones ``docs/autoscaling.md`` documents:

- an autoscaled replay answers exactly what a static one answers — scale
  events never change an answer and never lose an admitted query
  (oracle-checked end to end);
- decisions are deterministic: the same scenario, seed and policy produce
  a bit-identical :class:`~repro.control.TuningDecision` log and
  :class:`~repro.service.ClusterStats`;
- a policy that cannot fire is a provable no-op — the lifecycle trace is
  bit-identical to running without one;
- cooldowns and hysteresis suppress flapping, and live-copy safety can
  refuse a scale-in (the controller skips the refusal silently).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import SLO, AutoscalePolicy, Controller
from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.obs import TraceRecorder
from repro.obs.events import EV_SCALE
from repro.service import BatchPolicy, ClusterService
from repro.workloads import Phase, PoissonArrivals, Scenario, TrafficSource, replay

POLICY = BatchPolicy(max_batch_size=64, max_wait_s=1e-4)

#: Fires on any window that answered anything: every admitted query's
#: modeled latency clears 0.1 µs, so the first post-anchor window breaches.
ALWAYS_OUT = AutoscalePolicy(
    min_replicas=1,
    max_replicas=6,
    signals=("p99",),
    p99_out_s=1e-7,
    p99_in_s=1e-8,
    cooldown_out_s=1e-3,
    cooldown_in_s=10.0,
    step_out=2,
)

#: Never fires upward (a 10 s p99 bound) and sees every window as calm.
ALWAYS_IN = AutoscalePolicy(
    min_replicas=2,
    max_replicas=8,
    signals=("p99",),
    p99_out_s=10.0,
    p99_in_s=5.0,
    cooldown_out_s=1e-3,
    cooldown_in_s=2e-3,
    step_in=2,
)


def flash_scenario(*, seed=0):
    return Scenario(
        name="autoscale-test",
        sources=(TrafficSource("t", nodes=512, tree_seed=seed),),
        phases=(
            Phase("calm", PoissonArrivals(50_000.0), 0.02),
            Phase("flash", PoissonArrivals(400_000.0), 0.01),
            Phase("recovery", PoissonArrivals(50_000.0), 0.02),
        ),
        seed=seed,
    )


def calm_scenario(*, seed=0):
    return Scenario(
        name="autoscale-calm",
        sources=(TrafficSource("t", nodes=512, tree_seed=seed),),
        phases=(Phase("calm", PoissonArrivals(50_000.0), 0.03),),
        seed=seed,
    )


def autoscaled_replay(scenario, n_replicas, autoscale, *, observer=None):
    cluster = ClusterService(
        n_replicas, policy=POLICY, max_pending=4096, observer=observer
    )
    controller = Controller(
        SLO(p99_latency_s=1.0), interval_s=1e-3, autoscale=autoscale
    )
    report = replay(
        cluster,
        scenario,
        admission_window_s=1e-3,
        check_answers=True,
        controller=controller,
    )
    return cluster, controller, report


def membership(controller):
    return [d for d in controller.decisions if d.kind == "membership"]


# ----------------------------------------------------------------------
# Oracle-checked autoscaled replays
# ----------------------------------------------------------------------


def test_scale_out_replay_matches_oracle_and_loses_nothing():
    cluster, controller, report = autoscaled_replay(
        flash_scenario(), 1, ALWAYS_OUT
    )
    moves = membership(controller)
    assert moves and all(d.reason.startswith("scale-out") for d in moves)
    assert cluster.n_active == ALWAYS_OUT.max_replicas
    # check_answers already verified every fully admitted block against
    # the oracle; on top of that, nothing admitted may go missing.
    assert report.queries_shed == 0
    assert report.queries_admitted == report.stats.queries_answered
    # The per-phase trajectory lands where the cluster did.
    assert report.phases[-1].n_replicas_end == cluster.n_active
    assert all(
        ALWAYS_OUT.min_replicas <= d.n_replicas <= ALWAYS_OUT.max_replicas
        for d in moves
    )


def test_scale_in_returns_to_floor_without_losing_queries():
    observer = TraceRecorder()
    cluster, controller, report = autoscaled_replay(
        calm_scenario(), 8, ALWAYS_IN, observer=observer
    )
    moves = membership(controller)
    assert moves and all(d.reason == "scale-in" for d in moves)
    # Retirements drain before leaving: every admitted query is answered.
    assert report.queries_admitted == report.stats.queries_answered
    assert cluster.n_active == ALWAYS_IN.min_replicas
    # Each membership decision rode one EV_SCALE row on the shared trace.
    scale_rows = observer.table().of_kind(EV_SCALE)
    assert len(scale_rows) == len(moves)


# ----------------------------------------------------------------------
# Determinism and the no-op policy
# ----------------------------------------------------------------------


def test_same_scenario_seed_policy_is_bit_identical():
    runs = [
        autoscaled_replay(flash_scenario(seed=3), 1, ALWAYS_OUT)
        for _ in range(2)
    ]
    (cluster_a, ctl_a, report_a), (cluster_b, ctl_b, report_b) = runs
    assert ctl_a.decisions == ctl_b.decisions
    assert cluster_a.stats() == cluster_b.stats()
    assert report_a.phases == report_b.phases


def test_unfireable_policy_is_bit_identical_to_no_policy():
    # min == max pins membership; thresholds that cannot fire do the rest.
    frozen = AutoscalePolicy(
        min_replicas=2,
        max_replicas=2,
        signals=("p99",),
        p99_out_s=10.0,
        p99_in_s=5.0,
    )
    with_policy = TraceRecorder()
    without = TraceRecorder()
    cluster_a, ctl_a, _ = autoscaled_replay(
        flash_scenario(), 2, frozen, observer=with_policy
    )
    cluster_b, ctl_b, _ = autoscaled_replay(
        flash_scenario(), 2, None, observer=without
    )
    assert not membership(ctl_a)
    assert with_policy.table().equals(without.table())
    assert cluster_a.stats() == cluster_b.stats()
    # Knob decisions (the controller's other job) stay identical too.
    assert ctl_a.decisions == ctl_b.decisions


# ----------------------------------------------------------------------
# Edge cases: flush boundaries, live-copy safety, flap suppression
# ----------------------------------------------------------------------


def _direct_cluster(parents, n_replicas, **kwargs):
    cluster = ClusterService(n_replicas, **kwargs)
    cluster.register_tree("t", parents, replicas=0)
    return cluster


def test_scale_at_flush_boundary_preserves_answers():
    parents = random_attachment_tree(256, seed=7)
    xs, ys = generate_random_queries(256, 40, seed=8)
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    observer = TraceRecorder()
    cluster = _direct_cluster(
        parents, 2, policy=BatchPolicy(max_batch_size=64, max_wait_s=1e-3),
        observer=observer,
    )
    # A held batch flushes exactly at its wait deadline; scaling at that
    # same instant must neither lose it nor re-route it mid-flight.
    t0 = cluster.submit_many("t", xs[:20], ys[:20], at=np.zeros(20))
    cluster.advance_to(1e-3)
    cluster.scale_to(4)
    t1 = cluster.submit_many(
        "t", xs[20:], ys[20:], at=np.full(20, cluster.clock.now)
    )
    cluster.advance_to(cluster.clock.now + 1e-3)
    cluster.scale_to(1)
    cluster.drain()
    tickets = np.concatenate([t0, t1])
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.queries_answered == 40
    # 2 adds growing to 4, then 3 retirements shrinking to 1.
    assert stats.membership_events == 5
    assert len(observer.table().of_kind(EV_SCALE)) == 2


def test_scale_in_refuses_to_drop_sole_live_copy():
    parents = np.array([-1, 0, 0, 1])
    cluster = ClusterService(2, policy=POLICY)
    cluster.register_tree("a", parents, on=[0])
    cluster.register_tree("b", parents, on=[1])
    with pytest.raises(ServiceError, match="live copy"):
        cluster.scale_to(1)
    assert cluster.n_active == 2


def test_controller_skips_refused_scale_in_silently():
    parents = np.array([-1, 0, 0, 1])
    cluster = ClusterService(2, policy=POLICY)
    cluster.register_tree("a", parents, on=[0])
    cluster.register_tree("b", parents, on=[1])
    calm = AutoscalePolicy(
        min_replicas=1,
        max_replicas=4,
        signals=("queue",),
        queue_out=0.9,
        queue_in=0.5,
        cooldown_in_s=1e-3,
    )
    controller = Controller(
        SLO(p99_latency_s=100.0), interval_s=0.0, autoscale=calm
    )
    controller.observe(cluster, 0.0)  # anchors the cooldowns
    controller.observe(cluster, 1.0)  # calm, past cooldown: tries to shrink
    assert not membership(controller)
    assert cluster.n_active == 2


def test_cooldown_and_hysteresis_suppress_flapping():
    parents = random_attachment_tree(256, seed=11)
    xs, ys = generate_random_queries(256, 110, seed=12)
    # Nothing flushes on its own: occupancy is exactly what we queue.
    cluster = _direct_cluster(
        parents, 2,
        policy=BatchPolicy(max_batch_size=1000, max_wait_s=10.0),
        max_pending=100,
    )
    policy = AutoscalePolicy(
        min_replicas=1,
        max_replicas=8,
        signals=("queue",),
        queue_out=0.5,
        queue_in=0.1,
        cooldown_out_s=1.0,
        cooldown_in_s=20.0,
    )
    controller = Controller(
        SLO(p99_latency_s=100.0), interval_s=0.0, autoscale=policy
    )
    controller.observe(cluster, 0.0)  # anchor
    cluster.submit_many("t", xs[:80], ys[:80], at=np.zeros(80))
    controller.observe(cluster, 0.1)  # breached, but inside the cooldown
    assert not membership(controller)
    controller.observe(cluster, 1.2)  # breached, past the cooldown: out
    assert [d.n_replicas for d in membership(controller)] == [3]
    controller.observe(cluster, 1.3)  # still breached: cooldown holds
    assert len(membership(controller)) == 1
    cluster.drain()
    now = cluster.clock.now
    controller.observe(cluster, now + 2.0)  # calm, inside the in-cooldown
    assert len(membership(controller)) == 1
    controller.observe(cluster, now + 25.0)  # calm, past it: in
    moves = membership(controller)
    assert [d.n_replicas for d in moves] == [3, 2]
    assert moves[0].reason == "scale-out:queue" and moves[1].reason == "scale-in"
    # Occupancy inside the hysteresis band moves nothing, either way.
    cluster.submit_many(
        "t", xs[80:], ys[80:], at=np.full(30, cluster.clock.now)
    )
    controller.observe(cluster, now + 50.0)
    assert len(membership(controller)) == 2
    cluster.drain()
    assert cluster.n_active == 2
    assert cluster.stats().membership_events == 2


# ----------------------------------------------------------------------
# Property: scale sequences never change answers
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    targets=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_scale_sequence_preserves_answers(targets, seed):
    parents = random_attachment_tree(300, seed=seed)
    xs, ys = generate_random_queries(300, 240, seed=seed + 1)
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    arrivals = np.arange(240, dtype=np.float64) / 200_000.0
    cluster = _direct_cluster(parents, 2, policy=POLICY)
    chunk = 40
    tickets = []
    for i, lo in enumerate(range(0, 240, chunk)):
        block = slice(lo, lo + chunk)
        # A retirement drains its victim, which can move the shared clock
        # past the next scripted arrival — late arrivals submit "now".
        at = np.maximum(arrivals[block], cluster.clock.now)
        tickets.append(cluster.submit_many("t", xs[block], ys[block], at=at))
        cluster.scale_to(targets[i % len(targets)])
    cluster.drain()
    np.testing.assert_array_equal(
        cluster.results(np.concatenate(tickets)), expected
    )
    stats = cluster.stats()
    assert stats.queries_answered == 240
    assert cluster.pending_count() == 0
    assert cluster.n_active == targets[(240 // chunk - 1) % len(targets)]
