"""Tests for the CSR adjacency representation."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graphs import CSRGraph, EdgeList

from .conftest import random_connected_graph


class TestConstruction:
    def test_simple_triangle(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)], n=3)
        csr = CSRGraph.from_edgelist(g)
        assert csr.num_nodes == 3
        assert csr.num_edges == 3
        assert csr.num_halfedges == 6
        assert sorted(csr.neighbors(0).tolist()) == [1, 2]
        assert sorted(csr.neighbors(1).tolist()) == [0, 2]

    def test_degrees_match_edgelist(self):
        g = random_connected_graph(100, 150, seed=0)
        csr = CSRGraph.from_edgelist(g)
        assert np.array_equal(csr.degrees(), g.degrees())

    def test_edge_ids_consistent(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2)], n=3)
        csr = CSRGraph.from_edgelist(g)
        # Every undirected edge id appears exactly twice.
        counts = np.bincount(csr.edge_ids, minlength=2)
        assert counts.tolist() == [2, 2]

    def test_neighbor_out_of_range_rejected(self):
        csr = CSRGraph.from_edgelist(EdgeList.from_pairs([(0, 1)], n=2))
        with pytest.raises(InvalidGraphError):
            csr.neighbors(5)
        with pytest.raises(InvalidGraphError):
            csr.neighbor_edge_ids(-1)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(np.asarray([0, 1]), np.asarray([0, 0]), np.asarray([0, 0]), 1, 1)

    def test_charges_cost(self, gpu_ctx):
        CSRGraph.from_edgelist(random_connected_graph(50, 50, seed=1), ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0


class TestAccessors:
    def test_halfedge_sources(self):
        g = EdgeList.from_pairs([(0, 1), (0, 2)], n=3)
        csr = CSRGraph.from_edgelist(g)
        sources = csr.halfedge_sources()
        assert sources.tolist() == [0, 0, 1, 2]

    def test_expand_frontier_single_node(self):
        g = EdgeList.from_pairs([(0, 1), (0, 2), (1, 2)], n=3)
        csr = CSRGraph.from_edgelist(g)
        srcs, tgts, eids = csr.expand_frontier(np.asarray([0]))
        assert srcs.tolist() == [0, 0]
        assert sorted(tgts.tolist()) == [1, 2]
        assert eids.size == 2

    def test_expand_frontier_multiple_nodes(self):
        g = random_connected_graph(60, 80, seed=2)
        csr = CSRGraph.from_edgelist(g)
        frontier = np.asarray([0, 5, 10])
        srcs, tgts, eids = csr.expand_frontier(frontier)
        expected_total = int(csr.degrees()[frontier].sum())
        assert srcs.size == tgts.size == eids.size == expected_total
        # Every reported (src, tgt) really is an edge.
        for s, t in zip(srcs.tolist(), tgts.tolist()):
            assert t in csr.neighbors(s).tolist()

    def test_expand_frontier_empty(self):
        csr = CSRGraph.from_edgelist(EdgeList.from_pairs([(0, 1)], n=2))
        srcs, tgts, eids = csr.expand_frontier(np.asarray([], dtype=np.int64))
        assert srcs.size == tgts.size == eids.size == 0

    def test_expand_frontier_isolated_node(self):
        g = EdgeList(np.asarray([0]), np.asarray([1]), 3)  # node 2 isolated
        csr = CSRGraph.from_edgelist(g)
        srcs, tgts, _ = csr.expand_frontier(np.asarray([2]))
        assert srcs.size == 0 and tgts.size == 0


class TestRoundTrip:
    def test_to_edgelist_preserves_edges(self):
        g = random_connected_graph(40, 30, seed=3)
        csr = CSRGraph.from_edgelist(g)
        back = csr.to_edgelist()
        original = {(min(a, b), max(a, b)) for a, b in g.edges()}
        recovered = {(min(a, b), max(a, b)) for a, b in back.edges()}
        assert original == recovered
        assert back.num_edges == g.num_edges
