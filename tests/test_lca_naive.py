"""Tests for the naïve GPU LCA algorithm (Martins et al.)."""

import numpy as np
import pytest

from repro.device import ExecutionContext, GTX980
from repro.errors import InvalidQueryError
from repro.graphs import depths_from_parents, generate_random_queries
from repro.lca import BinaryLiftingLCA, NaiveGPULCA, brute_force_lca_batch, pointer_jump_levels

from .conftest import TREE_KINDS, make_tree


class TestLevelPreprocessing:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 50, 400])
    def test_levels_match_oracle(self, kind, n):
        parents = make_tree(kind, n, seed=n + 3)
        assert np.array_equal(pointer_jump_levels(parents), depths_from_parents(parents))

    def test_jump_batch_does_not_change_result(self):
        parents = make_tree("deep", 500, seed=4)
        a = pointer_jump_levels(parents, jump_batch=1)
        b = pointer_jump_levels(parents, jump_batch=5)
        assert np.array_equal(a, b)

    def test_jump_batch_reduces_launches(self):
        parents = make_tree("path", 2000, seed=5)
        unbatched = ExecutionContext(GTX980)
        pointer_jump_levels(parents, jump_batch=1, ctx=unbatched)
        batched = ExecutionContext(GTX980)
        pointer_jump_levels(parents, jump_batch=5, ctx=batched)
        assert batched.total_launches < unbatched.total_launches
        # The arithmetic work is identical; only the sync count changes.
        assert batched.total_ops == unbatched.total_ops

    def test_invalid_jump_batch_rejected(self):
        with pytest.raises(ValueError):
            pointer_jump_levels(np.asarray([-1, 0]), jump_batch=0)


class TestQueryCorrectness:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 3, 20, 150])
    def test_against_brute_force(self, kind, n):
        parents = make_tree(kind, n, seed=n + 29)
        xs, ys = generate_random_queries(n, 60, seed=n)
        expected = brute_force_lca_batch(parents, xs, ys)
        algo = NaiveGPULCA(parents)
        assert np.array_equal(algo.query(xs, ys), expected)

    def test_against_binary_lifting_on_large_tree(self):
        parents = make_tree("shallow", 5000, seed=31)
        xs, ys = generate_random_queries(5000, 4000, seed=32)
        expected = BinaryLiftingLCA(parents).query(xs, ys)
        assert np.array_equal(NaiveGPULCA(parents).query(xs, ys), expected)

    def test_identical_nodes(self, figure1_parents):
        algo = NaiveGPULCA(figure1_parents)
        nodes = np.arange(6)
        assert np.array_equal(algo.query(nodes, nodes), nodes)

    def test_empty_batch(self, figure1_parents):
        algo = NaiveGPULCA(figure1_parents)
        assert algo.query(np.asarray([], dtype=np.int64),
                          np.asarray([], dtype=np.int64)).size == 0

    def test_out_of_range_rejected(self, figure1_parents):
        algo = NaiveGPULCA(figure1_parents)
        with pytest.raises(InvalidQueryError):
            algo.query(np.asarray([99]), np.asarray([0]))

    def test_mismatched_shapes_rejected(self, figure1_parents):
        algo = NaiveGPULCA(figure1_parents)
        with pytest.raises(InvalidQueryError):
            algo.query(np.asarray([0, 1]), np.asarray([0]))


class TestCostCharacteristics:
    def test_query_cost_grows_with_depth(self):
        """The defining weakness the paper exploits: naïve query cost is
        proportional to path length, so deep trees are catastrophically slower
        (Figures 3d and 5)."""
        n, q = 4000, 4000
        xs, ys = generate_random_queries(n, q, seed=40)
        shallow_ctx = ExecutionContext(GTX980)
        NaiveGPULCA(make_tree("shallow", n, seed=41)).query(xs, ys, ctx=shallow_ctx)
        deep_ctx = ExecutionContext(GTX980)
        NaiveGPULCA(make_tree("path", n, seed=41)).query(xs, ys, ctx=deep_ctx)
        assert deep_ctx.elapsed > 20 * shallow_ctx.elapsed

    def test_preprocessing_cheaper_than_inlabel(self):
        """The flip side: the naïve algorithm's preprocessing (levels only) is
        much cheaper than the full Euler-tour Inlabel preprocessing
        (Figure 3a)."""
        from repro.lca import InlabelLCA

        parents = make_tree("shallow", 20_000, seed=42)
        naive_ctx = ExecutionContext(GTX980)
        NaiveGPULCA(parents, ctx=naive_ctx)
        inlabel_ctx = ExecutionContext(GTX980)
        InlabelLCA(parents, ctx=inlabel_ctx)
        assert naive_ctx.elapsed < inlabel_ctx.elapsed
