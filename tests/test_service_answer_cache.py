"""Skew-aware serving: dedup kernel, answer cache, and exactness properties.

The load-bearing invariant of the whole skew-aware fast path is *exactness*:
with canonicalization, intra-batch dedup and the answer cache all enabled,
every answer is bit-identical to the plain path's.  The tests here enforce
that three ways — hypothesis properties over random trees and duplicate-heavy
streams, full named-scenario replays checked against the binary-lifting
oracle, and adversarial hash-collision / eviction cases constructed directly
against :class:`repro.service.cache.AnswerCache`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.lca import (
    BinaryLiftingLCA,
    InlabelLCA,
    dedup_query_pairs,
    pack_query_pairs,
    run_batched_queries,
    unpack_query_pairs,
)
from repro.device import GTX980
from repro.service import (
    AnswerCache,
    BatchPolicy,
    ClusterService,
    LCAQueryService,
)
from repro.service.cache import BYTES_PER_SLOT, MIN_CACHE_BYTES
from repro.workloads import SCENARIOS, make_scenario, replay


# ----------------------------------------------------------------------
# Canonicalization / dedup kernel
# ----------------------------------------------------------------------
@given(st.integers(0, 2**31), st.integers(0, 2**31))
def test_pack_unpack_roundtrip(x, y):
    keys = pack_query_pairs(np.array([x]), np.array([y]))
    ux, uy = unpack_query_pairs(keys)
    assert int(ux[0]) == min(x, y)
    assert int(uy[0]) == max(x, y)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_dedup_scatter_reconstructs_canonical_pairs(data):
    size = data.draw(st.integers(1, 300))
    hi = data.draw(st.integers(1, 50))  # small range forces duplicates
    xs = data.draw(st.lists(st.integers(0, hi), min_size=size, max_size=size))
    ys = data.draw(st.lists(st.integers(0, hi), min_size=size, max_size=size))
    xs, ys = np.array(xs), np.array(ys)
    ux, uy, inverse = dedup_query_pairs(xs, ys)
    assert (ux <= uy).all()
    # Unique and sorted by packed key.
    packed = pack_query_pairs(ux, uy)
    if packed.size > 1:
        assert (np.diff(packed.view(np.uint64)) > 0).all()
    assert np.array_equal(ux[inverse], np.minimum(xs, ys))
    assert np.array_equal(uy[inverse], np.maximum(xs, ys))


def test_run_batched_queries_dedup_is_exact_and_cheaper():
    parents = random_attachment_tree(512, seed=3)
    rng = np.random.default_rng(0)
    # Heavy duplication: 30 distinct nodes, 131072 queries.  Batches are
    # large enough that the GPU kernel is bandwidth-bound (not launch-bound),
    # so running it on the unique pairs must show up in the modeled time.
    q = 131_072
    xs = rng.integers(0, 30, q)
    ys = rng.integers(0, 30, q)
    alg = InlabelLCA(parents)
    plain = run_batched_queries(alg, xs, ys, 65_536, GTX980)
    deduped = run_batched_queries(alg, xs, ys, 65_536, GTX980, dedup=True)
    assert np.array_equal(plain.answers, deduped.answers)
    assert deduped.kernel_queries < plain.kernel_queries == q
    assert deduped.modeled_time_s < plain.modeled_time_s


# ----------------------------------------------------------------------
# AnswerCache unit behaviour
# ----------------------------------------------------------------------
def test_cache_roundtrip_and_space_isolation():
    cache = AnswerCache(1 << 16, seed=5)
    rng = np.random.default_rng(0)
    keys = np.unique(rng.integers(0, 1 << 48, 1000).astype(np.uint64))
    values = rng.integers(0, 1 << 31, keys.size)
    cache.insert(3, keys, values)
    got, found, hits = cache.lookup(3, keys)
    assert found.all() and hits == keys.size
    assert np.array_equal(got, values)
    # Same keys in a different dataset space must all miss (exactness).
    assert not cache.lookup(4, keys)[1].any()
    # Unknown keys miss; known subset of a mixed probe hits exactly.
    probe = rng.integers(0, 1 << 48, 2000).astype(np.uint64)
    _, found, _ = cache.lookup(3, probe)
    assert np.array_equal(found, np.isin(probe, keys))


def test_cache_respects_byte_budget_and_min_size():
    cache = AnswerCache(10_000)
    assert cache.nbytes <= 10_000
    assert cache.slots * BYTES_PER_SLOT == cache.nbytes
    with pytest.raises(ServiceError):
        AnswerCache(MIN_CACHE_BYTES - 1)


def test_cache_adversarial_collisions_probe_correctly():
    # A tiny table forces long collision chains; craft keys that share one
    # home slot under the seeded salt by brute-force search.
    cache = AnswerCache(MIN_CACHE_BYTES, seed=1)  # 64 slots
    colliders = []
    key = 0
    while len(colliders) < 8:
        key += 1
        arr = np.array([key], dtype=np.uint64)
        if int(cache._home_slots(0, arr)[0]) == 0:
            colliders.append(key)
    keys = np.array(colliders, dtype=np.uint64)
    values = np.arange(100, 100 + keys.size)
    cache.insert(0, keys, values)
    got, found, _ = cache.lookup(0, keys)
    assert found.all()
    assert np.array_equal(got, values)
    # A missing key whose home slot also collides must probe to a miss,
    # never a false hit.
    while True:
        key += 1
        arr = np.array([key], dtype=np.uint64)
        if int(cache._home_slots(0, arr)[0]) == 0:
            break
    assert not cache.lookup(0, arr)[1][0]


def test_cache_eviction_resets_epoch_and_forgets():
    cache = AnswerCache(MIN_CACHE_BYTES)  # 64 slots, ~44-entry load bound
    first = np.arange(1, 11, dtype=np.uint64)
    cache.insert(0, first, np.arange(10))
    assert cache.lookup(0, first)[1].all()
    for block in range(1, 30):
        keys = np.arange(block * 100, block * 100 + 10, dtype=np.uint64)
        cache.insert(0, keys, np.arange(10))
    assert cache.resets > 0
    # The early entries were logically cleared by the epoch bump.
    assert not cache.lookup(0, first)[1].any()
    assert cache.used <= int(cache.slots * 0.7)


def test_cache_insert_race_within_batch_keeps_all_entries():
    # Distinct keys that collide on the same home slot within one insert
    # batch: losers must keep probing, not vanish.
    cache = AnswerCache(MIN_CACHE_BYTES, seed=2)
    colliders = []
    key = 0
    while len(colliders) < 5:
        key += 1
        arr = np.array([key], dtype=np.uint64)
        if int(cache._home_slots(0, arr)[0]) == 7:
            colliders.append(key)
    keys = np.array(colliders, dtype=np.uint64)
    cache.insert(0, keys, np.arange(keys.size))
    got, found, _ = cache.lookup(0, keys)
    assert found.all()
    assert np.array_equal(got, np.arange(keys.size))
    assert cache.used == keys.size


# ----------------------------------------------------------------------
# Service-level exactness properties
# ----------------------------------------------------------------------
def _serve_stream(parents, xs, ys, at, **kwargs):
    svc = LCAQueryService(
        policy=BatchPolicy(max_batch_size=64, max_wait_s=2e-4), **kwargs
    )
    svc.register_tree("t", parents)
    tickets = svc.submit_many("t", xs, ys, at=at)
    svc.drain()
    return svc, svc.results(tickets)


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_cache_on_off_answers_bit_identical(data):
    n = data.draw(st.integers(2, 400))
    seed = data.draw(st.integers(0, 1000))
    q = data.draw(st.integers(1, 500))
    parents = random_attachment_tree(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Narrow key range => heavy intra-batch and cross-batch repetition.
    span = data.draw(st.integers(1, n))
    xs = rng.integers(0, span, q)
    ys = rng.integers(0, span, q)
    at = np.arange(q) / 1e5
    _, plain = _serve_stream(parents, xs, ys, at)
    _, dedup = _serve_stream(parents, xs, ys, at, dedup=True)
    _, cached = _serve_stream(parents, xs, ys, at, answer_cache_bytes=1 << 14)
    assert np.array_equal(plain, dedup)
    assert np.array_equal(plain, cached)


def test_cache_exact_across_repeated_streams_and_tiny_cache():
    # A cache too small for the working set must evict/reset its way
    # through, still answering exactly.
    parents = random_attachment_tree(600, seed=9)
    rng = np.random.default_rng(2)
    xs = rng.integers(0, 600, 5000)
    ys = rng.integers(0, 600, 5000)
    oracle = BinaryLiftingLCA(parents).query(xs, ys)
    svc = LCAQueryService(
        policy=BatchPolicy(max_batch_size=128, max_wait_s=2e-4),
        answer_cache_bytes=MIN_CACHE_BYTES,
    )
    svc.register_tree("t", parents)
    for round_ in range(2):
        at = svc.clock.now + np.arange(5000) / 1e5
        tickets = svc.submit_many("t", xs, ys, at=at)
        svc.drain()
        assert np.array_equal(svc.results(tickets), oracle)
    assert svc.answer_cache.resets > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_named_scenarios_replay_exactly_with_cache(name):
    svc = LCAQueryService(
        policy=BatchPolicy(max_batch_size=256, max_wait_s=2e-4),
        answer_cache_bytes=1 << 18,
    )
    # check_answers verifies against the oracle => exact with the cache on.
    report = replay(svc, make_scenario(name, scale=0.1), check_answers=True)
    stats = svc.stats()
    assert report.queries_admitted == stats.queries_answered > 0
    # Latency sanity: ordered percentiles, non-negative, finite.
    assert 0.0 <= stats.latency_p50_s <= stats.latency_p99_s
    assert stats.latency_p99_s <= stats.latency_max_s < float("inf")
    assert 0.0 <= stats.answer_cache_hit_rate <= 1.0
    assert 0.0 <= report.answer_cache_hit_rate <= 1.0
    assert stats.dedup_factor >= 1.0
    assert stats.kernel_queries <= stats.queries_answered
    for phase in report.phases:
        assert 0.0 <= phase.answer_cache_hit_rate <= 1.0


def test_skewed_hotspot_traffic_actually_hits_the_cache():
    svc = LCAQueryService(
        policy=BatchPolicy(max_batch_size=256, max_wait_s=2e-4),
        answer_cache_bytes=1 << 18,
    )
    report = replay(svc, make_scenario("skewed-hotspot", scale=0.5))
    assert report.answer_cache_hit_rate > 0.5
    assert report.dedup_factor > 2.0
    stats = svc.stats()
    assert stats.answer_cache_hits > 0
    # Full-hit batches ride the host-side cache lane.
    assert stats.backend_choices.get("cache", 0) >= 0


def test_dispatcher_prices_unique_miss_count():
    # 4096 duplicates of one pair: without dedup the batch-size-4096 choice
    # is the GPU; with the skew path the kernel sees one unique pair and
    # must be priced (and charged) as a single-query CPU batch.
    parents = random_attachment_tree(64, seed=0)
    plain = LCAQueryService(policy=BatchPolicy(max_batch_size=4096, max_wait_s=1.0))
    skew = LCAQueryService(
        policy=BatchPolicy(max_batch_size=4096, max_wait_s=1.0), dedup=True
    )
    for svc in (plain, skew):
        svc.register_tree("t", parents)
        xs = np.full(4096, 3)
        ys = np.full(4096, 9)
        svc.submit_many("t", xs, ys, at=np.zeros(4096))
        svc.drain()
    assert plain.stats().backend_choices == {"gpu": 1}
    assert skew.stats().backend_choices == {"cpu1": 1}
    assert skew.stats().kernel_queries == 1
    assert skew.stats().dedup_factor == 4096.0


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------
def test_one_replica_cluster_matches_service_with_cache():
    parents = random_attachment_tree(500, seed=4)
    rng = np.random.default_rng(7)
    xs = rng.integers(0, 120, 3000)
    ys = rng.integers(0, 120, 3000)
    at = np.arange(3000) / 2e5
    policy = BatchPolicy(max_batch_size=128, max_wait_s=2e-4)

    svc = LCAQueryService(policy=policy, answer_cache_bytes=1 << 16)
    svc.register_tree("t", parents)
    service_tickets = svc.submit_many("t", xs, ys, at=at)
    svc.drain()

    cluster = ClusterService(1, policy=policy, answer_cache_bytes=1 << 16)
    cluster.register_tree("t", parents)
    cluster_tickets = cluster.submit_many("t", xs, ys, at=at)
    cluster.drain()

    assert np.array_equal(
        svc.results(service_tickets), cluster.results(cluster_tickets)
    )
    # Bit-identical down to the full stats snapshot, answer cache included.
    assert cluster.stats().replicas[0] == svc.stats()


def test_cluster_aggregates_answer_cache_stats():
    cluster = ClusterService(
        2,
        policy=BatchPolicy(max_batch_size=64, max_wait_s=2e-4),
        answer_cache_bytes=1 << 16,
    )
    parents = random_attachment_tree(200, seed=1)
    cluster.register_tree("t", parents, replicas=2)
    rng = np.random.default_rng(3)
    xs = rng.integers(0, 20, 2000)
    ys = rng.integers(0, 20, 2000)
    cluster.submit_many("t", xs, ys, at=np.arange(2000) / 2e5)
    cluster.drain()
    stats = cluster.stats()
    per = stats.replicas
    assert stats.answer_cache_hits == sum(s.answer_cache_hits for s in per) > 0
    assert stats.answer_cache_misses == sum(s.answer_cache_misses for s in per)
    assert 0.0 < stats.answer_cache_hit_rate <= 1.0
    assert stats.dedup_factor > 1.0
    # Per-replica caches split the cluster budget.
    for replica in cluster.replicas:
        assert replica.answer_cache is not None
        assert replica.answer_cache.nbytes <= (1 << 16) // 2


def test_cluster_answer_cache_comes_out_of_byte_budget():
    with pytest.raises(ServiceError):
        ClusterService(2, capacity_bytes=1 << 16, answer_cache_bytes=1 << 16)
    # A budget too small for every replica's cache minimum fails with a
    # cluster-level message, not deep inside replica construction.
    with pytest.raises(ServiceError, match="each of 4 replicas"):
        ClusterService(4, answer_cache_bytes=2048)
    cluster = ClusterService(2, capacity_bytes=1 << 20, answer_cache_bytes=1 << 18)
    for replica in cluster.replicas:
        assert replica.registry.capacity_bytes == ((1 << 20) - (1 << 18)) // 2
        assert replica.answer_cache is not None
