"""Tests for graph characterization (Table 1 statistics)."""

import pytest

from repro.graphs import EdgeList, characterize, degree_statistics, is_tree, pseudo_diameter
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, rmat_graph

from .conftest import random_connected_graph


class TestPseudoDiameter:
    def test_path(self):
        assert pseudo_diameter(path_graph(30)) == 29

    def test_cycle(self):
        assert pseudo_diameter(cycle_graph(20)) in (10, 11)

    def test_grid(self):
        # exact diameter of a 5x8 grid is 4 + 7 = 11; the double sweep is a
        # lower bound that should reach at least most of it
        assert 8 <= pseudo_diameter(grid_graph(5, 8)) <= 11

    def test_lower_bound_of_true_diameter(self):
        import networkx as nx

        g = random_connected_graph(60, 30, seed=0)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(60))
        nxg.add_edges_from((int(a), int(b)) for a, b in g.edges())
        true_diameter = nx.diameter(nxg)
        estimate = pseudo_diameter(g, sweeps=3)
        assert estimate <= true_diameter
        assert estimate >= true_diameter / 2

    def test_empty_graph(self):
        assert pseudo_diameter(EdgeList.from_pairs([], n=0)) == 0


class TestDegreeStatistics:
    def test_basic(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2)], n=3)
        stats = degree_statistics(g)
        assert stats["max"] == 2
        assert stats["min"] == 1
        assert stats["avg"] == pytest.approx(4 / 3)

    def test_empty(self):
        assert degree_statistics(EdgeList.from_pairs([], n=0))["avg"] == 0.0


class TestCharacterize:
    def test_path_statistics(self):
        stats = characterize(path_graph(40), "path")
        assert stats.nodes == 40
        assert stats.edges == 39
        assert stats.bridges == 39
        assert stats.diameter == 39
        assert stats.name == "path"

    def test_cycle_has_no_bridges(self):
        stats = characterize(cycle_graph(30), "cycle")
        assert stats.bridges == 0

    def test_restricts_to_largest_component(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2), (3, 4)], n=6)
        stats = characterize(g, "multi", restrict_to_lcc=True)
        assert stats.nodes == 3
        full = characterize(g, "multi", restrict_to_lcc=False)
        assert full.nodes == 6

    def test_as_row_contains_all_columns(self):
        row = characterize(path_graph(10), "p").as_row()
        assert set(row) == {"graph", "nodes", "edges", "bridges", "diameter",
                            "avg_degree", "max_degree"}

    def test_kron_statistics_plausible(self):
        stats = characterize(rmat_graph(8, 8, seed=1), "kron")
        assert stats.diameter <= 10
        assert stats.edges > stats.nodes


class TestIsTree:
    def test_path_is_tree(self):
        assert is_tree(path_graph(10))

    def test_cycle_is_not_tree(self):
        assert not is_tree(cycle_graph(10))

    def test_disconnected_forest_is_not_tree(self):
        assert not is_tree(EdgeList.from_pairs([(0, 1), (2, 3)], n=4))

    def test_multigraph_is_not_tree(self):
        assert not is_tree(EdgeList.from_pairs([(0, 1), (0, 1), (1, 2)], n=3))

    def test_empty_graph_is_not_tree(self):
        assert not is_tree(EdgeList.from_pairs([], n=0))
