"""Tests for the parallel bridge-finding algorithms (TV, CK, hybrid)."""

import numpy as np
import pytest

from repro.bridges import (
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_networkx,
    find_bridges_tarjan_vishkin,
)
from repro.device import ExecutionContext, GTX980, XEON_X5650_MULTI
from repro.errors import InvalidGraphError
from repro.graphs import EdgeList
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    rmat_graph,
    road_graph,
    social_graph,
    web_graph,
)
from repro.graphs import largest_connected_component

from .conftest import random_connected_graph

PARALLEL_ALGORITHMS = [
    ("tv", lambda g, ctx: find_bridges_tarjan_vishkin(g, ctx=ctx)),
    ("ck-gpu", lambda g, ctx: find_bridges_ck(g, device="gpu", ctx=ctx)),
    ("ck-cpu", lambda g, ctx: find_bridges_ck(g, device="cpu", ctx=ctx)),
    ("hybrid", lambda g, ctx: find_bridges_hybrid(g, ctx=ctx)),
]


@pytest.mark.parametrize("name,run", PARALLEL_ALGORITHMS)
class TestCorrectness:
    def test_path(self, name, run):
        result = run(path_graph(30), ExecutionContext(GTX980))
        assert result.num_bridges == 29

    def test_cycle(self, name, run):
        result = run(cycle_graph(30), ExecutionContext(GTX980))
        assert result.num_bridges == 0

    def test_parallel_edges(self, name, run):
        g = EdgeList.from_pairs([(0, 1), (0, 1), (1, 2)], n=3)
        result = run(g, ExecutionContext(GTX980))
        assert result.bridge_mask.tolist() == [False, False, True]

    def test_self_loops(self, name, run):
        g = EdgeList.from_pairs([(0, 1), (1, 1), (1, 2), (2, 0)], n=3)
        result = run(g, ExecutionContext(GTX980))
        assert result.bridge_mask.tolist() == [False, False, False, False]

    def test_star(self, name, run):
        g = EdgeList.from_pairs([(0, i) for i in range(1, 12)], n=12)
        result = run(g, ExecutionContext(GTX980))
        assert result.num_bridges == 11

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_against_oracle(self, name, run, seed):
        rng = np.random.default_rng(seed + 100)
        n = int(rng.integers(4, 90))
        extra = int(rng.integers(0, n))
        g = random_connected_graph(n, extra, seed + 200)
        oracle = find_bridges_networkx(g)
        assert run(g, ExecutionContext(GTX980)).agrees_with(oracle)

    def test_structured_graphs_against_oracle(self, name, run):
        for maker in (lambda: rmat_graph(8, 8, seed=4),
                      lambda: road_graph(12, 20, seed=5),
                      lambda: web_graph(500, seed=6),
                      lambda: social_graph(300, seed=7)):
            g, _ = largest_connected_component(maker())
            oracle = find_bridges_networkx(g)
            assert run(g, ExecutionContext(GTX980)).agrees_with(oracle)

    def test_single_node_and_empty(self, name, run):
        assert run(EdgeList.from_pairs([], n=1), ExecutionContext(GTX980)).num_bridges == 0
        assert run(EdgeList.from_pairs([], n=0), ExecutionContext(GTX980)).num_bridges == 0

    def test_two_nodes(self, name, run):
        g = EdgeList.from_pairs([(0, 1)], n=2)
        assert run(g, ExecutionContext(GTX980)).bridge_mask.tolist() == [True]


class TestDisconnectedInputRejected:
    def test_tv(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3)], n=4)
        with pytest.raises(InvalidGraphError):
            find_bridges_tarjan_vishkin(g)

    def test_ck(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3)], n=4)
        with pytest.raises(InvalidGraphError):
            find_bridges_ck(g)

    def test_hybrid(self):
        g = EdgeList.from_pairs([(0, 1), (2, 3)], n=4)
        with pytest.raises(InvalidGraphError):
            find_bridges_hybrid(g)


class TestPhaseBreakdowns:
    def test_tv_phases(self):
        ctx = ExecutionContext(GTX980)
        result = find_bridges_tarjan_vishkin(road_graph(15, 15, seed=8), ctx=ctx)
        assert list(result.phase_times) == ["Spanning tree", "Euler tour", "Detect bridges"]
        assert all(t > 0 for t in result.phase_times.values())

    def test_ck_phases(self):
        ctx = ExecutionContext(GTX980)
        result = find_bridges_ck(road_graph(15, 15, seed=9), ctx=ctx)
        assert list(result.phase_times) == ["BFS", "Mark non-bridges"]

    def test_hybrid_phases(self):
        ctx = ExecutionContext(GTX980)
        result = find_bridges_hybrid(road_graph(15, 15, seed=10), ctx=ctx)
        assert list(result.phase_times) == [
            "Spanning tree", "Euler tour", "Levels and parents", "Mark non-bridges",
        ]

    def test_phase_times_sum_to_context_total(self):
        g, _ = largest_connected_component(rmat_graph(7, 8, seed=11))
        ctx = ExecutionContext(GTX980)
        result = find_bridges_tarjan_vishkin(g, ctx=ctx)
        assert sum(result.phase_times.values()) == pytest.approx(ctx.elapsed)


class TestPerformanceShape:
    def test_ck_multicore_slower_than_gpu(self):
        g, _ = largest_connected_component(rmat_graph(10, 16, seed=12))
        gpu_ctx = ExecutionContext(GTX980)
        find_bridges_ck(g, device="gpu", ctx=gpu_ctx)
        cpu_ctx = ExecutionContext(XEON_X5650_MULTI)
        find_bridges_ck(g, device="cpu", ctx=cpu_ctx)
        assert gpu_ctx.elapsed < cpu_ctx.elapsed

    def test_tv_beats_ck_on_high_diameter_graph(self):
        """The paper's headline bridge result: on road networks (large
        diameter) TV is several times faster than CK."""
        g, _ = largest_connected_component(road_graph(90, 90, seed=13))
        tv_ctx = ExecutionContext(GTX980)
        find_bridges_tarjan_vishkin(g, ctx=tv_ctx)
        ck_ctx = ExecutionContext(GTX980)
        find_bridges_ck(g, ctx=ck_ctx)
        assert tv_ctx.elapsed < ck_ctx.elapsed

    def test_tv_beats_single_core_dfs(self):
        from repro.device import XEON_X5650_SINGLE

        g, _ = largest_connected_component(rmat_graph(11, 32, seed=14))
        tv_ctx = ExecutionContext(GTX980)
        find_bridges_tarjan_vishkin(g, ctx=tv_ctx)
        dfs_ctx = ExecutionContext(XEON_X5650_SINGLE)
        find_bridges_dfs(g, ctx=dfs_ctx)
        assert tv_ctx.elapsed < dfs_ctx.elapsed

    def test_hybrid_does_not_beat_tv_on_dense_graphs(self):
        """Paper §4.3: the hybrid never outperformed TV.

        The claim is driven by per-edge work, which dominates once graphs are
        dense enough; it is checked here on a dense Kronecker graph.  (At the
        heavily scaled-down sizes used in this reproduction, fixed launch
        overheads let the hybrid edge out TV on the *sparsest* road stand-ins
        — a deviation recorded in EXPERIMENTS.md.)
        """
        g, _ = largest_connected_component(rmat_graph(13, 64, seed=15))
        tv_ctx = ExecutionContext(GTX980)
        find_bridges_tarjan_vishkin(g, ctx=tv_ctx)
        hy_ctx = ExecutionContext(GTX980)
        find_bridges_hybrid(g, ctx=hy_ctx)
        assert tv_ctx.elapsed <= hy_ctx.elapsed * 1.05

    def test_hybrid_faster_than_ck_on_high_diameter_graph(self):
        """Paper §4.3: the hybrid 'was often faster than CK', most clearly on
        the large-diameter graphs where BFS is the bottleneck."""
        g, _ = largest_connected_component(road_graph(60, 60, seed=16))
        hy_ctx = ExecutionContext(GTX980)
        find_bridges_hybrid(g, ctx=hy_ctx)
        ck_ctx = ExecutionContext(GTX980)
        find_bridges_ck(g, ctx=ck_ctx)
        assert hy_ctx.elapsed < ck_ctx.elapsed
