"""Test suite for the repro package.

This file makes ``tests`` a package so the ``from .conftest import ...``
relative imports inside the test modules resolve under pytest's default
import mode.
"""
