"""Tests for reduction primitives."""

import numpy as np
import pytest

from repro.primitives import count_by_key, reduce_array, segreduce_by_key


class TestReduceArray:
    @pytest.mark.parametrize("op,expected", [("sum", 10), ("min", 1), ("max", 4)])
    def test_ops(self, op, expected):
        assert reduce_array(np.asarray([1, 2, 3, 4]), op) == expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            reduce_array(np.asarray([1]), "mean")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_array(np.asarray([], dtype=np.int64), "sum")

    def test_charges_cost(self, gpu_ctx):
        reduce_array(np.arange(100), "sum", ctx=gpu_ctx)
        assert gpu_ctx.elapsed > 0


class TestSegreduceByKey:
    def test_min_by_key(self):
        keys = np.asarray([0, 1, 0, 2, 1])
        vals = np.asarray([5, 3, 2, 9, 1])
        out = segreduce_by_key(keys, vals, 3, "min")
        assert out.tolist() == [2, 1, 9]

    def test_max_by_key(self):
        keys = np.asarray([0, 1, 0, 2, 1])
        vals = np.asarray([5, 3, 2, 9, 1])
        out = segreduce_by_key(keys, vals, 3, "max")
        assert out.tolist() == [5, 3, 9]

    def test_sum_by_key(self):
        keys = np.asarray([0, 0, 1])
        vals = np.asarray([1, 2, 3])
        out = segreduce_by_key(keys, vals, 2, "sum", identity=0)
        assert out.tolist() == [3, 3]

    def test_empty_segments_get_identity(self):
        keys = np.asarray([2])
        vals = np.asarray([7])
        out = segreduce_by_key(keys, vals, 4, "min", identity=999)
        assert out.tolist() == [999, 999, 7, 999]

    def test_default_identity_for_min_is_type_max(self):
        out = segreduce_by_key(np.asarray([], dtype=np.int64),
                               np.asarray([], dtype=np.int64), 2, "min")
        assert out.tolist() == [np.iinfo(np.int64).max] * 2

    def test_unsorted_keys_supported(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 10, size=1000)
        vals = rng.integers(-100, 100, size=1000)
        out = segreduce_by_key(keys, vals, 10, "min")
        for k in range(10):
            expected = vals[keys == k].min() if (keys == k).any() else np.iinfo(np.int64).max
            assert out[k] == expected

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ValueError):
            segreduce_by_key(np.asarray([5]), np.asarray([1]), 3, "min")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segreduce_by_key(np.asarray([0, 1]), np.asarray([1]), 2, "min")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            segreduce_by_key(np.asarray([0]), np.asarray([1]), 1, "median")


class TestCountByKey:
    def test_histogram(self):
        out = count_by_key(np.asarray([0, 2, 2, 1, 2]), 4)
        assert out.tolist() == [1, 1, 3, 0]

    def test_empty(self):
        assert count_by_key(np.asarray([], dtype=np.int64), 3).tolist() == [0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            count_by_key(np.asarray([3]), 3)

    def test_matches_bincount(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 50, size=2000)
        assert np.array_equal(count_by_key(keys, 50), np.bincount(keys, minlength=50))
