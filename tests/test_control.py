"""SLO specs, hot-swap tuning, and the online controller.

The load-bearing invariant: ``apply_tuning()`` changes *when batches
flush* and *what they cost*, never *what they answer*.  Every test that
retunes mid-stream checks answers against the binary-lifting oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    AUTOSCALE_SIGNALS,
    SLO,
    WINDOW_BUCKETS_S,
    AutoscalePolicy,
    Controller,
    TuningDecision,
)
from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.lca import BinaryLiftingLCA
from repro.service import (
    BatchPolicy,
    ClusterConfig,
    ClusterService,
    LCAQueryService,
    MicroBatchScheduler,
    ServiceConfig,
    SimulatedClock,
)
from repro.workloads import make_scenario, replay


# ----------------------------------------------------------------------
# SLO spec
# ----------------------------------------------------------------------
class TestSLO:
    def test_requires_an_objective(self):
        with pytest.raises(ServiceError, match="at least one objective"):
            SLO()

    def test_bounds_validated(self):
        with pytest.raises(ServiceError):
            SLO(p99_latency_s=0.0)
        with pytest.raises(ServiceError):
            SLO(max_shed_rate=1.5)
        with pytest.raises(ServiceError):
            SLO(min_throughput_qps=-1.0)
        with pytest.raises(ServiceError):
            SLO(tenant_weights=(("a", 0.0),))
        with pytest.raises(ServiceError, match="duplicate"):
            SLO(tenant_weights=(("a", 1.0), ("a", 2.0)))

    def test_weight_of_defaults_to_one(self):
        slo = SLO(tenant_weights=(("gold", 5.0), ("bronze", 1.0)))
        assert slo.weight_of("gold") == 5.0
        assert slo.weight_of("unknown") == 1.0

    def test_round_trip(self):
        slo = SLO(
            p99_latency_s=2e-4,
            max_shed_rate=0.05,
            min_throughput_qps=1e5,
            tenant_weights=(("a", 2.0), ("b", 1.0)),
        )
        assert SLO.from_dict(slo.to_dict()) == slo
        assert SLO.from_json(slo.to_json()) == slo

    def test_from_dict_normalizes_lists(self):
        slo = SLO.from_dict({"tenant_weights": [["a", 2], ["b", 1]]})
        assert slo.tenant_weights == (("a", 2.0), ("b", 1.0))

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ServiceError, match="unknown SLO"):
            SLO.from_dict({"p99": 1e-4})


# ----------------------------------------------------------------------
# AutoscalePolicy spec (same serialization contract as SLO)
# ----------------------------------------------------------------------
class TestAutoscalePolicy:
    def test_defaults_validate(self):
        policy = AutoscalePolicy()
        assert policy.signals == AUTOSCALE_SIGNALS
        assert policy.min_replicas <= policy.max_replicas

    def test_rejects_min_above_max(self):
        with pytest.raises(ServiceError, match="min_replicas"):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ServiceError, match="min_replicas"):
            AutoscalePolicy(min_replicas=0)

    def test_rejects_empty_signal_set(self):
        with pytest.raises(ServiceError, match="at least one signal"):
            AutoscalePolicy(signals=())

    def test_rejects_unknown_and_duplicate_signals(self):
        with pytest.raises(ServiceError, match="unknown"):
            AutoscalePolicy(signals=("shed", "cpu"))
        with pytest.raises(ServiceError, match="duplicate"):
            AutoscalePolicy(signals=("shed", "shed"))

    def test_rejects_non_positive_cooldowns(self):
        with pytest.raises(ServiceError, match="cooldown"):
            AutoscalePolicy(cooldown_out_s=0.0)
        with pytest.raises(ServiceError, match="cooldown"):
            AutoscalePolicy(cooldown_in_s=-1.0)

    def test_rejects_broken_hysteresis(self):
        # Every signal pair needs calm strictly below breach, selected or not:
        # a policy that would start flapping the moment its signal set is
        # widened is rejected up front.
        with pytest.raises(ServiceError, match="hysteresis"):
            AutoscalePolicy(signals=("shed",), shed_out=0.1, shed_in=0.1)
        with pytest.raises(ServiceError, match="hysteresis"):
            AutoscalePolicy(signals=("p99",), p99_out_s=1e-4, p99_in_s=2e-4)
        with pytest.raises(ServiceError, match="hysteresis"):
            AutoscalePolicy(signals=("queue",), shed_out=0.0, shed_in=0.0)
        with pytest.raises(ServiceError, match="non-negative"):
            AutoscalePolicy(signals=("queue",), queue_in=-0.5)

    def test_rejects_bad_steps(self):
        with pytest.raises(ServiceError, match="steps"):
            AutoscalePolicy(step_out=0)
        with pytest.raises(ServiceError, match="steps"):
            AutoscalePolicy(step_in=-2)

    def test_round_trip(self):
        policy = AutoscalePolicy(
            min_replicas=2,
            max_replicas=6,
            signals=("queue", "p99"),
            queue_out=0.9,
            queue_in=0.2,
            p99_out_s=1e-3,
            p99_in_s=1e-4,
            cooldown_out_s=1e-3,
            cooldown_in_s=5e-3,
            step_out=2,
            step_in=1,
        )
        assert AutoscalePolicy.from_dict(policy.to_dict()) == policy
        assert AutoscalePolicy.from_json(policy.to_json()) == policy

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ServiceError, match="unknown"):
            AutoscalePolicy.from_dict({"replicas": 3})

    @settings(max_examples=50, deadline=None)
    @given(
        min_replicas=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=8),
        signals=st.sets(
            st.sampled_from(AUTOSCALE_SIGNALS), min_size=1
        ).map(lambda s: tuple(sorted(s))),
        shed=st.tuples(
            st.floats(min_value=0.0, max_value=0.5),
            st.floats(min_value=1e-3, max_value=0.5),
        ),
        queue=st.tuples(
            st.floats(min_value=0.0, max_value=0.9),
            st.floats(min_value=1e-3, max_value=1.0),
        ),
        p99=st.tuples(
            st.floats(min_value=0.0, max_value=1e-3),
            st.floats(min_value=1e-6, max_value=1e-2),
        ),
        cooldowns=st.tuples(
            st.floats(min_value=1e-6, max_value=1.0),
            st.floats(min_value=1e-6, max_value=1.0),
        ),
        steps=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
    )
    def test_json_round_trip_property(
        self, min_replicas, extra, signals, shed, queue, p99, cooldowns, steps
    ):
        policy = AutoscalePolicy(
            min_replicas=min_replicas,
            max_replicas=min_replicas + extra,
            signals=signals,
            shed_in=shed[0],
            shed_out=shed[0] + shed[1],
            queue_in=queue[0],
            queue_out=queue[0] + queue[1],
            p99_in_s=p99[0],
            p99_out_s=p99[0] + p99[1],
            cooldown_out_s=cooldowns[0],
            cooldown_in_s=cooldowns[1],
            step_out=steps[0],
            step_in=steps[1],
        )
        assert AutoscalePolicy.from_json(policy.to_json()) == policy


# ----------------------------------------------------------------------
# Scheduler retune: the flush-boundary contract
# ----------------------------------------------------------------------
class TestSchedulerRetune:
    def test_shrunk_batch_size_flushes_complete_batches(self):
        clock = SimulatedClock()
        sched = MicroBatchScheduler(
            BatchPolicy(max_batch_size=100, max_wait_s=1.0), clock=clock
        )
        for i in range(7):
            sched.submit(i, 0, 1, at=0.0)
        flushed = sched.retune(BatchPolicy(max_batch_size=3, max_wait_s=1.0))
        assert [b.size for b in flushed] == [3, 3]
        assert all(b.trigger == "size" for b in flushed)
        assert len(sched.pending) == 1

    def test_shrunk_wait_flushes_overdue_batches(self):
        clock = SimulatedClock()
        sched = MicroBatchScheduler(
            BatchPolicy(max_batch_size=100, max_wait_s=1.0), clock=clock
        )
        sched.submit(0, 0, 1, at=0.0)
        clock.advance(0.5)
        flushed = sched.retune(
            BatchPolicy(max_batch_size=100, max_wait_s=0.1)
        )
        assert [b.trigger for b in flushed] == ["wait"]
        # The batch flushes at its new (past) deadline, not at now.
        assert flushed[0].flush_s == pytest.approx(0.1)

    def test_noop_retune_flushes_nothing(self):
        sched = MicroBatchScheduler(
            BatchPolicy(max_batch_size=10, max_wait_s=1.0)
        )
        sched.submit(0, 0, 1, at=0.0)
        assert sched.retune(BatchPolicy(max_batch_size=10, max_wait_s=1.0)) == []
        assert len(sched.pending) == 1


# ----------------------------------------------------------------------
# apply_tuning on both services
# ----------------------------------------------------------------------
class TestApplyTuning:
    def _tree(self, n=200, seed=3):
        return random_attachment_tree(n, seed=seed)

    def test_service_swaps_policy_and_flushes(self):
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=100, max_wait_s=1.0)
        )
        parents = self._tree()
        svc.register_tree("t", parents)
        tickets = [svc.submit("t", 2 * i, 2 * i + 1, at=1e-6 * i) for i in range(5)]
        cfg = svc.apply_tuning(max_batch_size=2, max_wait_s=1e-4)
        assert cfg.max_batch_size == 2
        assert svc.policy == BatchPolicy(max_batch_size=2, max_wait_s=1e-4)
        # Two size-complete pairs were forced out and served.
        assert sum(svc.answered(np.array(tickets))) == 4
        svc.drain()
        oracle = BinaryLiftingLCA(parents)
        xs = np.array([2 * i for i in range(5)])
        ys = np.array([2 * i + 1 for i in range(5)])
        assert np.array_equal(svc.results(np.array(tickets)), oracle.query(xs, ys))

    def test_service_noop_returns_config(self):
        svc = LCAQueryService()
        assert svc.apply_tuning() is svc.config

    def test_service_lane_overrides_one_dataset(self):
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=64, max_wait_s=1e-3)
        )
        svc.register_tree("a", self._tree(seed=1))
        svc.register_tree("b", self._tree(seed=2))
        svc.submit("a", 0, 1, at=0.0)
        svc.submit("b", 0, 1, at=0.0)
        svc.apply_tuning(dataset="a", max_wait_s=1e-5)
        assert svc._scheduler("a").policy.max_wait_s == 1e-5
        assert svc._scheduler("b").policy.max_wait_s == 1e-3
        # The global config is untouched by a lane override.
        assert svc.config.max_wait_s == 1e-3
        # A global swap resets every lane.
        svc.apply_tuning(max_wait_s=5e-4)
        assert svc._scheduler("a").policy.max_wait_s == 5e-4
        svc.drain()

    def test_cluster_global_swap_reaches_replicas_and_new_ones(self):
        cluster = ClusterService(config=ClusterConfig(n_replicas=2))
        cluster.register_tree("t", self._tree())
        cfg = cluster.apply_tuning(max_batch_size=32, max_wait_s=2e-4)
        assert cfg.max_batch_size == 32
        assert all(
            w.policy == BatchPolicy(max_batch_size=32, max_wait_s=2e-4)
            for w in cluster.replicas
        )
        rid = cluster.add_replica()
        assert cluster.replicas[rid].policy.max_batch_size == 32

    def test_cluster_max_pending_takes_effect(self):
        cluster = ClusterService(
            config=ClusterConfig(n_replicas=2, max_pending=4)
        )
        cluster.register_tree("t", self._tree())
        cluster.apply_tuning(max_pending=1000)
        assert cluster.config.max_pending == 1000
        xs = np.arange(100, dtype=np.int64)
        cluster.submit_many("t", xs, xs + 1, at=np.zeros(100))  # no Overloaded
        cluster.drain()

    def test_cluster_hedging_can_turn_on_mid_run(self):
        cluster = ClusterService(config=ClusterConfig(n_replicas=2))
        assert cluster.config.hedge_delay_s is None
        cluster.apply_tuning(hedge_delay_s=1e-3)
        assert cluster.config.hedge_delay_s == 1e-3
        assert cluster._hedge_delay_s == 1e-3

    def test_cluster_dataset_scope_rejects_cluster_knobs(self):
        cluster = ClusterService(config=ClusterConfig(n_replicas=2))
        cluster.register_tree("t", self._tree())
        with pytest.raises(ServiceError, match="cluster-wide"):
            cluster.apply_tuning(dataset="t", max_pending=10)

    def test_tuning_validates_through_config(self):
        svc = LCAQueryService()
        with pytest.raises(ServiceError):
            svc.apply_tuning(max_batch_size=0)


# ----------------------------------------------------------------------
# Exactness under retuning (the hypothesis property)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=40),  # retune after N queries
            st.sampled_from([1, 2, 8, 64, 1024]),  # new max_batch_size
            st.sampled_from([2e-5, 1e-4, 1e-3, 1e-2]),  # new max_wait_s
        ),
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_retuning_never_changes_answers(schedule, seed):
    rng = np.random.default_rng(seed)
    parents = random_attachment_tree(300, seed=seed)
    svc = LCAQueryService(
        config=ServiceConfig(max_batch_size=256, max_wait_s=1e-3)
    )
    svc.register_tree("t", parents)
    n = 150
    xs = rng.integers(0, 300, size=n)
    ys = rng.integers(0, 300, size=n)
    at = np.cumsum(rng.exponential(2e-5, size=n))
    tickets = []
    cursor = 0
    pending = list(schedule)
    next_retune = pending.pop(0) if pending else None
    while cursor < n:
        step = next_retune[0] if next_retune else n - cursor
        stop = min(n, cursor + step)
        tickets.append(
            svc.submit_many("t", xs[cursor:stop], ys[cursor:stop], at=at[cursor:stop])
        )
        cursor = stop
        if next_retune is not None:
            svc.apply_tuning(
                max_batch_size=next_retune[1], max_wait_s=next_retune[2]
            )
            next_retune = pending.pop(0) if pending else None
    svc.drain()
    oracle = BinaryLiftingLCA(parents)
    assert np.array_equal(
        svc.results(np.concatenate(tickets)), oracle.query(xs, ys)
    )


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class TestController:
    def test_rejects_bad_parameters(self):
        slo = SLO(p99_latency_s=1e-4)
        with pytest.raises(ValueError):
            Controller(slo, interval_s=-1.0)
        with pytest.raises(ValueError):
            Controller(slo, min_batch_size=0)
        with pytest.raises(ValueError):
            Controller(slo, wait_fraction=0.0)

    def test_interval_gates_observations(self):
        svc = LCAQueryService()
        ctl = Controller(SLO(p99_latency_s=1e-4), interval_s=1e-3)
        assert ctl.observe(svc, 0.0) is not None  # deadline clamp fires
        assert ctl.observe(svc, 5e-4) is None  # inside the interval
        assert len(ctl.decisions) == 1

    def test_deadline_clamp_bounds_wait_by_budget(self):
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=64, max_wait_s=1e-2)
        )
        ctl = Controller(
            SLO(p99_latency_s=2e-4), interval_s=0.0, wait_fraction=0.5
        )
        decision = ctl.observe(svc, 0.0)
        assert "deadline-clamp" in decision.reason
        assert svc.config.max_wait_s == pytest.approx(1e-4)

    def test_p99_violation_backs_off(self):
        parents = random_attachment_tree(500, seed=1)
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=2048, max_wait_s=5e-4)
        )
        svc.register_tree("t", parents)
        # Queue a big slow batch so recorded latencies blow the bound.
        xs = np.arange(2000) % 500
        svc.submit_many("t", xs, (xs + 7) % 500, at=np.full(2000, 0.0))
        svc.drain()
        ctl = Controller(SLO(p99_latency_s=1e-6), interval_s=0.0)
        decision = ctl.observe(svc, svc.clock.now)
        assert "p99" in decision.reason
        assert decision.max_batch_size < 2048
        assert decision.window_p99_s > 1e-6

    def test_shed_violation_bulks_up_and_raises_admission(self):
        parents = random_attachment_tree(200, seed=2)
        cluster = ClusterService(
            config=ClusterConfig(n_replicas=2, max_batch_size=64,
                                 max_wait_s=1e-4, max_pending=8)
        )
        cluster.register_tree("t", parents)
        xs = np.arange(64, dtype=np.int64) % 200
        with pytest.raises(Exception):  # Overloaded: floods the tiny queue
            cluster.submit_many("t", xs, xs + 1, at=np.zeros(64))
        ctl = Controller(
            SLO(p99_latency_s=1.0, max_shed_rate=0.01), interval_s=0.0
        )
        decision = ctl.observe(cluster, cluster.clock.now)
        assert "shed" in decision.reason
        assert decision.max_batch_size == 128
        assert decision.max_pending == 12  # 8 * 3 // 2
        assert cluster.config.max_pending == 12

    def test_probe_grows_batch_under_deep_headroom(self):
        parents = random_attachment_tree(200, seed=3)
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=64, max_wait_s=4e-5)
        )
        svc.register_tree("t", parents)
        svc.submit_many(
            "t",
            np.arange(32, dtype=np.int64),
            np.arange(32, dtype=np.int64) + 1,
            at=np.linspace(0.0, 1e-5, 32),
        )
        svc.drain()
        ctl = Controller(SLO(p99_latency_s=10.0), interval_s=0.0)
        decision = ctl.observe(svc, svc.clock.now)
        assert decision is not None and "probe" in decision.reason
        assert decision.max_batch_size == 128

    def test_priority_lanes_shorten_heavy_tenants(self):
        slo = SLO(
            p99_latency_s=1e-3,
            tenant_weights=(("gold", 5.0), ("bronze", 1.0)),
        )
        svc = LCAQueryService(
            config=ServiceConfig(max_batch_size=64, max_wait_s=5e-4)
        )
        svc.register_tree("gold", random_attachment_tree(100, seed=4))
        svc.register_tree("bronze", random_attachment_tree(100, seed=5))
        svc.submit("gold", 0, 1, at=0.0)
        svc.submit("bronze", 0, 1, at=0.0)
        ctl = Controller(slo, interval_s=0.0)
        ctl.observe(svc, 0.0)
        gold = svc._scheduler("gold").policy.max_wait_s
        bronze = svc._scheduler("bronze").policy.max_wait_s
        assert gold == pytest.approx(bronze / 5.0)
        assert bronze <= svc.config.max_wait_s
        svc.drain()

    def test_controlled_replay_verifies_against_oracle(self):
        cluster = ClusterService(
            config=ClusterConfig(n_replicas=3, max_pending=4096)
        )
        ctl = Controller(
            SLO(p99_latency_s=3e-4, max_shed_rate=0.05), interval_s=2e-3
        )
        report = replay(
            cluster,
            make_scenario("diurnal", scale=0.15),
            check_answers=True,  # raises if any answer deviates
            controller=ctl,
        )
        assert report.queries_admitted > 0
        assert ctl.decisions  # the controller actually moved

    def test_decisions_are_recorded_with_measurements(self):
        svc = LCAQueryService()
        ctl = Controller(SLO(p99_latency_s=1e-4), interval_s=0.0)
        decision = ctl.observe(svc, 0.0)
        assert isinstance(decision, TuningDecision)
        assert decision.window_shed_rate == 0.0
        assert ctl.decisions == [decision]

    def test_window_buckets_are_ascending(self):
        assert list(WINDOW_BUCKETS_S) == sorted(WINDOW_BUCKETS_S)
