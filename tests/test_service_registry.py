"""Registry tests: store registration, LRU eviction order, hit/miss accounting."""

import numpy as np
import pytest

from repro.device import GTX980, XEON_X5650_SINGLE, ExecutionContext
from repro.errors import ServiceError
from repro.graphs import CSRGraph
from repro.graphs.generators import random_attachment_tree
from repro.lca import InlabelLCA, SequentialInlabelLCA
from repro.service import (
    ArtifactKey,
    ForestStore,
    IndexRegistry,
    artifact_nbytes,
)

from .conftest import random_connected_graph


def make_store(*names, n=256):
    store = ForestStore()
    for i, name in enumerate(names):
        store.add_tree(name, random_attachment_tree(n, seed=i))
    return store


# ----------------------------------------------------------------------
# ForestStore
# ----------------------------------------------------------------------

def test_store_registration_and_access():
    store = make_store("a")
    assert store.has_tree("a") and not store.has_graph("a")
    assert store.tree("a").size == 256
    assert store.names == ["a"]


def test_store_rejects_duplicates_and_bad_args():
    store = make_store("a")
    with pytest.raises(ServiceError):
        store.add_tree("a", random_attachment_tree(16, seed=0))
    with pytest.raises(ServiceError):
        store.add_tree("", random_attachment_tree(16, seed=0))
    with pytest.raises(ServiceError):
        store.add_tree("b")  # neither parents nor loader
    with pytest.raises(ServiceError):
        store.add_tree("b", random_attachment_tree(16, seed=0),
                       loader=lambda: random_attachment_tree(16, seed=0))
    with pytest.raises(ServiceError):
        store.tree("missing")


def test_store_lazy_loader_failure_is_retryable():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) == 1:
            raise OSError("transient")
        return random_attachment_tree(32, seed=6)

    store = ForestStore()
    store.add_tree("flaky", loader=flaky)
    with pytest.raises(OSError):
        store.tree("flaky")
    # The failed load must not consume the loader: the next access retries
    # and succeeds instead of raising a bare KeyError.
    assert store.tree("flaky").size == 32
    assert len(attempts) == 2


def test_store_lazy_loader_honors_validate_flag():
    from repro.errors import NotATreeError

    store = ForestStore()
    # Cyclic, rootless parent array: must be rejected at materialization.
    store.add_tree("bad", loader=lambda: np.asarray([1, 2, 0]), validate=True)
    with pytest.raises(NotATreeError):
        store.tree("bad")
    # Without the flag the same loader result is accepted as-is.
    store.add_tree("unchecked", loader=lambda: np.asarray([1, 2, 0]))
    assert store.tree("unchecked").tolist() == [1, 2, 0]


def test_store_lazy_loader_called_exactly_once():
    calls = []

    def loader():
        calls.append(1)
        return random_attachment_tree(64, seed=5)

    store = ForestStore()
    store.add_tree("lazy", loader=loader)
    assert calls == []
    first = store.tree("lazy")
    second = store.tree("lazy")
    assert len(calls) == 1
    assert first is second


def test_store_graph_datasets():
    store = ForestStore()
    store.add_graph("g", random_connected_graph(128, 64, seed=1))
    assert store.has_graph("g")
    assert store.graph("g").num_nodes == 128


# ----------------------------------------------------------------------
# Hit / miss accounting
# ----------------------------------------------------------------------

def test_fetch_miss_then_hit_accounting():
    registry = IndexRegistry(make_store("a"))
    entry, hit = registry.fetch("a", "lca", GTX980)
    assert not hit
    assert isinstance(entry.artifact, InlabelLCA)
    assert entry.nbytes > 0
    assert entry.build_time_s > 0  # preprocessing was charged on GTX980

    entry2, hit2 = registry.fetch("a", "lca", GTX980)
    assert hit2 and entry2 is entry
    assert (registry.hits, registry.misses, registry.evictions) == (1, 1, 0)
    assert registry.hit_rate == 0.5
    assert registry.bytes_in_use == entry.nbytes
    assert registry.build_time_s == entry.build_time_s


def test_device_spec_selects_algorithm_flavour_and_key():
    registry = IndexRegistry(make_store("a"))
    gpu = registry.get("a", "lca", GTX980)
    cpu = registry.get("a", "lca", XEON_X5650_SINGLE)
    assert isinstance(gpu, InlabelLCA)
    assert isinstance(cpu, SequentialInlabelLCA)
    # Distinct devices are distinct cache entries.
    assert len(registry) == 2
    assert registry.misses == 2


def test_explicit_sequential_flag_overrides_spec_inference():
    from repro.device import XEON_X5650_MULTI

    registry = IndexRegistry(make_store("a"))
    # A sequential backend on a multi-core spec must get the sequential
    # algorithm (matching how the dispatcher priced it), not the parallel
    # flavour the spec alone would suggest — and the two flavours on the
    # same spec are distinct cache entries.
    seq = registry.get("a", "lca", XEON_X5650_MULTI, sequential=True)
    par = registry.get("a", "lca", XEON_X5650_MULTI, sequential=False)
    assert isinstance(seq, SequentialInlabelLCA)
    assert isinstance(par, InlabelLCA)
    assert len(registry) == 2


def test_external_context_is_charged_for_builds():
    registry = IndexRegistry(make_store("a"))
    ctx = ExecutionContext(GTX980)
    entry, hit = registry.fetch("a", "lca", GTX980, ctx=ctx)
    assert not hit
    assert ctx.elapsed == pytest.approx(entry.build_time_s)


def test_graph_artifact_kinds():
    store = ForestStore()
    store.add_graph("g", random_connected_graph(200, 100, seed=2))
    registry = IndexRegistry(store)
    csr = registry.get("g", "csr", GTX980)
    assert isinstance(csr, CSRGraph)
    bridges = registry.get("g", "bridges", GTX980)
    assert bridges.num_bridges >= 0
    assert registry.bytes_in_use >= csr.indptr.nbytes


def test_unknown_kind_rejected():
    registry = IndexRegistry(make_store("a"))
    with pytest.raises(ServiceError):
        registry.get("a", "nope", GTX980)


# ----------------------------------------------------------------------
# Byte accounting
# ----------------------------------------------------------------------

def test_artifact_nbytes_matches_structure_accounting():
    parents = random_attachment_tree(512, seed=9)
    algo = InlabelLCA(parents)
    # The generic walker must find at least the seven structure tables, and
    # the structure dataclass alone must account to exactly its own nbytes.
    assert artifact_nbytes(algo.structure) == algo.structure.nbytes
    assert artifact_nbytes(algo) >= algo.structure.nbytes


def test_artifact_nbytes_counts_shared_arrays_once():
    arr = np.zeros(1000, dtype=np.int64)
    assert artifact_nbytes([arr, arr, {"again": arr}]) == arr.nbytes


def test_artifact_nbytes_resolves_views_to_their_base():
    arr = np.zeros(1000, dtype=np.int64)
    assert artifact_nbytes([arr, arr[:], arr[:10]]) == arr.nbytes


def test_bridge_result_nbytes_agrees_with_artifact_accounting():
    store = ForestStore()
    store.add_graph("g", random_connected_graph(150, 60, seed=3))
    registry = IndexRegistry(store)
    result = registry.get("g", "bridges", GTX980)
    assert result.nbytes == artifact_nbytes(result)


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------

def _entry_size():
    probe = IndexRegistry(make_store("probe"))
    entry, _ = probe.fetch("probe", "lca", GTX980)
    return entry.nbytes


def test_eviction_is_least_recently_used():
    size = _entry_size()
    registry = IndexRegistry(make_store("a", "b", "c"),
                             capacity_bytes=int(2.5 * size))
    registry.get("a", "lca", GTX980)
    registry.get("b", "lca", GTX980)
    # Refresh "a" so "b" becomes the least recently used...
    registry.get("a", "lca", GTX980)
    # ...then overflow: "b" must be the victim, not "a".
    registry.get("c", "lca", GTX980)
    cached = {key.dataset for key in registry.keys()}
    assert cached == {"a", "c"}
    assert registry.evictions == 1
    assert registry.bytes_in_use <= int(2.5 * size)
    # "b" is rebuilt on next access (a fresh miss).
    misses_before = registry.misses
    registry.get("b", "lca", GTX980)
    assert registry.misses == misses_before + 1


def test_lru_order_without_refresh_evicts_oldest():
    size = _entry_size()
    registry = IndexRegistry(make_store("a", "b", "c"),
                             capacity_bytes=int(2.5 * size))
    for name in ("a", "b", "c"):
        registry.get(name, "lca", GTX980)
    assert {key.dataset for key in registry.keys()} == {"b", "c"}


def test_newest_entry_survives_even_when_oversized():
    size = _entry_size()
    registry = IndexRegistry(make_store("a", "b"), capacity_bytes=size // 4)
    registry.get("a", "lca", GTX980)
    registry.get("b", "lca", GTX980)
    # Each insertion evicts everything else but is itself retained.
    assert [key.dataset for key in registry.keys()] == ["b"]
    assert registry.evictions == 1


def test_clear_counts_evictions_and_contains():
    registry = IndexRegistry(make_store("a"))
    registry.get("a", "lca", GTX980)
    key = ArtifactKey("a", "lca", GTX980.name, "parallel")
    assert key in registry
    registry.clear()
    assert key not in registry
    assert registry.evictions == 1
    assert registry.bytes_in_use == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ServiceError):
        IndexRegistry(make_store("a"), capacity_bytes=0)
