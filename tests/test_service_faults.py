"""Fault-tolerance tests: injection, failover, hedging, elastic membership.

The contract under test is the one ``docs/chaos.md`` documents: faults are
deterministic scheduled events on the simulated clock, admitted queries are
never silently lost (they fail over, park, or raise the typed
:class:`~repro.errors.ReplicaDown`), reported latency is measured from the
*original* arrival across any number of re-dispatches, and an empty
:class:`~repro.service.FaultInjector` is a provable no-op — bit-identical
to running without one.
"""

import numpy as np
import pytest

from repro.control import SLO, AutoscalePolicy, Controller
from repro.errors import ConfigurationError, ReplicaDown, ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.obs import TraceRecorder
from repro.obs.events import EV_FAULT, EV_HEDGE, EV_MEMBERSHIP, EV_RETRY
from repro.service import (
    BatchPolicy,
    ClusterService,
    FaultEvent,
    FaultInjector,
    LCAQueryService,
    RoundRobinRouter,
)

POLICY = BatchPolicy(max_batch_size=64, max_wait_s=1e-4)


def build_cluster(parents, n_replicas, *, replicas=None, **kwargs):
    cluster = ClusterService(n_replicas, **kwargs)
    cluster.register_tree(
        "t", parents, replicas=n_replicas if replicas is None else replicas
    )
    return cluster


def chunked_submit(cluster, dataset, xs, ys, arrivals, chunk):
    tickets = [
        cluster.submit_many(
            dataset, xs[i : i + chunk], ys[i : i + chunk], at=arrivals[i : i + chunk]
        )
        for i in range(0, xs.size, chunk)
    ]
    return np.concatenate(tickets)


def stream(n_nodes, n_queries, *, seed, rate=200_000.0):
    parents = random_attachment_tree(n_nodes, seed=seed)
    xs, ys = generate_random_queries(n_nodes, n_queries, seed=seed + 1)
    arrivals = np.arange(n_queries, dtype=np.float64) / rate
    expected = BinaryLiftingLCA(parents).query(xs, ys)
    return parents, xs, ys, arrivals, expected


# ----------------------------------------------------------------------
# Schedule surface: FaultEvent / FaultInjector
# ----------------------------------------------------------------------


def test_fault_event_validation():
    with pytest.raises(ConfigurationError):
        FaultEvent(time_s=0.0, action="explode", replica=0)
    with pytest.raises(ConfigurationError):
        FaultEvent(time_s=-1.0, action="kill", replica=0)
    with pytest.raises(ConfigurationError):
        FaultEvent(time_s=0.0, action="kill")  # needs a replica id
    with pytest.raises(ConfigurationError):
        FaultEvent(time_s=0.0, action="slowdown", replica=0, factor=0.0)
    with pytest.raises(ConfigurationError):
        FaultEvent(time_s=0.0, action="transient", replica=0, count=0)
    # "add" creates a replica and ignores the target id.
    assert FaultEvent(time_s=0.0, action="add").replica == -1


def test_fault_injector_is_a_sorted_cursor():
    events = [
        FaultEvent(time_s=0.3, action="recover", replica=0),
        FaultEvent(time_s=0.1, action="kill", replica=0),
        FaultEvent(time_s=0.1, action="kill", replica=1),
    ]
    inj = FaultInjector(events)
    assert [e.time_s for e in inj.schedule] == [0.1, 0.1, 0.3]
    assert inj.next_time_s == 0.1
    assert inj.advance(0.05) == []
    due = inj.advance(0.1)
    # Ties keep construction order within the same instant.
    assert [(e.action, e.replica) for e in due] == [("kill", 0), ("kill", 1)]
    assert (inj.pending, inj.applied) == (1, 2)
    assert [e.action for e in inj.advance(10.0)] == ["recover"]
    assert inj.next_time_s is None


def test_cluster_rejects_fault_on_unknown_replica():
    parents = random_attachment_tree(64, seed=0)
    injector = FaultInjector([FaultEvent(time_s=1e-3, action="kill", replica=5)])
    cluster = build_cluster(parents, 2, policy=POLICY, fault_injector=injector)
    with pytest.raises(ServiceError):
        cluster.advance_to(2e-3)


# ----------------------------------------------------------------------
# Kill / failover: answers survive, accounting is exact
# ----------------------------------------------------------------------


def test_kill_and_recover_answers_match_oracle():
    parents, xs, ys, arrivals, expected = stream(256, 1200, seed=3)
    mid = float(arrivals[arrivals.size // 2])
    injector = FaultInjector(
        [
            FaultEvent(time_s=mid, action="kill", replica=0),
            FaultEvent(time_s=mid + 1e-3, action="recover", replica=0),
        ]
    )
    observer = TraceRecorder()
    cluster = build_cluster(
        parents, 2, policy=POLICY, fault_injector=injector, observer=observer
    )
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()

    np.testing.assert_array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.queries_submitted == xs.size
    assert stats.queries_answered == xs.size  # zero lost
    assert stats.queries_retried > 0  # the kill stranded work mid-batch
    assert stats.faults_injected == 2
    table = observer.table()
    assert len(table.of_kind(EV_FAULT)) == 2
    assert len(table.of_kind(EV_RETRY)) > 0


def test_transient_failures_are_retried_with_identical_answers():
    parents, xs, ys, arrivals, expected = stream(128, 400, seed=11)
    injector = FaultInjector(
        [FaultEvent(time_s=0.0, action="transient", replica=0, count=3)]
    )
    cluster = build_cluster(parents, 2, policy=POLICY, fault_injector=injector)
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.queries_retried > 0
    assert stats.queries_answered == xs.size


def test_retry_cap_raises_typed_replica_down():
    parents = random_attachment_tree(64, seed=4)
    # Both copies keep failing: with the cap at 1, the second re-dispatch
    # must give up loudly instead of ping-ponging forever.
    injector = FaultInjector(
        [
            FaultEvent(time_s=0.0, action="transient", replica=0, count=8),
            FaultEvent(time_s=0.0, action="transient", replica=1, count=8),
        ]
    )
    cluster = build_cluster(
        parents, 2, policy=POLICY, fault_injector=injector, max_retries=1
    )
    cluster.submit("t", 1, 2, at=0.0)
    with pytest.raises(ReplicaDown) as exc_info:
        cluster.drain()
    assert exc_info.value.dataset == "t"
    assert exc_info.value.queries >= 1


def test_submit_to_fully_dead_dataset_raises_replica_down():
    parents = random_attachment_tree(64, seed=5)
    injector = FaultInjector(
        [
            FaultEvent(time_s=1e-3, action="kill", replica=0),
            FaultEvent(time_s=1e-3, action="kill", replica=1),
        ]
    )
    cluster = build_cluster(parents, 2, policy=POLICY, fault_injector=injector)
    with pytest.raises(ReplicaDown) as exc_info:
        cluster.submit("t", 1, 2, at=2e-3)
    assert exc_info.value.dataset == "t"
    assert exc_info.value.queries == 1


def test_parked_queries_survive_total_outage_until_recovery():
    parents, xs, ys, arrivals, expected = stream(128, 200, seed=6)
    t_kill = float(arrivals[-1]) + 1e-5
    injector = FaultInjector(
        [
            FaultEvent(time_s=t_kill, action="kill", replica=0),
            FaultEvent(time_s=t_kill, action="kill", replica=1),
            FaultEvent(time_s=t_kill + 5e-3, action="recover", replica=0),
        ]
    )
    # A huge wait deadline keeps everything queued until the double kill.
    slow = BatchPolicy(max_batch_size=1 << 15, max_wait_s=10.0)
    cluster = build_cluster(parents, 2, policy=slow, fault_injector=injector)
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.advance_to(t_kill + 1e-4)  # both copies now dead; queries parked
    with pytest.raises(ReplicaDown):
        cluster.drain()
    cluster.advance_to(t_kill + 6e-3)  # recovery re-dispatches the parked work
    cluster.drain()
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    assert cluster.stats().queries_answered == xs.size


# ----------------------------------------------------------------------
# Latency accounting across failover
# ----------------------------------------------------------------------


def test_failover_latency_is_measured_from_the_original_arrival():
    parents = random_attachment_tree(64, seed=7)
    wait = 1e-2
    policy = BatchPolicy(max_batch_size=64, max_wait_s=wait)

    def run(injector):
        cluster = ClusterService(
            2,
            policy=policy,
            router=RoundRobinRouter(),  # first route lands on replica 0
            fault_injector=injector,
        )
        cluster.register_tree("t", parents, on=[0, 1])  # pinned copy order
        ticket = cluster.submit("t", 1, 2, at=0.0)
        cluster.advance_to(4 * wait)
        return cluster.latency(ticket)

    baseline = run(None)
    kill_at = wait / 2
    failover = run(
        FaultInjector([FaultEvent(time_s=kill_at, action="kill", replica=0)])
    )
    # The re-dispatch re-queues the query at the kill instant, so it waits a
    # fresh flush window on the survivor; the extra half-window of time it
    # already spent on the dead replica is carried as latency debt.
    assert failover == pytest.approx(baseline + kill_at, rel=1e-9)


# ----------------------------------------------------------------------
# Hedged dispatch
# ----------------------------------------------------------------------


def test_hedge_beats_a_slowed_replica():
    parents, xs, ys, arrivals, expected = stream(128, 256, seed=8)
    injector = FaultInjector(
        [FaultEvent(time_s=0.0, action="slowdown", replica=0, factor=1e6)]
    )
    observer = TraceRecorder()
    cluster = build_cluster(
        parents,
        2,
        policy=POLICY,
        router=RoundRobinRouter(),  # keep routing half the load onto the laggard
        fault_injector=injector,
        hedge_delay_s=1e-4,
        observer=observer,
    )
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.hedges_issued > 0
    assert stats.hedges_won > 0  # the healthy copy answers first
    assert len(observer.table().of_kind(EV_HEDGE)) == stats.hedges_issued


def test_no_hedges_without_a_delay_or_a_straggler():
    parents, xs, ys, arrivals, _ = stream(128, 128, seed=9)
    cluster = build_cluster(parents, 2, policy=POLICY, hedge_delay_s=10.0)
    chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()
    assert cluster.stats().hedges_issued == 0


# ----------------------------------------------------------------------
# Elastic membership
# ----------------------------------------------------------------------


def test_add_replica_joins_live_and_serves():
    parents, xs, ys, arrivals, expected = stream(128, 300, seed=10)
    observer = TraceRecorder()
    cluster = build_cluster(parents, 2, policy=POLICY, observer=observer)
    half = xs.size // 2
    t0 = chunked_submit(cluster, "t", xs[:half], ys[:half], arrivals[:half], 64)
    rid = cluster.add_replica()
    assert rid == 2
    assert (cluster.n_replicas, cluster.n_live) == (3, 3)
    cluster.register_tree("u", parents, on=[rid])
    t1 = chunked_submit(cluster, "t", xs[half:], ys[half:], arrivals[half:], 64)
    cluster.drain()
    np.testing.assert_array_equal(
        cluster.results(np.concatenate([t0, t1])), expected
    )
    assert cluster.stats().membership_events == 1
    assert len(observer.table().of_kind(EV_MEMBERSHIP)) == 1


def test_retire_replica_drains_before_leaving():
    parents, xs, ys, arrivals, expected = stream(128, 200, seed=12)
    slow = BatchPolicy(max_batch_size=1 << 15, max_wait_s=10.0)
    cluster = build_cluster(parents, 2, policy=slow)
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    victim = cluster.placement("t")[0]
    assert cluster.pending_count() == xs.size
    cluster.retire_replica(victim)  # drain-before-retire: nothing is lost
    cluster.drain()
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    assert cluster.stats().queries_answered == xs.size
    assert cluster.n_active == 1
    assert victim not in cluster.placement("t")


def test_retire_validation():
    parents = random_attachment_tree(64, seed=13)
    cluster = ClusterService(2, policy=POLICY)
    cluster.register_tree("pinned", parents, on=[1])
    cluster.register_tree("t", parents, replicas=2)
    with pytest.raises(ServiceError):
        cluster.retire_replica(7)  # unknown
    with pytest.raises(ServiceError):
        cluster.retire_replica(1)  # sole copy of a pinned dataset
    cluster.register_tree("spare", parents, on=[0])
    with pytest.raises(ServiceError):
        cluster.retire_replica(0)  # also pinned now; nothing retirable
    cluster2 = build_cluster(parents, 2, policy=POLICY)
    cluster2.retire_replica(0)
    with pytest.raises(ServiceError):
        cluster2.retire_replica(0)  # already retired
    with pytest.raises(ServiceError):
        cluster2.retire_replica(1)  # last active replica


def test_scheduled_scale_out_and_retire():
    parents, xs, ys, arrivals, expected = stream(128, 400, seed=14)
    mid = float(arrivals[arrivals.size // 2])
    injector = FaultInjector(
        [
            FaultEvent(time_s=mid, action="add"),
            FaultEvent(time_s=mid + 2e-4, action="retire", replica=0),
        ]
    )
    cluster = build_cluster(parents, 2, policy=POLICY, fault_injector=injector)
    tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()
    np.testing.assert_array_equal(cluster.results(tickets), expected)
    stats = cluster.stats()
    assert stats.membership_events == 2
    assert stats.faults_injected == 2
    assert cluster.n_replicas == 3
    assert cluster.n_active == 2


# ----------------------------------------------------------------------
# No-op properties: an empty injector is provably free
# ----------------------------------------------------------------------


def test_noop_injector_is_bit_identical_to_no_injector():
    parents, xs, ys, arrivals, _ = stream(256, 600, seed=15)

    def run(injector):
        cluster = build_cluster(
            parents, 3, policy=POLICY, fault_injector=injector
        )
        tickets = chunked_submit(cluster, "t", xs, ys, arrivals, 64)
        cluster.drain()
        return (
            tickets,
            cluster.results(tickets),
            cluster.latencies(tickets),
            cluster.stats(),
        )

    t_plain, r_plain, lat_plain, s_plain = run(None)
    t_noop, r_noop, lat_noop, s_noop = run(FaultInjector(()))
    np.testing.assert_array_equal(t_plain, t_noop)
    np.testing.assert_array_equal(r_plain, r_noop)
    np.testing.assert_array_equal(lat_plain, lat_noop)
    assert s_plain == s_noop  # the full statistics snapshot, field for field


def test_single_replica_noop_injector_matches_plain_service_trace():
    parents, xs, ys, arrivals, _ = stream(128, 300, seed=16)

    plain_obs = TraceRecorder()
    plain = LCAQueryService(policy=POLICY, observer=plain_obs)
    plain.register_tree("t", parents)
    for i in range(0, xs.size, 64):
        plain.submit_many(
            "t", xs[i : i + 64], ys[i : i + 64], at=arrivals[i : i + 64]
        )
    plain.drain()

    cluster_obs = TraceRecorder()
    cluster = build_cluster(
        parents,
        1,
        policy=POLICY,
        fault_injector=FaultInjector(()),
        observer=cluster_obs,
    )
    chunked_submit(cluster, "t", xs, ys, arrivals, 64)
    cluster.drain()

    # The canonical lifecycle trace — every event, in order, bit for bit.
    assert cluster_obs.table().equals(plain_obs.table())


# ----------------------------------------------------------------------
# Reactive autoscaling under chaos
# ----------------------------------------------------------------------


def test_autoscaler_reacts_during_chaos_flash_without_losing_queries():
    """``chaos-autoscale``: a kill lands on the flash edge and no scripted
    scale-out is coming — a shed-driven policy must close the capacity gap
    while availability stays at 100% (every admitted query answered)."""
    from repro.workloads import make_chaos_scenario
    from repro.workloads.chaos import replay_chaos

    chaos = make_chaos_scenario("chaos-autoscale", scale=0.25, nodes_scale=0.25)
    policy = AutoscalePolicy(
        min_replicas=2,
        max_replicas=6,
        signals=("shed",),
        shed_out=0.01,
        cooldown_out_s=2e-3,
        cooldown_in_s=4e-3,
        step_out=2,
        step_in=2,
    )
    controller = Controller(
        SLO(p99_latency_s=1.0), interval_s=2e-3, autoscale=policy
    )
    report = replay_chaos(
        chaos,
        n_replicas=2,
        policy=POLICY,
        max_pending=2048,
        admission_window_s=2e-3,
        check_answers=True,
        controller=controller,
    )
    moves = [d for d in controller.decisions if d.kind == "membership"]
    assert any(d.reason.startswith("scale-out:shed") for d in moves)
    assert any(d.reason == "scale-in" for d in moves)
    assert max(d.n_replicas for d in moves) > 2
    # The flash shed (that is what fired the policy), but nothing admitted
    # was lost — not to the kill, not to any scale event.
    assert report.queries_shed > 0
    assert report.queries_admitted == report.stats.queries_answered
    # check_answers verified every fully admitted block against the oracle;
    # the trajectory is visible per phase and ends back near the floor.
    assert report.phases[1].n_replicas_end > 2
    assert report.phases[-1].n_replicas_end == policy.min_replicas
