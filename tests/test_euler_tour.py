"""Tests for Euler tour construction (paper §2.1–2.2)."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError, NotATreeError
from repro.euler import build_euler_tour, build_euler_tour_from_parents
from repro.graphs import EdgeList, parents_to_edgelist
from repro.graphs.generators import grasp_tree, random_attachment_tree

from .conftest import TREE_KINDS, make_tree


def check_tour_is_valid_euler_tour(tour, edges):
    """Structural invariants of an Euler tour of a tree."""
    h = 2 * edges.num_edges
    assert tour.length == h
    if h == 0:
        return
    # rank is a permutation and tour is its inverse.
    assert sorted(tour.rank.tolist()) == list(range(h))
    assert np.array_equal(tour.rank[tour.tour], np.arange(h))
    # The walk is continuous: consecutive tour edges share the intermediate node.
    seq = tour.tour
    srcs = tour.src[seq]
    dsts = tour.dst[seq]
    assert srcs[0] == tour.root
    assert dsts[-1] == tour.root
    assert np.array_equal(dsts[:-1], srcs[1:])
    # Every half-edge appears exactly once (it is an Euler tour of the doubled tree).
    assert np.unique(seq).size == h


class TestTourStructure:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [2, 3, 17, 100])
    def test_valid_tour_for_many_trees(self, kind, n):
        parents = make_tree(kind, n, seed=n)
        edges = parents_to_edgelist(parents)
        tour = build_euler_tour_from_parents(parents)
        check_tour_is_valid_euler_tour(tour, edges)

    def test_figure1_tour_is_dfs_walk(self, figure1_parents):
        tour = build_euler_tour_from_parents(figure1_parents)
        nodes = tour.nodes_in_tour_order()
        # Starts and ends at the root, visits 2(n-1)+1 nodes.
        assert nodes[0] == 0 and nodes[-1] == 0
        assert nodes.size == 11
        # Each node appears exactly degree(v) times (root: degree) in positions 1..end.
        edges = parents_to_edgelist(figure1_parents)
        counts = np.bincount(nodes[1:], minlength=6)
        assert np.array_equal(counts, edges.degrees())

    def test_single_node_tree(self):
        tour = build_euler_tour_from_parents(np.asarray([-1]))
        assert tour.length == 0
        assert tour.root == 0

    def test_rooting_at_arbitrary_node(self):
        parents = random_attachment_tree(60, seed=1, relabel=False)
        edges = parents_to_edgelist(parents)
        for root in (0, 5, 59):
            tour = build_euler_tour(edges, root)
            assert tour.root == root
            check_tour_is_valid_euler_tour(tour, edges)

    def test_list_rank_methods_agree(self):
        parents = grasp_tree(300, 8, seed=2)
        edges = parents_to_edgelist(parents)
        tours = [build_euler_tour(edges, 0, list_rank_method=m)
                 for m in ("wei-jaja", "wyllie", "sequential")]
        for other in tours[1:]:
            assert np.array_equal(tours[0].rank, other.rank)

    def test_head_leaves_the_root(self):
        parents = random_attachment_tree(40, seed=3)
        tour = build_euler_tour_from_parents(parents)
        assert tour.src[tour.head] == tour.root
        assert tour.rank[tour.head] == 0


class TestValidation:
    def test_root_out_of_range_rejected(self):
        edges = EdgeList.from_pairs([(0, 1)], n=2)
        with pytest.raises(InvalidGraphError):
            build_euler_tour(edges, 5)

    def test_disconnected_tree_rejected(self):
        # Right edge count (n-1) but disconnected: a cycle (0,1,2) plus isolated node 3.
        edges = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)], n=4)
        with pytest.raises(NotATreeError):
            build_euler_tour(edges, 0)

    def test_isolated_root_rejected(self):
        edges = EdgeList.from_pairs([(0, 1), (1, 2), (0, 2)], n=4)
        with pytest.raises(NotATreeError):
            build_euler_tour(edges, 3)

    def test_single_node_with_bad_parent_rejected(self):
        with pytest.raises(NotATreeError):
            build_euler_tour_from_parents(np.asarray([3]))
