"""Dispatcher tests: roofline pricing vs brute force, and the CPU/GPU crossover."""

import numpy as np
import pytest

from repro.device import GTX980, XEON_X5650_SINGLE, ExecutionContext, modeled_kernel_time
from repro.errors import ServiceError
from repro.graphs.generators import random_attachment_tree
from repro.lca import INLABEL_QUERY_COST, InlabelLCA, SequentialInlabelLCA
from repro.service import (
    CPU_SEQUENTIAL_BACKEND,
    GPU_BATCH_BACKEND,
    Backend,
    CostModelDispatcher,
    estimate_batch_query_time,
)

BATCH_SIZES = (1, 2, 5, 10, 50, 100, 1_000, 10_000, 100_000)


def brute_force_estimate(backend, q):
    """Price a batch directly with the roofline model (no dispatch layer)."""
    cost = INLABEL_QUERY_COST
    if backend.sequential:
        return modeled_kernel_time(
            backend.spec, threads=1, ops=cost.ops * q,
            bytes_read=cost.bytes_read * q, bytes_written=0.0,
            launches=1, random_access=True)
    return modeled_kernel_time(
        backend.spec, threads=q, ops=cost.ops * q,
        bytes_read=cost.bytes_read * q, bytes_written=cost.bytes_written * q,
        launches=1, random_access=True)


def test_estimates_equal_brute_force_roofline():
    dispatcher = CostModelDispatcher()
    for backend in dispatcher.backends:
        for q in BATCH_SIZES:
            assert dispatcher.estimate(backend, q) == brute_force_estimate(backend, q)


def test_choice_is_argmin_of_brute_force_costs():
    dispatcher = CostModelDispatcher()
    for q in BATCH_SIZES:
        expected = min(dispatcher.backends, key=lambda b: brute_force_estimate(b, q))
        assert dispatcher.choose(q) is expected


def test_cpu_serves_singletons_gpu_serves_bulk():
    """The acceptance-criterion decision pair under the GTX 980 spec."""
    dispatcher = CostModelDispatcher()
    assert dispatcher.choose(1) is CPU_SEQUENTIAL_BACKEND
    assert dispatcher.choose(100_000) is GPU_BATCH_BACKEND
    assert dispatcher.choose(1).spec is XEON_X5650_SINGLE
    assert dispatcher.choose(100_000).spec is GTX980


def test_crossover_matches_linear_scan():
    dispatcher = CostModelDispatcher()
    crossover = dispatcher.crossover_batch_size()
    assert crossover is not None
    base = dispatcher.choose(1)
    scan = next(q for q in range(1, 10_000) if dispatcher.choose(q) is not base)
    assert crossover == scan
    # The paper's Fig. 6 has the GPU overtaking the single-core CPU around
    # batch ~100; the model should land in that decade.
    assert 10 <= crossover <= 1_000


def test_crossover_none_when_choice_never_flips():
    single = CostModelDispatcher([CPU_SEQUENTIAL_BACKEND])
    assert single.crossover_batch_size() is None


def test_ties_go_to_the_earlier_backend():
    twin = Backend(key="cpu1-twin", label="twin", spec=XEON_X5650_SINGLE,
                   sequential=True)
    dispatcher = CostModelDispatcher([CPU_SEQUENTIAL_BACKEND, twin])
    assert dispatcher.choose(1) is CPU_SEQUENTIAL_BACKEND
    assert dispatcher.choose(10_000) is CPU_SEQUENTIAL_BACKEND


def test_estimate_equals_actual_query_charge():
    """The dispatcher prices exactly what the execution layer charges."""
    parents = random_attachment_tree(2_048, seed=11)
    xs = np.arange(500, dtype=np.int64)
    ys = np.arange(500, 1000, dtype=np.int64)

    cpu = SequentialInlabelLCA(parents)
    ctx = ExecutionContext(XEON_X5650_SINGLE)
    cpu.query(xs, ys, ctx=ctx)
    assert ctx.elapsed == estimate_batch_query_time(CPU_SEQUENTIAL_BACKEND, 500)

    gpu = InlabelLCA(parents)
    ctx = ExecutionContext(GTX980)
    gpu.query(xs, ys, ctx=ctx)
    assert ctx.elapsed == estimate_batch_query_time(GPU_BATCH_BACKEND, 500)


def test_validation():
    with pytest.raises(ServiceError):
        CostModelDispatcher([])
    with pytest.raises(ServiceError):
        CostModelDispatcher([CPU_SEQUENTIAL_BACKEND, CPU_SEQUENTIAL_BACKEND])
    with pytest.raises(ServiceError):
        estimate_batch_query_time(GPU_BATCH_BACKEND, 0)
