"""Routing layer tests: stable hashing, ring placement, router policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import (
    ROUTER_POLICIES,
    ConsistentHashRouter,
    HashRing,
    LeastOutstandingRouter,
    RoundRobinRouter,
    make_router,
    stable_hash,
)


# ----------------------------------------------------------------------
# stable_hash
# ----------------------------------------------------------------------

def test_stable_hash_is_deterministic_and_64_bit():
    assert stable_hash("dataset-a") == stable_hash("dataset-a")
    assert stable_hash("dataset-a") != stable_hash("dataset-b")
    for key in ("", "x", "a" * 100):
        assert 0 <= stable_hash(key) < 1 << 64


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------

def test_ring_place_returns_distinct_replicas_capped_at_ring_size():
    ring = HashRing(range(4))
    for count in (1, 2, 4):
        placed = ring.place("some-dataset", count)
        assert len(placed) == count
        assert len(set(placed)) == count
        assert all(0 <= r < 4 for r in placed)
    # Requesting more copies than replicas caps at the ring size.
    assert len(ring.place("some-dataset", 99)) == 4
    with pytest.raises(ServiceError):
        ring.place("some-dataset", 0)


def test_ring_is_deterministic_across_instances():
    a = HashRing(range(8))
    b = HashRing(range(8))
    for i in range(50):
        assert a.place(f"ds-{i}", 3) == b.place(f"ds-{i}", 3)


def test_ring_spreads_primaries_across_replicas():
    ring = HashRing(range(8))
    primaries = {ring.place(f"ds-{i}")[0] for i in range(200)}
    assert len(primaries) == 8  # every replica is someone's primary


def test_ring_add_only_moves_keys_onto_the_new_replica():
    before = HashRing(range(8))
    after = HashRing(range(8))
    after.add(8)
    keys = [f"ds-{i}" for i in range(300)]
    moved = 0
    for key in keys:
        old, new = before.place(key), after.place(key)
        if old != new:
            moved += 1
            assert new == [8]  # a changed primary can only be the newcomer
    # Consistent hashing: roughly 1/9 of keys move, never the majority.
    assert 0 < moved < len(keys) // 2


def test_ring_remove_only_moves_keys_owned_by_the_removed_replica():
    full = HashRing(range(8))
    smaller = HashRing(range(8))
    smaller.remove(3)
    for i in range(300):
        key = f"ds-{i}"
        old = full.place(key, 2)
        new = smaller.place(key, 2)
        if 3 not in old:
            assert new == old  # untouched placements are bit-identical
        else:
            assert 3 not in new
    assert smaller.replica_ids == (0, 1, 2, 4, 5, 6, 7)


def test_ring_membership_errors():
    ring = HashRing([0])
    with pytest.raises(ServiceError):
        ring.add(0)
    with pytest.raises(ServiceError):
        ring.remove(7)
    with pytest.raises(ServiceError):
        ring.remove(0)  # cannot empty the ring
    with pytest.raises(ServiceError):
        HashRing([])
    with pytest.raises(ServiceError):
        HashRing([0], vnodes=0)


# ----------------------------------------------------------------------
# RoundRobinRouter
# ----------------------------------------------------------------------

def test_round_robin_cycles_copies_per_dataset():
    router = RoundRobinRouter()
    copies = (5, 2, 9)
    depth = np.zeros(3, dtype=np.int64)
    picks = [router.route_one("a", copies, depth) for _ in range(7)]
    assert picks == [5, 2, 9, 5, 2, 9, 5]
    # A different dataset has its own cursor.
    assert router.route_one("b", copies, depth) == 5
    # The block form continues dataset a's cursor exactly where it left off.
    block = router.route_block("a", copies, depth, 4)
    assert block.tolist() == [2, 9, 5, 2]


def test_round_robin_block_matches_per_query_routing():
    copies = (0, 1, 2, 3)
    depth = np.zeros(4, dtype=np.int64)
    blocked = RoundRobinRouter().route_block("d", copies, depth, 10)
    single = RoundRobinRouter()
    assert blocked.tolist() == [single.route_one("d", copies, depth) for _ in range(10)]


# ----------------------------------------------------------------------
# LeastOutstandingRouter
# ----------------------------------------------------------------------

def test_least_outstanding_waterfills_towards_equal_depth():
    router = LeastOutstandingRouter()
    assignment = router.route_block("d", (10, 20, 30), np.array([5, 0, 0]), 7)
    # The two empty copies alternate (ties break by placement order) until
    # everyone levels; copy 10 (depth 5) never receives a query.
    assert assignment.tolist() == [20, 30, 20, 30, 20, 30, 20]


def test_least_outstanding_single_query_picks_min_depth_tie_lowest():
    router = LeastOutstandingRouter()
    assert router.route_one("d", (7, 8, 9), np.array([3, 1, 1])) == 8
    assert router.route_one("d", (7, 8, 9), np.array([0, 0, 0])) == 7


def test_least_outstanding_rejects_mismatched_depths():
    with pytest.raises(ServiceError):
        LeastOutstandingRouter().route_block("d", (0, 1), np.array([1, 2, 3]), 4)


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_least_outstanding_block_equals_greedy_simulation(k, size, seed):
    rng = np.random.default_rng(seed)
    depth = rng.integers(0, 20, size=k)
    copies = tuple(range(100, 100 + k))
    blocked = LeastOutstandingRouter().route_block("d", copies, depth.copy(), size)
    # Reference: assign one query at a time to the least-loaded copy,
    # ties broken by placement order.
    load = depth.astype(np.int64).copy()
    expected = []
    for _ in range(size):
        j = int(np.argmin(load))
        expected.append(copies[j])
        load[j] += 1
    assert blocked.tolist() == expected


# ----------------------------------------------------------------------
# ConsistentHashRouter
# ----------------------------------------------------------------------

def test_consistent_hash_pins_each_dataset_to_one_stable_copy():
    router = ConsistentHashRouter()
    copies = (0, 1, 2, 3)
    depth = np.zeros(4, dtype=np.int64)
    block = router.route_block("ds", copies, depth, 16)
    assert len(set(block.tolist())) == 1
    winner = int(block[0])
    # The pick ignores load and repeated calls agree.
    assert router.route_one("ds", copies, np.array([9, 9, 9, 9])) == winner
    # Removing a *different* copy never moves the dataset (rendezvous).
    survivors = tuple(c for c in copies if c != (winner + 1) % 4)
    assert router.route_one("ds", survivors, np.zeros(3, dtype=np.int64)) == winner


def test_consistent_hash_spreads_distinct_datasets():
    router = ConsistentHashRouter()
    copies = (0, 1, 2, 3)
    depth = np.zeros(4, dtype=np.int64)
    winners = {router.route_one(f"ds-{i}", copies, depth) for i in range(60)}
    assert len(winners) == 4


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------

def test_make_router_builds_every_policy():
    for policy in ROUTER_POLICIES:
        assert make_router(policy).name == policy
    assert ROUTER_POLICIES == ("round-robin", "least-outstanding", "consistent-hash")
    with pytest.raises(ServiceError):
        make_router("magic")


# ----------------------------------------------------------------------
# Removal properties (hypothesis)
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(st.integers(0, 31), min_size=2, max_size=8, unique=True),
    victim_index=st.integers(0, 7),
    count=st.integers(1, 3),
    key_seed=st.integers(0, 1 << 16),
)
def test_property_remove_only_moves_victim_owned_placements(
    ids, victim_index, count, key_seed
):
    victim = ids[victim_index % len(ids)]
    full = HashRing(ids)
    shrunk = HashRing(ids)
    shrunk.remove(victim)
    assert shrunk.replica_ids == tuple(sorted(set(ids) - {victim}))
    for i in range(40):
        key = f"ds-{key_seed}-{i}"
        old = full.place(key, count)
        new = shrunk.place(key, count)
        assert victim not in new
        if victim not in old:
            # Placements the victim never owned are bit-identical.
            assert new == old
        else:
            # Only the victim's slots are refilled; the survivors keep
            # their membership (order may shift as arcs merge).
            survivors = [r for r in old if r != victim]
            assert all(r in new for r in survivors)
            assert len(new) == min(count, len(ids) - 1)


@settings(max_examples=60, deadline=None)
@given(
    copies=st.lists(st.integers(0, 31), min_size=2, max_size=8, unique=True),
    drop_index=st.integers(0, 7),
    key_seed=st.integers(0, 1 << 16),
)
def test_property_consistent_hash_respects_post_removal_ownership(
    copies, drop_index, key_seed
):
    router = ConsistentHashRouter()
    depth = np.zeros(len(copies), dtype=np.int64)
    dataset = f"ds-{key_seed}"
    winner = router.route_one(dataset, tuple(copies), depth)
    dropped = copies[drop_index % len(copies)]
    survivors = tuple(c for c in copies if c != dropped)
    routed = router.route_one(
        dataset, survivors, np.zeros(len(survivors), dtype=np.int64)
    )
    if dropped == winner:
        # The owner left: the new pick must be a real survivor.
        assert routed in survivors
    else:
        # Rendezvous hashing: unrelated churn never moves the dataset.
        assert routed == winner
