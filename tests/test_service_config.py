"""The typed configuration surface: round-trips, shims, equivalence.

The config redesign must be invisible to existing callers: the legacy
kwargs still work (routed through one normalization path), mixing kwargs
with ``config=`` fails loudly, and a service built from a config serves a
trace bit-identically to one built from the equivalent kwargs.
"""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import (
    BatchPolicy,
    ClusterConfig,
    ClusterService,
    LCAQueryService,
    RoundRobinRouter,
    ServiceConfig,
)
from repro.workloads import make_scenario, replay


# ----------------------------------------------------------------------
# Round-tripping and derivation
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            ServiceConfig(),
            ServiceConfig(
                max_batch_size=64,
                max_wait_s=2e-4,
                capacity_bytes=1 << 20,
                dedup=True,
                answer_cache_bytes=1 << 16,
                answer_cache_seed=7,
                ticket_capacity=128,
            ),
            ClusterConfig(),
            ClusterConfig(
                n_replicas=3,
                max_batch_size=256,
                router="round-robin",
                max_pending=512,
                start_time=1.5,
                dedup=True,
                answer_cache_bytes=1 << 20,
                hedge_delay_s=1e-3,
                max_retries=5,
            ),
        ],
    )
    def test_dict_and_json_round_trip(self, cfg):
        assert type(cfg).from_dict(cfg.to_dict()) == cfg
        assert type(cfg).from_json(cfg.to_json()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServiceError, match="unknown ServiceConfig"):
            ServiceConfig.from_dict({"max_batch": 4})
        with pytest.raises(ServiceError, match="unknown ClusterConfig"):
            ClusterConfig.from_dict({"replicas": 4})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ServiceError, match="must be an object"):
            ServiceConfig.from_json("[1, 2]")

    def test_derive_changes_only_named_fields(self):
        base = ClusterConfig(n_replicas=2, max_pending=100)
        derived = base.derive(max_pending=200)
        assert derived.max_pending == 200
        assert derived.n_replicas == 2
        assert base.max_pending == 100  # frozen: original untouched

    def test_derive_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown ServiceConfig"):
            ServiceConfig().derive(hedge_delay_s=1e-3)

    def test_derive_revalidates(self):
        with pytest.raises(ServiceError):
            ServiceConfig().derive(max_batch_size=0)
        with pytest.raises(ServiceError):
            ClusterConfig().derive(n_replicas=0)

    def test_validation_matches_service_errors(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_wait_s=-1.0)
        with pytest.raises(ServiceError):
            ServiceConfig(capacity_bytes=0)
        with pytest.raises(ServiceError):
            ClusterConfig(max_pending=0)
        with pytest.raises(ServiceError):
            ClusterConfig(hedge_delay_s=0.0)
        with pytest.raises(ServiceError):
            ClusterConfig(max_retries=0)

    def test_tunable_sets(self):
        assert ServiceConfig.TUNABLE == {"max_batch_size", "max_wait_s"}
        assert ClusterConfig.TUNABLE == {
            "max_batch_size",
            "max_wait_s",
            "hedge_delay_s",
            "max_pending",
            "n_replicas",
        }


# ----------------------------------------------------------------------
# Back-compat shim: kwargs and config are one normalization path
# ----------------------------------------------------------------------
class TestShim:
    def test_service_kwargs_build_the_config(self):
        svc = LCAQueryService(
            policy=BatchPolicy(max_batch_size=32, max_wait_s=5e-4),
            dedup=True,
        )
        assert svc.config == ServiceConfig(
            max_batch_size=32, max_wait_s=5e-4, dedup=True
        )
        assert svc.policy == svc.config.batch_policy()

    def test_service_config_object_is_kept(self):
        cfg = ServiceConfig(max_batch_size=8, answer_cache_bytes=1 << 16)
        svc = LCAQueryService(config=cfg)
        assert svc.config is cfg
        assert svc.answer_cache is not None

    def test_service_conflict_raises(self):
        with pytest.raises(ServiceError, match="not both"):
            LCAQueryService(
                config=ServiceConfig(), policy=BatchPolicy(max_batch_size=8)
            )
        with pytest.raises(ServiceError, match="dedup"):
            LCAQueryService(config=ServiceConfig(), dedup=True)

    def test_cluster_kwargs_build_the_config(self):
        cluster = ClusterService(
            3, policy=BatchPolicy(max_batch_size=16), max_pending=64
        )
        assert cluster.config == ClusterConfig(
            n_replicas=3,
            max_batch_size=16,
            max_wait_s=1e-3,
            max_pending=64,
        )

    def test_cluster_config_object(self):
        cfg = ClusterConfig(n_replicas=2, router="round-robin", dedup=True)
        cluster = ClusterService(config=cfg)
        assert cluster.config is cfg
        assert cluster.n_replicas == 2
        assert cluster.router.name == "round-robin"
        assert all(w.config.dedup for w in cluster.replicas)

    def test_cluster_conflict_raises(self):
        with pytest.raises(ServiceError, match="not both"):
            ClusterService(4, config=ClusterConfig())
        with pytest.raises(ServiceError, match="max_pending"):
            ClusterService(config=ClusterConfig(), max_pending=10)

    def test_cluster_requires_replica_count_somewhere(self):
        with pytest.raises(ServiceError, match="n_replicas"):
            ClusterService()

    def test_cluster_router_string_key(self):
        for name in ("round-robin", "least-outstanding", "consistent-hash"):
            assert ClusterService(2, router=name).router.name == name

    def test_cluster_router_instance_still_accepted(self):
        router = RoundRobinRouter()
        cluster = ClusterService(2, router=router)
        assert cluster.router is router
        assert cluster.config.router == "round-robin"

    def test_cluster_router_bad_key(self):
        with pytest.raises(ServiceError, match="unknown router policy"):
            ClusterService(2, router="fastest")


# ----------------------------------------------------------------------
# Equivalence: config-built and kwargs-built serve identical traces
# ----------------------------------------------------------------------
class TestEquivalence:
    def _comparable(self, stats):
        # Everything modeled; host wall-clock fields do not exist on
        # ServiceStats/ClusterStats, so whole-snapshot equality is exact.
        return stats

    def test_service_stats_bit_identical(self):
        scenario = make_scenario("skewed-hotspot", scale=0.1)
        kwargs_svc = LCAQueryService(
            policy=BatchPolicy(max_batch_size=128, max_wait_s=2e-4),
            answer_cache_bytes=1 << 18,
        )
        config_svc = LCAQueryService(
            config=ServiceConfig(
                max_batch_size=128, max_wait_s=2e-4, answer_cache_bytes=1 << 18
            )
        )
        a = replay(kwargs_svc, scenario)
        b = replay(config_svc, scenario)
        assert self._comparable(a.stats) == self._comparable(b.stats)
        assert a.latency_p99_s == b.latency_p99_s

    def test_cluster_stats_bit_identical(self):
        scenario = make_scenario("flash-crowd", scale=0.1)
        kwargs_cluster = ClusterService(
            3,
            policy=BatchPolicy(max_batch_size=64, max_wait_s=1e-4),
            max_pending=256,
            router="round-robin",
        )
        config_cluster = ClusterService(
            config=ClusterConfig(
                n_replicas=3,
                max_batch_size=64,
                max_wait_s=1e-4,
                max_pending=256,
                router="round-robin",
            )
        )
        a = replay(kwargs_cluster, scenario)
        b = replay(config_cluster, scenario)
        assert a.stats == b.stats
        assert a.queries_shed == b.queries_shed

    def test_added_replica_inherits_config(self):
        cluster = ClusterService(
            config=ClusterConfig(n_replicas=2, max_batch_size=32, dedup=True)
        )
        rid = cluster.add_replica()
        worker = cluster.replicas[rid]
        assert worker.config == cluster.replicas[0].config
        assert worker.policy.max_batch_size == 32


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def test_all_exports_resolve():
    import repro
    import repro.control
    import repro.service

    for module in (repro, repro.service, repro.control):
        missing = [n for n in module.__all__ if not hasattr(module, n)]
        assert not missing, f"{module.__name__}: {missing}"
    assert repro.ServiceConfig is ServiceConfig
    assert repro.ClusterConfig is ClusterConfig
    assert repro.SLO is repro.control.SLO
    assert repro.Controller is repro.control.Controller
    assert repro.AutoscalePolicy is repro.control.AutoscalePolicy
    assert "AutoscalePolicy" in repro.__all__
    assert "AutoscalePolicy" in repro.control.__all__
