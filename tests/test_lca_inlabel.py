"""Tests for the Inlabel (Schieber–Vishkin) LCA algorithm."""

import numpy as np
import pytest

from repro.device import ExecutionContext, GTX980, XEON_X5650_SINGLE
from repro.errors import InvalidQueryError
from repro.euler import tree_statistics_from_parents
from repro.graphs import generate_random_queries
from repro.lca import (
    BinaryLiftingLCA,
    InlabelLCA,
    SequentialInlabelLCA,
    build_inlabel_structure,
    brute_force_lca_batch,
)

from .conftest import TREE_KINDS, make_tree

IMPLEMENTATIONS = [InlabelLCA, SequentialInlabelLCA]


class TestStructureProperties:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    def test_path_partition_property(self, kind):
        """Nodes sharing an inlabel value form a single top-down path."""
        parents = make_tree(kind, 120, seed=3)
        stats = tree_statistics_from_parents(parents)
        structure = build_inlabel_structure(stats)
        inlabel = structure.inlabel
        for value in np.unique(inlabel):
            members = np.flatnonzero(inlabel == value)
            depths = sorted(structure.depth[members].tolist())
            # Consecutive depths (a path, one node per level) ...
            assert depths == list(range(depths[0], depths[0] + len(members)))
            # ... and each non-head member's parent is also on the path.
            head = structure.head[value]
            for v in members:
                if v != head:
                    assert inlabel[parents[v]] == value or parents[v] == -1

    @pytest.mark.parametrize("kind", TREE_KINDS)
    def test_inlabel_lies_in_subtree_interval(self, kind):
        parents = make_tree(kind, 150, seed=4)
        stats = tree_statistics_from_parents(parents)
        structure = build_inlabel_structure(stats)
        lo = stats.preorder
        hi = stats.preorder + stats.subtree_size - 1
        assert np.all(structure.inlabel >= lo)
        assert np.all(structure.inlabel <= hi)

    def test_head_is_shallowest_on_path(self):
        parents = make_tree("shallow", 200, seed=5)
        stats = tree_statistics_from_parents(parents)
        structure = build_inlabel_structure(stats)
        for value in np.unique(structure.inlabel):
            members = np.flatnonzero(structure.inlabel == value)
            head = structure.head[value]
            assert head in members
            assert structure.depth[head] == structure.depth[members].min()

    def test_ascendant_root_bit_always_present(self):
        parents = make_tree("shallow", 100, seed=6)
        stats = tree_statistics_from_parents(parents)
        structure = build_inlabel_structure(stats)
        root_bit = structure.ascendant[stats.root]
        assert np.all((structure.ascendant & root_bit) == root_bit)


class TestQueryCorrectness:
    @pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
    @pytest.mark.parametrize("kind", TREE_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 33, 120])
    def test_against_brute_force(self, implementation, kind, n):
        parents = make_tree(kind, n, seed=n * 7 + 1)
        xs, ys = generate_random_queries(n, 80, seed=n)
        expected = brute_force_lca_batch(parents, xs, ys)
        algo = implementation(parents)
        assert np.array_equal(algo.query(xs, ys), expected)

    @pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
    def test_against_binary_lifting_on_large_tree(self, implementation):
        parents = make_tree("deep", 4000, seed=11)
        xs, ys = generate_random_queries(4000, 3000, seed=12)
        expected = BinaryLiftingLCA(parents).query(xs, ys)
        assert np.array_equal(implementation(parents).query(xs, ys), expected)

    def test_query_of_node_with_itself(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        nodes = np.arange(6)
        assert np.array_equal(algo.query(nodes, nodes), nodes)

    def test_query_with_ancestor(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        assert algo.query(np.asarray([5]), np.asarray([2]))[0] == 2
        assert algo.query(np.asarray([2]), np.asarray([5]))[0] == 2
        assert algo.query(np.asarray([1]), np.asarray([0]))[0] == 0

    def test_scalar_like_single_query(self, figure1_parents):
        algo = SequentialInlabelLCA(figure1_parents)
        assert algo.query(1, 5)[0] == 2

    def test_empty_query_batch(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        out = algo.query(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))
        assert out.size == 0

    def test_gpu_and_sequential_agree(self):
        parents = make_tree("scale-free", 2500, seed=13)
        xs, ys = generate_random_queries(2500, 2000, seed=14)
        a = InlabelLCA(parents).query(xs, ys)
        b = SequentialInlabelLCA(parents).query(xs, ys)
        assert np.array_equal(a, b)


class TestValidationAndErrors:
    def test_out_of_range_query_rejected(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        with pytest.raises(InvalidQueryError):
            algo.query(np.asarray([0]), np.asarray([17]))

    def test_mismatched_query_shapes_rejected(self, figure1_parents):
        algo = InlabelLCA(figure1_parents)
        with pytest.raises(InvalidQueryError):
            algo.query(np.asarray([0, 1]), np.asarray([1]))

    def test_validate_flag(self):
        from repro.errors import NotATreeError

        with pytest.raises(NotATreeError):
            InlabelLCA(np.asarray([-1, -1]), validate=True)


class TestCostAccounting:
    def test_preprocessing_and_queries_charged_to_phases(self):
        parents = make_tree("shallow", 3000, seed=15)
        ctx = ExecutionContext(GTX980)
        algo = InlabelLCA(parents, ctx=ctx)
        assert "preprocessing" in ctx.breakdown()
        xs, ys = generate_random_queries(3000, 3000, seed=16)
        qctx = ExecutionContext(GTX980)
        algo.query(xs, ys, ctx=qctx)
        assert "queries" in qctx.breakdown()

    def test_query_cost_independent_of_tree_depth(self):
        """The defining property of the Inlabel algorithm: O(1) per query
        regardless of depth (contrast with NaiveGPULCA)."""
        n, q = 5000, 5000
        xs, ys = generate_random_queries(n, q, seed=17)
        times = []
        for kind in ("shallow", "path"):
            parents = make_tree(kind, n, seed=18)
            algo = InlabelLCA(parents)
            ctx = ExecutionContext(GTX980)
            algo.query(xs, ys, ctx=ctx)
            times.append(ctx.elapsed)
        assert times[1] == pytest.approx(times[0], rel=0.01)

    def test_sequential_query_cost_linear_in_batch(self):
        parents = make_tree("shallow", 1000, seed=19)
        algo = SequentialInlabelLCA(parents)
        xs, ys = generate_random_queries(1000, 1000, seed=20)
        small = ExecutionContext(XEON_X5650_SINGLE)
        algo.query(xs[:100], ys[:100], ctx=small)
        large = ExecutionContext(XEON_X5650_SINGLE)
        algo.query(xs, ys, ctx=large)
        assert large.elapsed == pytest.approx(10 * small.elapsed, rel=0.05)
