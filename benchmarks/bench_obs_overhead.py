#!/usr/bin/env python
"""Observability overhead: tracing off vs 1-in-N sampled vs full capture.

The contract of ``repro.obs`` is *zero-cost-when-disabled*: with no recorder
attached, every hook in the serving stack is a single ``is None`` check, so
the wall-clock throughput of the columnar serving path must be statistically
indistinguishable from a build without the hooks.  This benchmark measures
exactly that, on the same ``submit -> drain -> results`` harness as
``bench_wallclock_service.py``, in three modes over one identical stream:

* ``off``     — no observer attached (the default serving configuration);
* ``sampled`` — a :class:`~repro.obs.events.TraceRecorder` with 1-in-N
  per-query sampling (always-on production tracing);
* ``full``    — an unsampled recorder capturing every lifecycle event.

Outputs:

* ``BENCH_obs_overhead.json`` (repo root) — machine-readable result,
  gated in CI against the committed baseline via ``check_regression.py``
  (``headline.off_wall_qps`` with the loose host-ratio floor, and
  ``headline.sampled_retention`` which is a within-run ratio and therefore
  tight);
* ``results/obs_overhead.txt`` — the rendered comparison table.

Run with:  python benchmarks/bench_obs_overhead.py
Options:   --queries N  --nodes N  --repeats R  --sample N
           --max-sampled-overhead PCT  --check
Scale:     REPRO_BENCH_SCALE scales the default stream size.

With ``--check`` the process exits non-zero when sampled tracing costs more
than ``--max-sampled-overhead`` percent of the tracing-off throughput
(default 5%) — the in-process assertion behind the "sampled tracing is
cheap enough to leave on" claim.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.experiments.service_experiments import wallclock_serve_run
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.obs import TraceRecorder
from repro.service import BatchPolicy

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
WALLCLOCK_JSON = REPO_ROOT / "BENCH_service_wallclock.json"


def disabled_vs_baseline(off_wall_qps: float, config):
    """Tracing-off throughput vs the wallclock benchmark's columnar run.

    ``bench_wallclock_service.py`` measures the serving stack with no
    observability code in the loop at all — so comparing this benchmark's
    ``off`` mode against it (same machine; in CI the wallclock benchmark
    regenerates its JSON earlier in the same job) prices the disabled
    hooks themselves.  Returns ``(retention, overhead_pct)``, or
    ``(None, None)`` when the wallclock result is missing or describes a
    different stream.
    """
    try:
        payload = json.loads(WALLCLOCK_JSON.read_text(encoding="utf-8"))
        ref_config = payload["config"]
        ref_qps = float(payload["runs"]["columnar"]["wall_qps"])
    except (OSError, KeyError, TypeError, ValueError):
        return None, None
    for key in ("queries", "nodes", "max_batch_size", "offered_qps"):
        if ref_config.get(key) != config[key]:
            return None, None
    retention = off_wall_qps / ref_qps
    return retention, (1.0 - retention) * 100.0


MODES = ("off", "sampled", "full")


def measure_all(sample: int, parents, xs, ys, arrivals, policy, *,
                repeats: int):
    """Paired rounds: each round runs all three modes back to back.

    The overhead being priced is a couple of percent — the same order as
    host drift between runs seconds apart, and it is *additive* — jitter
    makes a run slower, never faster.  Defenses: the modes are cycled
    *within* each round with the cycle order rotating between rounds (so
    no mode always runs first on colder caches), and retention is the
    **ratio of best (minimum) wall times** across all rounds — the
    minimum converges on the true cost as rounds accumulate, so the
    ratio of minima converges on the true retention.  A fresh recorder
    per repeat keeps the capture honest (no pre-grown journals).

    Returns ``(rows, retention)`` — one result row per mode (best run,
    annotated with mode and event count) and the per-mode retention.
    """
    best = {}
    events = dict.fromkeys(MODES, 0)
    walls = {mode: [] for mode in MODES}
    for rnd in range(repeats):
        # Rotate the order each round so no mode systematically runs
        # first (the first run of a round sees colder caches).
        order = MODES[rnd % 3:] + MODES[:rnd % 3]
        for mode in order:
            recorder = None
            if mode == "sampled":
                recorder = TraceRecorder(sample=sample)
            elif mode == "full":
                recorder = TraceRecorder()
            row = wallclock_serve_run(parents, xs, ys, arrivals, policy,
                                      mode="columnar", observer=recorder)
            walls[mode].append(row["wall_s"])
            if mode not in best or row["wall_qps"] > best[mode]["wall_qps"]:
                best[mode] = row
            if recorder is not None:
                events[mode] = recorder.n_events
    rows = []
    for mode in MODES:
        row = dict(best[mode])
        row["tracing"] = mode
        row["events"] = int(events[mode])
        rows.append(row)
    off_floor = min(walls["off"])
    retention = {mode: off_floor / min(walls[mode]) for mode in MODES}
    return rows, retention


def render_table(config, rows, retention) -> str:
    lines = [
        "Observability overhead: tracing off vs sampled vs full "
        "(host wall time, identical stream)",
        f"tree nodes         : {config['nodes']}",
        f"stream length      : {config['queries']} queries at "
        f"{config['offered_qps']:,.0f} offered q/s",
        f"policy             : batch<={config['max_batch_size']}, "
        f"wait<={config['max_wait_s'] * 1e6:.0f}us",
        f"sampling           : 1-in-{config['sample']} tickets",
        f"rounds             : {config['repeats']} (rotated interleaving; "
        "retention from best wall per mode)",
        "",
        f"{'tracing':<10} {'wall s':>10} {'wall q/s':>14} {'events':>9} "
        f"{'retention':>10} {'overhead':>9}",
    ]
    for row in rows:
        kept = retention[row["tracing"]]
        lines.append(
            f"{row['tracing']:<10} {row['wall_s']:>10.4f} "
            f"{row['wall_qps']:>14,.0f} {row['events']:>9} "
            f"{kept:>9.1%} {(1.0 - kept):>8.1%}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int,
                        default=max(1000, int(100_000 * BENCH_SCALE)),
                        help="stream length (default: 100k * REPRO_BENCH_SCALE)")
    parser.add_argument("--nodes", type=int,
                        default=max(1024, int(65_536 * BENCH_SCALE)),
                        help="tree size (default: 65536 * REPRO_BENCH_SCALE)")
    parser.add_argument("--repeats", type=int, default=12,
                        help="interleaved wall-clock rounds (best per mode)")
    parser.add_argument("--sample", type=int, default=64,
                        help="keep 1-in-N per-query events in sampled mode")
    parser.add_argument("--max-batch", type=int, default=1024)
    parser.add_argument("--max-wait-us", type=float, default=200.0)
    parser.add_argument("--rate-qps", type=float, default=5e6,
                        help="offered (simulated) arrival rate")
    parser.add_argument("--max-sampled-overhead", type=float, default=5.0,
                        help="with --check: max percent of throughput that "
                             "sampled tracing may cost")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when sampled tracing overhead "
                             "exceeds --max-sampled-overhead percent")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    parents = random_attachment_tree(args.nodes, seed=args.seed)
    xs, ys = generate_random_queries(args.nodes, args.queries,
                                     seed=args.seed + 1)
    arrivals = np.arange(args.queries, dtype=np.float64) / args.rate_qps
    policy = BatchPolicy(max_batch_size=args.max_batch,
                         max_wait_s=args.max_wait_us * 1e-6)
    config = {
        "nodes": args.nodes,
        "queries": args.queries,
        "offered_qps": args.rate_qps,
        "max_batch_size": args.max_batch,
        "max_wait_s": args.max_wait_us * 1e-6,
        "sample": args.sample,
        "repeats": args.repeats,
        "bench_scale": BENCH_SCALE,
        "seed": args.seed,
    }

    rows, retention = measure_all(args.sample, parents, xs, ys, arrivals,
                                  policy, repeats=args.repeats)
    off, sampled, full = rows
    sampled_retention = retention["sampled"]
    full_retention = retention["full"]
    disabled_retention, disabled_overhead_pct = disabled_vs_baseline(
        off["wall_qps"], config)

    table = render_table(config, rows, retention)
    if disabled_retention is not None:
        table += (
            f"\n\ndisabled hooks vs {WALLCLOCK_JSON.name} (columnar): "
            f"{disabled_retention:.1%} retained "
            f"({disabled_overhead_pct:+.1f}% overhead)"
        )
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.txt").write_text(table + "\n",
                                                  encoding="utf-8")
    payload = {
        "benchmark": "obs_overhead",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "runs": {"off": off, "sampled": sampled, "full": full},
        "headline": {
            "off_wall_qps": off["wall_qps"],
            "sampled_retention": sampled_retention,
            "sampled_overhead_pct": (1.0 - sampled_retention) * 100.0,
            "full_retention": full_retention,
            "full_overhead_pct": (1.0 - full_retention) * 100.0,
            "disabled_retention": disabled_retention,
            "disabled_overhead_pct": disabled_overhead_pct,
            "full_events": full["events"],
            "sampled_events": sampled["events"],
        },
        "max_sampled_overhead_pct": args.max_sampled_overhead,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'obs_overhead.txt'}")

    if args.check:
        overhead_pct = (1.0 - sampled_retention) * 100.0
        if overhead_pct > args.max_sampled_overhead:
            print(f"FAIL: sampled tracing costs {overhead_pct:.1f}% of "
                  f"tracing-off throughput (max allowed "
                  f"{args.max_sampled_overhead:.1f}%)", file=sys.stderr)
            return 1
        print(f"OK: sampled tracing costs {overhead_pct:.1f}% "
              f"(<= {args.max_sampled_overhead:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
