#!/usr/bin/env python
"""Cluster scaling: modeled throughput vs replica count × routing policy.

Drives :func:`repro.experiments.service_experiments.replica_scaling_sweep`:
one hot dataset fully replicated across the cluster, a warmed index cache,
and an offered load that deeply saturates even the largest configuration.
The numbers are *modeled* device times on the simulated clock — the same
quantity every figure benchmark reports — so they are bit-deterministic for
a given configuration and make a tight CI regression baseline.

Two properties are verified (and fail the run when ``--check`` is set):

* the load-spreading policies (round-robin, least-outstanding) deliver
  **monotonically increasing** throughput from the smallest to the largest
  replica count;
* a 1-replica cluster is **bit-identical** to a plain ``LCAQueryService``
  fed the same chunked stream: same tickets, answers and modeled latencies.

Outputs:

* ``BENCH_cluster_scaling.json`` (repo root) — machine-readable result,
  compared against the committed baseline by CI's bench-regression gate;
* ``results/cluster_scaling.txt`` — the rendered sweep table.

Run with:  python benchmarks/bench_cluster_scaling.py
Options:   --queries N  --nodes N  --replica-counts 1,2,4,8  --check
Scale:     REPRO_BENCH_SCALE scales the default stream size.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.experiments.service_experiments import replica_scaling_sweep
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.service import (
    ClusterConfig,
    ClusterService,
    LCAQueryService,
    ServiceConfig,
)

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_cluster_scaling.json"

#: Policies expected to scale with the replica count (consistent-hash pins
#: the single hot dataset to one copy by design, so it is excluded).
SCALING_POLICIES = ("round-robin", "least-outstanding")


def verify_single_replica_equivalence(
    nodes: int, queries: int, chunk: int, seed: int
) -> bool:
    """A 1-replica cluster must be bit-identical to the plain service."""
    parents = random_attachment_tree(nodes, seed=seed)
    xs, ys = generate_random_queries(nodes, queries, seed=seed + 1)
    arrivals = np.arange(queries, dtype=np.float64) * 2e-7
    config = ServiceConfig(max_batch_size=256, max_wait_s=2e-4)

    plain = LCAQueryService(config=config)
    plain.register_tree("hot", parents)
    cluster = ClusterService(config=ClusterConfig(
        n_replicas=1, max_batch_size=256, max_wait_s=2e-4
    ))
    cluster.register_tree("hot", parents, replicas=1)

    plain_tickets, cluster_tickets = [], []
    for i in range(0, queries, chunk):
        sl = slice(i, i + chunk)
        plain_tickets.append(plain.submit_many("hot", xs[sl], ys[sl], at=arrivals[sl]))
        cluster_tickets.append(
            cluster.submit_many("hot", xs[sl], ys[sl], at=arrivals[sl])
        )
    plain.drain()
    cluster.drain()
    pt = np.concatenate(plain_tickets)
    ct = np.concatenate(cluster_tickets)
    return (
        np.array_equal(pt, ct)
        and np.array_equal(plain.results(pt), cluster.results(ct))
        and np.array_equal(plain.latencies(pt), cluster.latencies(ct))
    )


def monotone(series) -> bool:
    """Strictly increasing (the scaling acceptance criterion)."""
    return all(b > a for a, b in zip(series, series[1:]))


def render_table(config, rows, monotone_by_policy, equivalent: bool) -> str:
    lines = [
        "Cluster scaling: modeled throughput vs replica count x routing policy",
        f"tree nodes         : {config['nodes']}",
        f"stream length      : {config['queries']} queries in "
        f"{config['chunk']}-query blocks",
        f"offered load       : {config['offered_qps']:,.0f} q/s "
        "(2x modeled GPU capacity of the largest cluster)",
        "policy             : batch<=256, wait<=200us, warmed index caches",
        "",
        f"{'router':<19} {'replicas':>8} {'modeled q/s':>14} {'p50 us':>9} "
        f"{'p99 us':>9} {'imbalance':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['policy']:<19} {row['replicas']:>8} "
            f"{row['throughput_qps']:>14,.0f} {row['latency_p50_us']:>9.1f} "
            f"{row['latency_p99_us']:>9.1f} {row['load_imbalance']:>10.2f}"
        )
    lines.append("")
    for policy, is_monotone in monotone_by_policy.items():
        verdict = "monotone" if is_monotone else "NOT monotone"
        lines.append(f"{policy:<19}: throughput {verdict} in replica count")
    lines.append(
        "1-replica cluster  : "
        + ("bit-identical to LCAQueryService" if equivalent else "DIVERGES")
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queries",
        type=int,
        default=max(8192, int(131_072 * BENCH_SCALE)),
        help="stream length (default: 131072 * REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=max(4096, int(65_536 * BENCH_SCALE)),
        help="tree size (default: 65536 * REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--replica-counts",
        type=str,
        default="1,2,4,8",
        help="comma-separated replica counts to sweep",
    )
    parser.add_argument("--chunk", type=int, default=8192)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless scaling is monotone and the 1-replica "
        "cluster is bit-identical to the plain service",
    )
    parser.add_argument(
        "--check-answers",
        action="store_true",
        help="verify every configuration against the binary-lifting oracle",
    )
    args = parser.parse_args(argv)
    replica_counts = tuple(int(c) for c in args.replica_counts.split(","))

    start = time.perf_counter()
    rows = replica_scaling_sweep(
        n=args.nodes,
        q=args.queries,
        replica_counts=replica_counts,
        chunk=args.chunk,
        seed=args.seed,
        check_answers=args.check_answers,
    )
    equivalent = verify_single_replica_equivalence(
        args.nodes, min(args.queries, 32_768), args.chunk, args.seed
    )
    wall_s = time.perf_counter() - start

    monotone_by_policy = {
        policy: monotone(
            [r["throughput_qps"] for r in rows if r["policy"] == policy]
        )
        for policy in SCALING_POLICIES
    }
    scaling_rows = [r for r in rows if r["policy"] in SCALING_POLICIES]
    peak = max(r["throughput_qps"] for r in scaling_rows)
    low_series = [
        r["throughput_qps"] for r in rows if r["policy"] == "least-outstanding"
    ]
    config = {
        "nodes": args.nodes,
        "queries": args.queries,
        "replica_counts": list(replica_counts),
        "chunk": args.chunk,
        "offered_qps": rows[0]["offered_qps"],
        "bench_scale": BENCH_SCALE,
        "seed": args.seed,
    }

    table = render_table(config, rows, monotone_by_policy, equivalent)
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cluster_scaling.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "cluster_scaling",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "wall_s": wall_s,
        "headline": {
            "peak_throughput_qps": peak,
            "scaling_1_to_max": low_series[-1] / low_series[0],
            "monotone": monotone_by_policy,
            "single_replica_bit_identical": equivalent,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'cluster_scaling.txt'}")

    if args.check:
        failed = [p for p, ok in monotone_by_policy.items() if not ok]
        if failed:
            print(
                f"FAIL: throughput not monotone in replica count for {failed}",
                file=sys.stderr,
            )
            return 1
        if not equivalent:
            print(
                "FAIL: 1-replica cluster diverges from LCAQueryService",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
