"""Figure 10: bridge-finding total time on the real-world graph stand-ins.

The paper's finding: GPU TV beats GPU CK on every graph except the (small)
Wikipedia graph, with the largest margins — up to 4.7× — on the road networks,
and 4–12× speedups over the single-core DFS baseline.
"""

from repro.experiments import format_rows, format_series
from repro.experiments.bridges_experiments import realworld_comparison, speedup_summary

from bench_util import publish, run_once


def test_fig10_realworld_comparison(benchmark):
    rows = run_once(benchmark, realworld_comparison)
    table = format_series(rows, x="dataset", y="total_ms", series="algorithm",
                          title="Figure 10: total bridge-finding time [ms] on real-world stand-ins")
    speedups = format_rows(
        speedup_summary(rows) + speedup_summary(rows, baseline_label="GPU CK"),
        title="Speedups of GPU TV (over single-core DFS, and over GPU CK)")
    publish(benchmark, "fig10_realworld_comparison", table + "\n\n" + speedups)
