"""Figure 9: bridge-finding total time on the Kronecker graph family.

The paper's finding: GPU TV is the fastest algorithm on all Kronecker graphs
except the smallest one (where GPU CK wins), with 4–12× speedups over the
single-core DFS baseline.
"""

from repro.experiments import format_series, format_rows
from repro.experiments.bridges_experiments import kronecker_comparison, speedup_summary

from bench_util import publish, run_once


def test_fig9_kronecker_comparison(benchmark):
    rows = run_once(benchmark, kronecker_comparison)
    table = format_series(rows, x="dataset", y="total_ms", series="algorithm",
                          title="Figure 9: total bridge-finding time [ms] on Kronecker graphs")
    speedups = format_rows(speedup_summary(rows),
                           title="GPU TV speedup over single-core CPU DFS")
    publish(benchmark, "fig9_kronecker_comparison", table + "\n\n" + speedups)
