#!/usr/bin/env python
"""Chaos suite: availability and tail latency under injected faults.

Replays every ``chaos-*`` scenario (replica kill, kill-under-flash-crowd,
rolling restart, elastic scale-out) on a fault-injected bounded cluster,
plus a hedged slowdown variant and a fault-free control of the same
traffic.  All numbers are modeled times on the simulated clock driven by
seeded generators, so rows are bit-deterministic and make a tight CI
regression baseline.

Four properties are verified (and fail the run when ``--check`` is set):

* **zero lost queries** — every admitted query is answered on every row,
  faults or not (the retry/failover path never drops work);
* **bit-identical answers** — every admitted answer matches the
  binary-lifting oracle, so failover re-execution is invisible to clients;
* **availability** — answered/admitted stays >= 99.9% outside shed
  accounting (sheds are typed rejections, not failures);
* **the kill is contained and hedging pays** — the replica-kill run
  retries work and its outage-window p99 stays within 2x the fault-free
  control's same-phase p99 (eviction re-dispatches stranded work into the
  survivor's next flush, so a kill costs at most about one extra flush
  deadline), while the straggling-replica run must win hedges and the
  hedged outage p99 must beat the unhedged one outright.

Outputs:

* ``BENCH_chaos.json`` (repo root) — machine-readable result, compared
  against the committed baseline by CI's bench-regression gate
  (``headline.availability`` floor, ``headline.kill_p99_ms`` ceiling);
* ``results/chaos.txt`` — the rendered chaos table.

Run with:  python benchmarks/bench_chaos.py
Options:   --replicas N  --max-pending N  --check
Scale:     REPRO_BENCH_SCALE scales scenario durations (not rates).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.service import (
    BatchPolicy,
    ClusterConfig,
    ClusterService,
    FaultEvent,
    RoundRobinRouter,
)
from repro.workloads import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    make_chaos_scenario,
    replay,
    replay_chaos,
)

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_chaos.json"

#: One front-door admission tick (same constant as the scenario matrix).
ADMISSION_WINDOW_S = 5e-3

#: The phase whose p99 is the kill-window tail in the replica-kill runs.
OUTAGE_PHASE = 1

#: Batch policy for every run: a 5ms flush deadline keeps enough work
#: pending that a kill visibly strands queries (with the 1ms default, the
#: stranded set is too small a fraction of the outage phase to reach p99).
POLICY = BatchPolicy(max_batch_size=4096, max_wait_s=5e-3)


def report_row(name: str, report, n_replicas: int) -> dict:
    """Flatten one ScenarioReport (+ ClusterStats) into a JSON row."""
    stats = report.stats
    lost = stats.queries_submitted - stats.queries_answered
    admitted = report.queries_admitted
    outage = report.phases[OUTAGE_PHASE] if len(report.phases) > 1 else None
    return {
        "scenario": name,
        "replicas": n_replicas,
        "offered": report.queries_offered,
        "admitted": admitted,
        "shed": report.queries_shed,
        "shed_rate": report.shed_rate,
        "lost": int(lost),
        "availability": (
            stats.queries_answered / admitted if admitted else 1.0
        ),
        "retried": stats.queries_retried,
        "hedges_issued": stats.hedges_issued,
        "hedges_won": stats.hedges_won,
        "faults": stats.faults_injected,
        "membership_events": stats.membership_events,
        "throughput_qps": report.throughput_qps,
        "latency_p50_us": report.latency_p50_s * 1e6,
        "latency_p99_us": report.latency_p99_s * 1e6,
        "outage_p99_us": (
            outage.latency_p99_s * 1e6 if outage is not None else 0.0
        ),
    }


def render_table(config, rows) -> str:
    lines = [
        "Chaos suite: availability and tail latency under injected faults",
        f"replicas           : {config['replicas']} "
        f"(max_pending={config['max_pending']}; rolling restart uses "
        f"{config['rolling_replicas']})",
        f"hedging            : {config['hedge_delay_us']:.1f}us delay "
        "(fault-free p99 of the control run)",
        f"scenario scale     : {config['scale']:g} (durations; rates fixed)",
        "",
        f"{'scenario':<22} {'offered':>8} {'shed':>7} {'lost':>5} "
        f"{'retried':>8} {'hedge w/i':>9} {'faults':>6} "
        f"{'p99 us':>8} {'outage p99':>10}",
    ]
    for row in rows:
        hedge = f"{row['hedges_won']}/{row['hedges_issued']}"
        lines.append(
            f"{row['scenario']:<22} {row['offered']:>8} "
            f"{row['shed_rate']:>6.1%} {row['lost']:>5} {row['retried']:>8} "
            f"{hedge:>9} {row['faults']:>6} {row['latency_p99_us']:>8.1f} "
            f"{row['outage_p99_us']:>10.1f}"
        )
    return "\n".join(lines)


def slowdown_variant(kill: ChaosScenario, factor: float) -> ChaosScenario:
    """The replica-kill traffic with a slowdown instead of a kill.

    Nothing dies, so no retries fire; instead the outage-window batches on
    replica 0 run ``factor`` times slower and the hedging path gets to win.
    """
    pre = kill.scenario.phases[0].duration_s
    outage = kill.scenario.phases[1].duration_s
    return ChaosScenario(
        scenario=dataclasses.replace(kill.scenario, name="chaos-slowdown"),
        events=(
            FaultEvent(pre, "slowdown", replica=0, factor=factor),
            FaultEvent(pre + outage, "slowdown", replica=0, factor=1.0),
        ),
        description="replica 0 serves far slower through the outage window",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--rolling-replicas",
        type=int,
        default=3,
        help="cluster size for the rolling-restart scenario",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=8192,
        help="cluster admission bound (queries)",
    )
    parser.add_argument(
        "--slowdown-factor",
        type=float,
        default=2000.0,
        help="service-time factor for the hedged slowdown variant (must "
        "push a batch's service time past the hedge delay)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=BENCH_SCALE,
        help="scenario duration scale (default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless no query is lost, answers verify, "
        "availability holds and the kill window shows in the tail",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()

    # Fault-free control: the replica-kill traffic on an injector-less
    # cluster of the same size.  Its p99 prices the hedging delay and
    # anchors the kill-window comparison.
    kill = make_chaos_scenario(
        "chaos-replica-kill", scale=args.scale, seed=args.seed
    )
    control_cluster = ClusterService(config=ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=POLICY.max_batch_size,
        max_wait_s=POLICY.max_wait_s,
        max_pending=args.max_pending,
    ))
    control = replay(
        control_cluster,
        kill.scenario,
        admission_window_s=ADMISSION_WINDOW_S,
        check_answers=True,
    )
    hedge_delay_s = max(control.latency_p99_s, 1e-6)

    rows = [report_row("fault-free control", control, args.replicas)]
    for name in sorted(CHAOS_SCENARIOS):
        n = (
            args.rolling_replicas
            if name == "chaos-rolling-restart"
            else args.replicas
        )
        chaos = make_chaos_scenario(name, scale=args.scale, seed=args.seed)
        report = replay_chaos(
            chaos,
            n_replicas=n,
            policy=POLICY,
            max_pending=args.max_pending,
            hedge_delay_s=hedge_delay_s,
            admission_window_s=ADMISSION_WINDOW_S,
            check_answers=True,
        )
        rows.append(report_row(name, report, n))

    # Hedging demo: same traffic, replica 0 slowed instead of killed, on a
    # blind round-robin router (a load-aware router would simply steer
    # around the slow replica and the hedge path would stay cold).  Run
    # with hedging off then on; the delta is what hedged dispatch buys.
    slow = slowdown_variant(kill, args.slowdown_factor)
    for label, delay in (
        ("chaos-slowdown/unhedged", None),
        ("chaos-slowdown/hedged", hedge_delay_s),
    ):
        slow_report = replay_chaos(
            slow,
            n_replicas=args.replicas,
            policy=POLICY,
            max_pending=args.max_pending,
            router=RoundRobinRouter(),
            hedge_delay_s=delay,
            admission_window_s=ADMISSION_WINDOW_S,
            check_answers=True,
        )
        rows.append(report_row(label, slow_report, args.replicas))
    wall_s = time.perf_counter() - start

    config = {
        "replicas": args.replicas,
        "rolling_replicas": args.rolling_replicas,
        "max_pending": args.max_pending,
        "slowdown_factor": args.slowdown_factor,
        "hedge_delay_us": hedge_delay_s * 1e6,
        "scale": args.scale,
        "admission_window_ms": ADMISSION_WINDOW_S * 1e3,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
    }
    table = render_table(config, rows)
    print(table)

    def cell(scenario: str) -> dict:
        return next(r for r in rows if r["scenario"] == scenario)

    control_row = cell("fault-free control")
    kill_row = cell("chaos-replica-kill")
    unhedged_row = cell("chaos-slowdown/unhedged")
    hedged_row = cell("chaos-slowdown/hedged")
    chaos_rows = [r for r in rows if r is not control_row]
    headline = {
        "scenarios_run": len(chaos_rows),
        "availability": min(r["availability"] for r in chaos_rows),
        "lost_queries": int(sum(r["lost"] for r in rows)),
        "kill_p99_ms": kill_row["outage_p99_us"] / 1e3,
        "fault_free_p99_ms": control_row["outage_p99_us"] / 1e3,
        "kill_tail_ratio": (
            kill_row["outage_p99_us"] / control_row["outage_p99_us"]
            if control_row["outage_p99_us"]
            else 0.0
        ),
        # How much hedging shaves off the straggler's outage-window p99
        # (unhedged / hedged; > 1 means hedging won).
        "hedge_tail_ratio": (
            unhedged_row["outage_p99_us"] / hedged_row["outage_p99_us"]
            if hedged_row["outage_p99_us"]
            else 0.0
        ),
        "hedged_p99_ms": hedged_row["outage_p99_us"] / 1e3,
        "queries_retried": int(sum(r["retried"] for r in rows)),
        "hedges_won": int(sum(r["hedges_won"] for r in rows)),
        "total_admitted": int(sum(r["admitted"] for r in rows)),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "chaos.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "chaos",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'chaos.txt'}")

    if args.check:
        failures = []
        if headline["lost_queries"] != 0:
            failures.append(
                f"{headline['lost_queries']} admitted queries were lost "
                "(every admitted query must be answered)"
            )
        if headline["availability"] < 0.999:
            failures.append(
                f"availability {headline['availability']:.4%} is below "
                "99.9% outside shed accounting"
            )
        empty = [r["scenario"] for r in rows if r["admitted"] == 0]
        if empty:
            failures.append(f"scenarios admitted zero queries: {empty}")
        if kill_row["retried"] == 0:
            failures.append(
                "the replica kill retried nothing (failover path never "
                "engaged)"
            )
        if headline["kill_tail_ratio"] > 2.0:
            failures.append(
                "kill-window p99 blew past 2x the fault-free control "
                f"({headline['kill_tail_ratio']:.3f}x) — eviction should "
                "bound the damage to about one extra flush deadline"
            )
        if hedged_row["hedges_won"] == 0:
            failures.append(
                "the slowdown run won no hedges (hedged dispatch never "
                "engaged)"
            )
        if headline["hedge_tail_ratio"] <= 1.0:
            failures.append(
                "hedging did not improve the straggler's outage p99 "
                f"({headline['hedge_tail_ratio']:.3f}x unhedged/hedged)"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: zero lost queries, answers verified, availability "
            f"{headline['availability']:.4%}, kill-window p99 "
            f"{headline['kill_tail_ratio']:.2f}x fault-free, hedging cut "
            f"the straggler tail {headline['hedge_tail_ratio']:.2f}x "
            f"({headline['hedges_won']} hedges won)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
