"""§3.1 preliminary experiment: sequential Inlabel vs RMQ-based LCA on one CPU core.

The paper reports the RMQ-based algorithm preprocessing ~2× faster, the
Inlabel algorithm answering queries ~3× faster, and the two drawing when the
number of queries equals the number of nodes.
"""

from repro.experiments import format_rows
from repro.experiments.lca_experiments import cpu_preliminary

from bench_util import BENCH_SCALE, publish, run_once


def test_preliminary_cpu_comparison(benchmark):
    n = int(131_072 * BENCH_SCALE)
    rows = run_once(benchmark, cpu_preliminary, n=n)
    publish(benchmark, "prelim_cpu_inlabel_vs_rmq",
            format_rows(rows, title=f"§3.1 preliminary: single-core Inlabel vs RMQ "
                                    f"({n} nodes, {n} queries)"))
