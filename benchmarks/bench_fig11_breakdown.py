"""Figure 11: per-phase running-time breakdown of the GPU bridge-finding algorithms.

The textual equivalent of the paper's stacked bars: for every dataset, the GPU
CK, GPU TV and GPU hybrid algorithms broken into their phases (BFS / marking
for CK; spanning tree / Euler tour / detect for TV; spanning tree / Euler tour
/ levels+parents / marking for the hybrid).  The qualitative claims to check:
BFS dominates CK on large-diameter graphs, and the hybrid's marking phase
keeps it from beating TV once per-edge work dominates.
"""

from repro.device import format_breakdown_table
from repro.experiments.bridges_experiments import breakdown

from bench_util import publish, run_once


def test_fig11_phase_breakdown(benchmark):
    breakdowns = run_once(benchmark, breakdown)
    publish(benchmark, "fig11_phase_breakdown",
            format_breakdown_table(breakdowns, time_unit="ms"))
