"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

These do not correspond to a table or figure in the paper; they quantify the
engineering decisions the paper describes in prose:

* Wei–JaJa list ranking vs. classical Wyllie pointer jumping (§2.2: "performs
  much better than the classical pointer jumping technique");
* ranking the Euler tour once and then using array scans vs. running a
  list-ranking-style computation for every statistic (§2.2's key optimization,
  motivated by the reported 7–8× scan-vs-list-ranking gap);
* segment-tree vs. sparse-table RMQ backend inside Tarjan–Vishkin;
* the naïve-LCA pointer-jumping batching (5 jumps per global synchronization,
  §3.1).
"""

import numpy as np

from repro.device import ExecutionContext, GTX980
from repro.euler import build_euler_tour_from_parents, compute_tree_stats
from repro.experiments import format_rows
from repro.graphs.generators import random_attachment_tree, road_graph_with_target_size
from repro.graphs import largest_connected_component
from repro.lca import pointer_jump_levels
from repro.primitives import sequential_rank, wei_jaja_rank, wyllie_rank
from repro.bridges import find_bridges_tarjan_vishkin

from bench_util import BENCH_SCALE, publish, run_once


def _random_list(n: int, seed: int):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    succ[perm[:-1]] = perm[1:]
    return succ, int(perm[0])


def test_ablation_list_ranking(benchmark):
    """Wei–JaJa vs Wyllie vs sequential list ranking on a random list."""
    n = int(262_144 * BENCH_SCALE)
    succ, head = _random_list(n, seed=1)

    def run():
        rows = []
        for label, fn in (("Wei-JaJa", wei_jaja_rank), ("Wyllie", wyllie_rank),
                          ("Sequential walk", sequential_rank)):
            ctx = ExecutionContext(GTX980)
            fn(succ, head, ctx=ctx)
            rows.append({"algorithm": label, "modeled_ms": round(ctx.elapsed * 1e3, 3),
                         "modeled_ops": int(ctx.total_ops),
                         "kernel_launches": ctx.total_launches})
        return rows

    rows = run_once(benchmark, run)
    publish(benchmark, "ablation_list_ranking",
            format_rows(rows, title=f"Ablation: list ranking a {n}-element list (GPU model)"))


def test_ablation_tour_rank_once_then_scan(benchmark):
    """The §2.2 optimization: one list ranking + k array scans vs k list rankings."""
    n = int(131_072 * BENCH_SCALE)
    parents = random_attachment_tree(n, seed=2)
    num_statistics = 4  # preorder, depth, subtree size, parents

    def run():
        # Strategy A (the paper's): rank the tour once, then every statistic is a scan.
        ctx_a = ExecutionContext(GTX980)
        tour = build_euler_tour_from_parents(parents, ctx=ctx_a)
        compute_tree_stats(tour, ctx=ctx_a)
        # Strategy B (the naive alternative): pay a fresh list ranking per statistic.
        ctx_b = ExecutionContext(GTX980)
        tour_b = build_euler_tour_from_parents(parents, ctx=ctx_b)
        for k in range(num_statistics - 1):
            wei_jaja_rank(tour_b.succ, tour_b.head, seed=k, ctx=ctx_b)
        compute_tree_stats(tour_b, ctx=ctx_b)
        return [
            {"strategy": "rank once + array scans", "modeled_ms": round(ctx_a.elapsed * 1e3, 3)},
            {"strategy": f"{num_statistics} list rankings", "modeled_ms": round(ctx_b.elapsed * 1e3, 3)},
        ]

    rows = run_once(benchmark, run)
    publish(benchmark, "ablation_tour_scans",
            format_rows(rows, title=f"Ablation: Euler tour statistics on a {n}-node tree"))


def test_ablation_rmq_backend(benchmark):
    """Tarjan–Vishkin with a segment tree (paper) vs a sparse table."""
    graph, _ = road_graph_with_target_size(int(40_000 * BENCH_SCALE), seed=3)
    graph, _ = largest_connected_component(graph)

    def run():
        rows = []
        for backend in ("segment-tree", "sparse-table"):
            ctx = ExecutionContext(GTX980)
            find_bridges_tarjan_vishkin(graph, rmq_backend=backend, ctx=ctx)
            rows.append({"rmq_backend": backend, "modeled_ms": round(ctx.elapsed * 1e3, 3)})
        return rows

    rows = run_once(benchmark, run)
    publish(benchmark, "ablation_rmq_backend",
            format_rows(rows, title=f"Ablation: TV low/high RMQ backend "
                                    f"(road graph, n={graph.num_nodes})"))


def test_ablation_jump_batching(benchmark):
    """Naïve-LCA level preprocessing: 1 vs 5 pointer jumps per global sync."""
    n = int(262_144 * BENCH_SCALE)
    parents = random_attachment_tree(n, seed=4)

    def run():
        rows = []
        for batch in (1, 5):
            ctx = ExecutionContext(GTX980)
            pointer_jump_levels(parents, jump_batch=batch, ctx=ctx)
            rows.append({"jumps_per_sync": batch,
                         "modeled_ms": round(ctx.elapsed * 1e3, 3),
                         "kernel_launches": ctx.total_launches})
        return rows

    rows = run_once(benchmark, run)
    publish(benchmark, "ablation_jump_batching",
            format_rows(rows, title=f"Ablation: naïve-LCA level computation on a "
                                    f"{n}-node shallow tree"))
