#!/usr/bin/env python
"""Calibrated dispatch vs static backends, on measured launch costs.

The paper's Fig. 6 crossover was *modeled*: hardcoded GTX980/Xeon specs
priced every batch.  This bench exercises the measured path end to end:

1. **Live calibration** — :func:`repro.backends.calibrate_backends` times
   the real ``smallbatch`` and ``numpy`` kernels on this host across a
   batch-size grid and fits launch-overhead + per-query cost lines.  The
   fitted lines (and the crossover they imply) are reported but *not*
   gated — wall-clock numbers move with the runner.
2. **Dispatch comparison** — a fixed reference profile (measured once on
   the development container, committed below as constants) drives three
   cluster configurations over the steady and flash-crowd scenarios: two
   *static* single-backend clusters and one *calibrated* cluster that
   dispatches each batch to the profile-argmin backend.  Every admitted
   answer is verified against the binary-lifting oracle.  Because charges
   come from the fixed profile on the simulated clock, these rows are
   bit-deterministic and make a tight CI regression baseline.

Each run is scored on **cost x SLO** (same scheme as bench_adaptive):

    cost    = profile-charged backend-busy seconds per answered query
    penalty = product over declared bounds of max(1, actual / bound)
    score   = cost * penalty            (lower is better)

The headline ``calibrated_vs_best_static`` is the worst-case ratio of the
best static score to the calibrated score over both scenarios — the
calibrated dispatcher prices every batch on the same profile the statics
are charged with, so it must match or beat them (>= 1.0 up to rounding).

Outputs:

* ``BENCH_backends.json`` (repo root) — machine-readable result, compared
  against the committed baseline by CI's bench-regression gate;
* ``results/backends.txt`` — the rendered comparison table;
* ``results/backends_profile.json`` — the live-measured profile.

Run with:  python benchmarks/bench_backends.py
Options:   --replicas N  --scale F  --live  --skip-calibration  --check
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.backends import (
    BackendCalibration,
    CalibrationProfile,
    calibrate_backends,
)
from repro.service import ClusterConfig, ClusterService, dispatcher_for
from repro.workloads import make_scenario, replay

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_backends.json"

#: One front-door admission tick (matches bench_scenarios.py).
ADMISSION_WINDOW_S = 5e-3

#: Reference profile: measured once on the development container (see
#: docs/backends.md) and committed so the dispatch comparison is
#: bit-deterministic.  ``smallbatch`` is the scalar low-launch-overhead
#: kernel, ``numpy`` the vectorized one — cheap launches vs cheap queries,
#: the measured version of the paper's CPU/GPU trade-off.
REFERENCE_PROFILE = CalibrationProfile(
    entries={
        "smallbatch": BackendCalibration(
            backend="smallbatch",
            launch_overhead_s=9.52e-6,
            per_query_s=2.606e-7,
            min_batch=1,
            max_batch=1024,
            samples=11,
            residual=0.0,
        ),
        "numpy": BackendCalibration(
            backend="numpy",
            launch_overhead_s=7.574e-5,
            per_query_s=8.66e-8,
            min_batch=1,
            max_batch=1024,
            samples=11,
            residual=0.0,
        ),
    },
    meta={"source": "reference (dev container)", "n_nodes": 4096, "seed": 0},
)

#: The three cluster configurations under comparison.
CONFIGS = (
    ("static-small", ("smallbatch",)),
    ("static-numpy", ("numpy",)),
    ("calibrated", ("smallbatch", "numpy")),
)

#: Declared objectives.  Bounds are on profile-charged (measured-cost)
#: latencies, so they differ from the modeled-time SLOs of other benches.
#: The flash phase offers far more than sustainable load; the shed bound
#: caps whole-trace loss while admission control absorbs the spike.
SCENARIO_SLOS = {
    "steady": {"p99_latency_s": 5e-4, "max_shed_rate": 1e-3},
    "flash-crowd": {"p99_latency_s": 1e-3, "max_shed_rate": 0.75},
}

CALIBRATION_GRID = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def score_run(report, slo) -> dict:
    """Cost x SLO-penalty scoring of one replayed run."""
    stats = report.stats
    answered = int(stats.queries_answered)
    cost_us = stats.busy_time_s / answered * 1e6 if answered else float("inf")
    penalty = 1.0
    violations = []
    ratio = report.latency_p99_s / slo["p99_latency_s"]
    penalty *= max(1.0, ratio)
    if ratio > 1.0:
        violations.append("p99")
    ratio = report.shed_rate / slo["max_shed_rate"]
    penalty *= max(1.0, ratio)
    if ratio > 1.0:
        violations.append("shed")
    return {
        "cost_us_per_query": cost_us,
        "penalty": penalty,
        "score": cost_us * penalty,
        "slo_violations": violations,
        "slo_met": not violations,
    }


def run_one(scenario_name, label, backend_keys, profile_path, args):
    scenario = make_scenario(scenario_name, scale=args.scale, seed=args.seed)
    cluster = ClusterService(
        config=ClusterConfig(
            n_replicas=args.replicas,
            max_batch_size=args.max_batch,
            max_wait_s=args.max_wait_s,
            max_pending=args.max_pending,
            backends=tuple(backend_keys),
            calibration_path=str(profile_path),
        )
    )
    report = replay(
        cluster,
        scenario,
        admission_window_s=ADMISSION_WINDOW_S,
        check_answers=True,
    )
    backend_counts: dict = {}
    for replica in cluster.replicas:
        for key, count in replica.stats().backend_choices.items():
            backend_counts[key] = backend_counts.get(key, 0) + count
    row = {
        "scenario": scenario_name,
        "config": label,
        "backends": list(backend_keys),
        "offered": report.queries_offered,
        "admitted": report.queries_admitted,
        "shed_rate": report.shed_rate,
        "throughput_qps": report.throughput_qps,
        "latency_p50_us": report.latency_p50_s * 1e6,
        "latency_p99_us": report.latency_p99_s * 1e6,
        "batches_by_backend": backend_counts,
    }
    row.update(score_run(report, SCENARIO_SLOS[scenario_name]))
    return row


def live_calibration(args):
    """Measure this host's kernels; report fitted lines and crossover."""
    start = time.perf_counter()
    profile = calibrate_backends(
        ("smallbatch", "numpy"),
        batch_sizes=CALIBRATION_GRID,
        repeats=args.repeats,
        warmup=1,
        n_nodes=args.calibration_nodes,
        seed=args.seed,
    )
    wall_s = time.perf_counter() - start
    dispatcher = dispatcher_for(("smallbatch", "numpy"), profile=profile)
    crossover = dispatcher.crossover_batch_size(max_batch=max(CALIBRATION_GRID))
    RESULTS_DIR.mkdir(exist_ok=True)
    profile.save(RESULTS_DIR / "backends_profile.json")
    return {
        "wall_s": wall_s,
        "crossover_batch_size": crossover,
        "backends": {
            key: {
                "launch_overhead_us": cal.launch_overhead_s * 1e6,
                "per_query_ns": cal.per_query_s * 1e9,
                "residual": cal.residual,
            }
            for key, cal in sorted(profile.entries.items())
        },
    }


def render_table(config, live, rows, ratios) -> str:
    lines = [
        "Calibrated dispatch vs static backends (measured launch costs)",
        f"replicas           : {config['replicas']} "
        f"(max_pending={config['max_pending']})",
        f"batching           : max_batch={config['max_batch']}, "
        f"max_wait={config['max_wait_us']:g}us",
        f"scenario scale     : {config['scale']:g} (durations; rates fixed)",
        f"profile            : {config['profile_source']}",
        "score              : busy-us/query x SLO penalty (lower is better)",
        "",
    ]
    if live is not None:
        lines.append("live calibration (this host, ungated):")
        for key, fit in live["backends"].items():
            lines.append(
                f"  {key:<12} launch {fit['launch_overhead_us']:>8.2f}us  "
                f"+ {fit['per_query_ns']:>8.2f}ns/query"
            )
        cross = live["crossover_batch_size"]
        lines.append(
            f"  measured crossover : "
            f"{cross if cross is not None else 'none in grid'}"
        )
        lines.append("")
    lines.append(
        f"{'scenario':<14} {'config':<14} {'shed':>7} {'p99 us':>9} "
        f"{'cost us':>8} {'penalty':>8} {'score':>9} {'SLO':>4}  batches"
    )
    for row in rows:
        by_backend = ", ".join(
            f"{k}:{v}" for k, v in sorted(row["batches_by_backend"].items())
        )
        lines.append(
            f"{row['scenario']:<14} {row['config']:<14} "
            f"{row['shed_rate']:>6.1%} {row['latency_p99_us']:>9.1f} "
            f"{row['cost_us_per_query']:>8.3f} {row['penalty']:>8.2f} "
            f"{row['score']:>9.3f} {'ok' if row['slo_met'] else 'VIOL':>4}  "
            f"{by_backend}"
        )
    lines.append("")
    lines.append(
        f"{'scenario':<14} {'best static':>12} {'calibrated':>11} {'ratio':>7}"
        "  (best_static_score / calibrated_score; >= 1 = match-or-beat)"
    )
    for name, entry in ratios.items():
        lines.append(
            f"{name:<14} {entry['best_static_score']:>12.3f} "
            f"{entry['calibrated_score']:>11.3f} {entry['ratio']:>7.3f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--max-pending", type=int, default=32768)
    parser.add_argument("--max-batch", type=int, default=1024)
    parser.add_argument("--max-wait-s", type=float, default=4e-4)
    parser.add_argument(
        "--scale",
        type=float,
        default=BENCH_SCALE,
        help="scenario duration scale (default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3, help="calibration timing repeats"
    )
    parser.add_argument(
        "--calibration-nodes", type=int, default=1024, help="calibration tree"
    )
    parser.add_argument(
        "--skip-calibration",
        action="store_true",
        help="skip the live calibration pass (dispatch comparison only)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="drive the dispatch comparison with the live-measured profile "
        "instead of the committed reference (nondeterministic)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless calibrated dispatch matches or beats the "
        "best static backend on every scenario and meets every SLO",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    live = None if args.skip_calibration else live_calibration(args)
    if args.live and live is None:
        parser.error("--live requires the calibration pass")

    RESULTS_DIR.mkdir(exist_ok=True)
    if args.live:
        profile_path = RESULTS_DIR / "backends_profile.json"
        profile_source = "live-measured (nondeterministic)"
    else:
        profile_path = RESULTS_DIR / "backends_reference_profile.json"
        REFERENCE_PROFILE.save(profile_path)
        profile_source = "committed reference (bit-deterministic)"

    rows = []
    for scenario_name in sorted(SCENARIO_SLOS):
        for label, backend_keys in CONFIGS:
            rows.append(
                run_one(scenario_name, label, backend_keys, profile_path, args)
            )
    wall_s = time.perf_counter() - start

    ratios = {}
    for scenario_name in sorted(SCENARIO_SLOS):
        scenario_rows = [r for r in rows if r["scenario"] == scenario_name]
        statics = [r for r in scenario_rows if r["config"] != "calibrated"]
        calibrated = next(
            r for r in scenario_rows if r["config"] == "calibrated"
        )
        best_static = min(statics, key=lambda r: r["score"])
        ratios[scenario_name] = {
            "best_static_config": best_static["config"],
            "best_static_score": best_static["score"],
            "calibrated_score": calibrated["score"],
            "ratio": best_static["score"] / calibrated["score"],
        }

    calibrated_rows = [r for r in rows if r["config"] == "calibrated"]
    headline = {
        "calibrated_vs_best_static": min(
            entry["ratio"] for entry in ratios.values()
        ),
        "calibrated_slo_violations": sum(
            len(r["slo_violations"]) for r in calibrated_rows
        ),
        "scenarios_run": len(ratios),
        "calibrated_steady_cost_us": next(
            r["cost_us_per_query"]
            for r in calibrated_rows
            if r["scenario"] == "steady"
        ),
    }

    config = {
        "replicas": args.replicas,
        "max_pending": args.max_pending,
        "max_batch": args.max_batch,
        "max_wait_us": args.max_wait_s * 1e6,
        "scale": args.scale,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
        "admission_window_ms": ADMISSION_WINDOW_S * 1e3,
        "profile_source": profile_source,
        "reference_profile": REFERENCE_PROFILE.to_dict(),
        "slos": SCENARIO_SLOS,
    }
    table = render_table(config, live, rows, ratios)
    print(table)

    (RESULTS_DIR / "backends.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "backends",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "live_calibration": live,
        "rows": rows,
        "ratios": ratios,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'backends.txt'}")

    if args.check:
        failures = []
        if headline["scenarios_run"] != len(SCENARIO_SLOS):
            failures.append(
                f"expected {len(SCENARIO_SLOS)} scenarios, "
                f"ran {headline['scenarios_run']}"
            )
        # The calibrated dispatcher argmins over the very profile the
        # statics are charged with, so match-or-beat is by construction;
        # the epsilon absorbs float rounding in the score division.
        if headline["calibrated_vs_best_static"] < 0.999:
            worst = min(ratios, key=lambda n: ratios[n]["ratio"])
            failures.append(
                "calibrated dispatch lost to the best static backend on "
                f"{worst} (ratio {ratios[worst]['ratio']:.3f})"
            )
        for row in calibrated_rows:
            if not row["slo_met"]:
                failures.append(
                    f"calibrated run violated its SLO on {row['scenario']}: "
                    f"{row['slo_violations']} "
                    f"(p99={row['latency_p99_us']:.1f}us, "
                    f"shed={row['shed_rate']:.2%})"
                )
        if live is not None and live["crossover_batch_size"] is None:
            # Not a hard failure: a host where one kernel dominates the
            # whole grid is legal — but say so loudly.
            print(
                "note: live calibration found no crossover in the grid "
                "(one backend dominates on this host)",
                file=sys.stderr,
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: calibrated dispatch matched or beat the best static "
            f"backend ({headline['calibrated_vs_best_static']:.3f}x) and met "
            "every declared SLO"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
