#!/usr/bin/env python
"""Bench-regression gate: compare a fresh BENCH_*.json against a baseline.

CI reruns a benchmark, then calls this script to compare selected metrics of
the fresh JSON against the committed baseline with a per-metric tolerance::

    python benchmarks/check_regression.py \\
        --current BENCH_cluster_scaling.json \\
        --baseline baseline/BENCH_cluster_scaling.json \\
        --check headline.peak_throughput_qps:0.95 \\
        --check headline.scaling_1_to_max:0.90

Each ``--check PATH:MIN_RATIO`` asserts ``current >= MIN_RATIO * baseline``
for the numeric value at the dotted ``PATH`` (higher is better); each
``--check-max PATH:MAX_RATIO`` asserts ``current <= MAX_RATIO * baseline``
(lower is better — tail latencies, shed rates).  A zero baseline under
``--check-max`` asserts the current value is still zero (violation and
error counts must stay clean).  Modeled-time metrics are
bit-deterministic, so their ratio tolerances can sit near 1.0; host
wall-clock ratios (e.g. the columnar speedup) get looser bounds to absorb
runner noise.

Exits non-zero if any metric regresses past its tolerance, printing a
verdict table either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple


def resolve(payload: dict, dotted: str) -> float:
    """The numeric value at a dotted path like ``headline.peak_qps``."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"path {dotted!r} not found (missing {part!r})")
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise TypeError(f"path {dotted!r} is not numeric: {node!r}")
    return float(node)


def parse_check(spec: str) -> Tuple[str, float]:
    path, sep, ratio = spec.rpartition(":")
    if not sep or not path:
        raise argparse.ArgumentTypeError(
            f"--check expects PATH:MIN_RATIO, got {spec!r}"
        )
    return path, float(ratio)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument(
        "--check",
        type=parse_check,
        action="append",
        default=[],
        metavar="PATH:MIN_RATIO",
        help="assert current >= MIN_RATIO * baseline at dotted PATH "
        "(repeatable)",
    )
    parser.add_argument(
        "--check-max",
        type=parse_check,
        action="append",
        default=[],
        metavar="PATH:MAX_RATIO",
        help="assert current <= MAX_RATIO * baseline at dotted PATH "
        "(repeatable; for lower-is-better metrics)",
    )
    args = parser.parse_args(argv)
    if not args.check and not args.check_max:
        parser.error("at least one --check or --check-max is required")

    current = json.loads(args.current.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    failures: List[str] = []
    print(
        f"{'metric':<40} {'baseline':>14} {'current':>14} {'ratio':>7} "
        f"{'bound':>7}  verdict"
    )
    checks = [(path, ratio, False) for path, ratio in args.check] + [
        (path, ratio, True) for path, ratio in args.check_max
    ]
    for path, bound, is_max in checks:
        base = resolve(baseline, path)
        cur = resolve(current, path)
        if base == 0 and is_max:
            # A zero baseline under a max bound is a real gate: the metric
            # (violation/error counts) must stay at zero.
            ok = cur <= 0
            verdict = "ok" if ok else "REGRESSION"
            print(
                f"{path:<40} {base:>14,.4g} {cur:>14,.4g} {'-':>7} "
                f"{'== 0':>7}  {verdict}"
            )
            if not ok:
                failures.append(
                    f"{path}: {cur:,.4g} is above the zero baseline"
                )
            continue
        if base <= 0:
            failures.append(f"{path}: baseline value {base} is not positive")
            continue
        ratio = cur / base
        ok = ratio <= bound if is_max else ratio >= bound
        verdict = "ok" if ok else "REGRESSION"
        sign = "<=" if is_max else ">="
        print(
            f"{path:<40} {base:>14,.4g} {cur:>14,.4g} {ratio:>7.3f} "
            f"{sign}{bound:>5.3f}  {verdict}"
        )
        if not ok:
            side = "above" if is_max else "below"
            failures.append(
                f"{path}: {cur:,.4g} is {side} {bound:.2f}x baseline "
                f"{base:,.4g} (ratio {ratio:.3f})"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
