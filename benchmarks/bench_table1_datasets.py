"""Table 1: statistics of the largest connected components of every dataset.

For each of the 16 synthetic stand-ins, reports nodes, edges, bridges and
(pseudo-)diameter next to the statistics of the original graph published in
the paper.  Absolute sizes are ~32–64× smaller by design; the point of the
regenerated table is that each stand-in sits in the same regime as its
original (dense small-diameter vs. sparse large-diameter, bridge-poor vs.
bridge-rich).
"""

from repro.experiments import format_rows
from repro.experiments.bridges_experiments import dataset_table

from bench_util import publish, run_once


def test_table1_dataset_statistics(benchmark):
    rows = run_once(benchmark, dataset_table)
    publish(benchmark, "table1_dataset_statistics",
            format_rows(rows, columns=["dataset", "paper_graph", "nodes", "edges",
                                       "bridges", "diameter", "paper_nodes",
                                       "paper_edges", "paper_bridges", "paper_diameter"],
                        title="Table 1: largest-CC statistics of the dataset stand-ins"))
