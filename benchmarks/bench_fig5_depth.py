"""Figure 5: total time to answer n LCA queries vs average tree depth.

The paper fixes nodes = queries = 8M and sweeps the grasp parameter so the
average node depth ranges from ~16 to 4·10⁶; the GPU Inlabel time stays flat
while the naïve algorithm degrades rapidly past depth ≈ 91.
"""

import numpy as np

from repro.experiments import format_series
from repro.experiments.lca_experiments import depth_sweep

from bench_util import BENCH_SCALE, publish, run_once


def test_fig5_depth_sweep(benchmark):
    n = int(65_536 * BENCH_SCALE)
    depths = [float(np.log(n)), 32.0, 91.0, 256.0, 1024.0, 4096.0, n / 8.0, n / 2.0]
    rows = run_once(benchmark, depth_sweep, n=n, target_depths=depths)
    publish(benchmark, "fig5_depth_sweep",
            format_series(rows, x="target_avg_depth", y="total_ms", series="algorithm",
                          title=f"Figure 5: total time [ms] vs average node depth "
                                f"({n} nodes, {n} queries)"))
