"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper:

* the *measured wall time* of running the experiment in this simulation is
  captured by pytest-benchmark (each experiment runs exactly once — these are
  experiment drivers, not micro-benchmarks);
* the *modeled device times* — the numbers that correspond to what the paper
  plots — are rendered as text tables, printed, written to ``results/`` and
  attached to the benchmark's ``extra_info`` so they survive into the
  pytest-benchmark JSON output.

Scale note: dataset and tree sizes default to roughly 32–64× smaller than the
paper's (see DESIGN.md §2); set the environment variables
``REPRO_BENCH_SCALE`` (LCA tree sizes) and ``REPRO_DATASET_SCALE`` (bridge
datasets) to run larger instances.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Sequence

#: Directory where rendered result tables are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Multiplier applied to the default LCA tree sizes in the benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default LCA tree sizes used by the figure benchmarks (paper: 1M–32M).
LCA_SIZES: Sequence[int] = tuple(
    int(n * BENCH_SCALE) for n in (32_768, 65_536, 131_072, 262_144)
)


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic and take seconds, so a single round is
    both sufficient and necessary to keep the whole suite fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


def publish(benchmark, name: str, text: str) -> None:
    """Print a rendered result table, persist it, and attach it to the report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    benchmark.extra_info["result_table"] = text
    benchmark.extra_info["result_file"] = str(path)
    print(f"\n=== {name} ===\n{text}\n")
