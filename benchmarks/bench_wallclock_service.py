#!/usr/bin/env python
"""Wall-clock serving throughput: columnar submit_many vs the per-query loop.

Unlike every other benchmark in this directory — which reports *modeled*
device times on the simulated clock — this one measures **host wall-clock
time**: how many queries per second this Python process actually sustains
pushing a timed stream through ``submit → drain → results``.  That is the
quantity the columnar fast path (ring-buffer scheduler, vectorized admission,
ticket-indexed result tables) optimizes; modeled times are bit-identical
between the two admission modes.

Two modes are measured in the same run, on the same stream:

* ``per-query`` — a Python loop of individual ``submit()`` calls, which is
  exactly what ``submit_many`` did before the columnar refactor (the seed
  baseline);
* ``columnar`` — the vectorized ``submit_many`` block path.

Outputs:

* ``BENCH_service_wallclock.json`` (repo root) — machine-readable result,
  uploaded as a CI artifact;
* ``results/service_wallclock.txt`` — the rendered comparison table.

Run with:  python benchmarks/bench_wallclock_service.py
Options:   --queries N  --nodes N  --repeats R  --min-speedup X  --check
Scale:     REPRO_BENCH_SCALE scales the default stream size, exactly as it
           scales the instance sizes of the modeled benchmarks.

The process exits non-zero when the columnar path fails to beat the
per-query baseline by ``--min-speedup`` — CI runs this at small scale with
``--min-speedup 1.0`` as a perf smoke test.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.experiments.service_experiments import wallclock_serve_run
from repro.graphs.generators import random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.service import BatchPolicy

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_service_wallclock.json"


def measure(mode: str, parents, xs, ys, arrivals, policy, *, repeats: int,
            check: bool):
    """Best-of-``repeats`` wall-clock run for one admission mode."""
    best = None
    for _ in range(repeats):
        row = wallclock_serve_run(parents, xs, ys, arrivals, policy,
                                  mode=mode, check_answers=check)
        if best is None or row["wall_qps"] > best["wall_qps"]:
            best = row
    return best


def render_table(config, per_query, columnar, speedup: float) -> str:
    lines = [
        "Wall-clock serving throughput: submit -> drain -> results "
        "(host time, not modeled time)",
        f"tree nodes         : {config['nodes']}",
        f"stream length      : {config['queries']} queries at "
        f"{config['offered_qps']:,.0f} offered q/s",
        f"policy             : batch<={config['max_batch_size']}, "
        f"wait<={config['max_wait_s'] * 1e6:.0f}us",
        f"repeats            : best of {config['repeats']}",
        "",
        f"{'mode':<12} {'wall s':>10} {'wall q/s':>14} {'batches':>9} "
        f"{'mean batch':>11} {'modeled q/s':>13}",
    ]
    for row in (per_query, columnar):
        lines.append(
            f"{row['mode']:<12} {row['wall_s']:>10.4f} "
            f"{row['wall_qps']:>14,.0f} {row['batches']:>9} "
            f"{row['mean_batch']:>11.1f} {row['modeled_qps']:>13,.0f}"
        )
    lines += ["", f"columnar speedup   : {speedup:.1f}x host-side"]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int,
                        default=max(1000, int(100_000 * BENCH_SCALE)),
                        help="stream length (default: 100k * REPRO_BENCH_SCALE)")
    parser.add_argument("--nodes", type=int,
                        default=max(1024, int(65_536 * BENCH_SCALE)),
                        help="tree size (default: 65536 * REPRO_BENCH_SCALE)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per mode (best is reported)")
    parser.add_argument("--max-batch", type=int, default=1024)
    parser.add_argument("--max-wait-us", type=float, default=200.0)
    parser.add_argument("--rate-qps", type=float, default=5e6,
                        help="offered (simulated) arrival rate")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="exit non-zero when columnar/per-query falls "
                             "below this ratio")
    parser.add_argument("--check", action="store_true",
                        help="verify answers against the binary-lifting oracle")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    parents = random_attachment_tree(args.nodes, seed=args.seed)
    xs, ys = generate_random_queries(args.nodes, args.queries,
                                     seed=args.seed + 1)
    arrivals = np.arange(args.queries, dtype=np.float64) / args.rate_qps
    policy = BatchPolicy(max_batch_size=args.max_batch,
                         max_wait_s=args.max_wait_us * 1e-6)
    config = {
        "nodes": args.nodes,
        "queries": args.queries,
        "offered_qps": args.rate_qps,
        "max_batch_size": args.max_batch,
        "max_wait_s": args.max_wait_us * 1e-6,
        "repeats": args.repeats,
        "bench_scale": BENCH_SCALE,
        "seed": args.seed,
    }

    per_query = measure("per-query", parents, xs, ys, arrivals, policy,
                        repeats=args.repeats, check=args.check)
    columnar = measure("columnar", parents, xs, ys, arrivals, policy,
                       repeats=args.repeats, check=args.check)
    speedup = columnar["wall_qps"] / per_query["wall_qps"]

    table = render_table(config, per_query, columnar, speedup)
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_wallclock.txt").write_text(table + "\n",
                                                      encoding="utf-8")
    payload = {
        "benchmark": "service_wallclock",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "runs": {"per_query": per_query, "columnar": columnar},
        "speedup": speedup,
        "min_speedup": args.min_speedup,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                         encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'service_wallclock.txt'}")

    if speedup < args.min_speedup:
        print(f"FAIL: columnar speedup {speedup:.2f}x is below the required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
