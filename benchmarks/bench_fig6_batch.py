"""Figure 6: Inlabel query throughput as a function of the batch size.

The paper preprocesses an 8M-node shallow tree and replays 10M random queries
in batches of 1 … 10⁷; the GPU overtakes the single-core CPU at ~100 queries
per batch and saturates around 10⁴, while the multi-core CPU saturates earlier
at a lower throughput.
"""

from repro.experiments import format_series
from repro.experiments.lca_experiments import batch_size_sweep

from bench_util import BENCH_SCALE, publish, run_once


def test_fig6_batch_size_sweep(benchmark):
    n = int(131_072 * BENCH_SCALE)
    q = int(163_840 * BENCH_SCALE)
    batches = (1, 10, 100, 1_000, 10_000, 100_000, q)
    rows = run_once(benchmark, batch_size_sweep, n=n, q=q, batch_sizes=batches,
                    max_batches_per_size=256)
    publish(benchmark, "fig6_batch_size_sweep",
            format_series(rows, x="batch_size", y="queries_per_s", series="algorithm",
                          title=f"Figure 6: queries answered per second vs batch size "
                                f"({n} nodes, {q} queries)"))
