#!/usr/bin/env python
"""Skew-aware serving speedup: answer cache + dedup, on vs off, by workload.

Like ``bench_wallclock_service.py`` this measures **host wall-clock
throughput** — how many queries per second this Python process pushes
through the serving pipeline (`submit_many` admission, micro-batching,
serve, drain, result resolution) — not modeled device time.  The grid
replays one scenario per traffic shape with the answer cache off and on:

* ``uniform``        — independent uniform keys: pairs essentially never
  repeat, so the cache can only cost; its row documents the overhead the
  off-by-default cache would add to cache-hostile traffic.
* ``zipf-pool``      — a Zipf-ranked repeated-query stream
  (:class:`~repro.workloads.QueryPoolKeys` with ``alpha=1.1``).
* ``hot-set-pool``   — a flat hot set of queries hammered uniformly.
* ``skewed-hotspot`` — the named library scenario (both pool shapes mixed);
  its steady-state speedup is the benchmark's headline.

Each (scenario, cache) cell replays the scenario once cold (index caches
warmed, answer cache empty), converges the answer cache with
``--warm-replays`` untimed fresh-trace realizations, and then times two
steady-state regimes (median of ``--repeats`` each): **fresh** — new trace
realizations of the same workload (statistical repetition only), and
**replayed** — the scenario's trace replayed verbatim (perfectly repeating
traffic: mirror/shadow/replay serving), the regime where a memoizing layer
is at its best and the benchmark's headline.  Replays run at
``--nodes-scale`` (production catalog sizes: the query kernel's dozen
node-table gathers then pay real memory-hierarchy costs, while a cache hit
pays one 16-byte slot probe).

Answers are bit-identical with the cache on and off — enforced by the test
suite's hypothesis properties, and re-checked here against the
binary-lifting oracle when ``--check`` is set.

Outputs:

* ``BENCH_skew_speedup.json`` (repo root) — machine-readable result; CI's
  bench-regression job gates ``headline.zipf_speedup`` against the
  committed baseline;
* ``results/skew_speedup.txt`` — the rendered grid.

Run with:  python benchmarks/bench_skew_speedup.py
Options:   --scale F  --nodes-scale F  --cache-bytes N  --repeats R
           --min-speedup X  --check
Scale:     REPRO_BENCH_SCALE scales the default replay duration.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.service import LCAQueryService, ServiceConfig
from repro.workloads import (
    Phase,
    PoissonArrivals,
    QueryPoolKeys,
    Scenario,
    TrafficSource,
    UniformKeys,
    make_scenario,
    replay,
)

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_skew_speedup.json"


def grid_scenario(
    name: str, *, scale: float, nodes_scale: float, seed: int
) -> Scenario:
    """One scenario per traffic shape of the benchmark grid."""
    if name == "skewed-hotspot":
        return make_scenario(name, scale=scale, seed=seed, nodes_scale=nodes_scale)
    if name == "uniform":
        keys: object = UniformKeys()
    elif name == "zipf-pool":
        keys = QueryPoolKeys(pool_fraction=1.0 / 64.0, alpha=1.1, pool_seed=seed + 11)
    elif name == "hot-set-pool":
        keys = QueryPoolKeys(pool_fraction=1.0 / 256.0, alpha=0.0, pool_seed=seed + 12)
    else:
        raise ValueError(f"unknown grid scenario {name!r}")
    nodes = max(64, int(32_768 * nodes_scale))
    return Scenario(
        name=name,
        description=f"single {name} repeated-query source",
        sources=(TrafficSource(name, nodes=nodes, keys=keys, tree_seed=seed),),
        phases=(
            Phase("steady", PoissonArrivals(150_000.0), max(0.02, 0.25 * scale)),
        ),
        seed=seed,
        mix_stride=16384,
    )


def run_cell(
    scenario: Scenario,
    *,
    cache_bytes,
    base_config,
    window_s: float,
    repeats: int,
    warm_replays: int,
    check: bool,
) -> dict:
    """Cold + warmup + timed steady replays of one (scenario, cache) cell.

    Two steady-state regimes are measured, median-of-``repeats`` each:

    * **fresh** — every replay runs a fresh realization of the workload (a
      new trace seed: new arrival times, new draws from the same query
      pools), so the number measures the workload's *statistical*
      repetition, never memorization of one literal trace;
    * **replayed** — the scenario's own trace replayed verbatim, the
      perfectly-repeating-traffic regime (mirror/shadow/replay serving,
      periodic batch re-queries) where an answer cache is at its best.

    ``warm_replays`` untimed fresh realizations converge the answer cache
    first (a server at these rates converges within seconds of traffic);
    medians are robust against scheduler noise and favor neither arm.
    """
    kwargs = {} if cache_bytes is None else {"answer_cache_bytes": cache_bytes}
    # Pre-size the ticket tables for every replay of the cell, so the
    # amortized doubling copies never land inside a timed window (both arms
    # get the same treatment).
    expected = int(
        scenario.expected_queries() * (warm_replays + 2 * repeats + 1)
    )
    service = LCAQueryService(config=base_config.derive(
        ticket_capacity=expected + expected // 4, **kwargs
    ))
    cold = replay(service, scenario, admission_window_s=window_s)
    fresh_rounds = []
    replayed_rounds = []
    # Collector pauses are measurement noise, not serving cost: take the
    # steady-state walls with the GC off (cycles are collected in between).
    gc.collect()
    gc.disable()
    try:
        for index in range(warm_replays + repeats):
            timed = index >= warm_replays
            verify = check and index == warm_replays + repeats - 1
            report = replay(
                service,
                scenario,
                admission_window_s=window_s,
                check_answers=verify,
                seed=scenario.seed + 1000 * (index + 1),
            )
            if timed:
                fresh_rounds.append(report)
        for index in range(repeats):
            verify = check and index == repeats - 1
            report = replay(
                service, scenario, admission_window_s=window_s, check_answers=verify
            )
            replayed_rounds.append(report)
    finally:
        gc.enable()
    fresh_rounds.sort(key=lambda r: r.serve_wall_s)
    replayed_rounds.sort(key=lambda r: r.serve_wall_s)
    fresh = fresh_rounds[len(fresh_rounds) // 2]
    replayed = replayed_rounds[len(replayed_rounds) // 2]
    return {
        "cache": cache_bytes is not None,
        "queries": replayed.queries_admitted,
        "cold_wall_s": cold.serve_wall_s,
        "cold_qps": cold.queries_admitted / cold.serve_wall_s,
        "fresh_wall_s": fresh.serve_wall_s,
        "fresh_qps": fresh.queries_admitted / fresh.serve_wall_s,
        "replayed_wall_s": replayed.serve_wall_s,
        "replayed_qps": replayed.queries_admitted / replayed.serve_wall_s,
        "answer_cache_hit_rate": replayed.answer_cache_hit_rate,
        "fresh_hit_rate": fresh.answer_cache_hit_rate,
        # Dedup over the whole cell (cold + all replays on one service):
        # per-replay steady dedup is infinite once every answer is cached.
        "dedup_factor": float(getattr(replayed.stats, "dedup_factor", 1.0)),
        "modeled_qps": float(f"{replayed.throughput_qps:.4g}"),
    }


def render_table(config, rows) -> str:
    lines = [
        "Skew-aware serving speedup: answer cache + intra-batch dedup "
        "(host wall-clock, steady state)",
        f"catalog scale      : nodes x{config['nodes_scale']:g}, "
        f"replay scale {config['scale']:g}",
        f"policy             : batch<={config['max_batch_size']}, "
        f"wait<={config['max_wait_s'] * 1e3:.0f}ms, "
        f"{config['admission_window_ms']:.0f}ms admission windows",
        f"answer cache       : {config['cache_bytes']:,} bytes, "
        f"{config['warm_replays']} warmup + median of "
        f"{config['repeats']} steady replays",
        "",
        f"{'scenario':<16} {'queries':>8} {'off q/s':>12} {'on q/s':>12} "
        f"{'replay x':>9} {'fresh x':>8} {'cold x':>7} {'hit %':>7} {'dedup':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:<16} {row['queries']:>8} "
            f"{row['off_replayed_qps']:>12,.0f} "
            f"{row['on_replayed_qps']:>12,.0f} "
            f"{row['replayed_speedup']:>8.2f}x {row['fresh_speedup']:>7.2f}x "
            f"{row['cold_speedup']:>6.2f}x "
            f"{row['hit_rate']:>6.1%} {row['dedup_factor']:>6.1f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=8.0 * BENCH_SCALE,
        help="replay duration scale (default: 8 * REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--nodes-scale",
        type=float,
        default=64.0,
        help="catalog (tree-size) scale for every source",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=1 << 22,
        help="answer-cache budget for the cache-on arms",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timed steady-state replays per cell (median reported)",
    )
    parser.add_argument(
        "--warm-replays",
        type=int,
        default=2,
        help="untimed fresh-trace replays that converge the answer cache "
        "before timing starts",
    )
    parser.add_argument("--max-batch", type=int, default=32_768)
    parser.add_argument("--max-wait-ms", type=float, default=200.0)
    parser.add_argument("--admission-window-ms", type=float, default=400.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="exit non-zero when the skewed-hotspot steady speedup falls "
        "below this ratio",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify replayed answers against the binary-lifting oracle in "
        "every cell",
    )
    args = parser.parse_args(argv)

    policy = ServiceConfig(
        max_batch_size=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
    )
    window_s = args.admission_window_ms * 1e-3
    config = {
        "scale": args.scale,
        "nodes_scale": args.nodes_scale,
        "cache_bytes": args.cache_bytes,
        "repeats": args.repeats,
        "warm_replays": args.warm_replays,
        "max_batch_size": args.max_batch,
        "max_wait_s": args.max_wait_ms * 1e-3,
        "admission_window_ms": args.admission_window_ms,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
    }

    rows = []
    start = time.perf_counter()
    for name in ("uniform", "zipf-pool", "hot-set-pool", "skewed-hotspot"):
        scenario = grid_scenario(
            name, scale=args.scale, nodes_scale=args.nodes_scale, seed=args.seed
        )
        off = run_cell(
            scenario,
            cache_bytes=None,
            base_config=policy,
            window_s=window_s,
            repeats=args.repeats,
            warm_replays=args.warm_replays,
            check=args.check,
        )
        on = run_cell(
            scenario,
            cache_bytes=args.cache_bytes,
            base_config=policy,
            window_s=window_s,
            repeats=args.repeats,
            warm_replays=args.warm_replays,
            check=args.check,
        )
        rows.append(
            {
                "scenario": name,
                "queries": on["queries"],
                "off_cold_qps": off["cold_qps"],
                "off_fresh_qps": off["fresh_qps"],
                "off_replayed_qps": off["replayed_qps"],
                "on_cold_qps": on["cold_qps"],
                "on_fresh_qps": on["fresh_qps"],
                "on_replayed_qps": on["replayed_qps"],
                "cold_speedup": on["cold_qps"] / off["cold_qps"],
                "fresh_speedup": on["fresh_qps"] / off["fresh_qps"],
                "replayed_speedup": on["replayed_qps"] / off["replayed_qps"],
                "hit_rate": on["answer_cache_hit_rate"],
                "fresh_hit_rate": on["fresh_hit_rate"],
                "dedup_factor": on["dedup_factor"],
                "off_modeled_qps": off["modeled_qps"],
                "on_modeled_qps": on["modeled_qps"],
            }
        )
        print(
            f"{name}: replayed {rows[-1]['replayed_speedup']:.2f}x, "
            f"fresh {rows[-1]['fresh_speedup']:.2f}x "
            f"(hit {rows[-1]['hit_rate']:.1%})",
            flush=True,
        )
    wall_s = time.perf_counter() - start

    table = render_table(config, rows)
    print()
    print(table)

    def cell(name):
        return next(r for r in rows if r["scenario"] == name)

    headline = {
        "uniform_speedup": cell("uniform")["replayed_speedup"],
        "zipf_speedup": cell("zipf-pool")["replayed_speedup"],
        "hotspot_speedup": cell("hot-set-pool")["replayed_speedup"],
        "skewed_hotspot_speedup": cell("skewed-hotspot")["replayed_speedup"],
        "skewed_hotspot_fresh_speedup": cell("skewed-hotspot")["fresh_speedup"],
        "skewed_hotspot_cold_speedup": cell("skewed-hotspot")["cold_speedup"],
        "skewed_hotspot_hit_rate": cell("skewed-hotspot")["hit_rate"],
        "skewed_hotspot_dedup_factor": cell("skewed-hotspot")["dedup_factor"],
        "answers_verified": bool(args.check),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "skew_speedup.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "skew_speedup",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'skew_speedup.txt'}")

    if headline["skewed_hotspot_speedup"] < args.min_speedup:
        print(
            f"FAIL: skewed-hotspot replayed-traffic speedup "
            f"{headline['skewed_hotspot_speedup']:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
