"""Figure 3: general LCA comparison on shallow and deep trees.

Regenerates the four panels of the paper's Figure 3: preprocessing throughput
(nodes/s) and query throughput (queries/s) of the four algorithms, on shallow
(γ = ∞) and deep (γ ≈ n/32 average depth) random trees, with one query per
node.
"""

from repro.experiments import format_series
from repro.experiments.lca_experiments import general_comparison

from bench_util import LCA_SIZES, publish, run_once


def test_fig3a_preprocessing_shallow(benchmark):
    rows = run_once(benchmark, general_comparison, sizes=LCA_SIZES, tree_kind="shallow")
    publish(benchmark, "fig3a_preprocessing_shallow",
            format_series(rows, x="n", y="nodes_per_s", series="algorithm",
                          title="Figure 3a: nodes preprocessed per second (shallow trees)"))


def test_fig3b_preprocessing_deep(benchmark):
    rows = run_once(benchmark, general_comparison, sizes=LCA_SIZES, tree_kind="deep")
    publish(benchmark, "fig3b_preprocessing_deep",
            format_series(rows, x="n", y="nodes_per_s", series="algorithm",
                          title="Figure 3b: nodes preprocessed per second (deep trees)"))


def test_fig3c_queries_shallow(benchmark):
    rows = run_once(benchmark, general_comparison, sizes=LCA_SIZES, tree_kind="shallow")
    publish(benchmark, "fig3c_queries_shallow",
            format_series(rows, x="n", y="queries_per_s", series="algorithm",
                          title="Figure 3c: queries answered per second (shallow trees)"))


def test_fig3d_queries_deep(benchmark):
    rows = run_once(benchmark, general_comparison, sizes=LCA_SIZES, tree_kind="deep")
    publish(benchmark, "fig3d_queries_deep",
            format_series(rows, x="n", y="queries_per_s", series="algorithm",
                          title="Figure 3d: queries answered per second (deep trees)"))
