"""Figure 4: combined preprocessing + query time vs queries-to-nodes ratio.

The paper fixes an 8M-node shallow tree and sweeps the ratio from 0.125 to 16,
showing the naïve GPU algorithm winning at low ratios and the GPU Inlabel
algorithm overtaking it at around 4 queries per node.
"""

from repro.experiments import format_series
from repro.experiments.lca_experiments import queries_to_nodes_ratio

from bench_util import BENCH_SCALE, publish, run_once


def test_fig4_queries_to_nodes_ratio(benchmark):
    n = int(131_072 * BENCH_SCALE)
    rows = run_once(benchmark, queries_to_nodes_ratio, n=n)
    publish(benchmark, "fig4_queries_to_nodes_ratio",
            format_series(rows, x="ratio", y="total_ms", series="algorithm",
                          title=f"Figure 4: total time [ms] vs queries-to-nodes ratio "
                                f"({n} nodes, shallow tree)"))
