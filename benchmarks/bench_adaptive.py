#!/usr/bin/env python
"""Adaptive SLO control vs the best static config, across every scenario.

For each named scenario (steady, diurnal, flash-crowd, skewed-hotspot,
multi-tenant) this bench replays the same trace on a bounded replica
cluster configured four ways: three *static* batching configs spanning the
latency/cost trade-off (small batches flush fast but waste backend time,
big batches are cheap per query but queue-heavy), and one *adaptive* run
where a :class:`repro.control.Controller` retunes batch size, wait
deadline and admission limit online against the scenario's declared
:class:`repro.control.SLO` — including priority lanes on the multi-tenant
mix.  Every admitted answer is verified against the binary-lifting oracle,
retuning included.

Each run is scored on **cost x SLO**:

    cost    = modeled backend-busy seconds per answered query
    penalty = product over declared bounds of max(1, actual / bound)
    score   = cost * penalty            (lower is better)

The headline ``adaptive_vs_best_static`` is the worst-case ratio of the
*best* static score to the adaptive score over the time-varying scenarios
(flash-crowd, diurnal, multi-tenant) — above 1.0 means no single static
config matches the controller there.  All numbers are modeled times on the
simulated clock driven by seeded generators, so rows are bit-deterministic
and make a tight CI regression baseline.

Outputs:

* ``BENCH_adaptive.json`` (repo root) — machine-readable result, compared
  against the committed baseline by CI's bench-regression gate;
* ``results/adaptive.txt`` — the rendered comparison table.

Run with:  python benchmarks/bench_adaptive.py
Options:   --replicas N  --max-pending N  --scale F  --check
Scale:     REPRO_BENCH_SCALE scales scenario durations (not rates).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.control import SLO, Controller
from repro.service import ClusterConfig, ClusterService
from repro.workloads import SCENARIOS, make_scenario, replay

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_adaptive.json"

#: One front-door admission tick (matches bench_scenarios.py).
ADMISSION_WINDOW_S = 5e-3

#: The static sweep: small flushes fast, large is cheap per query.
STATIC_CONFIGS = (
    ("static-small", 64, 1e-4),
    ("static-medium", 256, 2e-4),
    ("static-large", 1024, 1e-3),
)

#: The adaptive run starts from the middle of the static sweep; the
#: controller owns the knobs from the first observation on.
ADAPTIVE_START = ("adaptive", 256, 2e-4)

#: Declared objectives per scenario.  Tail bounds are on the modeled
#: end-to-end p99; shed bounds on the fraction of offered queries
#: rejected by admission control.  The multi-tenant weights give the
#: small premium tenant the shortest wait lane.
SCENARIO_SLOS = {
    "steady": SLO(p99_latency_s=3e-4, max_shed_rate=1e-3),
    "diurnal": SLO(p99_latency_s=3e-4, max_shed_rate=0.01),
    # The flash phase offers ~50x sustainable load for a whole phase, so
    # heavy shedding is physics, not a tuning failure; the bound caps how
    # much of the *whole trace* may be lost while the controller absorbs
    # what capacity allows.
    "flash-crowd": SLO(p99_latency_s=5e-4, max_shed_rate=0.70),
    "skewed-hotspot": SLO(p99_latency_s=3e-4, max_shed_rate=0.01),
    "multi-tenant": SLO(
        p99_latency_s=3e-4,
        max_shed_rate=0.02,
        tenant_weights=(
            ("tenant-small", 4.0),
            ("tenant-medium", 2.0),
            ("tenant-large", 1.0),
        ),
    ),
}

#: Per-tenant tail bounds, declared alongside the scenario SLO: the small
#: premium tenant buys a tight deadline only priority lanes can deliver
#: without shortening every tenant's wait (and paying everyone's cost).
TENANT_P99_BOUNDS = {
    "multi-tenant": {"tenant-small": 8e-5},
}

#: The headline ratio is the worst case over the scenarios where load
#: varies in time — the ones a static config cannot straddle.
HEADLINE_SCENARIOS = ("flash-crowd", "diurnal", "multi-tenant")


def score_run(report, slo: SLO, tenant_bounds) -> dict:
    """Cost x SLO-penalty scoring of one replayed run."""
    stats = report.stats
    answered = int(stats.queries_answered)
    cost_us = stats.busy_time_s / answered * 1e6 if answered else float("inf")
    penalty = 1.0
    violations = []
    tenant_p99 = dict(report.dataset_latency_p99_s)
    for tenant, bound in sorted(tenant_bounds.items()):
        ratio = tenant_p99.get(tenant, 0.0) / bound
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append(f"{tenant}-p99")
    if slo.p99_latency_s is not None:
        ratio = report.latency_p99_s / slo.p99_latency_s
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append("p99")
    if slo.max_shed_rate is not None:
        ratio = report.shed_rate / slo.max_shed_rate
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append("shed")
    if slo.min_throughput_qps is not None and report.throughput_qps > 0:
        ratio = slo.min_throughput_qps / report.throughput_qps
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append("throughput")
    return {
        "cost_us_per_query": cost_us,
        "penalty": penalty,
        "score": cost_us * penalty,
        "slo_violations": violations,
        "slo_met": not violations,
    }


def run_one(scenario_name, label, batch, wait, args, adaptive):
    scenario = make_scenario(scenario_name, scale=args.scale, seed=args.seed)
    cluster = ClusterService(
        config=ClusterConfig(
            n_replicas=args.replicas,
            max_batch_size=batch,
            max_wait_s=wait,
            max_pending=args.max_pending,
        )
    )
    slo = SCENARIO_SLOS[scenario_name]
    controller = (
        Controller(slo, interval_s=args.interval_s) if adaptive else None
    )
    report = replay(
        cluster,
        scenario,
        admission_window_s=ADMISSION_WINDOW_S,
        check_answers=True,
        controller=controller,
    )
    row = {
        "scenario": scenario_name,
        "config": label,
        "max_batch_size": batch,
        "max_wait_us": wait * 1e6,
        "offered": report.queries_offered,
        "admitted": report.queries_admitted,
        "shed_rate": report.shed_rate,
        "throughput_qps": report.throughput_qps,
        "latency_p50_us": report.latency_p50_s * 1e6,
        "latency_p99_us": report.latency_p99_s * 1e6,
        "tenant_p99_us": {
            name: p99 * 1e6 for name, p99 in report.dataset_latency_p99_s
        },
        "decisions": len(controller.decisions) if controller else 0,
    }
    row.update(
        score_run(report, slo, TENANT_P99_BOUNDS.get(scenario_name, {}))
    )
    if controller:
        row["final_max_batch_size"] = cluster.config.max_batch_size
        row["final_max_wait_us"] = cluster.config.max_wait_s * 1e6
        row["final_max_pending"] = cluster.config.max_pending
    return row


def render_table(config, rows, ratios) -> str:
    lines = [
        "Adaptive SLO control vs static configs, full scenario library",
        f"replicas           : {config['replicas']} "
        f"(max_pending={config['max_pending']})",
        f"controller         : interval={config['interval_ms']:g}ms, "
        "AIMD on batch/wait/admission, per-tenant lanes",
        f"scenario scale     : {config['scale']:g} (durations; rates fixed)",
        "score              : busy-us/query x SLO penalty (lower is better)",
        "",
        f"{'scenario':<16} {'config':<14} {'shed':>7} {'p99 us':>8} "
        f"{'cost us':>8} {'penalty':>8} {'score':>9} {'SLO':>4} {'moves':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:<16} {row['config']:<14} "
            f"{row['shed_rate']:>6.1%} {row['latency_p99_us']:>8.1f} "
            f"{row['cost_us_per_query']:>8.3f} {row['penalty']:>8.2f} "
            f"{row['score']:>9.3f} {'ok' if row['slo_met'] else 'VIOL':>4} "
            f"{row['decisions'] or '-':>6}"
        )
    lines.append("")
    lines.append(
        f"{'scenario':<16} {'best static':>12} {'adaptive':>10} "
        f"{'ratio':>7}  (best_static_score / adaptive_score; >1 = adaptive wins)"
    )
    for name, entry in ratios.items():
        lines.append(
            f"{name:<16} {entry['best_static_score']:>12.3f} "
            f"{entry['adaptive_score']:>10.3f} {entry['ratio']:>7.2f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="starting cluster admission bound (adaptive may raise it)",
    )
    parser.add_argument(
        "--interval-s",
        type=float,
        default=2e-3,
        help="controller observation interval, simulated seconds",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=BENCH_SCALE,
        help="scenario duration scale (default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless adaptive meets every declared SLO and "
        "beats the best static config on the headline scenarios",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    rows = []
    for scenario_name in sorted(SCENARIOS):
        for label, batch, wait in STATIC_CONFIGS:
            rows.append(
                run_one(scenario_name, label, batch, wait, args, adaptive=False)
            )
        label, batch, wait = ADAPTIVE_START
        rows.append(
            run_one(scenario_name, label, batch, wait, args, adaptive=True)
        )
    wall_s = time.perf_counter() - start

    ratios = {}
    for scenario_name in sorted(SCENARIOS):
        scenario_rows = [r for r in rows if r["scenario"] == scenario_name]
        statics = [r for r in scenario_rows if r["config"] != "adaptive"]
        adaptive_row = next(
            r for r in scenario_rows if r["config"] == "adaptive"
        )
        best_static = min(statics, key=lambda r: r["score"])
        ratios[scenario_name] = {
            "best_static_config": best_static["config"],
            "best_static_score": best_static["score"],
            "adaptive_score": adaptive_row["score"],
            "ratio": best_static["score"] / adaptive_row["score"],
        }

    adaptive_rows = [r for r in rows if r["config"] == "adaptive"]
    steady_adaptive = next(r for r in adaptive_rows if r["scenario"] == "steady")
    headline = {
        "adaptive_vs_best_static": min(
            ratios[name]["ratio"] for name in HEADLINE_SCENARIOS
        ),
        "adaptive_slo_violations": sum(
            len(r["slo_violations"]) for r in adaptive_rows
        ),
        "steady_shed_rate": steady_adaptive["shed_rate"],
        "scenarios_run": len({r["scenario"] for r in rows}),
        "total_decisions": int(sum(r["decisions"] for r in adaptive_rows)),
    }

    config = {
        "replicas": args.replicas,
        "max_pending": args.max_pending,
        "interval_ms": args.interval_s * 1e3,
        "scale": args.scale,
        "admission_window_ms": ADMISSION_WINDOW_S * 1e3,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
        "static_configs": [list(c) for c in STATIC_CONFIGS],
        "slos": {name: slo.to_dict() for name, slo in SCENARIO_SLOS.items()},
        "tenant_p99_bounds": TENANT_P99_BOUNDS,
    }
    table = render_table(config, rows, ratios)
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "adaptive.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "adaptive",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "ratios": ratios,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'adaptive.txt'}")

    if args.check:
        failures = []
        if headline["scenarios_run"] != len(SCENARIOS):
            failures.append(
                f"expected {len(SCENARIOS)} scenarios, "
                f"ran {headline['scenarios_run']}"
            )
        for row in adaptive_rows:
            if not row["slo_met"]:
                failures.append(
                    f"adaptive violated its SLO on {row['scenario']}: "
                    f"{row['slo_violations']} "
                    f"(p99={row['latency_p99_us']:.1f}us, "
                    f"shed={row['shed_rate']:.2%})"
                )
        if steady_adaptive["shed_rate"] > 0.0:
            failures.append(
                f"adaptive shed {steady_adaptive['shed_rate']:.2%} on steady "
                "(must not shed)"
            )
        if headline["adaptive_vs_best_static"] <= 1.0:
            worst = min(
                HEADLINE_SCENARIOS, key=lambda n: ratios[n]["ratio"]
            )
            failures.append(
                "adaptive did not beat the best static config on "
                f"{worst} (ratio {ratios[worst]['ratio']:.2f})"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: adaptive met every declared SLO and beat the best "
            f"static config {headline['adaptive_vs_best_static']:.2f}x "
            "on the headline scenarios"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
