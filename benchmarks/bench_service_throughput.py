"""Service throughput: offered load × micro-batch policy (beyond the paper).

Extends the Figure 6 batch-size experiment from replayed pre-formed batches to
an online serving scenario: queries arrive one at a time at a fixed offered
rate, the micro-batch scheduler coalesces them, and the cost-model dispatcher
routes every batch to the cheaper device.  The expected shape mirrors Fig. 6:
pass-through serving (batch<=1) plateaus at the single-core CPU rate, while
the micro-batching policies track the offered load until the GPU saturates.
"""

from repro.experiments import format_series
from repro.experiments.service_experiments import offered_load_sweep

from bench_util import BENCH_SCALE, publish, run_once


def test_service_throughput_sweep(benchmark):
    n = int(65_536 * BENCH_SCALE)
    q = int(16_384 * BENCH_SCALE)
    rows = run_once(benchmark, offered_load_sweep, n=n, q=q,
                    rates_qps=(1e4, 1e5, 1e6, 1e7, 1e8))
    publish(benchmark, "service_throughput_sweep",
            format_series(rows, x="offered_qps", y="throughput_qps",
                          series="policy",
                          title=f"Service: delivered queries/s vs offered load "
                                f"({n}-node tree, {q} queries, per policy)"))
    publish(benchmark, "service_latency_p99",
            format_series(rows, x="offered_qps", y="latency_p99_us",
                          series="policy",
                          title="Service: p99 modeled latency (us) vs offered load"))
