#!/usr/bin/env python
"""Reactive autoscaling vs every static replica count on a flash crowd.

A flash crowd is the load shape a fixed fleet cannot straddle: a short
burst offers several times one replica's capacity while the calm phases
around it — most of the trace — need almost none.  A small fleet drowns
during the burst (per-replica backend lanes serialize batches, so the
backlog shows up as modeled queueing latency and a blown p99); a large
fleet keeps the tail flat but burns idle replica-seconds all trace long.

The stock device profiles are far too fast for fleet size to matter (one
simulated GPU replica absorbs a 5M qps flash without breaking stride),
so this bench serves on a deliberately modest *edge-node* profile — a
32x-derated single-core CPU, ~320k queries/s per replica — and sizes the
flash at ~4.5x one replica's capacity.  The same trace then replays on a
static cluster at every replica count in {1, 2, 4, 8} and once more
*reactively*: the cluster starts at the policy floor and a
:class:`repro.control.Controller` carrying an
:class:`repro.control.AutoscalePolicy` drives ``n_replicas`` live
through the drain-before-retire ``scale_to()`` transition — scale-out
when the windowed p99 breaches, scale-in with hysteresis and cooldowns
once the tail goes calm.  Every run (static and reactive) shares the
same knob-tuning controller against the same SLO, so membership is the
only thing that differs; every admitted answer is verified against the
binary-lifting oracle, scaling included.

Each run is scored on **cost x SLO**, with cost charged per
replica-second *alive* — provisioned capacity, not work done:

    cost    = replica-seconds alive per answered query (us)
    penalty = product over declared bounds of max(1, actual / bound)
    score   = cost * penalty            (lower is better)

The headline ``reactive_vs_best_static`` is ``best static score /
reactive score`` — above 1.0 means no fixed fleet size matches reacting.
``--check`` additionally requires the scaling story itself: a scale-out
decision during the flash phase, a scale-in after it, and a final
replica count back at the policy floor.  All numbers are modeled times
on the simulated clock driven by seeded generators, so rows are
bit-deterministic and make a tight CI regression baseline.

Outputs:

* ``BENCH_autoscale.json`` (repo root) — machine-readable result,
  compared against the committed baseline by CI's bench-regression gate;
* ``results/autoscale.txt`` — the rendered comparison table.

Run with:  python benchmarks/bench_autoscale.py
Options:   --max-pending N  --scale F  --check
Scale:     REPRO_BENCH_SCALE scales scenario durations (not rates).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.control import SLO, AutoscalePolicy, Controller
from repro.device import XEON_X5650_SINGLE
from repro.service import ClusterConfig, ClusterService
from repro.service.dispatch import Backend, CostModelDispatcher
from repro.workloads import Phase, PoissonArrivals, Scenario, TrafficSource, replay

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_autoscale.json"

#: One front-door admission tick = one controller observation: fine
#: enough to catch the flash within half a millisecond of onset.
ADMISSION_WINDOW_S = 5e-4

#: The serving device: a single-core CPU derated 32x — an edge node, not
#: a datacenter accelerator.  ~3.1 us modeled per query, so one replica
#: sustains ~320k queries/s and fleet size is a real capacity decision.
EDGE_SPEC = replace(
    XEON_X5650_SINGLE,
    name="Edge node (derated Xeon core, simulated)",
    clock_hz=XEON_X5650_SINGLE.clock_hz / 32,
    mem_bandwidth_bytes=XEON_X5650_SINGLE.mem_bandwidth_bytes / 32,
    dependent_latency_s=XEON_X5650_SINGLE.dependent_latency_s * 32,
)
EDGE_BACKEND = Backend(
    key="edge", label="Edge-node Inlabel", spec=EDGE_SPEC, sequential=True
)

#: Arrival rates, in fractions of one replica's ~320k q/s capacity:
#: calm runs at a quarter replica, the flash at ~4.5 replicas.
CALM_QPS = 80_000.0
FLASH_QPS = 1_440_000.0

#: The static sweep: every fixed fleet size the reactive run must beat.
STATIC_REPLICAS = (1, 2, 4, 8)

#: Shared objective.  Nothing sheds (admission is generous); the fight
#: is entirely over the tail under the flash.
BENCH_SLO = SLO(p99_latency_s=2e-3, max_shed_rate=0.05)

#: The reactive membership policy: latency-driven.  Scale out three
#: replicas at a time the millisecond the windowed p99 blows past 1 ms,
#: shrink two at a time only after 15 ms of calm tail (hysteresis:
#: 0.6 ms << 1 ms, so recovery-phase jitter cannot flap the fleet).
POLICY = AutoscalePolicy(
    min_replicas=2,
    max_replicas=8,
    signals=("p99",),
    p99_out_s=1e-3,
    p99_in_s=6e-4,
    cooldown_out_s=1e-3,
    cooldown_in_s=15e-3,
    step_out=3,
    step_in=2,
)


def build_scenario(scale: float, seed: int) -> Scenario:
    """Calm / flash / recovery on one 4096-node tree."""
    calm = PoissonArrivals(CALM_QPS)
    return Scenario(
        name="edge-flash",
        description="flash at ~4.5x one edge replica's capacity",
        sources=(TrafficSource("edge", nodes=4096, tree_seed=seed),),
        phases=(
            Phase("calm", calm, 0.08 * scale),
            Phase("flash", PoissonArrivals(FLASH_QPS), 0.02 * scale),
            Phase("recovery", calm, 0.08 * scale),
        ),
        seed=seed,
    )


def score_run(report) -> dict:
    """Cost x SLO-penalty scoring of one replayed run.

    Unlike ``bench_adaptive`` (which charges backend-busy seconds), the
    cost here is **replica-seconds alive** per answered query: the bill
    for capacity kept provisioned, which is exactly the quantity
    autoscaling exists to shrink.
    """
    stats = report.stats
    answered = int(stats.queries_answered)
    cost_us = (
        stats.replica_seconds / answered * 1e6 if answered else float("inf")
    )
    penalty = 1.0
    violations = []
    if BENCH_SLO.p99_latency_s is not None:
        ratio = report.latency_p99_s / BENCH_SLO.p99_latency_s
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append("p99")
    if BENCH_SLO.max_shed_rate is not None:
        ratio = report.shed_rate / BENCH_SLO.max_shed_rate
        penalty *= max(1.0, ratio)
        if ratio > 1.0:
            violations.append("shed")
    return {
        "cost_us_per_query": cost_us,
        "penalty": penalty,
        "score": cost_us * penalty,
        "slo_violations": violations,
        "slo_met": not violations,
    }


def run_one(label, n_replicas, args, reactive):
    scenario = build_scenario(args.scale, args.seed)
    cluster = ClusterService(
        config=ClusterConfig(
            n_replicas=n_replicas,
            max_batch_size=256,
            max_wait_s=2e-4,
            max_pending=args.max_pending,
        ),
        dispatcher_factory=lambda: CostModelDispatcher(
            backends=(EDGE_BACKEND,)
        ),
    )
    controller = Controller(
        BENCH_SLO,
        interval_s=args.interval_s,
        wait_fraction=0.1,
        autoscale=POLICY if reactive else None,
    )
    report = replay(
        cluster,
        scenario,
        admission_window_s=ADMISSION_WINDOW_S,
        check_answers=True,
        controller=controller,
    )
    membership = [d for d in controller.decisions if d.kind == "membership"]
    row = {
        "config": label,
        "start_replicas": n_replicas,
        "final_replicas": cluster.n_active,
        "replicas_by_phase": {
            phase.name: phase.n_replicas_end for phase in report.phases
        },
        "replica_seconds": report.stats.replica_seconds,
        "offered": report.queries_offered,
        "admitted": report.queries_admitted,
        "answered": int(report.stats.queries_answered),
        "shed_rate": report.shed_rate,
        "throughput_qps": report.throughput_qps,
        "latency_p50_us": report.latency_p50_s * 1e6,
        "latency_p99_us": report.latency_p99_s * 1e6,
        "decisions": len(controller.decisions),
        "membership_decisions": len(membership),
        "scale_events": [
            {"at_s": d.at_s, "reason": d.reason, "n_replicas": d.n_replicas}
            for d in membership
        ],
    }
    row.update(score_run(report))
    return row


def render_table(config, rows, headline) -> str:
    lines = [
        "Reactive autoscaling vs static replica counts, edge-flash",
        f"device             : {EDGE_SPEC.name} (~3.1us/query modeled)",
        f"load               : calm {CALM_QPS:g} q/s, flash {FLASH_QPS:g} "
        "q/s (~4.5 replicas' worth)",
        f"controller         : interval={config['interval_ms']:g}ms, shared "
        "knob tuning; reactive run adds the membership policy",
        f"policy             : replicas {config['policy']['min_replicas']}.."
        f"{config['policy']['max_replicas']}, out on window p99 > "
        f"{config['policy']['p99_out_s'] * 1e3:g}ms, in below "
        f"{config['policy']['p99_in_s'] * 1e3:g}ms, cooldowns "
        f"{config['policy']['cooldown_out_s'] * 1e3:g}/"
        f"{config['policy']['cooldown_in_s'] * 1e3:g}ms",
        f"scenario scale     : {config['scale']:g} (durations; rates fixed)",
        "score              : replica-us/query x SLO penalty (lower is "
        "better)",
        "",
        f"{'config':<12} {'repl':>9} {'shed':>7} {'p99 us':>8} "
        f"{'cost us':>8} {'penalty':>8} {'score':>9} {'SLO':>4} {'moves':>6}",
    ]
    for row in rows:
        phases = row["replicas_by_phase"]
        repl = "/".join(str(phases[p]) for p in ("calm", "flash", "recovery"))
        lines.append(
            f"{row['config']:<12} {repl:>9} "
            f"{row['shed_rate']:>6.1%} {row['latency_p99_us']:>8.1f} "
            f"{row['cost_us_per_query']:>8.2f} {row['penalty']:>8.2f} "
            f"{row['score']:>9.2f} {'ok' if row['slo_met'] else 'VIOL':>4} "
            f"{row['membership_decisions'] or '-':>6}"
        )
    lines.append("")
    lines.append(
        f"best static {headline['best_static_config']} scores "
        f"{headline['best_static_score']:.2f}, reactive "
        f"{headline['reactive_score']:.2f} -> ratio "
        f"{headline['reactive_vs_best_static']:.2f} "
        "(>1 = reacting beats every fixed fleet)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-pending",
        type=int,
        default=32768,
        help="cluster admission bound (generous: the bench is about the "
        "tail, not shedding)",
    )
    parser.add_argument(
        "--interval-s",
        type=float,
        default=5e-4,
        help="controller observation interval, simulated seconds",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=BENCH_SCALE,
        help="scenario duration scale (default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the reactive run meets the SLO, beats "
        "every static replica count, scales out during the flash and back "
        "in after it",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    rows = [
        run_one(f"static-{n}", n, args, reactive=False)
        for n in STATIC_REPLICAS
    ]
    reactive_row = run_one("reactive", POLICY.min_replicas, args, reactive=True)
    rows.append(reactive_row)
    wall_s = time.perf_counter() - start

    statics = [r for r in rows if r["config"] != "reactive"]
    best_static = min(statics, key=lambda r: r["score"])
    # The flash phase spans [calm, calm + flash) on the scenario clock.
    scenario = build_scenario(args.scale, args.seed)
    flash_start = scenario.phases[0].duration_s
    flash_end = flash_start + scenario.phases[1].duration_s
    scale_outs = [
        e
        for e in reactive_row["scale_events"]
        if e["reason"].startswith("scale-out")
    ]
    scale_ins = [
        e for e in reactive_row["scale_events"] if e["reason"] == "scale-in"
    ]
    headline = {
        "reactive_vs_best_static": best_static["score"]
        / reactive_row["score"],
        "best_static_config": best_static["config"],
        "best_static_score": best_static["score"],
        "reactive_score": reactive_row["score"],
        "slo_violations": len(reactive_row["slo_violations"]),
        "reactive_peak_replicas": max(
            e["n_replicas"] for e in reactive_row["scale_events"]
        )
        if reactive_row["scale_events"]
        else reactive_row["final_replicas"],
        "reactive_final_replicas": reactive_row["final_replicas"],
        "scale_out_decisions": len(scale_outs),
        "scale_in_decisions": len(scale_ins),
    }

    config = {
        "max_pending": args.max_pending,
        "interval_ms": args.interval_s * 1e3,
        "scale": args.scale,
        "admission_window_ms": ADMISSION_WINDOW_S * 1e3,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
        "calm_qps": CALM_QPS,
        "flash_qps": FLASH_QPS,
        "device": EDGE_SPEC.name,
        "static_replicas": list(STATIC_REPLICAS),
        "slo": BENCH_SLO.to_dict(),
        "policy": POLICY.to_dict(),
    }
    table = render_table(config, rows, headline)
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "autoscale.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "autoscale",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'autoscale.txt'}")

    if args.check:
        failures = []
        if not reactive_row["slo_met"]:
            failures.append(
                "reactive violated the SLO: "
                f"{reactive_row['slo_violations']} "
                f"(p99={reactive_row['latency_p99_us']:.1f}us, "
                f"shed={reactive_row['shed_rate']:.2%})"
            )
        if headline["reactive_vs_best_static"] <= 1.0:
            failures.append(
                "reactive did not beat the best static fleet "
                f"({best_static['config']}, ratio "
                f"{headline['reactive_vs_best_static']:.2f})"
            )
        if not any(
            flash_start <= e["at_s"] <= flash_end + ADMISSION_WINDOW_S
            for e in scale_outs
        ):
            failures.append(
                "no scale-out decision landed during the flash phase "
                f"[{flash_start:g}, {flash_end:g}]s"
            )
        if not any(e["at_s"] > flash_end for e in scale_ins):
            failures.append("no scale-in decision after the flash phase")
        if headline["reactive_final_replicas"] != POLICY.min_replicas:
            failures.append(
                "reactive did not return to the policy floor: ended at "
                f"{headline['reactive_final_replicas']} replicas"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: reactive met the SLO, beat every static fleet "
            f"{headline['reactive_vs_best_static']:.2f}x, scaled out on the "
            "ramp and back in after"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
