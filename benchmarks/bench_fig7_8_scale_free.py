"""Figures 7–8: the general LCA comparison on scale-free (Barabási–Albert) trees.

The paper's point: the results are essentially identical to the shallow-tree
panels of Figure 3 — performance depends on the tree size, not its shape —
except that the naïve algorithm answers queries slightly faster because BA
trees are even shallower.
"""

from repro.experiments import format_series
from repro.experiments.lca_experiments import scale_free_comparison

from bench_util import LCA_SIZES, publish, run_once


def test_fig7_preprocessing_scale_free(benchmark):
    rows = run_once(benchmark, scale_free_comparison, sizes=LCA_SIZES)
    publish(benchmark, "fig7_preprocessing_scale_free",
            format_series(rows, x="n", y="nodes_per_s", series="algorithm",
                          title="Figure 7: nodes preprocessed per second (scale-free trees)"))


def test_fig8_queries_scale_free(benchmark):
    rows = run_once(benchmark, scale_free_comparison, sizes=LCA_SIZES)
    publish(benchmark, "fig8_queries_scale_free",
            format_series(rows, x="n", y="queries_per_s", series="algorithm",
                          title="Figure 8: queries answered per second (scale-free trees)"))
