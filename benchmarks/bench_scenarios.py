#!/usr/bin/env python
"""Scenario matrix: every named workload on one bounded replica cluster.

Drives :func:`repro.experiments.service_experiments.scenario_suite`: each
named scenario (steady, diurnal, flash-crowd, skewed-hotspot, multi-tenant)
replayed on a fresh 4-replica cluster with a bounded admission queue, under
the default (least-outstanding) router — plus a router-policy sweep on the
scenarios where policy choice matters.  All numbers are modeled times on the
simulated clock driven by seeded generators, so rows are bit-deterministic
and make a tight CI regression baseline.

Three properties are verified (and fail the run when ``--check`` is set):

* every named scenario runs end-to-end and answers queries (no silent
  empty replays);
* the **flash-crowd** scenario provably trips admission control — its flash
  phase sheds with the typed ``Overloaded`` path — while **steady** sheds
  nothing;
* every admitted answer matches the binary-lifting oracle.

Outputs:

* ``BENCH_scenarios.json`` (repo root) — machine-readable result, compared
  against the committed baseline by CI's bench-regression gate;
* ``results/scenarios.txt`` — the rendered scenario table.

Run with:  python benchmarks/bench_scenarios.py
Options:   --replicas N  --max-pending N  --policies a,b  --check
Scale:     REPRO_BENCH_SCALE scales scenario durations (not rates).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.experiments.service_experiments import scenario_suite
from repro.workloads import SCENARIOS

from bench_util import BENCH_SCALE, RESULTS_DIR

JSON_PATH = REPO_ROOT / "BENCH_scenarios.json"

#: The router sweep runs on the scenarios whose shape depends on routing.
POLICY_SWEEP_SCENARIOS = ("skewed-hotspot", "multi-tenant")

#: One front-door admission tick; passed to every scenario_suite call and
#: recorded in the benchmark config, so the two can never drift apart.
ADMISSION_WINDOW_S = 5e-3


def render_table(config, rows) -> str:
    lines = [
        "Scenario matrix: named workloads on one bounded replica cluster",
        f"replicas           : {config['replicas']} "
        f"(max_pending={config['max_pending']})",
        "policy             : batch<=256, wait<=200us, warmed index caches, "
        f"{config['admission_window_ms']:.0f}ms admission windows",
        f"scenario scale     : {config['scale']:g} (durations; rates fixed)",
        "",
        f"{'scenario':<16} {'router':<19} {'offered':>8} {'shed':>7} "
        f"{'modeled q/s':>12} {'p50 us':>8} {'p99 us':>8} {'imbal':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:<16} {row['policy']:<19} {row['offered']:>8} "
            f"{row['shed_rate']:>6.1%} {row['throughput_qps']:>12,.0f} "
            f"{row['latency_p50_us']:>8.1f} {row['latency_p99_us']:>8.1f} "
            f"{row['load_imbalance']:>6.2f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument(
        "--max-pending",
        type=int,
        default=8192,
        help="cluster admission bound (queries)",
    )
    parser.add_argument(
        "--policies",
        type=str,
        default="least-outstanding",
        help="comma-separated router policies for the all-scenarios pass",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=BENCH_SCALE,
        help="scenario duration scale (default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-policy-sweep",
        action="store_true",
        help="skip the extra router-policy sweep rows",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every scenario runs, answers verify, "
        "flash-crowd sheds and steady does not",
    )
    args = parser.parse_args(argv)
    policies = tuple(p for p in args.policies.split(",") if p)

    start = time.perf_counter()
    rows = scenario_suite(
        sorted(SCENARIOS),
        policies=policies,
        n_replicas=args.replicas,
        max_pending=args.max_pending,
        admission_window_s=ADMISSION_WINDOW_S,
        scale=args.scale,
        seed=args.seed,
        check_answers=True,
    )
    if not args.skip_policy_sweep:
        sweep_policies = tuple(
            p
            for p in ("round-robin", "consistent-hash")
            if p not in policies
        )
        rows += scenario_suite(
            POLICY_SWEEP_SCENARIOS,
            policies=sweep_policies,
            n_replicas=args.replicas,
            max_pending=args.max_pending,
            admission_window_s=ADMISSION_WINDOW_S,
            scale=args.scale,
            seed=args.seed,
            check_answers=True,
        )
    wall_s = time.perf_counter() - start

    config = {
        "replicas": args.replicas,
        "max_pending": args.max_pending,
        "policies": list(policies),
        "scale": args.scale,
        "admission_window_ms": ADMISSION_WINDOW_S * 1e3,
        "seed": args.seed,
        "bench_scale": BENCH_SCALE,
    }
    table = render_table(config, rows)
    print(table)

    def cell(scenario: str, policy: str):
        return next(
            r for r in rows if r["scenario"] == scenario and r["policy"] == policy
        )

    headline_policy = policies[0]
    steady_row = cell("steady", headline_policy)
    flash_row = cell("flash-crowd", headline_policy)
    headline = {
        "scenarios_run": len({r["scenario"] for r in rows}),
        "steady_throughput_qps": steady_row["throughput_qps"],
        "steady_shed_rate": steady_row["shed_rate"],
        "flash_crowd_shed_rate": flash_row["shed_rate"],
        "flash_crowd_peak_phase_shed_rate": flash_row["peak_phase_shed_rate"],
        "total_admitted": int(sum(r["admitted"] for r in rows)),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scenarios.txt").write_text(table + "\n", encoding="utf-8")
    payload = {
        "benchmark": "scenarios",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": config,
        "rows": rows,
        "wall_s": wall_s,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH} and {RESULTS_DIR / 'scenarios.txt'}")

    if args.check:
        failures = []
        if headline["scenarios_run"] != len(SCENARIOS):
            failures.append(
                f"expected {len(SCENARIOS)} scenarios, "
                f"ran {headline['scenarios_run']}"
            )
        empty = [r["scenario"] for r in rows if r["admitted"] == 0]
        if empty:
            failures.append(f"scenarios admitted zero queries: {empty}")
        if steady_row["shed_rate"] != 0.0:
            failures.append(
                f"steady scenario shed {steady_row['shed_rate']:.1%} "
                "(must never shed)"
            )
        if flash_row["shed_rate"] <= 0.0:
            failures.append(
                "flash-crowd scenario did not shed (admission control "
                "never engaged)"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: all scenarios ran, answers verified, flash-crowd "
            f"shed {flash_row['shed_rate']:.1%}, steady shed 0"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
