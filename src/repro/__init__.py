"""repro — a Python reproduction of "Euler Meets GPU: Practical Graph Algorithms
with Theoretical Guarantees" (Polak, Siwiec, Stobierski; IPDPS 2021).

The package implements the Euler tour technique for bulk-parallel (GPU-style)
execution together with its two applications studied in the paper — lowest
common ancestors in trees and bridge finding in undirected graphs — plus every
substrate those algorithms need (parallel primitives, connectivity, BFS,
dataset generators) and an experiment harness that regenerates every table and
figure of the paper's evaluation on a simulated device (see DESIGN.md).

Quickstart
----------
>>> import numpy as np
>>> from repro import graphs, lca, device
>>> parents = graphs.generators.random_attachment_tree(1000, seed=1)
>>> ctx = device.ExecutionContext(device.GTX980)
>>> algo = lca.InlabelLCA(parents, ctx=ctx)
>>> int(algo.query(np.array([5]), np.array([7]))[0]) < 1000
True
"""

from . import bridges, device, errors, euler, experiments, graphs, lca, primitives
from .bridges import (
    BridgeResult,
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from .device import GTX980, XEON_X5650_MULTI, XEON_X5650_SINGLE, DeviceSpec, ExecutionContext
from .errors import (
    ConfigurationError,
    DeviceError,
    InvalidGraphError,
    InvalidQueryError,
    NotATreeError,
    ReproError,
)
from .euler import EulerTour, TreeStats, build_euler_tour, compute_tree_stats
from .graphs import CSRGraph, EdgeList
from .lca import InlabelLCA, NaiveGPULCA, RMQLCA, SequentialInlabelLCA

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "device",
    "primitives",
    "graphs",
    "euler",
    "lca",
    "bridges",
    "experiments",
    "errors",
    # most-used classes and functions
    "DeviceSpec",
    "ExecutionContext",
    "GTX980",
    "XEON_X5650_SINGLE",
    "XEON_X5650_MULTI",
    "EdgeList",
    "CSRGraph",
    "EulerTour",
    "TreeStats",
    "build_euler_tour",
    "compute_tree_stats",
    "InlabelLCA",
    "SequentialInlabelLCA",
    "NaiveGPULCA",
    "RMQLCA",
    "BridgeResult",
    "find_bridges_tarjan_vishkin",
    "find_bridges_ck",
    "find_bridges_hybrid",
    "find_bridges_dfs",
    # errors
    "ReproError",
    "InvalidGraphError",
    "NotATreeError",
    "InvalidQueryError",
    "DeviceError",
    "ConfigurationError",
]
