"""repro — a Python reproduction of "Euler Meets GPU: Practical Graph Algorithms
with Theoretical Guarantees" (Polak, Siwiec, Stobierski; IPDPS 2021).

The package implements the Euler tour technique for bulk-parallel (GPU-style)
execution together with its two applications studied in the paper — lowest
common ancestors in trees and bridge finding in undirected graphs — plus every
substrate those algorithms need (parallel primitives, connectivity, BFS,
dataset generators) and an experiment harness that regenerates every table and
figure of the paper's evaluation on a simulated device (see DESIGN.md).

Quickstart
----------
>>> import numpy as np
>>> from repro import graphs, lca, device
>>> parents = graphs.generators.random_attachment_tree(1000, seed=1)
>>> ctx = device.ExecutionContext(device.GTX980)
>>> algo = lca.InlabelLCA(parents, ctx=ctx)
>>> int(algo.query(np.array([5]), np.array([7]))[0]) < 1000
True

Serving queries
---------------
The :mod:`repro.service` subsystem turns the library into a query server:
registered trees get LRU-cached index artifacts, individually submitted
queries are coalesced into micro-batches on a deterministic simulated clock,
and each batch is dispatched to the backend (CPU or simulated GPU) the device
cost model prices cheapest for its size.

>>> from repro.service import BatchPolicy, LCAQueryService
>>> svc = LCAQueryService(policy=BatchPolicy(max_batch_size=256, max_wait_s=1e-3))
>>> svc.register_tree("demo", parents)
>>> tickets = [svc.submit("demo", 5, 7, at=i * 1e-6) for i in range(3)]
>>> svc.drain()
>>> svc.results(tickets).tolist() == [svc.result(tickets[0])] * 3
True
"""

from . import (
    bridges,
    control,
    device,
    errors,
    euler,
    experiments,
    graphs,
    lca,
    obs,
    primitives,
    service,
    workloads,
)
from .bridges import (
    BridgeResult,
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from .device import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    DeviceSpec,
    ExecutionContext,
)
from .errors import (
    ConfigurationError,
    DeviceError,
    InvalidGraphError,
    InvalidQueryError,
    NotATreeError,
    Overloaded,
    ReplicaDown,
    ReproError,
    ServiceError,
)
from .control import SLO, AutoscalePolicy, Controller
from .euler import EulerTour, TreeStats, build_euler_tour, compute_tree_stats
from .graphs import CSRGraph, EdgeList
from .lca import (
    InlabelLCA,
    NaiveGPULCA,
    RMQLCA,
    SequentialInlabelLCA,
    dedup_query_pairs,
)
from .obs import MetricRegistry, StageTimer, TraceRecorder, TraceTable
from .service import (
    AnswerCache,
    BatchPolicy,
    ClusterConfig,
    ClusterService,
    ClusterStats,
    CostModelDispatcher,
    FaultEvent,
    FaultInjector,
    ForestStore,
    IndexRegistry,
    LCAQueryService,
    Router,
    ServiceConfig,
    ServiceStats,
)
from .workloads import (
    ChaosScenario,
    QueryPoolKeys,
    RetryPolicy,
    Scenario,
    ScenarioReport,
    make_chaos_scenario,
    make_scenario,
    replay,
    replay_chaos,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # subpackages
    "device",
    "primitives",
    "graphs",
    "euler",
    "lca",
    "bridges",
    "experiments",
    "service",
    "workloads",
    "obs",
    "control",
    "errors",
    # most-used classes and functions
    "DeviceSpec",
    "ExecutionContext",
    "GTX980",
    "XEON_X5650_SINGLE",
    "XEON_X5650_MULTI",
    "EdgeList",
    "CSRGraph",
    "EulerTour",
    "TreeStats",
    "build_euler_tour",
    "compute_tree_stats",
    "InlabelLCA",
    "SequentialInlabelLCA",
    "NaiveGPULCA",
    "RMQLCA",
    "dedup_query_pairs",
    "BridgeResult",
    "find_bridges_tarjan_vishkin",
    "find_bridges_ck",
    "find_bridges_hybrid",
    "find_bridges_dfs",
    # query serving
    "LCAQueryService",
    "ForestStore",
    "IndexRegistry",
    "BatchPolicy",
    "CostModelDispatcher",
    "ServiceStats",
    "AnswerCache",
    # typed configuration surface
    "ServiceConfig",
    "ClusterConfig",
    # cluster serving
    "ClusterService",
    "ClusterStats",
    "Router",
    # SLO-aware self-tuning
    "SLO",
    "AutoscalePolicy",
    "Controller",
    # fault tolerance + elasticity
    "FaultEvent",
    "FaultInjector",
    # workload scenarios
    "Scenario",
    "ScenarioReport",
    "QueryPoolKeys",
    "RetryPolicy",
    "make_scenario",
    "replay",
    "ChaosScenario",
    "make_chaos_scenario",
    "replay_chaos",
    # observability
    "TraceRecorder",
    "TraceTable",
    "MetricRegistry",
    "StageTimer",
    # errors
    "ReproError",
    "InvalidGraphError",
    "NotATreeError",
    "InvalidQueryError",
    "DeviceError",
    "ConfigurationError",
    "ServiceError",
    "Overloaded",
    "ReplicaDown",
]
