"""Online batched LCA querying (paper §3.3, "Batch Size" experiment).

The Inlabel and naïve algorithms are *online*: once a tree is preprocessed,
queries can arrive over time.  A parallel machine, however, only pays off when
it can work on many queries at once, so the paper measures query throughput as
a function of the batch size in which queries are handed to the algorithm.

:func:`run_batched_queries` feeds a query stream to an already-preprocessed
LCA structure batch by batch and accumulates the modeled time; the per-batch
kernel-launch overhead charged by the device model is what makes tiny batches
slow on the GPU and produces the saturation curves of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import DeviceSpec, ExecutionContext
from .dedup import dedup_query_pairs

__all__ = ["BatchQueryResult", "run_batched_queries"]


@dataclass(frozen=True)
class BatchQueryResult:
    """Outcome of replaying a query stream in fixed-size batches."""

    batch_size: int
    num_queries: int
    num_batches: int
    modeled_time_s: float
    answers: np.ndarray
    #: Queries actually handed to the kernel over the processed batches.
    #: Equals the processed query count without dedup; with ``dedup=True``
    #: it counts only each batch's unique canonical pairs, so
    #: ``processed / kernel_queries`` is the realized dedup factor.
    kernel_queries: int = 0

    @property
    def queries_per_second(self) -> float:
        """Modeled query throughput."""
        if self.modeled_time_s <= 0:
            return float("inf")
        return self.num_queries / self.modeled_time_s


def run_batched_queries(algorithm, xs: np.ndarray, ys: np.ndarray, batch_size: int,
                        spec: DeviceSpec, *, keep_answers: bool = True,
                        max_batches: Optional[int] = None,
                        dedup: bool = False) -> BatchQueryResult:
    """Replay a query stream against ``algorithm`` in batches of ``batch_size``.

    Parameters
    ----------
    algorithm:
        A preprocessed LCA structure exposing ``query(xs, ys, ctx=...)``.
    xs, ys:
        The full query stream.
    batch_size:
        Number of queries handed to the algorithm per call.
    spec:
        Device spec used to account the per-batch cost.
    keep_answers:
        Set to False to discard answers (saves memory in large sweeps).
    max_batches:
        Optionally process only the first ``max_batches`` batches and
        extrapolate the modeled time linearly to the full stream — used by the
        Figure 6 sweep where replaying ten million batch-size-1 calls would be
        pointlessly slow in simulation while the per-batch cost is identical.
    dedup:
        Canonicalize each batch's pairs (LCA is symmetric) and hand only the
        unique pairs to the kernel, scattering answers back — the
        intra-batch dedup of :func:`repro.lca.dedup.dedup_query_pairs`.
        Answers are bit-identical; on repeated streams the modeled time
        drops by the realized dedup factor, which lets the Figure 6
        batch-size sweep quantify the dedup win too.
    """
    xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
    ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
    if xs.shape != ys.shape:
        raise ValueError("query arrays must have the same shape")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    q = xs.size
    num_batches = -(-q // batch_size) if q else 0
    ctx = ExecutionContext(spec)
    answers = np.empty(q, dtype=np.int64) if keep_answers else np.empty(0, dtype=np.int64)

    processed_batches = 0
    processed_queries = 0
    kernel_queries = 0
    limit = num_batches if max_batches is None else min(num_batches, max_batches)
    for b in range(limit):
        lo = b * batch_size
        hi = min(lo + batch_size, q)
        if dedup:
            ux, uy, inverse = dedup_query_pairs(xs[lo:hi], ys[lo:hi])
            out = algorithm.query(ux, uy, ctx=ctx)[inverse]
            kernel_queries += int(ux.size)
        else:
            out = algorithm.query(xs[lo:hi], ys[lo:hi], ctx=ctx)
            kernel_queries += hi - lo
        if keep_answers:
            answers[lo:hi] = out
        processed_batches += 1
        processed_queries += hi - lo

    modeled = ctx.elapsed
    if processed_batches < num_batches and processed_queries > 0:
        # Linear extrapolation over the remaining (statistically identical) batches.
        modeled *= q / processed_queries
    return BatchQueryResult(
        batch_size=batch_size,
        num_queries=q,
        num_batches=num_batches,
        modeled_time_s=modeled,
        answers=answers,
        kernel_queries=kernel_queries,
    )
