"""Canonicalization and intra-batch dedup for symmetric pair queries.

LCA is symmetric — ``lca(x, y) == lca(y, x)`` — so a batch of queries over
node pairs can be *canonicalized* (each pair sorted to ``x <= y``) and then
*deduplicated*: under skewed traffic the same hot pairs recur thousands of
times per batch, and running the query kernel once per **unique** pair with a
scatter back to the original positions does strictly less work for identical
answers.

Everything here is a handful of vectorized passes:

* :func:`pack_query_pairs` sorts each pair and packs it into one ``uint64``
  key (``min << 32 | max``) — a canonical, totally ordered, hashable
  identity for the pair.  Node ids must fit 32 bits; :data:`PACK_LIMIT` is
  the largest tree size the packing supports, and callers serve larger trees
  through the plain path.
* :func:`unpack_query_pairs` inverts the packing (always into the canonical
  ``x <= y`` orientation).
* :func:`dedup_query_pairs` composes packing with ``np.unique`` and returns
  the unique canonical pairs plus the inverse map that scatters per-unique
  answers back onto the original batch positions.

The serving layer (:mod:`repro.service`) builds its skew-aware fast path on
these kernels: the packed key doubles as the lookup key of the vectorized
answer cache, and the dispatcher prices the *unique* count instead of the raw
batch size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import InvalidQueryError

__all__ = [
    "PACK_LIMIT",
    "pack_query_pairs",
    "unpack_query_pairs",
    "dedup_query_pairs",
]

#: Largest tree size (node-id bound) the uint64 pair packing supports: ids
#: must fit in 32 bits each.
PACK_LIMIT = 1 << 32

_LOW32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def pack_query_pairs(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Canonical ``uint64`` key per pair: ``min(x, y) << 32 | max(x, y)``.

    The caller guarantees ``0 <= xs, ys < PACK_LIMIT`` (the serving layer
    validates node ids against the tree size long before this point).

    >>> pack_query_pairs(np.array([3, 1]), np.array([1, 3])).tolist()
    [4294967299, 4294967299]
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    # minimum/maximum allocate fresh non-negative int64 arrays, so the
    # uint64 reinterpretation is a zero-copy view, not a cast pass.
    lo = np.minimum(xs, ys).view(np.uint64)
    hi = np.maximum(xs, ys).view(np.uint64)
    return (lo << _SHIFT32) | hi


def unpack_query_pairs(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_query_pairs` into canonical ``(x, y)`` with ``x <= y``.

    >>> xs, ys = unpack_query_pairs(np.array([4294967299], dtype=np.uint64))
    >>> (xs.tolist(), ys.tolist())
    ([1], [3])
    """
    keys = np.asarray(keys, dtype=np.uint64)
    xs = (keys >> _SHIFT32).astype(np.int64)
    ys = (keys & _LOW32).astype(np.int64)
    return xs, ys


def dedup_query_pairs(
    xs: np.ndarray, ys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique canonical pairs of a batch, with the scatter-back map.

    Returns ``(ux, uy, inverse)`` such that ``ux[i] <= uy[i]``, the unique
    pairs are sorted by packed key, and for any symmetric per-pair function
    ``f`` (like LCA), ``f(ux, uy)[inverse]`` equals ``f(xs, ys)``
    elementwise.

    Unlike :func:`pack_query_pairs` (whose callers have already validated
    node ids against the tree size) this standalone entry point checks the
    packing precondition itself.

    >>> ux, uy, inv = dedup_query_pairs(np.array([5, 2, 5]),
    ...                                 np.array([2, 5, 7]))
    >>> (ux.tolist(), uy.tolist(), inv.tolist())
    ([2, 5], [5, 7], [0, 0, 1])
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.size and not (
        0 <= min(int(xs.min()), int(ys.min()))
        and max(int(xs.max()), int(ys.max())) < PACK_LIMIT
    ):
        raise InvalidQueryError(
            f"node ids must be in [0, {PACK_LIMIT}) for uint64 pair packing"
        )
    keys = pack_query_pairs(xs, ys)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    ux, uy = unpack_query_pairs(unique_keys)
    return ux, uy, inverse.astype(np.int64, copy=False).reshape(-1)
