"""The naïve GPU LCA algorithm of Martins et al. (paper §3.1).

One thread per query walks the two query nodes up the tree until the paths
meet.  Preprocessing only computes node levels (distances from the root), done
with pointer jumping; each query then

1. lifts the deeper endpoint, node by node, until both endpoints are at the
   same level, and
2. lifts both endpoints together until they coincide.

The per-query cost is proportional to the tree distance between the two query
nodes — constant-ish on shallow trees, catastrophic on deep ones — which is
exactly the trade-off the paper's Figures 3–5 quantify.

The data-parallel simulation below processes all queries in lockstep rounds;
each round is one kernel over the still-active queries, so the modeled cost
grows with the *sum* of path lengths (work) while the round count grows with
the *maximum* path length (depth), matching the real GPU behaviour of the
algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidQueryError
from ..graphs.trees import tree_root, validate_parents

__all__ = ["NaiveGPULCA", "pointer_jump_levels"]


def pointer_jump_levels(parents: np.ndarray, *, jump_batch: int = 5,
                        ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Compute node levels by pointer jumping (doubling).

    ``O(log depth)`` doubling rounds, ``O(n log depth)`` total work — not
    work-optimal, but, as the paper notes, never the bottleneck in practice.
    ``jump_batch`` models the paper's optimization of performing several jumps
    per kernel launch before synchronizing globally: it only affects the
    number of kernel launches charged, not the result.
    """
    ctx = ensure_context(ctx)
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    root = tree_root(parents)
    if jump_batch < 1:
        raise ValueError("jump_batch must be at least 1")

    ptr = parents.copy()
    ptr[root] = root
    hops = np.where(parents >= 0, 1, 0).astype(np.int64)
    rounds = 0
    pending_launch_rounds = 0
    while True:
        at_root = ptr == root
        if at_root.all():
            break
        hops = hops + np.where(at_root, 0, hops[ptr])
        ptr = ptr[ptr]
        rounds += 1
        pending_launch_rounds += 1
        # Charge a kernel; a batch of `jump_batch` rounds shares one launch.
        launches = 1 if pending_launch_rounds == 1 else 0
        if pending_launch_rounds == jump_batch:
            pending_launch_rounds = 0
        ctx.kernel(
            "naive_level_jump",
            threads=n,
            ops=3.0 * n,
            bytes_read=3.0 * n * 8,
            bytes_written=2.0 * n * 8,
            launches=launches,
            random_access=True,
        )
        if rounds > 2 * int(np.ceil(np.log2(max(n, 2)))) + 4:  # pragma: no cover
            raise RuntimeError("level pointer jumping did not converge")
    return hops


class NaiveGPULCA:
    """Naïve walk-up LCA with level preprocessing (Martins et al.).

    Parameters
    ----------
    parents:
        Tree as a parent array (``-1`` marks the root).
    ctx:
        Execution context charged with the preprocessing (pointer jumping).
    jump_batch:
        Pointer jumps performed per kernel launch during preprocessing
        (paper's empirical optimization; default 5).
    validate:
        Validate the parent array up front.
    """

    name = "GPU Naive"

    def __init__(self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None,
                 jump_batch: int = 5, validate: bool = False) -> None:
        ctx = ensure_context(ctx)
        parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(parents)
        self.parents = parents
        self.root = tree_root(parents)
        with ctx.phase("preprocessing"):
            self.levels = pointer_jump_levels(parents, jump_batch=jump_batch, ctx=ctx)

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return int(self.parents.size)

    def query(self, xs: np.ndarray, ys: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of LCA queries by lockstep tree walks.

        The modeled cost is one kernel per walk round over the still-active
        queries; total work equals the sum of tree distances between query
        endpoints, the defining characteristic of the naïve algorithm.
        """
        ctx = ensure_context(ctx)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64)).copy()
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64)).copy()
        if xs.shape != ys.shape:
            raise InvalidQueryError("query arrays must have the same shape")
        q = xs.size
        if q == 0:
            return np.empty(0, dtype=np.int64)
        n = self.n
        if xs.min() < 0 or xs.max() >= n or ys.min() < 0 or ys.max() >= n:
            raise InvalidQueryError("query nodes out of range")

        parents = self.parents
        levels = self.levels
        answer = np.empty(q, dtype=np.int64)
        with ctx.phase("queries"):
            # On the device this whole batch is ONE kernel: each query thread
            # walks its two pointers up inside the kernel.  The lockstep rounds
            # below are a vectorization artifact; the cost is charged once with
            # the total number of walk steps as the work.
            active_idx = np.arange(q, dtype=np.int64)
            ax = xs
            ay = ys
            rounds = 0
            total_steps = 0
            while active_idx.size:
                lx = levels[ax]
                ly = levels[ay]
                done = ax == ay
                if done.any():
                    answer[active_idx[done]] = ax[done]
                    keep = ~done
                    active_idx = active_idx[keep]
                    ax = ax[keep]
                    ay = ay[keep]
                    lx = lx[keep]
                    ly = ly[keep]
                if active_idx.size == 0:
                    break
                # Lift the deeper endpoint; when levels are equal lift both.
                move_x = lx >= ly
                move_y = ly >= lx
                ax = np.where(move_x, parents[ax], ax)
                ay = np.where(move_y, parents[ay], ay)
                total_steps += int(active_idx.size)
                rounds += 1
                if rounds > 2 * n + 4:  # pragma: no cover - defensive
                    raise RuntimeError("naive LCA query walk did not terminate")
            ctx.kernel(
                "naive_query_walk",
                threads=q,
                ops=4.0 * q + 4.0 * total_steps,
                # Each walk step dereferences a parent pointer and a level, both
                # uncoalesced (a 32-byte transaction each on real hardware).
                bytes_read=16.0 * q + 24.0 * total_steps,
                bytes_written=8.0 * q,
                launches=1,
                divergent=True,
                random_access=True,
            )
        return answer
