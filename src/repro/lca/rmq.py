"""RMQ-based LCA (Bender–Farach-Colton style), the paper's §3.1 CPU baseline.

The reduction: write down the Euler tour of the tree as the sequence of nodes
visited (length ``2n - 1``), record each node's depth along the sequence and
the first position at which each node occurs; then

``LCA(x, y) = the node of minimum depth in the tour segment between the first
occurrences of x and y``.

The paper's preliminary experiment uses "a variant of [9], using a segment
tree and without the preprocessed lookup tables"; both the segment-tree and
sparse-table backends are available here (the former is the default to match
the paper, the latter is the textbook O(1)-query variant).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidQueryError
from ..euler import build_euler_tour_from_parents
from ..graphs.trees import validate_parents
from ..primitives import build_rmq

__all__ = ["RMQLCA"]


class RMQLCA:
    """LCA via reduction to range-minimum queries over the Euler tour.

    Parameters
    ----------
    parents:
        Tree as a parent array (``-1`` marks the root).
    backend:
        ``"segment-tree"`` (paper's §3.1 baseline) or ``"sparse-table"``.
    sequential_cost:
        When true (default), preprocessing and queries are charged as
        sequential CPU work — this class plays the role of the single-core
        baseline in the preliminary experiment.  When false they are charged
        as bulk kernels, giving a parallel RMQ-based LCA for comparison.
    """

    name = "RMQ-based LCA"

    #: Modeled sequential preprocessing cost per node: Euler tour by DFS plus
    #: segment-tree construction over a 2n-1 array.
    _PREPROCESS_OPS_PER_NODE = 18.0
    _PREPROCESS_BYTES_PER_NODE = 120.0
    #: Modeled per-query cost: a segment-tree descent is ~2 log n node visits,
    #: most of which hit cached upper levels of the tree.
    _QUERY_OPS_PER_LEVEL = 6.0
    _QUERY_BYTES_PER_LEVEL = 16.0

    def __init__(self, parents: np.ndarray, *, backend: str = "segment-tree",
                 sequential_cost: bool = True,
                 ctx: Optional[ExecutionContext] = None,
                 validate: bool = False) -> None:
        ctx = ensure_context(ctx)
        parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(parents)
        n = parents.size
        self.n_nodes = n
        self.backend = backend
        self.sequential_cost = sequential_cost

        charge_ctx = None if sequential_cost else ctx
        with ctx.phase("preprocessing"):
            tour = build_euler_tour_from_parents(parents, ctx=charge_ctx)
            # Node visit sequence: root followed by the destination of every
            # tour half-edge; depths along the sequence differ by ±1.
            if tour.length:
                visit_nodes = tour.nodes_in_tour_order()
                is_down = tour.rank < tour.rank[tour.twin]
                deltas = np.where(is_down[tour.tour], 1, -1)
                visit_depths = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(deltas)]
                )
            else:
                visit_nodes = np.asarray([tour.root], dtype=np.int64)
                visit_depths = np.zeros(1, dtype=np.int64)
            # First occurrence of each node in the visit sequence.
            first = np.full(n, -1, dtype=np.int64)
            # reversed scatter: later writes win, so iterate positions backwards
            first[visit_nodes[::-1]] = np.arange(visit_nodes.size - 1, -1, -1)
            self.first = first
            self.visit_nodes = visit_nodes
            # Encode (depth, node) pairs so that min-by-encoded-value recovers
            # the node at minimum depth.
            encode_base = np.int64(n + 1)
            encoded = visit_depths * encode_base + visit_nodes
            self._encode_base = encode_base
            self.rmq = build_rmq(encoded, "min", backend=backend, ctx=charge_ctx)
            if sequential_cost:
                ctx.sequential(
                    "rmq_lca_preprocess",
                    ops=self._PREPROCESS_OPS_PER_NODE * n,
                    bytes_touched=self._PREPROCESS_BYTES_PER_NODE * n,
                    random_access=True,
                )
        self._log_n = max(1, int(np.ceil(np.log2(max(n, 2)))))

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return self.n_nodes

    def query(self, xs: np.ndarray, ys: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of LCA queries via range-minimum queries."""
        ctx = ensure_context(ctx)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        if xs.shape != ys.shape:
            raise InvalidQueryError("query arrays must have the same shape")
        if xs.size and (min(xs.min(), ys.min()) < 0 or max(xs.max(), ys.max()) >= self.n):
            raise InvalidQueryError("query nodes out of range")
        with ctx.phase("queries"):
            fx = self.first[xs]
            fy = self.first[ys]
            lo = np.minimum(fx, fy)
            hi = np.maximum(fx, fy)
            charge_ctx = None if self.sequential_cost else ctx
            encoded = self.rmq.query(lo, hi, ctx=charge_ctx)
            answer = (encoded % self._encode_base).astype(np.int64)
            if self.sequential_cost:
                per_query_levels = self._log_n if self.backend.startswith("segment") else 2
                ctx.sequential(
                    "rmq_lca_query_batch",
                    ops=self._QUERY_OPS_PER_LEVEL * per_query_levels * xs.size,
                    bytes_touched=self._QUERY_BYTES_PER_LEVEL * per_query_levels * xs.size,
                    random_access=True,
                )
        return answer
