"""Lowest common ancestor algorithms (paper §3).

* :class:`InlabelLCA` — parallel Schieber–Vishkin Inlabel algorithm (GPU, or
  multi-core CPU when given a multi-core execution context).
* :class:`SequentialInlabelLCA` — the single-core CPU Inlabel baseline.
* :class:`NaiveGPULCA` — the naïve walk-up algorithm of Martins et al.
* :class:`RMQLCA` — the RMQ-based baseline of the §3.1 preliminary experiment.
* :class:`BinaryLiftingLCA`, :func:`brute_force_lca_batch` — test oracles.
* :func:`run_batched_queries` — online batched querying (Figure 6).
* :func:`pack_query_pairs` / :func:`dedup_query_pairs` — canonicalization
  and intra-batch dedup for symmetric pair queries (the serving stack's
  skew-aware fast path builds on these).
"""

from .batch import BatchQueryResult, run_batched_queries
from .dedup import (
    PACK_LIMIT,
    dedup_query_pairs,
    pack_query_pairs,
    unpack_query_pairs,
)
from .inlabel import (
    INLABEL_QUERY_COST,
    InlabelLCA,
    InlabelStructure,
    QueryKernelCost,
    SequentialInlabelLCA,
    build_inlabel_structure,
)
from .naive import NaiveGPULCA, pointer_jump_levels
from .reference import BinaryLiftingLCA, brute_force_lca_batch
from .rmq import RMQLCA

__all__ = [
    "InlabelLCA",
    "SequentialInlabelLCA",
    "InlabelStructure",
    "build_inlabel_structure",
    "QueryKernelCost",
    "INLABEL_QUERY_COST",
    "NaiveGPULCA",
    "pointer_jump_levels",
    "RMQLCA",
    "BinaryLiftingLCA",
    "brute_force_lca_batch",
    "BatchQueryResult",
    "run_batched_queries",
    "PACK_LIMIT",
    "pack_query_pairs",
    "unpack_query_pairs",
    "dedup_query_pairs",
]
