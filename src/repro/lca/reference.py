"""Reference LCA implementations used as test oracles.

These are deliberately simple and carry **no cost accounting** — they exist so
the measured algorithms (Inlabel, naïve, RMQ-based) can be cross-checked on
trees large enough that the O(n·q·depth) brute force becomes impractical.
"""

from __future__ import annotations


import numpy as np

from ..errors import InvalidQueryError
from ..graphs.trees import depths_from_parents, tree_root, validate_parents

__all__ = ["BinaryLiftingLCA", "brute_force_lca_batch"]


class BinaryLiftingLCA:
    """Textbook binary-lifting LCA: O(n log n) table, O(log n) per query.

    Not one of the paper's algorithms — a pure oracle for the test suite.
    """

    name = "Binary lifting (oracle)"

    def __init__(self, parents: np.ndarray, *, validate: bool = False) -> None:
        parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(parents)
        self.parents = parents
        self.root = tree_root(parents)
        self.depth = depths_from_parents(parents)
        n = parents.size
        self.n = n
        levels = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
        up = np.empty((levels, n), dtype=np.int64)
        base = parents.copy()
        base[self.root] = self.root
        up[0] = base
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        self.up = up
        self.levels = levels

    def query(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Answer a batch of LCA queries (vectorized binary lifting)."""
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64)).copy()
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64)).copy()
        if xs.shape != ys.shape:
            raise InvalidQueryError("query arrays must have the same shape")
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        if min(xs.min(), ys.min()) < 0 or max(xs.max(), ys.max()) >= self.n:
            raise InvalidQueryError("query nodes out of range")
        depth = self.depth
        # Ensure xs is the deeper endpoint, then lift it level by level.
        swap = depth[xs] < depth[ys]
        xs[swap], ys[swap] = ys[swap], xs[swap].copy()
        diff = depth[xs] - depth[ys]
        for k in range(self.levels - 1, -1, -1):
            lift = (diff >> k) & 1 == 1
            if lift.any():
                xs[lift] = self.up[k][xs[lift]]
        equal = xs == ys
        for k in range(self.levels - 1, -1, -1):
            differs = ~equal & (self.up[k][xs] != self.up[k][ys])
            if differs.any():
                xs[differs] = self.up[k][xs[differs]]
                ys[differs] = self.up[k][ys[differs]]
        out = np.where(equal, xs, self.up[0][xs])
        return out


def brute_force_lca_batch(parents: np.ndarray, xs, ys) -> np.ndarray:
    """Answer a batch of LCA queries by explicit ancestor-set intersection.

    O(depth) per query; only suitable for small test trees.
    """
    from ..graphs.trees import brute_force_lca

    xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
    ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
    return np.asarray(
        [brute_force_lca(parents, int(x), int(y)) for x, y in zip(xs, ys)],
        dtype=np.int64,
    )
