"""The Inlabel LCA algorithm of Schieber and Vishkin (paper §3.1).

The algorithm maps every tree node to a node of a conceptual full binary tree
``B`` (identified with its inorder number) such that

* nodes with the same *inlabel* form top-down paths in the tree
  (path-partition property), and
* descendants in the tree map to descendants in ``B`` (inorder property).

With three per-node tables — ``inlabel``, ``ascendant`` (the set of ``B``
levels used by inlabel paths above the node) and ``head`` (the shallowest node
of every inlabel path) — any LCA query is answered with a constant number of
word operations.

Preprocessing needs the preorder number, subtree size and depth of every node,
which the GPU implementation obtains with the Euler tour technique; everything
after that is a constant number of map kernels plus an ``O(log n)``-round
head-jumping pass for ``ascendant``.

Two execution flavours are provided:

* :class:`InlabelLCA` — the data-parallel implementation (the paper's GPU
  algorithm, also used for the multi-core CPU baseline by pointing the
  execution context at the multi-core device spec);
* :class:`SequentialInlabelLCA` — the single-core CPU baseline; identical
  results, but preprocessing is charged as a sequential DFS plus a sequential
  labeling pass and queries are charged one by one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidQueryError
from ..euler import TreeStats, tree_statistics_from_parents
from ..graphs.trees import query_bounds_mask, validate_parents
from ..primitives import elementwise

__all__ = [
    "InlabelStructure",
    "build_inlabel_structure",
    "InlabelLCA",
    "SequentialInlabelLCA",
    "QueryKernelCost",
    "INLABEL_QUERY_COST",
]


def _ilog2(x: np.ndarray) -> np.ndarray:
    """Elementwise ``floor(log2(x))`` for positive integers (exact)."""
    x = np.asarray(x, dtype=np.int64)
    _, exp = np.frexp(x.astype(np.float64))
    return (exp - 1).astype(np.int64)


@dataclass
class InlabelStructure:
    """The three Schieber–Vishkin tables plus the node statistics they need.

    Attributes
    ----------
    inlabel:
        Inlabel number of every node (1-based; a value of the full binary tree
        ``B`` identified by its inorder number).
    ascendant:
        Bit set of ``B`` levels of the inlabel paths intersecting the
        root-to-node path.
    head:
        For every inlabel value, the node closest to the root on that inlabel
        path (indexed by inlabel value; unused slots are ``-1``).
    depth, parent, preorder, subtree_size:
        Standard node statistics (see :class:`repro.euler.TreeStats`).
    levels:
        Number of bits ``L`` such that every inlabel fits in ``L`` bits
        (``B`` has ``2^L - 1`` nodes).
    """

    inlabel: np.ndarray
    ascendant: np.ndarray
    head: np.ndarray
    depth: np.ndarray
    parent: np.ndarray
    preorder: np.ndarray
    subtree_size: np.ndarray
    root: int
    levels: int

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return int(self.inlabel.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the node tables (sum over all array fields)."""
        return sum(
            int(value.nbytes)
            for field_ in dataclasses.fields(self)
            for value in (getattr(self, field_.name),)
            if isinstance(value, np.ndarray)
        )


def build_inlabel_structure(stats: TreeStats,
                            *, ctx: Optional[ExecutionContext] = None
                            ) -> InlabelStructure:
    """Compute the Inlabel tables from preorder / subtree size / depth / parent.

    All steps are bulk map kernels except the ``ascendant`` computation, which
    jumps from inlabel-path head to inlabel-path head and therefore needs at
    most ``L = O(log n)`` rounds (the number of distinct inlabels on any
    root-to-node path is at most ``L``).
    """
    ctx = ensure_context(ctx)
    n = stats.n
    pre = stats.preorder.astype(np.int64)
    size = stats.subtree_size.astype(np.int64)
    parent = stats.parent.astype(np.int64)
    depth = stats.depth.astype(np.int64)
    root = stats.root

    # inlabel(v): the element of [pre(v), pre(v)+size(v)-1] with the most
    # trailing zeros, computed with the classical XOR trick.
    lo = pre - 1
    hi = pre + size - 1
    i = _ilog2(lo ^ hi)
    inlabel = (hi >> i) << i
    elementwise(n, ops_per_element=6.0, bytes_per_element=32.0, ctx=ctx,
                name="inlabel_compute")

    levels = int(_ilog2(np.asarray([max(n, 1)]))[0]) + 1

    # head: the shallowest node of every inlabel path.  A node is a path head
    # iff it is the root or its parent lies on a different inlabel path.
    head = np.full(1 << (levels + 1), -1, dtype=np.int64)
    parent_inlabel = np.where(parent >= 0, inlabel[np.maximum(parent, 0)], -1)
    is_head = parent_inlabel != inlabel
    head[inlabel[is_head]] = np.flatnonzero(is_head)
    elementwise(n, ops_per_element=3.0, bytes_per_element=32.0, ctx=ctx,
                name="inlabel_head_scatter")

    # ascendant: prefix-OR of inlabel level bits along root-to-node paths.
    # Each node's value only depends on the ≤ L inlabel-path heads above it,
    # so on the device one thread per node walks head-to-head inside a single
    # kernel; the lockstep rounds below vectorize that walk and the cost is
    # charged once with the total number of hops as the work.
    # ``x & -x`` isolates the lowest set bit directly — the same value as
    # ``1 << trailing_zeros(x)`` without the float round-trip through frexp.
    ascendant = inlabel & -inlabel
    # jump[v]: the node just above v's inlabel path (parent of the path head),
    # or -1 when the path contains the root.
    path_head = head[inlabel]
    jump = np.where(path_head == root, -1, parent[np.maximum(path_head, 0)])
    jump = np.where(path_head >= 0, jump, -1)
    rounds = 0
    total_hops = 0
    while True:
        active = jump >= 0
        if not active.any():
            break
        tgt = jump[active]
        tgt_inlabel = inlabel[tgt]
        ascendant[active] |= tgt_inlabel & -tgt_inlabel
        tgt_head = head[tgt_inlabel]
        new_jump = np.where(tgt_head == root, -1, parent[np.maximum(tgt_head, 0)])
        jump[active] = new_jump
        total_hops += int(active.sum())
        rounds += 1
        if rounds > levels + 2:  # pragma: no cover - defensive
            raise RuntimeError("ascendant computation exceeded the level bound")
    ctx.kernel(
        "inlabel_ascendant_walk",
        threads=n,
        ops=2.0 * n + 4.0 * total_hops,
        bytes_read=16.0 * n + 32.0 * total_hops,
        bytes_written=8.0 * n,
        launches=1,
        random_access=True,
    )

    return InlabelStructure(
        inlabel=inlabel,
        ascendant=ascendant,
        head=head,
        depth=depth,
        parent=parent,
        preorder=pre,
        subtree_size=size,
        root=root,
        levels=levels,
    )


def _query_inlabel(structure: InlabelStructure, xs: np.ndarray, ys: np.ndarray
                   ) -> np.ndarray:
    """Vectorized constant-time LCA queries against an Inlabel structure.

    Pure computation (no cost accounting); both execution flavours wrap this.
    """
    inlabel = structure.inlabel
    ascendant = structure.ascendant
    head = structure.head
    depth = structure.depth
    parent = structure.parent

    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape:
        raise InvalidQueryError("query arrays must have the same shape")
    if xs.size == 0:
        return np.empty(0, dtype=np.int64)
    n = structure.n
    # Single fused bounds check (uint64 reinterpretation) instead of the
    # four separate min/max reduction passes over the query arrays.
    if query_bounds_mask(xs, ys, n).any():
        raise InvalidQueryError("query nodes out of range")

    ix = inlabel[xs]
    iy = inlabel[ys]
    answer = np.empty(xs.size, dtype=np.int64)

    same = ix == iy
    if same.any():
        take_x = depth[xs[same]] <= depth[ys[same]]
        answer[same] = np.where(take_x, xs[same], ys[same])

    diff = ~same
    if diff.any():
        dx = xs[diff]
        dy = ys[diff]
        ixd = ix[diff]
        iyd = iy[diff]
        # i: highest bit where the inlabels differ; low_j: the lowest common
        # ascendant level at or above i — the B-level bit of the LCA's
        # inlabel.  ``x & -x`` isolates it directly; no trailing-zero count
        # (and its frexp float round-trip) is needed, because every use of
        # the level j below only ever needs the bit ``1 << j`` or the mask
        # ``(1 << j) - 1``.
        i = _ilog2(ixd ^ iyd)
        common = ascendant[dx] & ascendant[dy]
        common_high = (common >> i) << i
        low_j = common_high & -common_high
        inlabel_z = (ixd & ~((low_j << 1) - 1)) | low_j

        def climb(nodes: np.ndarray, node_inlabels: np.ndarray) -> np.ndarray:
            """Lowest ancestor of each node whose inlabel equals inlabel_z."""
            out = nodes.copy()
            needs_climb = node_inlabels != inlabel_z
            if needs_climb.any():
                nn = nodes[needs_climb]
                # Highest ascendant level of the node strictly below j: the
                # inlabel path entered just below the LCA's path.
                below = ascendant[nn] & (low_j[needs_climb] - 1)
                k = _ilog2(below)
                high_k = np.int64(1) << k
                inlabel_w = (node_inlabels[needs_climb]
                             & ~((high_k << 1) - 1)) | high_k
                w = head[inlabel_w]
                out[needs_climb] = parent[w]
            return out

        xbar = climb(dx, ixd)
        ybar = climb(dy, iyd)
        take_x = depth[xbar] <= depth[ybar]
        answer[diff] = np.where(take_x, xbar, ybar)
    return answer


@dataclass(frozen=True)
class QueryKernelCost:
    """Modeled per-query kernel shape of a constant-time LCA query.

    Both execution flavours charge their query kernels from these constants,
    and :mod:`repro.service.dispatch` prices candidate backends with the very
    same numbers — so a dispatch decision is, by construction, a comparison of
    the costs the backends would actually be charged.
    """

    #: Word operations per query (a few dozen ALU ops).
    ops: float
    #: Bytes read per query (node tables hit through scattered reads).
    bytes_read: float
    #: Bytes written per query (the answer).
    bytes_written: float


#: The modeled cost of one Schieber–Vishkin Inlabel query.
INLABEL_QUERY_COST = QueryKernelCost(ops=40.0, bytes_read=112.0, bytes_written=8.0)


class InlabelLCA:
    """Data-parallel Inlabel LCA (the paper's GPU algorithm).

    Parameters
    ----------
    parents:
        Tree as a parent array (``-1`` marks the root).
    ctx:
        Execution context charged with the preprocessing cost (Euler tour +
        labeling kernels).  Point it at :data:`repro.device.GTX980` for the
        GPU algorithm or :data:`repro.device.XEON_X5650_MULTI` for the OpenMP
        multi-core baseline.
    list_rank_method:
        List-ranking algorithm for the Euler tour (``"wei-jaja"`` by default).
    validate:
        When true, validate the parent array up front (costs an extra O(n log n)
        host-side check; disable for large benchmark runs).
    """

    name = "Parallel Inlabel"

    def __init__(self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None,
                 list_rank_method: str = "wei-jaja", validate: bool = False) -> None:
        ctx = ensure_context(ctx)
        parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(parents)
        with ctx.phase("preprocessing"):
            stats = tree_statistics_from_parents(
                parents, list_rank_method=list_rank_method, ctx=ctx
            )
            self.structure = build_inlabel_structure(stats, ctx=ctx)
        self.stats = stats

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return self.structure.n

    def query(self, xs: np.ndarray, ys: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of LCA queries; one map kernel over the batch."""
        ctx = ensure_context(ctx)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        with ctx.phase("queries"):
            out = _query_inlabel(self.structure, xs, ys)
            ctx.kernel(
                "inlabel_query_batch",
                threads=int(xs.size),
                ops=INLABEL_QUERY_COST.ops * xs.size,
                bytes_read=INLABEL_QUERY_COST.bytes_read * xs.size,
                bytes_written=INLABEL_QUERY_COST.bytes_written * xs.size,
                launches=1,
                random_access=True,
            )
        return out


class SequentialInlabelLCA:
    """Single-core CPU Inlabel baseline (identical answers, sequential cost).

    The preprocessing is charged as one sequential DFS over the tree (to get
    preorder, subtree sizes and depths) followed by a sequential labeling
    pass; queries are charged one at a time.  The numeric work is carried out
    with the same vectorized routines as the parallel implementation — only
    the cost model differs — so the two flavours are bit-for-bit consistent.
    """

    name = "Sequential Inlabel"

    #: Modeled sequential cost per node of the DFS + labeling preprocessing:
    #: a handful of dependent pointer dereferences per node.
    _PREPROCESS_OPS_PER_NODE = 30.0
    _PREPROCESS_BYTES_PER_NODE = 180.0

    def __init__(self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None,
                 validate: bool = False) -> None:
        ctx = ensure_context(ctx)
        parents = np.asarray(parents, dtype=np.int64)
        if validate:
            validate_parents(parents)
        n = parents.size
        # Results computed with the shared (uncharged) vectorized code...
        stats = tree_statistics_from_parents(parents, ctx=None)
        self.structure = build_inlabel_structure(stats, ctx=None)
        self.stats = stats
        # ...but the modeled cost is that of the sequential algorithm.
        with ctx.phase("preprocessing"):
            ctx.sequential(
                "cpu_inlabel_preprocess",
                ops=self._PREPROCESS_OPS_PER_NODE * n,
                bytes_touched=self._PREPROCESS_BYTES_PER_NODE * n,
                random_access=True,
            )

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return self.structure.n

    def query(self, xs: np.ndarray, ys: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of LCA queries sequentially (one query at a time)."""
        ctx = ensure_context(ctx)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        with ctx.phase("queries"):
            out = _query_inlabel(self.structure, xs, ys)
            ctx.sequential(
                "cpu_inlabel_query_batch",
                ops=INLABEL_QUERY_COST.ops * xs.size,
                bytes_touched=INLABEL_QUERY_COST.bytes_read * xs.size,
                random_access=True,
            )
        return out
