"""Hardware specifications for the simulated execution devices.

The paper evaluates its algorithms on an NVIDIA GeForce GTX 980 (2048 CUDA
cores) against an Intel Xeon X5650 (6 physical cores, 12 hardware threads),
both as a single-core baseline and as an OpenMP multi-core baseline.  This
reproduction has no GPU, so instead of timing CUDA kernels we *model* them:
every bulk-parallel primitive reports the number of threads it would launch,
the arithmetic/compare/pointer operations it performs, and the bytes it moves,
and a :class:`DeviceSpec` converts that into a modeled execution time.

The constants below are calibrated only coarsely — to the published ballpark
of the GTX 980 (224 GB/s memory bandwidth, ~1.2 GHz, a few microseconds of
kernel-launch latency) and the Xeon X5650 (~32 GB/s, 2.67 GHz).  The paper's
conclusions depend on *ratios and scaling* (work vs. depth, launch count vs.
diameter), not on absolute milliseconds, and those ratios are what the model
preserves.  See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) execution device.

    Parameters
    ----------
    name:
        Human-readable device name used in reports.
    kind:
        Either ``"gpu"`` (bulk-synchronous kernel machine) or ``"cpu"``
        (sequential or small-scale multi-threaded machine).
    cores:
        Number of execution lanes.  For the GPU this is the CUDA core count;
        for the CPU the number of worker threads the model may use.
    clock_hz:
        Core clock frequency in hertz.
    ops_per_cycle:
        Sustained simple operations (integer add/compare/load-address
        arithmetic) per core per cycle for *regular* (coalesced,
        non-divergent) kernels.  This is intentionally well below 1.0 for the
        GPU because graph kernels are memory-system and scheduling bound, not
        FLOP bound.
    mem_bandwidth_bytes:
        Sustainable global-memory bandwidth in bytes per second.
    launch_overhead_s:
        Fixed cost of one kernel launch (GPU) or one parallel-region
        fork/join + barrier (multi-core CPU).  For a single-core CPU this is
        essentially a function-call cost and is set near zero.
    divergence_penalty:
        Multiplier applied to the compute time of kernels flagged as
        *divergent* (data-dependent branching / uncoalesced access), e.g. the
        per-thread tree walks of the naïve LCA algorithm or the CK marking
        phase.
    random_access_penalty:
        Multiplier applied to the memory time of kernels flagged as performing
        scattered (non-streaming) access, e.g. gather/scatter through
        permutations, pointer jumping.
    dependent_latency_s:
        Latency of one dependent scattered memory access (a cache/DRAM miss on
        the CPU, an unhidden global-memory round trip on the GPU).  This
        drives the *per-thread critical path* term of the cost model: a kernel
        with few threads — or a purely sequential loop — cannot hide this
        latency behind other work, which is what makes single queries slow on
        the GPU (paper Fig. 6) and pointer-chasing slow on a single CPU core.
    """

    name: str
    kind: str
    cores: int
    clock_hz: float
    ops_per_cycle: float
    mem_bandwidth_bytes: float
    launch_overhead_s: float
    divergence_penalty: float = 4.0
    random_access_penalty: float = 4.0
    dependent_latency_s: float = 1e-7

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"DeviceSpec.kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if self.cores <= 0:
            raise ValueError("DeviceSpec.cores must be positive")
        if self.clock_hz <= 0 or self.mem_bandwidth_bytes <= 0:
            raise ValueError("clock_hz and mem_bandwidth_bytes must be positive")
        if self.ops_per_cycle <= 0:
            raise ValueError("ops_per_cycle must be positive")
        if self.launch_overhead_s < 0:
            raise ValueError("launch_overhead_s must be non-negative")
        if self.dependent_latency_s < 0:
            raise ValueError("dependent_latency_s must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def peak_ops_per_second(self) -> float:
        """Peak simple-operation throughput with all cores busy."""
        return self.cores * self.clock_hz * self.ops_per_cycle

    @property
    def scalar_seconds_per_op(self) -> float:
        """Time for one simple operation on a single lane (the serial rate)."""
        return 1.0 / (self.clock_hz * self.ops_per_cycle)

    def with_cores(self, cores: int) -> "DeviceSpec":
        """Return a copy of this spec with a different core count."""
        return replace(self, cores=cores)


# ----------------------------------------------------------------------
# Presets modeled after the paper's experimental platform (Section 1.2)
# ----------------------------------------------------------------------

#: GTX-980-like bulk-synchronous GPU.  2048 CUDA cores at ~1.2 GHz; effective
#: simple-op throughput for irregular graph kernels is taken as ~0.25 op per
#: core per cycle (≈ 0.6 Top/s), memory bandwidth 224 GB/s, ~4 µs per kernel
#: launch, ~0.4 µs unhidden global-memory latency.
GTX980 = DeviceSpec(
    name="GTX 980 (simulated)",
    kind="gpu",
    cores=2048,
    clock_hz=1.216e9,
    ops_per_cycle=0.25,
    mem_bandwidth_bytes=224e9,
    launch_overhead_s=4e-6,
    divergence_penalty=3.0,
    random_access_penalty=2.5,
    dependent_latency_s=4e-7,
)

#: Single core of a Xeon-X5650-like CPU.  2.67 GHz, ~1.5 sustained simple ops
#: per cycle for pointer-heavy code, ~10 GB/s single-stream bandwidth, ~50 ns
#: per out-of-cache dependent access.
XEON_X5650_SINGLE = DeviceSpec(
    name="Xeon X5650 single-core (simulated)",
    kind="cpu",
    cores=1,
    clock_hz=2.67e9,
    ops_per_cycle=1.5,
    mem_bandwidth_bytes=10e9,
    launch_overhead_s=5e-8,
    divergence_penalty=1.5,
    random_access_penalty=4.0,
    dependent_latency_s=5e-8,
)

#: Multi-core Xeon X5650 (6 physical cores, 12 hardware threads).  OpenMP-style
#: parallel regions pay a fork/join + barrier cost of ~10 µs; scaling
#: efficiency is folded into ops_per_cycle (1.1 ≈ 0.73 × 1.5).
XEON_X5650_MULTI = DeviceSpec(
    name="Xeon X5650 multi-core (simulated)",
    kind="cpu",
    cores=6,
    clock_hz=2.67e9,
    ops_per_cycle=1.1,
    mem_bandwidth_bytes=25e9,
    launch_overhead_s=5e-6,
    divergence_penalty=1.5,
    random_access_penalty=2.0,
    dependent_latency_s=5e-8,
)


_PRESETS = {
    "gpu": GTX980,
    "gtx980": GTX980,
    "cpu1": XEON_X5650_SINGLE,
    "cpu-single": XEON_X5650_SINGLE,
    "cpu": XEON_X5650_MULTI,
    "cpu-multi": XEON_X5650_MULTI,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name.

    Accepted names: ``"gpu"``/``"gtx980"``, ``"cpu-single"``/``"cpu1"``,
    ``"cpu-multi"``/``"cpu"``.
    """
    key = name.strip().lower()
    try:
        return _PRESETS[key]
    except KeyError:
        raise ValueError(
            f"Unknown device preset {name!r}; choose from {sorted(set(_PRESETS))}"
        ) from None
