"""Simulated execution devices and cost accounting.

This subpackage is the hardware substitution layer described in DESIGN.md §2:
it stands in for the paper's GTX 980 GPU and Xeon X5650 CPU.  Algorithms do
their real computation with NumPy and, alongside it, report the shape of every
bulk-parallel kernel to an :class:`ExecutionContext`, which prices it with an
analytic roofline-plus-launch-latency model.
"""

from .context import (
    ExecutionContext,
    KernelRecord,
    NullContext,
    ensure_context,
    modeled_kernel_time,
)
from .specs import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    DeviceSpec,
    get_device,
)
from .tracing import (
    PhaseBreakdown,
    compare_totals,
    format_breakdown_table,
    speedup,
    summarize_kernels,
)

__all__ = [
    "DeviceSpec",
    "GTX980",
    "XEON_X5650_SINGLE",
    "XEON_X5650_MULTI",
    "get_device",
    "ExecutionContext",
    "KernelRecord",
    "NullContext",
    "ensure_context",
    "modeled_kernel_time",
    "PhaseBreakdown",
    "summarize_kernels",
    "format_breakdown_table",
    "compare_totals",
    "speedup",
]
