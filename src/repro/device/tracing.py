"""Reporting helpers built on top of :class:`~repro.device.context.ExecutionContext`.

These utilities turn kernel traces and phase breakdowns into the tabular
summaries the experiment harness prints — most importantly the stacked
per-phase breakdown of Figure 11 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .context import ExecutionContext, KernelRecord


@dataclass(frozen=True)
class PhaseBreakdown:
    """A named algorithm run broken down into per-phase modeled times."""

    label: str
    phases: Tuple[Tuple[str, float], ...]

    @property
    def total(self) -> float:
        """Total modeled time across all phases."""
        return sum(t for _, t in self.phases)

    def as_dict(self) -> Dict[str, float]:
        """Phase name → time mapping (insertion ordered)."""
        return dict(self.phases)

    @classmethod
    def from_context(cls, label: str, ctx: ExecutionContext) -> "PhaseBreakdown":
        """Capture the current phase breakdown of ``ctx`` under ``label``."""
        return cls(label=label, phases=tuple(ctx.breakdown().items()))


def summarize_kernels(records: Iterable[KernelRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate a kernel trace by kernel name.

    Returns a mapping ``kernel name -> {"launches", "ops", "bytes", "time_s"}``
    useful for spotting which primitive dominates an algorithm.

    Thin wrapper over the shared implementation in
    :func:`repro.obs.export.summarize_kernel_records` (imported lazily to
    keep the device layer import-independent of :mod:`repro.obs`), kept for
    the established Fig-11 API.
    """
    from ..obs.export import summarize_kernel_records

    return summarize_kernel_records(records)


def format_breakdown_table(
    breakdowns: Sequence[PhaseBreakdown],
    *,
    time_unit: str = "ms",
) -> str:
    """Render a list of per-phase breakdowns as an aligned text table.

    One row per run (``label``), one column per phase encountered anywhere in
    the input (in first-appearance order), plus a total column.  This mirrors
    the stacked-bar layout of the paper's Figure 11 in textual form.
    """
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}.get(time_unit)
    if scale is None:
        raise ValueError(f"unsupported time unit {time_unit!r}")

    phase_names: List[str] = []
    for bd in breakdowns:
        for name, _ in bd.phases:
            if name not in phase_names:
                phase_names.append(name)

    header = ["run"] + [f"{p} [{time_unit}]" for p in phase_names] + [f"total [{time_unit}]"]
    rows: List[List[str]] = [header]
    for bd in breakdowns:
        lookup = bd.as_dict()
        row = [bd.label]
        for p in phase_names:
            value = lookup.get(p, 0.0) * scale
            row.append(f"{value:.2f}" if p in lookup else "-")
        row.append(f"{bd.total * scale:.2f}")
        rows.append(row)

    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def compare_totals(breakdowns: Sequence[PhaseBreakdown]) -> Dict[str, float]:
    """Return ``label -> total modeled time`` for a collection of breakdowns."""
    return {bd.label: bd.total for bd in breakdowns}


def speedup(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` speedup, guarding against division by zero."""
    if candidate <= 0:
        raise ValueError("candidate time must be positive")
    return baseline / candidate
