"""Execution contexts: kernel-level cost accounting for simulated devices.

Every "GPU" algorithm in this library is written as a sequence of
bulk-synchronous array kernels.  The actual computation is carried out with
NumPy (so results are real and testable); in parallel, each kernel reports its
*shape* — how many logical threads it would launch, how many simple operations
it performs, how many bytes it reads and writes — to an
:class:`ExecutionContext`.  The context converts those into a modeled wall
time using the :class:`~repro.device.specs.DeviceSpec` cost model and keeps a
full trace so experiment runners can produce per-phase breakdowns such as the
paper's Figure 11.

The same mechanism models CPU baselines: a sequential algorithm simply reports
``threads=1`` kernels (the launch overhead of a single-core spec is
negligible), and the multi-core spec charges an OpenMP-style fork/join cost
per parallel region.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import DeviceError
from .specs import DeviceSpec


@dataclass
class KernelRecord:
    """One recorded kernel launch (or sequential loop) with its modeled cost."""

    name: str
    phase: str
    threads: int
    ops: float
    bytes_read: float
    bytes_written: float
    launches: int
    divergent: bool
    random_access: bool
    time_s: float

    @property
    def bytes_total(self) -> float:
        """Total bytes moved through memory by this kernel."""
        return self.bytes_read + self.bytes_written


def modeled_kernel_time(
    spec: DeviceSpec,
    *,
    threads: int,
    ops: float,
    bytes_read: float = 0.0,
    bytes_written: float = 0.0,
    launches: int = 1,
    divergent: bool = False,
    random_access: bool = False,
) -> float:
    """Model the execution time of one kernel on ``spec``.

    The model is a roofline estimate with two extra terms that matter for
    irregular graph kernels:

    ``time = launches * launch_overhead + max(compute, memory, critical_path)``

    * ``compute = ops / peak_ops_per_second`` — throughput bound, scaled by
      the divergence penalty for branchy kernels;
    * ``memory = bytes / bandwidth`` — bandwidth bound, scaled by the
      random-access penalty for scattered kernels;
    * ``critical_path`` — the serial work of one thread: ``ops / threads``
      scalar operations plus, for scattered kernels, one dependent-latency
      charge per cache line each thread touches.  With millions of threads
      this term vanishes (latency is hidden); with a handful of threads — a
      single online query, the tail of a pointer-jumping round, a sequential
      CPU loop — it dominates, which is exactly the behaviour the paper's
      batch-size experiment (Fig. 6) and CPU baselines exhibit.
    """
    if launches < 0 or threads < 0 or ops < 0 or bytes_read < 0 or bytes_written < 0:
        raise DeviceError("kernel cost parameters must be non-negative")
    compute = ops / spec.peak_ops_per_second
    if divergent:
        compute *= spec.divergence_penalty
    total_bytes = bytes_read + bytes_written
    memory = total_bytes / spec.mem_bandwidth_bytes
    if random_access:
        memory *= spec.random_access_penalty
    lanes = max(threads, 1)
    critical_path = (ops / lanes) * spec.scalar_seconds_per_op
    if random_access:
        cache_lines_per_lane = (total_bytes / 64.0) / lanes
        critical_path += cache_lines_per_lane * spec.dependent_latency_s
    busy = max(compute, memory, critical_path)
    return launches * spec.launch_overhead_s + busy


class ExecutionContext:
    """Accumulates the modeled cost of an algorithm run on one device.

    Parameters
    ----------
    spec:
        The device to model.
    trace:
        When true, every kernel record is retained (needed for detailed
        breakdowns); when false only per-phase totals are kept, which is much
        lighter for large parameter sweeps.

    Usage
    -----
    >>> from repro.device import GTX980, ExecutionContext
    >>> ctx = ExecutionContext(GTX980)
    >>> with ctx.phase("preprocessing"):
    ...     ctx.kernel("scan", threads=1000, ops=2000, bytes_read=4000, bytes_written=4000)
    ...
    >>> ctx.elapsed > 0
    True
    """

    def __init__(self, spec: DeviceSpec, *, trace: bool = False) -> None:
        self.spec = spec
        self.trace = trace
        self.records: List[KernelRecord] = []
        self._phase_stack: List[str] = []
        self._phase_times: Dict[str, float] = {}
        self._phase_order: List[str] = []
        self._total_time: float = 0.0
        self._total_ops: float = 0.0
        self._total_bytes: float = 0.0
        self._total_launches: int = 0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        """Name of the innermost active phase (``""`` when outside any phase)."""
        return self._phase_stack[-1] if self._phase_stack else ""

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager tagging all enclosed kernels with phase ``name``.

        Phases may nest; kernels are attributed to the innermost phase only,
        so nested phase times never double count.
        """
        if not name:
            raise DeviceError("phase name must be non-empty")
        self._phase_stack.append(name)
        if name not in self._phase_times:
            self._phase_times[name] = 0.0
            self._phase_order.append(name)
        try:
            yield
        finally:
            popped = self._phase_stack.pop()
            if popped != name:  # pragma: no cover - defensive
                raise DeviceError("phase stack corrupted")

    # ------------------------------------------------------------------
    # Kernel recording
    # ------------------------------------------------------------------
    def kernel(
        self,
        name: str,
        *,
        threads: int,
        ops: Optional[float] = None,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        launches: int = 1,
        divergent: bool = False,
        random_access: bool = False,
    ) -> float:
        """Record one kernel launch and return its modeled time in seconds.

        ``ops`` defaults to ``threads`` (one simple operation per thread),
        which is the right default for map-style kernels.
        """
        if ops is None:
            ops = float(threads)
        time_s = modeled_kernel_time(
            self.spec,
            threads=threads,
            ops=ops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            launches=launches,
            divergent=divergent,
            random_access=random_access,
        )
        phase = self.current_phase
        self._total_time += time_s
        self._total_ops += ops
        self._total_bytes += bytes_read + bytes_written
        self._total_launches += launches
        if phase:
            self._phase_times[phase] += time_s
        if self.trace:
            self.records.append(
                KernelRecord(
                    name=name,
                    phase=phase,
                    threads=threads,
                    ops=ops,
                    bytes_read=bytes_read,
                    bytes_written=bytes_written,
                    launches=launches,
                    divergent=divergent,
                    random_access=random_access,
                    time_s=time_s,
                )
            )
        return time_s

    def sequential(self, name: str, *, ops: float, bytes_touched: float = 0.0,
                   random_access: bool = False) -> float:
        """Record a purely sequential piece of work (single thread).

        Convenience wrapper used by the CPU baselines; equivalent to a
        one-thread, one-launch :meth:`kernel` call.
        """
        return self.kernel(
            name,
            threads=1,
            ops=ops,
            bytes_read=bytes_touched,
            bytes_written=0.0,
            launches=1,
            divergent=False,
            random_access=random_access,
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total modeled time in seconds accumulated so far."""
        return self._total_time

    @property
    def total_ops(self) -> float:
        """Total simple operations recorded so far."""
        return self._total_ops

    @property
    def total_bytes(self) -> float:
        """Total bytes moved recorded so far."""
        return self._total_bytes

    @property
    def total_launches(self) -> int:
        """Total number of kernel launches / parallel regions recorded."""
        return self._total_launches

    def breakdown(self) -> Dict[str, float]:
        """Per-phase modeled times, in first-use order.

        Time recorded outside any phase is reported under ``"(untagged)"``
        only when nonzero.
        """
        out: Dict[str, float] = {}
        for name in self._phase_order:
            out[name] = self._phase_times[name]
        untagged = self._total_time - sum(self._phase_times.values())
        if untagged > 1e-15:
            out["(untagged)"] = untagged
        return out

    def reset(self) -> None:
        """Discard all accumulated cost and trace information."""
        self.records.clear()
        self._phase_stack.clear()
        self._phase_times.clear()
        self._phase_order.clear()
        self._total_time = 0.0
        self._total_ops = 0.0
        self._total_bytes = 0.0
        self._total_launches = 0

    def merge(self, other: "ExecutionContext") -> None:
        """Fold another context's totals (and trace) into this one.

        Both contexts must model the same device.  Useful when an experiment
        runs sub-algorithms with private contexts and wants a combined total.
        """
        if other.spec is not self.spec and other.spec != self.spec:
            raise DeviceError("cannot merge contexts for different devices")
        self._total_time += other._total_time
        self._total_ops += other._total_ops
        self._total_bytes += other._total_bytes
        self._total_launches += other._total_launches
        for name in other._phase_order:
            if name not in self._phase_times:
                self._phase_times[name] = 0.0
                self._phase_order.append(name)
            self._phase_times[name] += other._phase_times[name]
        if self.trace:
            self.records.extend(other.records)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ExecutionContext(device={self.spec.name!r}, elapsed={self.elapsed:.6f}s, "
            f"launches={self.total_launches})"
        )


class NullContext(ExecutionContext):
    """An :class:`ExecutionContext` that records nothing.

    Handy default so library functions can always call ``ctx.kernel(...)``
    without branching on ``ctx is None``; the accounting overhead is a cheap
    constant either way, but ``NullContext`` guarantees zero memory growth.
    """

    def __init__(self, spec: Optional[DeviceSpec] = None) -> None:
        from .specs import GTX980

        super().__init__(spec or GTX980, trace=False)

    def kernel(self, name: str, **kwargs) -> float:  # type: ignore[override]
        return 0.0

    def sequential(self, name: str, **kwargs) -> float:  # type: ignore[override]
        return 0.0


def ensure_context(ctx: Optional[ExecutionContext], spec: Optional[DeviceSpec] = None
                   ) -> ExecutionContext:
    """Return ``ctx`` unchanged, or a fresh :class:`NullContext` when ``None``."""
    if ctx is None:
        return NullContext(spec)
    return ctx
