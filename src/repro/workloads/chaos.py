"""Chaos scenario family: scripted faults riding on replayed traffic.

A :class:`ChaosScenario` pairs a plain traffic
:class:`~repro.workloads.scenario.Scenario` with a deterministic fault
schedule (:class:`~repro.service.faults.FaultEvent` tuples) and an optional
hedging delay.  Replaying one against a :class:`~repro.service.ClusterService`
exercises the fault-tolerance layer end to end: kills land mid-phase so the
per-phase report isolates the outage window, recoveries land on phase
boundaries, and the cluster's retry/failover machinery must keep every
admitted query answered — :func:`~repro.workloads.replay.replay` verifies
bit-identical answers against the oracle when asked.

The family (``make_chaos_scenario`` names):

``chaos-replica-kill``
    Steady load in three phases (*pre* / *outage* / *post*); replica 0 is
    killed at the start of *outage* and recovered at its end.  The outage
    phase's ``latency_p99_s`` is the kill-window tail the chaos benchmark
    gates in CI.
``chaos-kill-flash``
    A flash crowd whose spike coincides with a replica kill — admission
    control sheds *and* failover retries at once — followed by a seeded
    Poisson storm of transient batch failures during the recovery phase.
``chaos-rolling-restart``
    Every replica is killed and recovered in sequence, one per phase, as in
    a rolling deploy; no phase ever loses more than one replica.
``chaos-scale-out``
    Load on a 2-copy placement; a fresh replica joins mid-trace
    (``add_replica``) and the original replica 0 is drained and retired
    afterwards, forcing an index handoff while traffic keeps flowing.
``chaos-autoscale``
    The kill-flash traffic shape with the kill but *no scripted membership
    help*: replica 0 dies as the flash crowd hits, and restoring capacity
    is left to a reactive controller
    (``replay_chaos(..., controller=Controller(slo, autoscale=policy))``).
    Replayed without a controller it is simply a harder kill-flash.

Fault times are absolute simulated seconds from the replay start, so chaos
scenarios assume a cluster whose clock starts at ``0.0`` (the default);
:func:`replay_chaos` builds one.  Transient-fault timing reuses the seeded
Poisson arrival machinery, so fault schedules are as reproducible as the
traffic they disturb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..control import Controller
from ..errors import ConfigurationError
from ..obs.events import TraceRecorder
from ..service import BatchPolicy, ClusterService, Router
from ..service.faults import FaultEvent, FaultInjector
from .arrivals import PoissonArrivals
from .replay import RetryPolicy, ScenarioReport, replay
from .scenario import _MIN_PHASE_S, Phase, Scenario, TrafficSource

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "make_chaos_scenario",
    "replay_chaos",
    "transient_storm",
]


@dataclass(frozen=True)
class ChaosScenario:
    """A traffic scenario plus the fault schedule injected while it runs."""

    #: The traffic side — replayed unchanged.
    scenario: Scenario
    #: Scripted faults, in any order; the injector sorts by time.
    events: Tuple[FaultEvent, ...]
    #: Suggested hedging delay for this scenario (``None`` = no hedging);
    #: :func:`replay_chaos` uses it unless overridden.
    hedge_delay_s: Optional[float] = None
    #: One-line human description.
    description: str = ""

    @property
    def name(self) -> str:
        """The underlying scenario's name."""
        return self.scenario.name

    def injector(self) -> FaultInjector:
        """A fresh, unconsumed injector for one replay.

        Injectors are stateful cursors; every replay needs its own.
        """
        return FaultInjector(self.events)

    def min_replicas(self) -> int:
        """Smallest cluster this schedule targets without membership help.

        The highest replica id named by a non-``add`` event, plus one —
        events that fire after an ``add`` may target the minted id, so
        :func:`replay_chaos` validates against the add-adjusted count.
        """
        fixed = [e.replica for e in self.events if e.action != "add"]
        return max(fixed, default=0) + 1


def _dur(seconds: float, scale: float) -> float:
    return max(_MIN_PHASE_S, seconds * scale)


def transient_storm(
    rate_per_s: float,
    duration_s: float,
    *,
    replica: int,
    seed: int,
    t0: float = 0.0,
) -> Tuple[FaultEvent, ...]:
    """Poisson-timed transient batch failures on one replica.

    Each event fails exactly one batch served by ``replica`` (the cluster
    retries it on another copy).  Timing reuses the seeded
    :class:`~repro.workloads.arrivals.PoissonArrivals` process, so the storm
    is as reproducible as the traffic it disturbs.

    >>> storm = transient_storm(200.0, 0.05, replica=1, seed=7)
    >>> all(e.action == "transient" and e.replica == 1 for e in storm)
    True
    >>> storm == transient_storm(200.0, 0.05, replica=1, seed=7)
    True
    """
    times = PoissonArrivals(rate_per_s).generate(
        t0, duration_s, np.random.default_rng(seed)
    )
    return tuple(
        FaultEvent(float(t), "transient", replica=replica) for t in times
    )


def _source(seed: int, nodes_scale: float, *, replicas: int = 0) -> TrafficSource:
    return TrafficSource(
        dataset="chaos",
        nodes=max(64, int(16384 * nodes_scale)),
        tree_seed=seed,
        key_seed=seed + 1,
        replicas=replicas,
    )


def replica_kill(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> ChaosScenario:
    """Kill one replica mid-steady-state, recover it one phase later.

    The kill lands a quarter of the way *into* the short outage phase, not
    on its boundary: the queries the kill strands arrived just before it,
    so a boundary kill would charge their inflated retry latencies to the
    healthy phase before it.  Landing mid-phase keeps the whole blast
    radius — stranded arrivals, eviction, failover — inside the outage
    phase, whose ``latency_p99_s`` is the kill-window tail the chaos
    benchmark gates in CI.
    """
    rate = 150_000.0
    pre = _dur(0.08, scale)
    outage = _dur(0.02, scale)
    post = _dur(0.08, scale)
    scenario = Scenario(
        name="chaos-replica-kill",
        sources=(_source(seed, nodes_scale),),
        phases=(
            Phase("pre", PoissonArrivals(rate), pre),
            Phase("outage", PoissonArrivals(rate), outage),
            Phase("post", PoissonArrivals(rate), post),
        ),
        seed=seed,
        description="steady load with a replica down for the middle phase",
    )
    events = (
        FaultEvent(pre + 0.25 * outage, "kill", replica=0),
        FaultEvent(pre + outage, "recover", replica=0),
    )
    return ChaosScenario(
        scenario=scenario,
        events=events,
        description="replica 0 dies a quarter into the outage phase; that "
        "phase's p99 is the kill-window tail",
    )


def kill_flash(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> ChaosScenario:
    """A replica dies exactly when the flash crowd hits."""
    calm = _dur(0.08, scale)
    flash = _dur(0.02, scale)
    recovery = _dur(0.08, scale)
    scenario = Scenario(
        name="chaos-kill-flash",
        sources=(_source(seed, nodes_scale),),
        phases=(
            Phase("calm", PoissonArrivals(100_000.0), calm),
            Phase("flash", PoissonArrivals(2_000_000.0), flash),
            Phase("recovery", PoissonArrivals(100_000.0), recovery),
        ),
        seed=seed,
        description="flash crowd landing on a degraded cluster",
    )
    events = (
        FaultEvent(calm, "kill", replica=0),
        FaultEvent(calm + flash, "recover", replica=0),
    ) + transient_storm(
        200.0, recovery, replica=1, seed=seed + 7, t0=calm + flash
    )
    return ChaosScenario(
        scenario=scenario,
        events=events,
        description="replica 0 dies at the flash edge; transient batch "
        "failures dog replica 1 through the recovery phase",
    )


def rolling_restart(
    *,
    scale: float = 1.0,
    seed: int = 0,
    nodes_scale: float = 1.0,
    n_replicas: int = 3,
) -> ChaosScenario:
    """Restart every replica in sequence, one per phase."""
    if n_replicas < 2:
        raise ConfigurationError(
            "a rolling restart needs at least 2 replicas"
        )
    rate = 120_000.0
    warmup = _dur(0.04, scale)
    window = _dur(0.06, scale)
    phases = [Phase("warmup", PoissonArrivals(rate), warmup)]
    events = []
    t = warmup
    for r in range(n_replicas):
        phases.append(Phase(f"restart-{r}", PoissonArrivals(rate), window))
        events.append(FaultEvent(t, "kill", replica=r))
        events.append(FaultEvent(t + 0.5 * window, "recover", replica=r))
        t += window
    phases.append(Phase("settle", PoissonArrivals(rate), _dur(0.04, scale)))
    scenario = Scenario(
        name="chaos-rolling-restart",
        sources=(_source(seed, nodes_scale),),
        phases=tuple(phases),
        seed=seed,
        description=f"kill/recover each of {n_replicas} replicas in turn",
    )
    return ChaosScenario(
        scenario=scenario,
        events=tuple(events),
        description="a rolling deploy: each restart-<r> phase loses exactly "
        "one replica for its first half",
    )


def scale_out(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> ChaosScenario:
    """Scale out under load, then drain and retire the original primary."""
    rate = 250_000.0
    loaded = _dur(0.10, scale)
    scaled = _dur(0.10, scale)
    scenario = Scenario(
        name="chaos-scale-out",
        sources=(_source(seed, nodes_scale, replicas=2),),
        phases=(
            Phase("loaded", PoissonArrivals(rate), loaded),
            Phase("scaled", PoissonArrivals(rate), scaled),
        ),
        seed=seed,
        description="heavy steady load across an elastic membership change",
    )
    events = (
        FaultEvent(loaded, "add"),
        FaultEvent(loaded + 0.5 * scaled, "retire", replica=0),
    )
    return ChaosScenario(
        scenario=scenario,
        events=events,
        description="a replica joins at the phase boundary (lazy index "
        "handoff), then replica 0 drains and retires mid-phase",
    )


def autoscale_flash(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> ChaosScenario:
    """A flash crowd, a kill at its edge, and no scripted membership help.

    The traffic and kill shape of :func:`kill_flash`, minus the transient
    storm: replica 0 dies exactly when the flash hits and recovers when it
    passes.  No ``add`` event ever fires — the schedule deliberately
    leaves the cluster short-handed so that restoring (and later
    returning) capacity is the job of a reactive autoscaler observing the
    replay.  Replayed without one, it is simply a degraded flash crowd.
    """
    calm = _dur(0.08, scale)
    flash = _dur(0.02, scale)
    recovery = _dur(0.08, scale)
    scenario = Scenario(
        name="chaos-autoscale",
        sources=(_source(seed, nodes_scale),),
        phases=(
            Phase("calm", PoissonArrivals(100_000.0), calm),
            Phase("flash", PoissonArrivals(2_000_000.0), flash),
            Phase("recovery", PoissonArrivals(100_000.0), recovery),
        ),
        seed=seed,
        description="flash crowd on a degraded cluster; capacity recovery "
        "is the autoscaler's job",
    )
    events = (
        FaultEvent(calm, "kill", replica=0),
        FaultEvent(calm + flash, "recover", replica=0),
    )
    return ChaosScenario(
        scenario=scenario,
        events=events,
        description="replica 0 dies at the flash edge; no scripted adds — "
        "a reactive controller must close the capacity gap",
    )


_Builder = Callable[..., ChaosScenario]

#: Name -> builder registry, mirroring ``SCENARIOS``.
CHAOS_SCENARIOS: Dict[str, _Builder] = {
    "chaos-replica-kill": replica_kill,
    "chaos-kill-flash": kill_flash,
    "chaos-rolling-restart": rolling_restart,
    "chaos-scale-out": scale_out,
    "chaos-autoscale": autoscale_flash,
}


def make_chaos_scenario(
    name: str, *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> ChaosScenario:
    """Build a named chaos scenario, scaled like ``make_scenario``.

    >>> chaos = make_chaos_scenario("chaos-replica-kill", scale=0.2)
    >>> [e.action for e in chaos.events]
    ['kill', 'recover']
    >>> make_chaos_scenario("chaos-nope")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown chaos scenario 'chaos-nope'; \
known: chaos-autoscale, chaos-kill-flash, chaos-replica-kill, \
chaos-rolling-restart, chaos-scale-out
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    if nodes_scale <= 0:
        raise ConfigurationError("nodes_scale must be positive")
    try:
        builder = CHAOS_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(CHAOS_SCENARIOS))
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; known: {known}"
        ) from None
    return builder(scale=scale, seed=seed, nodes_scale=nodes_scale)


def replay_chaos(
    chaos: ChaosScenario,
    *,
    n_replicas: int = 2,
    policy: Optional[BatchPolicy] = None,
    router: Optional[Router] = None,
    max_pending: Optional[int] = None,
    answer_cache_bytes: Optional[int] = None,
    dedup: bool = False,
    hedge_delay_s: Optional[float] = None,
    max_retries: int = 3,
    admission_window_s: float = 5e-3,
    warm: bool = True,
    check_answers: bool = False,
    seed: Optional[int] = None,
    observer: Optional[TraceRecorder] = None,
    retry: Optional[RetryPolicy] = None,
    controller: Optional[Controller] = None,
) -> ScenarioReport:
    """Build a fresh fault-injected cluster and replay ``chaos`` on it.

    The cluster starts at simulated time ``0.0`` with a fresh
    :meth:`ChaosScenario.injector`; ``hedge_delay_s`` falls back to the
    scenario's suggestion.  A ``controller`` observes every admission
    block exactly as in :func:`~repro.workloads.replay.replay` — with an
    :class:`~repro.control.AutoscalePolicy` attached it may add or retire
    replicas while the schedule injects faults.  Raises
    :class:`~repro.errors.ConfigurationError` when the schedule names a
    replica the cluster (plus any earlier ``add`` events) will not have —
    failing fast beats a mid-replay :class:`~repro.errors.ServiceError`.

    >>> report = replay_chaos(
    ...     make_chaos_scenario("chaos-replica-kill", scale=0.2),
    ...     n_replicas=2, check_answers=True,
    ... )
    >>> report.queries_admitted == report.queries_offered > 0
    True
    """
    if n_replicas < chaos.min_replicas():
        adds = 0
        for event in sorted(chaos.events, key=lambda e: e.time_s):
            if event.action == "add":
                adds += 1
            elif event.replica >= n_replicas + adds:
                raise ConfigurationError(
                    f"chaos scenario {chaos.name!r} targets replica "
                    f"{event.replica} but only {n_replicas + adds} exist "
                    f"at t={event.time_s:.3f}"
                )
    cluster = ClusterService(
        n_replicas,
        policy=policy,
        router=router,
        max_pending=max_pending,
        answer_cache_bytes=answer_cache_bytes,
        dedup=dedup,
        fault_injector=chaos.injector(),
        hedge_delay_s=(
            hedge_delay_s if hedge_delay_s is not None else chaos.hedge_delay_s
        ),
        max_retries=max_retries,
    )
    return replay(
        cluster,
        chaos.scenario,
        admission_window_s=admission_window_s,
        warm=warm,
        check_answers=check_answers,
        seed=seed,
        observer=observer,
        retry=retry,
        controller=controller,
    )
