"""Declarative scenario specs: dataset mix × arrival profile × duration × seed.

A :class:`Scenario` is a complete, self-contained description of a traffic
experiment: which trees exist (:class:`TrafficSource` — size, share of the
traffic, key distribution, replication), what the arrival process looks like
over time (:class:`Phase` — one arrival process per named phase, played back
to back), and one seed that makes the whole thing reproducible.  The
:func:`~repro.workloads.replay.replay` harness turns a scenario plus any
service or cluster into a :class:`~repro.workloads.replay.ScenarioReport`.

The module also ships a small library of named scenarios —
:data:`SCENARIOS` / :func:`make_scenario` — that the scenario suite, the
``bench_scenarios`` benchmark and the docs all share:

``steady``
    One uniformly hit tree at a constant deterministic rate; the degenerate
    case that reproduces the legacy ``offered_load_sweep`` numbers.
``diurnal``
    A raised-cosine day/night cycle (inhomogeneous Poisson): the scheduler
    sees everything from trickle to rush hour in one run.
``flash-crowd``
    Calm Poisson traffic, then a flash phase at ~50× the rate, then
    recovery — the scenario that must push a bounded cluster into
    :class:`~repro.errors.Overloaded` shedding.
``skewed-hotspot``
    Two repeated-query streams (a Zipf-ranked request pool and a flat hot
    query set) under steady Poisson load: stresses answer-cache behaviour,
    cache affinity and load imbalance.
``multi-tenant``
    Three tenants of very different sizes and key shapes sharing one
    cluster, with a bursty (Markov-modulated) second phase.

All named scenarios take a ``scale`` knob that stretches or shrinks phase
durations (query volume scales with it; rates — and therefore the overload
behaviour — do not change) and a ``nodes_scale`` knob that multiplies every
source's tree size (catalog scale: 1.0 keeps the library's test-friendly
defaults; the skew benchmark replays at production catalog sizes, where the
query kernel's node-table gathers pay real memory-hierarchy costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    InhomogeneousPoissonArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    diurnal_intensity,
)
from .keys import (
    HotspotKeys,
    KeyDistribution,
    QueryPoolKeys,
    UniformKeys,
    ZipfKeys,
)

__all__ = [
    "TrafficSource",
    "Phase",
    "Scenario",
    "SCENARIOS",
    "make_scenario",
]

#: Phase durations are floored here so a tiny ``scale`` still leaves every
#: phase long enough to contain several admission windows.
_MIN_PHASE_S = 0.02


@dataclass(frozen=True)
class TrafficSource:
    """One dataset in a scenario's mix, with its share of the traffic.

    Parameters
    ----------
    dataset:
        Name the tree is registered (and queried) under.
    nodes:
        Tree size; the replay harness generates a random attachment tree of
        this size with ``tree_seed``.
    weight:
        Relative share of arrivals routed to this dataset (normalized over
        the scenario's sources).
    keys:
        Key distribution queries against this dataset are drawn from.
    tree_seed:
        Seed for the tree generator.
    key_seed:
        Seed for this source's key stream; ``None`` derives one from the
        scenario seed and the source's position.
    replicas:
        Replica count when the target is a cluster (clamped to the cluster
        size); 0 means "replicate onto every worker".  Ignored for a
        single-node service.
    """

    dataset: str
    nodes: int
    weight: float = 1.0
    keys: KeyDistribution = field(default_factory=UniformKeys)
    tree_seed: int = 0
    key_seed: Optional[int] = None
    replicas: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError("a traffic source needs at least one node")
        if self.weight <= 0:
            raise ConfigurationError("source weights must be positive")
        if self.replicas < 0:
            raise ConfigurationError("replicas must be non-negative")


@dataclass(frozen=True)
class Phase:
    """One contiguous stretch of a scenario with a single arrival process."""

    name: str
    arrivals: ArrivalProcess
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("phase duration must be positive")


@dataclass(frozen=True)
class Scenario:
    """A reproducible traffic experiment: sources × phases × seed.

    ``mix_stride`` controls how dataset assignment is drawn for multi-source
    scenarios: arrivals are assigned in runs of this many consecutive
    queries (sessions/bursts, the realistic shape), which also keeps the
    replay harness's column blocks large.  1 gives iid per-query assignment.

    >>> from repro.workloads import DeterministicArrivals, Scenario, \\
    ...     TrafficSource, Phase
    >>> s = Scenario(
    ...     name="tiny",
    ...     sources=(TrafficSource("t", nodes=64),),
    ...     phases=(Phase("all", DeterministicArrivals(1000.0), 0.05),),
    ... )
    >>> s.total_duration_s
    0.05
    >>> round(s.expected_queries())
    50
    """

    name: str
    sources: Tuple[TrafficSource, ...]
    phases: Tuple[Phase, ...]
    seed: int = 0
    mix_stride: int = 64
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sources:
            raise ConfigurationError("a scenario needs at least one source")
        if not self.phases:
            raise ConfigurationError("a scenario needs at least one phase")
        names = [s.dataset for s in self.sources]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate source datasets: {names}")
        if self.mix_stride < 1:
            raise ConfigurationError("mix_stride must be at least 1")

    @property
    def total_duration_s(self) -> float:
        """Summed duration of every phase."""
        return sum(p.duration_s for p in self.phases)

    def expected_queries(self) -> float:
        """Expected arrival count over the whole scenario."""
        return sum(p.arrivals.expected_count(p.duration_s) for p in self.phases)


def _dur(seconds: float, scale: float) -> float:
    return max(_MIN_PHASE_S, seconds * scale)


def _nodes(base: int, nodes_scale: float) -> int:
    if nodes_scale <= 0:
        raise ConfigurationError("nodes_scale must be positive")
    return max(64, int(base * nodes_scale))


def steady(*, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0) -> Scenario:
    """One uniform tree at a constant deterministic rate (the legacy load).

    Deliberately identical in spirit — and, seeded carefully, identical bit
    for bit — to the stream :func:`offered_load_sweep` has always used:
    uniform keys from ``seed + 1`` over a tree from ``seed``, arrivals at a
    flat 200k q/s.  Nothing here should ever shed.
    """
    return Scenario(
        name="steady",
        description="constant-rate uniform traffic on one tree",
        sources=(
            TrafficSource(
                "steady",
                nodes=_nodes(16_384, nodes_scale),
                tree_seed=seed,
                key_seed=seed + 1,
            ),
        ),
        phases=(
            Phase("steady", DeterministicArrivals(200_000.0), _dur(0.25, scale)),
        ),
        seed=seed,
    )


def diurnal(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> Scenario:
    """A day/night cycle: raised-cosine intensity from 40k to 280k q/s."""
    duration = _dur(0.25, scale)
    intensity = diurnal_intensity(40_000.0, 280_000.0, period_s=duration)
    return Scenario(
        name="diurnal",
        description="sinusoidal day/night load (inhomogeneous Poisson)",
        sources=(
            TrafficSource("diurnal", nodes=_nodes(16_384, nodes_scale), tree_seed=seed),
        ),
        phases=(
            Phase(
                "cycle",
                InhomogeneousPoissonArrivals(intensity, peak_qps=280_000.0),
                duration,
            ),
        ),
        seed=seed,
    )


def flash_crowd(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> Scenario:
    """Calm traffic, a ~50× flash, then recovery.

    The flash phase offers load far beyond any bounded queue a sane
    operator would configure, so on a cluster with ``max_pending`` set this
    scenario *must* shed — the benchmark asserts it does (and that
    ``steady`` does not).
    """
    calm = PoissonArrivals(100_000.0)
    flash = PoissonArrivals(5_000_000.0)
    return Scenario(
        name="flash-crowd",
        description="calm Poisson load with a 50x flash spike",
        sources=(
            TrafficSource("flash", nodes=_nodes(16_384, nodes_scale), tree_seed=seed),
        ),
        phases=(
            Phase("calm", calm, _dur(0.08, scale)),
            Phase("flash", flash, _dur(0.02, scale)),
            Phase("recovery", calm, _dur(0.08, scale)),
        ),
        seed=seed,
    )


def skewed_hotspot(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> Scenario:
    """Two skewed repeated-query streams under steady Poisson load.

    Both sources draw from :class:`QueryPoolKeys` — finite pools of query
    *pairs* revisited over and over — because pair-level repetition is the
    quantity skew-aware serving (intra-batch dedup, the answer cache, any
    memoizing layer) actually sees.  Node-level Zipf draws ``x`` and ``y``
    independently and therefore almost never repeats a whole pair over a
    non-toy tree, which would contradict the hotspot regime this scenario
    exists to model ("the same queries recomputed thousands of times per
    second").  The ``zipfy`` source is a popularity-ranked request stream
    (Zipf over pool ranks, heavy tail of rarely-repeated queries); the
    ``hotspot`` source is a flat hot set of queries hammered uniformly.
    Traffic arrives in sessions of 32768 consecutive same-dataset queries
    (``mix_stride``), the bursty shape hot replayed/mirrored traffic has in
    practice; replay admission windows cut these into front-door-sized
    blocks, so queue-bound targets still observe admission every tick.
    """
    return Scenario(
        name="skewed-hotspot",
        description="Zipf-ranked + hot-set repeated-query pools, two trees",
        sources=(
            TrafficSource(
                "zipfy",
                nodes=_nodes(32_768, nodes_scale),
                weight=0.6,
                keys=QueryPoolKeys(
                    pool_fraction=1.0 / 128.0, alpha=1.3, pool_seed=seed + 11
                ),
                tree_seed=seed,
            ),
            TrafficSource(
                "hotspot",
                nodes=_nodes(8_192, nodes_scale),
                weight=0.4,
                keys=QueryPoolKeys(
                    pool_fraction=1.0 / 256.0, alpha=0.0, pool_seed=seed + 12
                ),
                tree_seed=seed + 1,
            ),
        ),
        phases=(Phase("steady", PoissonArrivals(150_000.0), _dur(0.25, scale)),),
        seed=seed,
        mix_stride=32768,
    )


def multi_tenant(
    *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> Scenario:
    """Three very different tenants sharing a cluster, then a bursty phase.

    A large uniformly hit tenant, a mid-size Zipf tenant and a small
    hot-set tenant split the traffic 5:3:2; the second phase swaps the
    smooth Poisson arrivals for a Markov-modulated on/off process, so the
    routers see both steady imbalance and correlated bursts.
    """
    burst = MarkovModulatedArrivals(
        on_qps=600_000.0, mean_on_s=0.004, mean_off_s=0.008, off_qps=50_000.0
    )
    return Scenario(
        name="multi-tenant",
        description="three tenants (uniform/Zipf/hot-set) + a bursty phase",
        sources=(
            TrafficSource(
                "tenant-large",
                nodes=_nodes(65_536, nodes_scale),
                weight=0.5,
                tree_seed=seed,
            ),
            TrafficSource(
                "tenant-medium",
                nodes=_nodes(16_384, nodes_scale),
                weight=0.3,
                keys=ZipfKeys(alpha=1.1),
                tree_seed=seed + 1,
                replicas=2,
            ),
            TrafficSource(
                "tenant-small",
                nodes=_nodes(4_096, nodes_scale),
                weight=0.2,
                keys=HotspotKeys(),
                tree_seed=seed + 2,
                replicas=1,
            ),
        ),
        phases=(
            Phase("steady", PoissonArrivals(180_000.0), _dur(0.12, scale)),
            Phase("bursty", burst, _dur(0.12, scale)),
        ),
        seed=seed,
    )


#: Named scenario builders, keyed by scenario name.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "steady": steady,
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "skewed-hotspot": skewed_hotspot,
    "multi-tenant": multi_tenant,
}


def make_scenario(
    name: str, *, scale: float = 1.0, seed: int = 0, nodes_scale: float = 1.0
) -> Scenario:
    """Build a named scenario (see :data:`SCENARIOS` for the library).

    ``scale`` stretches phase durations (traffic volume); ``nodes_scale``
    multiplies every source's tree size (catalog scale).

    >>> make_scenario("steady").name
    'steady'
    >>> sorted(SCENARIOS)
    ['diurnal', 'flash-crowd', 'multi-tenant', 'skewed-hotspot', 'steady']
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios: {sorted(SCENARIOS)}"
        ) from None
    return builder(scale=scale, seed=seed, nodes_scale=nodes_scale)
