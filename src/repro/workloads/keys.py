"""Key-distribution models: *which* nodes a query stream asks about.

Arrival processes (:mod:`repro.workloads.arrivals`) decide *when* queries
land; these models decide *what* they ask.  The distinction matters for the
serving stack because node choice drives cache behaviour and — through the
dataset mix of a :class:`~repro.workloads.scenario.Scenario` — the load
balance the routers and consistent-hash placement actually see:

* :class:`UniformKeys` — every node pair equally likely, the legacy
  benchmark workload (bit-compatible with
  :func:`repro.graphs.trees.generate_random_queries` given the same seed);
* :class:`ZipfKeys` — node popularity follows a power law
  (``P(rank r) ∝ 1 / r**alpha``), the empirical shape of social-graph and
  content-catalog access patterns;
* :class:`HotspotKeys` — a two-tier mixture: a small "hot set" of nodes
  absorbs a fixed share of the traffic, the rest is uniform background;
* :class:`QueryPoolKeys` — *pair-level* repetition: a finite pool of query
  pairs (drawn once over the whole node range) that the traffic revisits,
  uniformly or Zipf-ranked.  The node-level models above draw ``x`` and
  ``y`` independently, which concentrates traffic on hot *nodes* but almost
  never repeats whole *pairs* over a large tree; real request streams
  repeat whole queries, which is the regime memoizing layers (the serving
  stack's answer cache, any result CDN) actually exploit.

Every model draws from a caller-supplied :class:`numpy.random.Generator`
with a documented draw order (first the ``xs`` array, then the ``ys``
array, each in one bulk call — :class:`QueryPoolKeys` draws one bulk array
of pool ranks instead), so a scenario's key stream is reproducible and
independent of how the replay harness chunks its submissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "HotspotKeys",
    "QueryPoolKeys",
]


class KeyDistribution:
    """Base class: samples ``(xs, ys)`` query-node pairs for one dataset."""

    def sample(
        self, rng: np.random.Generator, size: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``size`` node pairs for a tree of ``n`` nodes (int64, in ``[0, n)``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class UniformKeys(KeyDistribution):
    """Uniform node pairs — the legacy benchmark workload.

    Draws ``xs`` then ``ys`` with two bulk ``integers`` calls, which is
    exactly what :func:`repro.graphs.trees.generate_random_queries` does:
    seeded identically, the two produce bit-identical query streams (the
    steady-scenario equivalence test relies on this).

    >>> import numpy as np
    >>> xs, ys = UniformKeys().sample(np.random.default_rng(1), 4, 10)
    >>> bool((xs < 10).all()) and bool((ys < 10).all())
    True
    """

    def sample(
        self, rng: np.random.Generator, size: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        xs = rng.integers(0, n, size=size, dtype=np.int64)
        ys = rng.integers(0, n, size=size, dtype=np.int64)
        return xs, ys


@dataclass(frozen=True)
class ZipfKeys(KeyDistribution):
    """Zipf-skewed node pairs: node ``i`` has popularity ``∝ 1/(i+1)**alpha``.

    Bounded-support Zipf via inverse-CDF sampling (``searchsorted`` on the
    cumulative popularity), so the skew is exact for any ``n`` — unlike
    ``numpy``'s unbounded ``zipf`` sampler, which needs rejection to bound.
    Lower node ids are hotter; tree generators in this repo label nodes
    arbitrarily, so "the hot nodes" are an arbitrary fixed subset, which is
    all a cache or load-balance experiment needs.

    >>> import numpy as np
    >>> xs, ys = ZipfKeys(alpha=1.5).sample(np.random.default_rng(2), 2000, 100)
    >>> counts = np.bincount(xs, minlength=100)
    >>> bool(counts[0] > counts[10] > 0)   # rank-0 node much hotter than rank 10
    True
    """

    alpha: float = 1.1
    _cdf_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    def _cdf(self, n: int) -> np.ndarray:
        cdf = self._cdf_cache.get(n)
        if cdf is None:
            weights = np.arange(1, n + 1, dtype=np.float64) ** -self.alpha
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf_cache[n] = cdf
        return cdf

    def _draw(self, rng: np.random.Generator, size: int, n: int) -> np.ndarray:
        cdf = self._cdf(n)
        u = rng.random(size)
        return np.searchsorted(cdf, u, side="right").astype(np.int64)

    def sample(
        self, rng: np.random.Generator, size: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        xs = self._draw(rng, size, n)
        ys = self._draw(rng, size, n)
        return xs, ys

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ZipfKeys(alpha={self.alpha})"


@dataclass(frozen=True)
class HotspotKeys(KeyDistribution):
    """A hot-set mixture: ``hot_weight`` of traffic hits a small node subset.

    The hot set is the first ``ceil(hot_fraction * n)`` node ids; each drawn
    node comes from the hot set with probability ``hot_weight`` and from the
    whole id range otherwise.  ``hot_fraction=0.01, hot_weight=0.9`` is the
    classic "1% of keys take 90% of traffic" cache stress.

    >>> import numpy as np
    >>> keys = HotspotKeys(hot_fraction=0.1, hot_weight=0.9)
    >>> xs, ys = keys.sample(np.random.default_rng(3), 5000, 1000)
    >>> hot_share = float((xs < 100).mean())   # hot set = ids [0, 100)
    >>> 0.85 < hot_share < 0.97
    True
    """

    hot_fraction: float = 0.01
    hot_weight: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ConfigurationError("hot_weight must be in [0, 1]")

    def _draw(self, rng: np.random.Generator, size: int, n: int) -> np.ndarray:
        hot_n = max(1, int(np.ceil(self.hot_fraction * n)))
        hot = rng.random(size) < self.hot_weight
        nodes = rng.integers(0, n, size=size, dtype=np.int64)
        hot_nodes = rng.integers(0, hot_n, size=size, dtype=np.int64)
        return np.where(hot, hot_nodes, nodes)

    def sample(
        self, rng: np.random.Generator, size: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        xs = self._draw(rng, size, n)
        ys = self._draw(rng, size, n)
        return xs, ys

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"HotspotKeys(hot_fraction={self.hot_fraction}, "
            f"hot_weight={self.hot_weight})"
        )


@dataclass(frozen=True)
class QueryPoolKeys(KeyDistribution):
    """A finite pool of repeated query pairs over the whole node range.

    The pool — ``max(min_pool, pool_fraction * n)`` node pairs, drawn
    uniformly over ``[0, n)`` from ``pool_seed`` (memoized per ``n``,
    independent of the caller's rng so the pool is a property of the
    workload, not of where the stream is cut) — models a catalog of
    *requests*: every emitted query revisits a pool pair.  ``alpha``
    selects which: 0 draws pool ranks uniformly (a flat hot set of
    queries), positive values draw them Zipf-ranked
    (``P(rank r) ∝ 1/r**alpha`` — a popularity-ranked request stream).

    This is the distribution that makes pair-level repetition — the
    quantity an answer cache sees — independent of tree size: node-level
    skew cannot repeat whole pairs over a large tree because ``x`` and
    ``y`` are drawn independently.

    >>> import numpy as np
    >>> keys = QueryPoolKeys(pool_fraction=0.01, pool_seed=3)
    >>> xs, ys = keys.sample(np.random.default_rng(5), 5000, 10_000)
    >>> pairs = set(zip(xs.tolist(), ys.tolist()))
    >>> len(pairs) <= 100          # every query comes from the 100-pair pool
    True
    """

    pool_fraction: float = 1.0 / 64.0
    alpha: float = 0.0
    pool_seed: int = 0
    min_pool: int = 64
    _pools: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    _cdf_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ConfigurationError("pool_fraction must be in (0, 1]")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.min_pool < 1:
            raise ConfigurationError("min_pool must be positive")

    def pool_size(self, n: int) -> int:
        """Number of pool pairs for a tree of ``n`` nodes."""
        return max(self.min_pool, int(self.pool_fraction * n))

    def _pool(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        pool = self._pools.get(n)
        if pool is None:
            size = self.pool_size(n)
            rng = np.random.default_rng(self.pool_seed)
            pool = (
                rng.integers(0, n, size=size, dtype=np.int64),
                rng.integers(0, n, size=size, dtype=np.int64),
            )
            self._pools[n] = pool
        return pool

    def _cdf(self, size: int) -> np.ndarray:
        cdf = self._cdf_cache.get(size)
        if cdf is None:
            weights = np.arange(1, size + 1, dtype=np.float64) ** -self.alpha
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf_cache[size] = cdf
        return cdf

    def sample(
        self, rng: np.random.Generator, size: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        pool_x, pool_y = self._pool(n)
        if self.alpha == 0.0:
            ranks = rng.integers(0, pool_x.size, size=size, dtype=np.int64)
        else:
            ranks = np.searchsorted(
                self._cdf(pool_x.size), rng.random(size), side="right"
            ).astype(np.int64)
        return pool_x[ranks], pool_y[ranks]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"QueryPoolKeys(pool_fraction={self.pool_fraction}, "
            f"alpha={self.alpha})"
        )
