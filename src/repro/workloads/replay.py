"""Replay a :class:`~repro.workloads.scenario.Scenario` against a service.

:func:`replay` is the bridge between the declarative scenario world and the
serving stack: it registers the scenario's trees on any
:class:`~repro.service.LCAQueryService` or
:class:`~repro.service.ClusterService`, generates the full timed query trace
(arrivals, dataset assignment, keys — all from the scenario seed), feeds it
to the target in vectorized column blocks, and distills the outcome into a
:class:`ScenarioReport` with per-phase throughput, tail latency and shed
accounting.

Two mechanical details make the replay faithful:

* **Admission windows.**  The trace is cut at ``admission_window_s``
  boundaries (and at dataset-run boundaries for multi-source scenarios)
  before submission, so each ``submit_many`` block covers a bounded slice
  of simulated time.  That is how a real front door behaves — admission
  control and routing observe queue depths every tick, not once per
  workload — and it is what lets a bounded cluster shed a flash crowd: a
  burst that lands more queries in one window than the queue has room for
  raises :class:`~repro.errors.Overloaded`, which the harness absorbs and
  counts (partial admissions are recovered exactly via
  :attr:`~repro.service.LCAQueryService.tickets_issued`).
* **Deterministic draw order.**  Arrivals and the dataset mix come from one
  generator seeded with the scenario seed; each source's keys come from its
  own generator, sampled in bulk per phase.  Reproducibility therefore
  survives any change to how the harness chunks its submissions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..control import Controller
from ..errors import ConfigurationError, Overloaded
from ..graphs.generators import random_attachment_tree
from ..lca import BinaryLiftingLCA
from ..obs.events import TraceRecorder, TraceTable
from ..obs.timers import StageTimer
from ..service import ClusterService, LCAQueryService
from ..service.stats import dedup_factor as _dedup_factor
from ..service.stats import hit_rate as _hit_rate
from .scenario import Scenario

__all__ = ["PhaseReport", "RetryPolicy", "ScenarioReport", "replay"]

#: Either serving front door; the harness only uses their shared surface
#: (register_tree / submit_many / drain / latencies / stats / tickets_issued).
ServiceTarget = Union[LCAQueryService, ClusterService]


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded client-side retry of :class:`~repro.errors.Overloaded` sheds.

    When passed to :func:`replay`, queries rejected by admission control are
    re-submitted after a capped exponential backoff instead of being dropped
    on the floor: retry ``k`` (1-based) is due ``base_backoff_s * 2**(k-1)``
    seconds after the rejection, capped at ``max_backoff_s`` and jittered by
    a ``±jitter`` fraction drawn from a generator seeded with ``seed`` — the
    retry schedule is part of the workload spec, so two replays with the
    same policy offer identical retry traffic.  A query still shed after
    ``max_attempts`` retries is *abandoned*.

    Retries are offered traffic like any other: an admitted retry counts
    into :attr:`PhaseReport.queries_admitted` (and ``queries_retried``) of
    the phase whose blocks it rode in with, so ``admitted + shed`` may
    exceed ``offered`` — the original rejection already counted as shed.

    >>> RetryPolicy(max_attempts=2).max_attempts
    2
    >>> RetryPolicy(base_backoff_s=0.0)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: base_backoff_s must be positive
    """

    #: Delay before the first retry, seconds; doubles per attempt.
    base_backoff_s: float = 2e-3
    #: Backoff ceiling, seconds.
    max_backoff_s: float = 32e-3
    #: Retries per query before it is abandoned.
    max_attempts: int = 3
    #: Multiplicative jitter fraction (0 disables jitter).
    jitter: float = 0.1
    #: Seed for the jitter draws.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_backoff_s <= 0:
            raise ConfigurationError("base_backoff_s must be positive")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                "max_backoff_s must be at least base_backoff_s"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered delay before retry number ``attempt`` (0-based)."""
        delay = min(self.base_backoff_s * 2.0**attempt, self.max_backoff_s)
        if self.jitter:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return delay


@dataclass(frozen=True)
class PhaseReport:
    """Outcome of one scenario phase."""

    #: Phase name from the scenario spec.
    name: str
    #: Configured phase duration (offered-load window), seconds.
    duration_s: float
    #: Arrivals generated / admitted / rejected by admission control.
    queries_offered: int
    queries_admitted: int
    queries_shed: int
    #: Offered and delivered rates over the phase duration.
    offered_qps: float
    delivered_qps: float
    #: Fraction of this phase's arrivals shed.
    shed_rate: float
    #: Modeled end-to-end latency percentiles of the phase's admitted
    #: queries (0.0 when nothing was admitted).
    latency_p50_s: float
    latency_p99_s: float
    #: Answer-cache hit rate over the lookups performed while this phase's
    #: blocks were being admitted (0.0 when the target runs without an
    #: answer cache).  Batches still pending at the phase boundary are
    #: attributed to the phase that flushes them; the trailing drain counts
    #: toward the final phase.
    answer_cache_hit_rate: float = 0.0
    #: Client-side retries admitted while this phase's blocks were being
    #: submitted, and queries abandoned after exhausting their
    #: :class:`RetryPolicy` budget (both 0 without a retry policy).  Retries
    #: count into :attr:`queries_admitted` too, so ``admitted + shed`` may
    #: exceed ``offered``; retries left pending at the end of the trace are
    #: flushed into the final phase.
    queries_retried: int = 0
    queries_abandoned: int = 0
    #: Host wall-clock seconds this phase spent inside ``submit_many``
    #: (a measurement of the harness, not of the modeled outcome — excluded
    #: from equality so deterministic replays still compare equal).
    submit_wall_s: float = field(default=0.0, compare=False)
    #: Active replica count when the phase's last block had been submitted
    #: (1 for a single-node service).  Static membership keeps this at the
    #: construction count; reactive autoscaling makes it the per-phase
    #: scale trajectory.
    n_replicas_end: int = 1


@dataclass(frozen=True)
class ScenarioReport:
    """Full outcome of one scenario replay.

    Per-phase rows live in :attr:`phases`; the totals summarize the whole
    replayed trace, and :attr:`stats` keeps the underlying
    :class:`~repro.service.ServiceStats` or
    :class:`~repro.service.ClusterStats` snapshot for drill-down (cache
    behaviour, batch histograms, per-replica loads).  Totals assume the
    target was fresh when :func:`replay` started — replaying onto a service
    that already answered other traffic folds that traffic into
    :attr:`stats` (but not into the per-phase rows).
    """

    scenario: str
    #: ``"service"`` or ``"cluster"``.
    target_kind: str
    n_replicas: int
    #: Router policy name (empty for a single-node service).
    router_policy: str
    phases: Tuple[PhaseReport, ...]
    queries_offered: int
    queries_admitted: int
    queries_shed: int
    shed_rate: float
    #: Modeled span and delivered throughput of the whole replay.
    span_s: float
    throughput_qps: float
    #: Latency percentiles over every admitted query of the replay.
    latency_p50_s: float
    latency_p99_s: float
    #: Max/mean answered-query load across replicas (1.0 for a single node).
    load_imbalance: float
    #: The target's stats snapshot taken after the final drain.
    stats: object
    #: Answer-cache hit rate and dedup factor over *this replay's* lookups
    #: and batches (counter deltas, so a reused target reports the replay,
    #: not its lifetime; 0.0 / 1.0 without the skew-aware path, ``inf``
    #: dedup when every answer came from the cache).
    answer_cache_hit_rate: float = 0.0
    dedup_factor: float = 1.0
    #: Client-retry totals across phases (0 without a :class:`RetryPolicy`).
    queries_retried: int = 0
    queries_abandoned: int = 0
    #: Host wall-clock seconds spent inside the serving calls (submit_many,
    #: drain, latencies) — trace generation excluded.  The skew benchmark
    #: derives its wall-clock throughput from this.
    serve_wall_s: float = 0.0
    #: Per-stage split of :attr:`serve_wall_s` (``submit_wall_s +
    #: drain_wall_s + latencies_wall_s == serve_wall_s``); verification
    #: against the oracle is timed separately and not part of serving.
    submit_wall_s: float = 0.0
    drain_wall_s: float = 0.0
    latencies_wall_s: float = 0.0
    verify_wall_s: float = 0.0
    #: The lifecycle trace captured during this replay, when an observer
    #: was passed to :func:`replay` (``None`` otherwise).
    trace: Optional[TraceTable] = None
    #: Per-dataset p99 over this replay's admitted queries, as sorted
    #: ``(dataset, p99_s)`` pairs — how each tenant of a multi-source
    #: scenario experienced the tail (priority lanes show up here).
    dataset_latency_p99_s: Tuple[Tuple[str, float], ...] = ()

    def format(self) -> str:
        """Render the report as an aligned text block."""
        where = (
            f"{self.n_replicas}-replica cluster "
            f"({self.router_policy} router)"
            if self.target_kind == "cluster"
            else "single-node service"
        )
        lines = [
            f"scenario           : {self.scenario} on {where}",
            f"queries            : {self.queries_offered} offered, "
            f"{self.queries_admitted} admitted, {self.queries_shed} shed "
            f"({self.shed_rate:.1%})",
        ]
        if self.queries_retried or self.queries_abandoned:
            lines.append(
                f"client retries     : {self.queries_retried} admitted on "
                f"retry, {self.queries_abandoned} abandoned"
            )
        lines += [
            f"throughput         : {self.throughput_qps:,.0f} queries/s "
            f"over {self.span_s * 1e3:.3f} ms modeled span",
            f"latency p50/p99    : {self.latency_p50_s * 1e6:.2f} / "
            f"{self.latency_p99_s * 1e6:.2f} us",
            f"load imbalance     : {self.load_imbalance:.2f}x",
            f"answer cache       : {self.answer_cache_hit_rate:.1%} hit rate, "
            f"dedup factor {self.dedup_factor:.2f}x",
        ]
        if self.serve_wall_s:
            lines.append(
                f"host wall          : {self.serve_wall_s * 1e3:.1f} ms "
                f"serving (submit {self.submit_wall_s * 1e3:.1f} + drain "
                f"{self.drain_wall_s * 1e3:.1f} + latencies "
                f"{self.latencies_wall_s * 1e3:.1f})"
            )
        lines += [
            "",
            f"{'phase':<12} {'dur ms':>8} {'offered':>9} {'admitted':>9} "
            f"{'shed':>8} {'offered q/s':>12} {'delivered q/s':>14} "
            f"{'p50 us':>9} {'p99 us':>9} {'hit %':>7}",
        ]
        for p in self.phases:
            lines.append(
                f"{p.name:<12} {p.duration_s * 1e3:>8.2f} "
                f"{p.queries_offered:>9} {p.queries_admitted:>9} "
                f"{p.queries_shed:>8} {p.offered_qps:>12,.0f} "
                f"{p.delivered_qps:>14,.0f} {p.latency_p50_s * 1e6:>9.2f} "
                f"{p.latency_p99_s * 1e6:>9.2f} "
                f"{p.answer_cache_hit_rate:>6.1%}"
            )
        return "\n".join(lines)


def _tree_parents(target: ServiceTarget, dataset: str) -> np.ndarray:
    """The registered parent array for ``dataset`` on either target kind."""
    if isinstance(target, ClusterService):
        first = target.placement(dataset)[0]
        return target.replicas[first].store.tree(dataset)
    return target.store.tree(dataset)


def _warm_target(target: ServiceTarget, dataset: str) -> None:
    """Prebuild the LCA index for every backend holding ``dataset``."""
    if isinstance(target, ClusterService):
        target.warm(dataset)
        return
    for backend in target.dispatcher.backends:
        target.registry.fetch(
            dataset, "lca", backend.spec, sequential=backend.sequential
        )


def _register_sources(
    target: ServiceTarget, scenario: Scenario, warm: bool
) -> Dict[str, int]:
    """Register (and optionally warm) every source; return dataset sizes."""
    sizes: Dict[str, int] = {}
    for source in scenario.sources:
        if source.dataset not in target.datasets:
            parents = random_attachment_tree(source.nodes, seed=source.tree_seed)
            if isinstance(target, ClusterService):
                # A source without an explicit replica count registers in
                # tracked all-active mode (replicas=0): placement follows
                # membership, so replicas added mid-replay (reactive
                # autoscaling, fault schedules) start serving the dataset.
                # With static membership this is identical to pinning the
                # count at n_replicas.
                replicas = (
                    min(source.replicas, target.n_replicas)
                    if source.replicas
                    else 0
                )
                target.register_tree(
                    source.dataset,
                    parents,
                    replicas=replicas,
                )
            else:
                target.register_tree(source.dataset, parents)
        if warm:
            _warm_target(target, source.dataset)
        sizes[source.dataset] = int(_tree_parents(target, source.dataset).size)
    return sizes


def _percentiles(latencies: np.ndarray) -> Tuple[float, float]:
    if latencies.size == 0:
        return 0.0, 0.0
    p50, p99 = np.percentile(latencies, [50.0, 99.0])
    return float(p50), float(p99)


def _answer_cache_counters(target: ServiceTarget) -> Tuple[int, int]:
    """Cumulative answer-cache (hits, misses) of either target kind."""
    if isinstance(target, ClusterService):
        caches = [replica.answer_cache for replica in target.replicas]
    else:
        caches = [target.answer_cache]
    hits = sum(c.hits for c in caches if c is not None)
    misses = sum(c.misses for c in caches if c is not None)
    return hits, misses


def _dedup_counters(target: ServiceTarget) -> Tuple[int, int]:
    """Cumulative (queries_answered, kernel_queries) of either target kind."""
    if isinstance(target, ClusterService):
        collectors = [replica.stats_collector for replica in target.replicas]
    else:
        collectors = [target.stats_collector]
    answered = sum(c.queries_answered for c in collectors)
    kernel = sum(c.kernel_queries for c in collectors)
    return answered, kernel


def replay(
    target: ServiceTarget,
    scenario: Scenario,
    *,
    admission_window_s: float = 5e-3,
    warm: bool = True,
    check_answers: bool = False,
    seed: Optional[int] = None,
    observer: Optional[TraceRecorder] = None,
    retry: Optional[RetryPolicy] = None,
    controller: Optional[Controller] = None,
) -> ScenarioReport:
    """Feed ``scenario`` to ``target`` in column blocks; report the outcome.

    Trees the scenario names that the target does not already serve are
    registered (generated from the scenario's tree seeds); ``warm``
    prebuilds their index artifacts so the report measures steady-state
    serving rather than one-time index builds.  Submissions that overflow a
    bounded cluster queue are absorbed: the raised
    :class:`~repro.errors.Overloaded` is counted into the phase's shed
    column and the partially admitted prefix keeps its tickets.  With
    ``check_answers`` every fully admitted block is verified against the
    binary-lifting oracle after the drain.

    ``seed`` overrides the scenario's trace seed for this replay only — a
    fresh *realization* of the same workload (new arrival times, new key
    draws) over the same trees and, for pool-based key distributions, the
    same query pools (their ``pool_seed`` is part of the workload spec, not
    of the trace).  Sources with an explicit ``key_seed`` keep it.  The
    skew benchmark uses this to measure steady-state serving on fresh
    traffic instead of replaying one memorized trace.

    ``observer`` attaches a :class:`~repro.obs.events.TraceRecorder` to the
    target for the duration of the replay (and leaves it attached); the
    captured table is returned on :attr:`ScenarioReport.trace`.

    ``retry`` enables seeded client-side retry of shed queries (see
    :class:`RetryPolicy`): each queued retry is re-submitted once simulated
    time reaches its backoff deadline, interleaved with the original trace,
    and queries that exhaust the budget are counted as abandoned.  Note
    that a cluster replayed under fault injection retries *server-side*
    failovers internally; this knob only re-offers admission-control
    rejections.  :class:`~repro.errors.ReplicaDown` — no live copy left for
    an admitted query — is a service failure, not load shedding, and
    propagates out of ``replay`` unhandled.

    ``controller`` runs a :class:`~repro.control.Controller` observation
    before the first block (so deadline clamps and priority lanes hold from
    the very first arrival) and after every submitted block (the
    controller's own ``interval_s`` gates how often it actually retunes),
    closing the SLO loop while the trace is in flight.  Retuning swaps
    knobs at flush boundaries only, so a controlled replay with
    ``check_answers`` still verifies bit-identical against the oracle.

    >>> from repro.service import LCAQueryService
    >>> from repro.workloads import make_scenario
    >>> svc = LCAQueryService()
    >>> report = replay(svc, make_scenario("steady", scale=0.1))
    >>> report.queries_shed         # a single node never sheds
    0
    >>> report.queries_admitted == report.queries_offered > 0
    True
    """
    if admission_window_s <= 0:
        raise ValueError("admission_window_s must be positive")
    if observer is not None:
        target.attach_observer(observer)
    else:
        # A recorder attached before the call still yields a report trace.
        observer = target.observer
    sizes = _register_sources(target, scenario, warm)
    sources = scenario.sources
    weights = np.array([s.weight for s in sources], dtype=np.float64)
    weights /= weights.sum()
    trace_seed = scenario.seed if seed is None else int(seed)
    arrival_rng = np.random.default_rng(trace_seed)
    key_rngs = {
        source.dataset: np.random.default_rng(
            trace_seed + 1 + index
            if source.key_seed is None
            else source.key_seed
        )
        for index, source in enumerate(sources)
    }

    # (dataset, xs, ys, tickets) of fully admitted blocks, for check_answers.
    verified_runs: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]] = []
    phase_tickets: List[List[np.ndarray]] = []
    phase_raw: List[Tuple[str, float, int, int]] = []  # name, dur, offered, shed
    # Per-phase mutable [retried, abandoned] counters; the helpers below
    # charge whichever phase is current when a retry lands or gives up.
    phase_retry: List[List[int]] = []
    retry_rng = np.random.default_rng(retry.seed) if retry is not None else None
    # (due_s, seq, dataset, xs, ys, attempt); seq breaks ties because numpy
    # arrays do not order.
    retry_heap: List[Tuple[float, int, str, np.ndarray, np.ndarray, int]] = []
    retry_seq = 0
    tickets: List[np.ndarray] = []
    # Whole-replay admitted tickets per dataset, for per-tenant percentiles.
    dataset_tickets: Dict[str, List[np.ndarray]] = {}

    def _queue_retry(
        dataset: str,
        rx: np.ndarray,
        ry: np.ndarray,
        rejected_s: float,
        attempt: int,
    ) -> None:
        nonlocal retry_seq
        assert retry is not None and retry_rng is not None
        if attempt > retry.max_attempts:
            phase_retry[-1][1] += int(rx.size)
            return
        due = rejected_s + retry.backoff_s(attempt - 1, retry_rng)
        heapq.heappush(retry_heap, (due, retry_seq, dataset, rx, ry, attempt))
        retry_seq += 1

    def _flush_retries(upto: Optional[float]) -> None:
        """Submit queued retries due by ``upto`` (all of them when ``None``)."""
        while retry_heap and (upto is None or retry_heap[0][0] <= upto):
            due, _, dataset, rx, ry, attempt = heapq.heappop(retry_heap)
            at_s = max(due, target.clock.now)
            before = target.tickets_issued
            try:
                with timer.span("submit"):
                    block = target.submit_many(
                        dataset, rx, ry, at=np.full(rx.size, at_s)
                    )
                tickets.append(block)
                dataset_tickets.setdefault(dataset, []).append(block)
                phase_retry[-1][0] += int(rx.size)
                if check_answers:
                    verified_runs.append((dataset, rx, ry, block))
            except Overloaded as exc:
                if exc.admitted:
                    admitted = np.arange(
                        before, before + exc.admitted, dtype=np.int64
                    )
                    tickets.append(admitted)
                    dataset_tickets.setdefault(dataset, []).append(admitted)
                    phase_retry[-1][0] += exc.admitted
                _queue_retry(
                    dataset, rx[exc.admitted :], ry[exc.admitted :], at_s,
                    attempt + 1,
                )
    # Cumulative answer-cache (hits, misses) at each phase boundary; phase i's
    # hit rate is the delta between boundaries i and i+1.
    cache_marks: List[Tuple[int, int]] = [_answer_cache_counters(target)]
    # Active replica count at each phase boundary (autoscaling trajectory).
    phase_replicas: List[int] = []
    answered_0, kernel_0 = _dedup_counters(target)
    timer = StageTimer()
    phase_submit_wall: List[float] = []

    if controller is not None:
        # Pre-flight observation: deadline clamps and priority lanes take
        # effect before the first arrival, not one admission window in.
        controller.observe(target, target.clock.now)
    t0 = target.clock.now
    for phase in scenario.phases:
        arrivals = phase.arrivals.generate(t0, phase.duration_s, arrival_rng)
        count = int(arrivals.size)
        if len(sources) > 1:
            strides = -(-count // scenario.mix_stride)  # ceil division
            picks = arrival_rng.choice(len(sources), size=strides, p=weights)
            assignment = np.repeat(picks, scenario.mix_stride)[:count]
        else:
            assignment = np.zeros(count, dtype=np.int64)
        xs = np.empty(count, dtype=np.int64)
        ys = np.empty(count, dtype=np.int64)
        for index, source in enumerate(sources):
            positions = np.flatnonzero(assignment == index)
            if positions.size:
                sx, sy = source.keys.sample(
                    key_rngs[source.dataset],
                    int(positions.size),
                    sizes[source.dataset],
                )
                xs[positions] = sx
                ys[positions] = sy

        # Block edges: every admission-window boundary plus every dataset
        # run boundary, deduplicated — each block is one submit_many call.
        n_windows = int(np.ceil(phase.duration_s / admission_window_s))
        window_bounds = t0 + admission_window_s * np.arange(1, n_windows + 1)
        window_edges = np.searchsorted(arrivals, window_bounds)
        run_edges = np.flatnonzero(np.diff(assignment) != 0) + 1
        edges = np.unique(
            np.concatenate([[0], run_edges, window_edges, [count]]).astype(np.int64)
        )

        tickets = []
        shed = 0
        phase_retry.append([0, 0])
        submit_wall_0 = timer.seconds("submit")
        for a, b in zip(edges[:-1], edges[1:]):
            if b <= a:
                continue
            if retry is not None:
                _flush_retries(float(arrivals[a]))
            dataset = sources[int(assignment[a])].dataset
            before = target.tickets_issued
            try:
                with timer.span("submit"):
                    block = target.submit_many(dataset, xs[a:b], ys[a:b],
                                               at=arrivals[a:b])
                tickets.append(block)
                dataset_tickets.setdefault(dataset, []).append(block)
                if check_answers:
                    verified_runs.append((dataset, xs[a:b], ys[a:b], block))
            except Overloaded as exc:
                shed += exc.shed
                if exc.admitted:
                    admitted = np.arange(
                        before, before + exc.admitted, dtype=np.int64
                    )
                    tickets.append(admitted)
                    dataset_tickets.setdefault(dataset, []).append(admitted)
                if retry is not None and exc.shed:
                    first = a + exc.admitted
                    last = first + exc.shed
                    _queue_retry(dataset, xs[first:last], ys[first:last],
                                 float(arrivals[first]), 1)
            if controller is not None:
                controller.observe(target, target.clock.now)
        phase_submit_wall.append(timer.seconds("submit") - submit_wall_0)
        phase_tickets.append(tickets)
        phase_raw.append((phase.name, phase.duration_s, count, shed))
        cache_marks.append(_answer_cache_counters(target))
        phase_replicas.append(
            target.n_active if isinstance(target, ClusterService) else 1
        )
        t0 += phase.duration_s

    if retry is not None:
        # Late backoffs land past the last arrival; flush them (into the
        # final phase's accounting) before the drain.
        _flush_retries(None)
    with timer.span("drain"):
        target.drain()
    # The drain's lookups belong to the final phase's boundary.
    cache_marks[-1] = _answer_cache_counters(target)
    if isinstance(target, ClusterService):
        cluster_stats = target.stats()
        stats: object = cluster_stats
        target_kind = "cluster"
        n_replicas = target.n_replicas
        router_policy = target.router.name
        load_imbalance = cluster_stats.load_imbalance
        span_s = cluster_stats.span_s
        throughput_qps = cluster_stats.throughput_qps
    else:
        service_stats = target.stats()
        stats = service_stats
        target_kind = "service"
        n_replicas = 1
        router_policy = ""
        load_imbalance = 1.0
        span_s = service_stats.span_s
        throughput_qps = service_stats.throughput_qps

    if check_answers:
        with timer.span("verify"):
            by_dataset: Dict[str, List[Tuple[np.ndarray, ...]]] = {}
            for dataset, bx, by, bt in verified_runs:
                by_dataset.setdefault(dataset, []).append((bx, by, bt))
            for dataset, runs in by_dataset.items():
                vx = np.concatenate([r[0] for r in runs])
                vy = np.concatenate([r[1] for r in runs])
                vt = np.concatenate([r[2] for r in runs])
                oracle = BinaryLiftingLCA(_tree_parents(target, dataset))
                if not np.array_equal(target.results(vt), oracle.query(vx, vy)):
                    raise AssertionError(
                        f"replayed answers disagree with the oracle on "
                        f"{dataset!r} ({scenario.name})"
                    )

    phases: List[PhaseReport] = []
    all_latencies: List[np.ndarray] = []
    for index, ((name, duration, offered, shed), tickets) in enumerate(
        zip(phase_raw, phase_tickets)
    ):
        admitted = int(sum(t.size for t in tickets))
        if admitted:
            with timer.span("latencies"):
                latencies = target.latencies(np.concatenate(tickets))
            all_latencies.append(latencies)
        else:
            latencies = np.empty(0, dtype=np.float64)
        p50, p99 = _percentiles(latencies)
        hits0, misses0 = cache_marks[index]
        hits1, misses1 = cache_marks[index + 1]
        phases.append(
            PhaseReport(
                name=name,
                duration_s=duration,
                queries_offered=offered,
                queries_admitted=admitted,
                queries_shed=shed,
                offered_qps=offered / duration,
                delivered_qps=admitted / duration,
                shed_rate=shed / offered if offered else 0.0,
                latency_p50_s=p50,
                latency_p99_s=p99,
                answer_cache_hit_rate=_hit_rate(hits1 - hits0, misses1 - misses0),
                queries_retried=phase_retry[index][0],
                queries_abandoned=phase_retry[index][1],
                submit_wall_s=phase_submit_wall[index],
                n_replicas_end=phase_replicas[index],
            )
        )

    merged = (
        np.concatenate(all_latencies)
        if all_latencies
        else np.empty(0, dtype=np.float64)
    )
    p50, p99 = _percentiles(merged)
    # Per-tenant tails (untimed: reporting, not serving).
    dataset_p99: List[Tuple[str, float]] = []
    for name in sorted(dataset_tickets):
        lat = target.latencies(np.concatenate(dataset_tickets[name]))
        dataset_p99.append((name, _percentiles(lat)[1]))
    offered_total = sum(p.queries_offered for p in phases)
    admitted_total = sum(p.queries_admitted for p in phases)
    shed_total = sum(p.queries_shed for p in phases)
    total_hits, total_misses = cache_marks[-1]
    first_hits, first_misses = cache_marks[0]
    answered_1, kernel_1 = _dedup_counters(target)
    return ScenarioReport(
        scenario=scenario.name,
        target_kind=target_kind,
        n_replicas=n_replicas,
        router_policy=router_policy,
        phases=tuple(phases),
        queries_offered=offered_total,
        queries_admitted=admitted_total,
        queries_shed=shed_total,
        shed_rate=shed_total / offered_total if offered_total else 0.0,
        span_s=span_s,
        throughput_qps=throughput_qps,
        latency_p50_s=p50,
        latency_p99_s=p99,
        load_imbalance=load_imbalance,
        stats=stats,
        answer_cache_hit_rate=_hit_rate(
            total_hits - first_hits, total_misses - first_misses
        ),
        dedup_factor=_dedup_factor(answered_1 - answered_0,
                                   kernel_1 - kernel_0),
        queries_retried=sum(p.queries_retried for p in phases),
        queries_abandoned=sum(p.queries_abandoned for p in phases),
        serve_wall_s=timer.total("submit", "drain", "latencies"),
        submit_wall_s=timer.seconds("submit"),
        drain_wall_s=timer.seconds("drain"),
        latencies_wall_s=timer.seconds("latencies"),
        verify_wall_s=timer.seconds("verify"),
        trace=observer.table() if observer is not None else None,
        dataset_latency_p99_s=tuple(dataset_p99),
    )
