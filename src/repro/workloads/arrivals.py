"""Arrival-time processes: when queries reach the service.

Every benchmark before this package drove the serving stack with uniformly
spaced synthetic arrivals — one traffic shape, and the least stressful one.
Real traffic is bursty, periodic and adversarial, and the standard
mathematical model for "arrivals at an arbitrary time-varying rate" is the
*inhomogeneous Poisson point process* (IPPP): arrivals in disjoint intervals
are independent, and the expected count in ``[a, b)`` is ``∫ λ(t) dt`` for an
intensity function ``λ``.  Hohmann (arXiv:1901.10754) surveys how to simulate
such processes; this module implements the classic recipes on top of NumPy:

* :class:`DeterministicArrivals` — the uniform spacing the old benchmarks
  used, kept as the degenerate baseline (and for bit-compatibility with
  :func:`~repro.experiments.service_experiments.offered_load_sweep`);
* :class:`PoissonArrivals` — a homogeneous Poisson process, simulated in
  bulk by conditional uniformity (draw the window's Poisson count, then
  sort that many uniforms — two rng calls, no loop);
* :class:`InhomogeneousPoissonArrivals` — an arbitrary intensity function,
  simulated by *thinning* (Lewis & Shedler): draw a homogeneous process at
  the peak rate, keep each candidate at ``t`` with probability
  ``λ(t) / peak``;
* :class:`MarkovModulatedArrivals` — a two-state (on/off) Markov-modulated
  Poisson process: exponentially distributed bursts of high-rate traffic
  separated by exponentially distributed lulls, the standard model for
  bursty sources; sojourns are drawn in chunked bulk blocks and arrivals
  placed with one vectorized count draw + one sort.

All processes emit one sorted float64 array of *absolute* arrival times —
exactly the ``at=`` axis :meth:`repro.service.LCAQueryService.submit_many`
and :meth:`repro.service.ClusterService.submit_many` consume — and draw all
randomness from a caller-supplied :class:`numpy.random.Generator`, so a
scenario replay is a deterministic function of its seed.

Intensity functions are defined on *phase-relative* time (``tau`` seconds
since the phase started), which keeps a scenario's shape independent of
where its phases land on the absolute axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "InhomogeneousPoissonArrivals",
    "MarkovModulatedArrivals",
    "constant_intensity",
    "diurnal_intensity",
    "flash_crowd_intensity",
]

#: An intensity function: phase-relative times (s) -> instantaneous rate (q/s).
IntensityFn = Callable[[np.ndarray], np.ndarray]


class ArrivalProcess:
    """Base class for arrival-time generators.

    Subclasses implement :meth:`generate` and :meth:`expected_count`; both
    must be deterministic functions of ``(t0, duration, rng state)``.
    """

    def generate(
        self, t0: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted absolute arrival times in ``[t0, t0 + duration)``."""
        raise NotImplementedError

    def expected_count(self, duration: float) -> float:
        """Expected number of arrivals over ``duration`` seconds."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


def _check_window(t0: float, duration: float) -> None:
    if duration < 0:
        raise ConfigurationError(f"duration must be non-negative, got {duration}")
    if not math.isfinite(t0) or not math.isfinite(duration):
        raise ConfigurationError("t0 and duration must be finite")


def _poisson_times(
    rate: float, t0: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrivals at ``rate`` in ``[t0, t0 + duration)``.

    Bulk simulation via the conditional-uniformity property (the IPPP
    recipe Hohmann, arXiv:1901.10754, calls sampling "number and location
    of points" separately): the count over the window is
    ``Poisson(rate * duration)``, and conditional on the count the arrival
    times are iid uniform over the window, sorted.  Exactly two rng calls
    and one sort — no Python loop, and exact (not a discretization).

    >>> import numpy as np
    >>> times = _poisson_times(1e4, 1.0, 0.5, np.random.default_rng(0))
    >>> bool((times[:-1] <= times[1:]).all())
    True
    >>> bool(times[0] >= 1.0) and bool(times[-1] < 1.5)
    True
    """
    if duration == 0 or rate == 0:
        return np.empty(0, dtype=np.float64)
    count = int(rng.poisson(rate * duration))
    if count == 0:
        return np.empty(0, dtype=np.float64)
    offsets = rng.random(count)
    offsets.sort()
    return t0 + offsets * duration


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Uniformly spaced arrivals at a constant rate (the legacy baseline).

    Exactly the arrival axis the pre-scenario benchmarks built by hand
    (``np.arange(q) / rate``), so a steady scenario replay can reproduce
    their numbers bit for bit.

    >>> import numpy as np
    >>> p = DeterministicArrivals(rate_qps=4.0)
    >>> p.generate(0.0, 1.0, np.random.default_rng(0)).tolist()
    [0.0, 0.25, 0.5, 0.75]
    """

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps < 0:
            raise ConfigurationError("rate_qps must be non-negative")

    def generate(
        self, t0: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(t0, duration)
        count = int(round(self.rate_qps * duration))
        if count == 0:
            return np.empty(0, dtype=np.float64)
        return t0 + np.arange(count, dtype=np.float64) / self.rate_qps

    def expected_count(self, duration: float) -> float:
        return float(round(self.rate_qps * duration))


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: memoryless arrivals at a constant rate.

    The count over a window of length ``T`` is Poisson(``rate * T``) and the
    gaps are iid exponential — the classical model for uncorrelated open-loop
    traffic.

    >>> import numpy as np
    >>> p = PoissonArrivals(rate_qps=1e4)
    >>> times = p.generate(0.0, 1.0, np.random.default_rng(7))
    >>> 9_500 < times.size < 10_500    # count concentrates around rate * T
    True
    """

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps < 0:
            raise ConfigurationError("rate_qps must be non-negative")

    def generate(
        self, t0: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(t0, duration)
        return _poisson_times(self.rate_qps, t0, duration, rng)

    def expected_count(self, duration: float) -> float:
        return self.rate_qps * duration


class InhomogeneousPoissonArrivals(ArrivalProcess):
    """Inhomogeneous Poisson process with an arbitrary intensity function.

    Simulated by *thinning* (Lewis & Shedler 1979; see Hohmann,
    arXiv:1901.10754): draw a homogeneous Poisson process at the peak rate
    ``peak_qps``, then keep the candidate at phase-relative time ``tau``
    with probability ``intensity(tau) / peak_qps``.  The result is exact —
    not a discretization — provided ``intensity`` never exceeds
    ``peak_qps``, which is validated on every generated candidate.

    Parameters
    ----------
    intensity:
        Vectorized function of phase-relative time (seconds since the phase
        start) returning instantaneous rates in queries/s.
    peak_qps:
        A tight upper bound on ``intensity`` over the phase.  Tighter bounds
        thin fewer candidates and are proportionally cheaper.

    >>> import numpy as np
    >>> p = InhomogeneousPoissonArrivals(constant_intensity(5e3), peak_qps=5e3)
    >>> times = p.generate(2.0, 1.0, np.random.default_rng(3))
    >>> 4_500 < times.size < 5_500     # degenerates to homogeneous Poisson
    True
    """

    def __init__(self, intensity: IntensityFn, *, peak_qps: float) -> None:
        if peak_qps <= 0:
            raise ConfigurationError("peak_qps must be positive")
        self.intensity = intensity
        self.peak_qps = float(peak_qps)

    def generate(
        self, t0: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(t0, duration)
        candidates = _poisson_times(self.peak_qps, 0.0, duration, rng)
        if candidates.size == 0:
            return candidates
        rates = np.asarray(self.intensity(candidates), dtype=np.float64)
        if rates.shape != candidates.shape:
            raise ConfigurationError("intensity must return one rate per input time")
        if (rates < 0).any():
            raise ConfigurationError("intensity must be non-negative")
        if rates.max() > self.peak_qps * (1.0 + 1e-9):
            raise ConfigurationError(
                f"intensity exceeds peak_qps={self.peak_qps} "
                f"(max {rates.max():.6g}); thinning would under-sample"
            )
        keep = rng.random(candidates.size) * self.peak_qps < rates
        return t0 + candidates[keep]

    def expected_count(self, duration: float) -> float:
        """Expected arrivals: ``∫ intensity`` via a fine trapezoidal grid."""
        if duration == 0:
            return 0.0
        grid = np.linspace(0.0, duration, num=4097)
        rates = np.asarray(self.intensity(grid), dtype=np.float64)
        # np.trapezoid on NumPy >= 2, np.trapz before — resolved by name so
        # neither spelling is a hard (type-checked) attribute reference.
        integrate = getattr(np, "trapezoid", None)
        if integrate is None:  # pragma: no cover - NumPy < 2.0
            integrate = getattr(np, "trapz")
        return float(integrate(rates, grid))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"InhomogeneousPoissonArrivals(peak_qps={self.peak_qps})"


@dataclass(frozen=True)
class MarkovModulatedArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty on/off traffic).

    The source alternates between an *on* state emitting Poisson arrivals at
    ``on_qps`` and an *off* state emitting at ``off_qps`` (0 by default);
    sojourn times in each state are exponential with means ``mean_on_s`` /
    ``mean_off_s``.  The long-run average rate is the sojourn-weighted mix
    of the two state rates — see :meth:`expected_count`.

    >>> import numpy as np
    >>> p = MarkovModulatedArrivals(on_qps=1e4, mean_on_s=0.01, mean_off_s=0.01)
    >>> times = p.generate(0.0, 1.0, np.random.default_rng(5))
    >>> 3_500 < times.size < 6_500     # ~ on_qps * duty cycle (0.5)
    True
    """

    on_qps: float
    mean_on_s: float
    mean_off_s: float
    off_qps: float = 0.0
    start_on: bool = True

    def __post_init__(self) -> None:
        if self.on_qps < 0 or self.off_qps < 0:
            raise ConfigurationError("state rates must be non-negative")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ConfigurationError("mean sojourn times must be positive")

    def generate(
        self, t0: float, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Bulk MMPP simulation: chunked sojourn draws, then bulk arrivals.

        Sojourns are drawn in alternating on/off blocks (one bulk
        exponential call per state per chunk, six-sigma headroom over the
        expected cycle count, extending in the rare shortfall) instead of
        one Python-loop draw per state switch.  Arrival placement then uses
        the conditional-uniformity property per interval: one vectorized
        ``Poisson(rate * span)`` count draw over all intervals, one bulk
        uniform draw for the positions, and a single sort (the intervals
        are disjoint and ascending, so one global sort orders the stream).
        """
        _check_window(t0, duration)
        if duration == 0:
            return np.empty(0, dtype=np.float64)
        mean_first = self.mean_on_s if self.start_on else self.mean_off_s
        mean_second = self.mean_off_s if self.start_on else self.mean_on_s
        mean_cycle = self.mean_on_s + self.mean_off_s
        blocks: List[np.ndarray] = []
        covered = 0.0
        while covered < duration:
            cycles = (duration - covered) / mean_cycle
            k = int(cycles + 6.0 * math.sqrt(cycles) + 4.0)
            first = rng.exponential(mean_first, size=k)
            second = rng.exponential(mean_second, size=k)
            block = np.empty(2 * k, dtype=np.float64)
            block[0::2] = first
            block[1::2] = second
            blocks.append(block)
            covered += float(block.sum())
            # A block holds an even number of sojourns, so the next chunk
            # (if the six-sigma headroom ever falls short) starts in the
            # same state again.
        sojourns = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        ends = np.cumsum(sojourns)
        starts = ends - sojourns
        m = int(np.searchsorted(starts, duration, side="left"))
        starts = starts[:m]
        spans = np.minimum(ends[:m], duration) - starts
        rate_first = self.on_qps if self.start_on else self.off_qps
        rate_second = self.off_qps if self.start_on else self.on_qps
        rates = np.where(np.arange(m) % 2 == 0, rate_first, rate_second)
        counts = rng.poisson(rates * spans)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.float64)
        positions = rng.random(total)
        times = np.repeat(starts, counts) + positions * np.repeat(spans, counts)
        times.sort()
        return t0 + times

    def expected_count(self, duration: float) -> float:
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return (duty * self.on_qps + (1.0 - duty) * self.off_qps) * duration


# ----------------------------------------------------------------------
# Intensity-function library for the inhomogeneous process
# ----------------------------------------------------------------------
def constant_intensity(rate_qps: float) -> IntensityFn:
    """A flat intensity (makes the inhomogeneous process homogeneous).

    >>> constant_intensity(100.0)(np.array([0.0, 1.0])).tolist()
    [100.0, 100.0]
    """
    if rate_qps < 0:
        raise ConfigurationError("rate_qps must be non-negative")

    def intensity(tau: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(tau, dtype=np.float64), rate_qps)

    return intensity


def diurnal_intensity(base_qps: float, peak_qps: float, period_s: float) -> IntensityFn:
    """A raised-cosine day/night cycle: ``base`` at tau=0, ``peak`` mid-period.

    ``lambda(tau) = base + (peak - base) * (1 - cos(2 pi tau / period)) / 2``.

    >>> fn = diurnal_intensity(100.0, 500.0, period_s=8.0)
    >>> fn(np.array([0.0, 4.0])).tolist()    # trough at 0, peak mid-period
    [100.0, 500.0]
    """
    if period_s <= 0:
        raise ConfigurationError("period_s must be positive")
    if base_qps < 0 or peak_qps < base_qps:
        raise ConfigurationError("need 0 <= base_qps <= peak_qps")

    def intensity(tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        swing = 0.5 * (1.0 - np.cos(2.0 * np.pi * tau / period_s))
        return base_qps + (peak_qps - base_qps) * swing

    return intensity


def flash_crowd_intensity(
    base_qps: float,
    flash_qps: float,
    *,
    flash_start_s: float,
    flash_duration_s: float,
    ramp_s: float = 0.0,
) -> IntensityFn:
    """A baseline rate with one trapezoidal spike (the flash crowd).

    The rate ramps linearly from ``base_qps`` to ``flash_qps`` over
    ``ramp_s`` seconds starting at ``flash_start_s``, holds for
    ``flash_duration_s``, then ramps back down.

    >>> fn = flash_crowd_intensity(10.0, 1000.0, flash_start_s=1.0,
    ...                            flash_duration_s=2.0)
    >>> fn(np.array([0.5, 2.0, 3.5])).tolist()
    [10.0, 1000.0, 10.0]
    """
    if base_qps < 0 or flash_qps < base_qps:
        raise ConfigurationError("need 0 <= base_qps <= flash_qps")
    if flash_duration_s < 0 or ramp_s < 0:
        raise ConfigurationError("durations must be non-negative")

    up0 = flash_start_s - ramp_s
    down1 = flash_start_s + flash_duration_s + ramp_s

    def intensity(tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=np.float64)
        if ramp_s > 0:
            rising = np.clip((tau - up0) / ramp_s, 0.0, 1.0)
            falling = np.clip((down1 - tau) / ramp_s, 0.0, 1.0)
            shape = np.minimum(rising, falling)
        else:
            inside = (tau >= flash_start_s) & (tau <= flash_start_s + flash_duration_s)
            shape = inside.astype(np.float64)
        return base_qps + (flash_qps - base_qps) * shape

    return intensity
