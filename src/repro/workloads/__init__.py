"""Scenario-driven traffic generation and replay for the serving stack.

Every pre-existing benchmark drove :mod:`repro.service` with one traffic
shape — uniformly spaced arrivals, uniformly random keys.  This subpackage
turns "what traffic?" into a first-class, declarative axis:

* :mod:`~repro.workloads.arrivals` — *when* queries land: deterministic,
  Poisson, inhomogeneous Poisson (thinning over an arbitrary intensity
  function, after the IPPP model of arXiv:1901.10754), and Markov-modulated
  on/off bursts;
* :mod:`~repro.workloads.keys` — *what* they ask: uniform, Zipf-skewed and
  hot-set-mixture node pairs;
* :mod:`~repro.workloads.scenario` — the declarative
  :class:`~repro.workloads.scenario.Scenario` spec (dataset mix × arrival
  phases × seed) plus the named library (``steady``, ``diurnal``,
  ``flash-crowd``, ``skewed-hotspot``, ``multi-tenant``);
* :mod:`~repro.workloads.replay` — :func:`~repro.workloads.replay.replay`
  feeds any scenario to any :class:`~repro.service.LCAQueryService` or
  :class:`~repro.service.ClusterService` in vectorized column blocks and
  returns a :class:`~repro.workloads.replay.ScenarioReport` (per-phase
  throughput, p50/p99, shed rate, load imbalance), with an optional seeded
  client-side :class:`~repro.workloads.replay.RetryPolicy` for shed
  queries;
* :mod:`~repro.workloads.chaos` — the ``chaos-*`` scenario family:
  :class:`~repro.workloads.chaos.ChaosScenario` pairs traffic with a
  deterministic fault schedule (replica kills, rolling restarts, elastic
  scale-out) and :func:`~repro.workloads.chaos.replay_chaos` runs it on a
  fault-injected cluster.

Everything is seeded and simulated-clock-timed, so a scenario replay is a
bit-reproducible function of ``(scenario, target configuration)`` — fault
schedules included.
"""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    InhomogeneousPoissonArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    constant_intensity,
    diurnal_intensity,
    flash_crowd_intensity,
)
from .keys import (
    HotspotKeys,
    KeyDistribution,
    QueryPoolKeys,
    UniformKeys,
    ZipfKeys,
)
from .chaos import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    make_chaos_scenario,
    replay_chaos,
    transient_storm,
)
from .replay import PhaseReport, RetryPolicy, ScenarioReport, replay
from .scenario import SCENARIOS, Phase, Scenario, TrafficSource, make_scenario

__all__ = [
    # arrival processes
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "InhomogeneousPoissonArrivals",
    "MarkovModulatedArrivals",
    "constant_intensity",
    "diurnal_intensity",
    "flash_crowd_intensity",
    # key distributions
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "HotspotKeys",
    "QueryPoolKeys",
    # scenarios
    "TrafficSource",
    "Phase",
    "Scenario",
    "SCENARIOS",
    "make_scenario",
    # replay
    "replay",
    "PhaseReport",
    "ScenarioReport",
    "RetryPolicy",
    # chaos
    "ChaosScenario",
    "CHAOS_SCENARIOS",
    "make_chaos_scenario",
    "replay_chaos",
    "transient_storm",
]
