"""Spanning-tree helpers shared by the parallel bridge-finding algorithms.

Both the Tarjan–Vishkin and the hybrid algorithm start from the *unrooted*
spanning tree produced by the connectivity algorithm
(:func:`repro.graphs.components.spanning_forest`, the ECL-CC substitute) and
root it with the Euler tour technique; the CK algorithm instead takes the
already-rooted BFS tree.  This module contains the small amount of glue those
pipelines share: extracting the tree edge list, finding the child endpoint of
every tree edge, and splitting off the non-tree edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidGraphError
from ..graphs.edgelist import EdgeList

__all__ = ["TreeEdgeView", "split_tree_edges", "child_endpoints"]


@dataclass
class TreeEdgeView:
    """A spanning tree and the remaining non-tree edges of a graph.

    Attributes
    ----------
    tree_edges:
        Edge list containing only the spanning-tree edges (same node ids as
        the input graph).
    tree_edge_indices:
        For every tree edge, its index in the original edge list.
    nontree_u, nontree_v:
        Endpoints of the non-tree edges.
    nontree_indices:
        Indices of the non-tree edges in the original edge list.
    """

    tree_edges: EdgeList
    tree_edge_indices: np.ndarray
    nontree_u: np.ndarray
    nontree_v: np.ndarray
    nontree_indices: np.ndarray


def split_tree_edges(edges: EdgeList, tree_edge_mask: np.ndarray) -> TreeEdgeView:
    """Split an edge list into spanning-tree edges and non-tree edges."""
    tree_edge_mask = np.asarray(tree_edge_mask, dtype=bool)
    if tree_edge_mask.shape != (edges.num_edges,):
        raise InvalidGraphError("tree_edge_mask must have one entry per edge")
    tree_idx = np.flatnonzero(tree_edge_mask)
    nontree_idx = np.flatnonzero(~tree_edge_mask)
    tree_edges = EdgeList(edges.u[tree_idx], edges.v[tree_idx], edges.num_nodes)
    return TreeEdgeView(
        tree_edges=tree_edges,
        tree_edge_indices=tree_idx,
        nontree_u=edges.u[nontree_idx],
        nontree_v=edges.v[nontree_idx],
        nontree_indices=nontree_idx,
    )


def child_endpoints(view: TreeEdgeView, parents: np.ndarray) -> np.ndarray:
    """For every tree edge, the endpoint that is the *child* under ``parents``.

    Needed to translate per-node bridge verdicts ("the edge from ``c`` to its
    parent is a bridge") back to per-edge verdicts on the original edge list.
    """
    parents = np.asarray(parents, dtype=np.int64)
    u = view.tree_edges.u
    v = view.tree_edges.v
    u_is_child = parents[u] == v
    v_is_child = parents[v] == u
    if not np.all(u_is_child | v_is_child):
        raise InvalidGraphError(
            "parent array does not orient every tree edge; spanning tree and rooting disagree"
        )
    return np.where(u_is_child, u, v)
