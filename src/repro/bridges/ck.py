"""Chaitanya–Kothapalli (CK) bridge finding: BFS spanning tree + cycle marking.

The state-of-the-art heuristic the paper compares against (GPU implementation
by Wadwekar & Kothapalli, multi-core CPU implementation by Chaitanya &
Kothapalli / Slota & Madduri).  Two phases:

1. **BFS** — build a rooted breadth-first spanning tree.  The BFS tree's depth
   is within a factor two of optimal, which bounds the marking work by
   ``O(m·d)`` where ``d`` is the graph diameter.
2. **Mark non-bridges** — for every non-tree edge, walk both endpoints up to
   their LCA and mark every tree edge on the way; tree edges that are never
   marked are exactly the bridges.

No Euler tour, no sorting — very fast on small-diameter graphs, increasingly
slow as the diameter (and hence both the BFS level count and the walk
lengths) grows.  The multi-core CPU baseline is the same algorithm pointed at
the multi-core device spec.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from ..graphs.bfs import bfs_cpu, bfs_gpu
from ..graphs.csr import CSRGraph
from ..graphs.edgelist import EdgeList
from .marking import mark_cycle_edges
from .result import BridgeResult
from .spanning import child_endpoints, split_tree_edges

__all__ = ["find_bridges_ck"]


def find_bridges_ck(edges: EdgeList, *, source: Optional[int] = None,
                    device: str = "gpu",
                    ctx: Optional[ExecutionContext] = None,
                    csr: Optional[CSRGraph] = None) -> BridgeResult:
    """Find all bridges of a connected graph with the CK algorithm.

    Parameters
    ----------
    edges:
        Connected undirected graph.
    source:
        BFS root; defaults to the highest-degree node (the usual heuristic to
        keep the BFS tree shallow).
    device:
        ``"gpu"`` uses the level-synchronous BFS, ``"cpu"`` the sequential
        BFS — pair with the matching device spec in ``ctx`` (the marking phase
        kernels are the same either way; the multi-core CPU spec prices them
        as OpenMP parallel-for regions).
    ctx:
        Execution context; phases are tagged ``"BFS"`` and ``"Mark non-bridges"``.
    csr:
        Optional pre-built CSR adjacency (charged separately if absent).
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    bridge_mask = np.zeros(m, dtype=bool)
    if n <= 1 or m == 0:
        return BridgeResult(bridge_mask, algorithm=f"{device.upper()} CK",
                            phase_times=dict(ctx.breakdown()))

    with ctx.phase("BFS"):
        graph = csr if csr is not None else CSRGraph.from_edgelist(edges, ctx=ctx)
        if source is None:
            source = int(np.argmax(graph.degrees()))
        bfs_fn = bfs_gpu if device == "gpu" else bfs_cpu
        bfs_result = bfs_fn(graph, source, ctx=ctx)
        if not bool(bfs_result.reached.all()):
            raise InvalidGraphError("CK bridge finding requires a connected graph")

    with ctx.phase("Mark non-bridges"):
        tree_mask = bfs_result.tree_edge_mask(m)
        view = split_tree_edges(edges, tree_mask)
        marked = mark_cycle_edges(
            bfs_result.parents, bfs_result.levels,
            view.nontree_u, view.nontree_v, ctx=ctx,
        )
        children = child_endpoints(view, bfs_result.parents)
        bridge_mask[view.tree_edge_indices] = ~marked[children]
        ctx.kernel(
            "ck_collect_bridges",
            threads=int(children.size),
            ops=2.0 * children.size,
            bytes_read=3.0 * children.size * 8,
            bytes_written=1.0 * children.size,
            launches=1,
            random_access=True,
        )

    label = "GPU CK" if device == "gpu" else "Multi-core CPU CK"
    return BridgeResult(bridge_mask, algorithm=label, phase_times=dict(ctx.breakdown()))
