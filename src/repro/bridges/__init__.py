"""Bridge-finding algorithms (paper §4).

* :func:`find_bridges_tarjan_vishkin` — the Euler-tour-based GPU algorithm (TV).
* :func:`find_bridges_ck` — the BFS-plus-marking heuristic (CK), GPU or
  multi-core CPU depending on the execution context.
* :func:`find_bridges_hybrid` — the paper's proposed hybrid (CC spanning tree
  rooted with the Euler tour, then CK-style marking).
* :func:`find_bridges_dfs` — the sequential Hopcroft–Tarjan baseline.
* :func:`find_bridges_networkx` — test oracle.
"""

from .ck import find_bridges_ck
from .dfs_cpu import find_bridges_dfs
from .hybrid import find_bridges_hybrid
from .marking import mark_cycle_edges
from .reference import find_bridges_networkx
from .result import BridgeResult
from .spanning import TreeEdgeView, child_endpoints, split_tree_edges
from .tarjan_vishkin import find_bridges_tarjan_vishkin

__all__ = [
    "BridgeResult",
    "find_bridges_tarjan_vishkin",
    "find_bridges_ck",
    "find_bridges_hybrid",
    "find_bridges_dfs",
    "find_bridges_networkx",
    "mark_cycle_edges",
    "TreeEdgeView",
    "split_tree_edges",
    "child_endpoints",
]
