"""The hybrid bridge-finding algorithm proposed at the end of paper §4.3.

The CK marking phase is correct for *any* rooted spanning tree, not just a BFS
tree.  Since BFS is the diameter-sensitive bottleneck of CK, the hybrid swaps
it out: the spanning tree comes from the (diameter-insensitive) connectivity
algorithm, and — because that tree is unrooted — the Euler tour technique is
used to obtain the parents and levels the marking phase needs.

Four phases, matching the Figure 11 breakdown: ``"Spanning tree"``,
``"Euler tour"``, ``"Levels and parents"``, ``"Mark non-bridges"``.

The paper's conclusion, which the benchmarks here reproduce, is that the
hybrid is usually faster than CK but never beats TV: both the hybrid and TV
pay for the spanning tree and the Euler tour, after which TV's remaining
detect phase is cheaper than the hybrid's marking phase.

The hybrid is a *hand-rolled* cost-driven substitution: one phase known to be
expensive is swapped for a cheaper equivalent, decided once, offline.  The
serving subsystem generalizes the idea — see
:class:`repro.service.dispatch.CostModelDispatcher`, which makes the same
kind of substitution per batch, online, by pricing every candidate backend
with the device roofline model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from ..euler import build_euler_tour, compute_tree_stats
from ..graphs.components import spanning_forest
from ..graphs.edgelist import EdgeList
from .marking import mark_cycle_edges
from .result import BridgeResult
from .spanning import child_endpoints, split_tree_edges

__all__ = ["find_bridges_hybrid"]


def find_bridges_hybrid(edges: EdgeList, *, root: int = 0,
                        list_rank_method: str = "wei-jaja",
                        ctx: Optional[ExecutionContext] = None) -> BridgeResult:
    """Find all bridges of a connected graph with the hybrid algorithm.

    Parameters
    ----------
    edges:
        Connected undirected graph.
    root:
        Node at which the spanning tree is rooted.
    list_rank_method:
        List-ranking algorithm used by the Euler tour.
    ctx:
        Execution context; phases are tagged ``"Spanning tree"``,
        ``"Euler tour"``, ``"Levels and parents"`` and ``"Mark non-bridges"``.
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    bridge_mask = np.zeros(m, dtype=bool)
    if n <= 1 or m == 0:
        return BridgeResult(bridge_mask, algorithm="GPU Hybrid",
                            phase_times=dict(ctx.breakdown()))

    with ctx.phase("Spanning tree"):
        forest = spanning_forest(edges, ctx=ctx)
        if forest.num_components != 1:
            raise InvalidGraphError(
                "hybrid bridge finding requires a connected graph; "
                f"found {forest.num_components} components"
            )
    view = split_tree_edges(edges, forest.tree_edge_mask)

    with ctx.phase("Euler tour"):
        tour = build_euler_tour(view.tree_edges, root, list_rank_method=list_rank_method,
                                ctx=ctx)

    with ctx.phase("Levels and parents"):
        stats = compute_tree_stats(tour, ctx=ctx)

    with ctx.phase("Mark non-bridges"):
        marked = mark_cycle_edges(stats.parent, stats.depth,
                                  view.nontree_u, view.nontree_v, ctx=ctx)
        children = child_endpoints(view, stats.parent)
        bridge_mask[view.tree_edge_indices] = ~marked[children]
        ctx.kernel(
            "hybrid_collect_bridges",
            threads=int(children.size),
            ops=2.0 * children.size,
            bytes_read=3.0 * children.size * 8,
            bytes_written=1.0 * children.size,
            launches=1,
            random_access=True,
        )

    return BridgeResult(bridge_mask, algorithm="GPU Hybrid",
                        phase_times=dict(ctx.breakdown()))
