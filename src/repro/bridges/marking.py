"""The non-bridge marking phase shared by the CK and hybrid algorithms.

Given a rooted spanning tree (parents + levels) of a connected graph, every
non-tree edge ``{x, y}`` closes a cycle consisting of the tree paths from
``x`` and ``y`` to their LCA.  Every tree edge on such a cycle cannot be a
bridge; conversely a tree edge on no cycle is a bridge.  The marking phase
therefore walks, for every non-tree edge in parallel, both endpoints up to the
LCA and marks every tree edge traversed; unmarked tree edges are the bridges
(Chaitanya–Kothapalli).

The simulation processes all walks in lockstep rounds: one kernel per round
over the still-active walks, so the modeled work equals the total length of
all walked paths — ``O(m · d)`` in the worst case, which is the cost profile
that makes the algorithm diameter-sensitive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError

__all__ = ["mark_cycle_edges"]


def mark_cycle_edges(parents: np.ndarray, levels: np.ndarray,
                     nontree_u: np.ndarray, nontree_v: np.ndarray,
                     *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Mark every tree edge lying on a cycle closed by a non-tree edge.

    Parameters
    ----------
    parents, levels:
        Rooted spanning tree: parent (-1 at the root) and depth of every node.
    nontree_u, nontree_v:
        Endpoints of the non-tree edges (parallel arrays).

    Returns
    -------
    numpy.ndarray of bool, length ``n``:
        ``marked[c]`` is true when the tree edge from ``c`` to ``parents[c]``
        lies on some cycle (i.e. is **not** a bridge).  The root's entry is
        meaningless and always false.
    """
    ctx = ensure_context(ctx)
    parents = np.asarray(parents, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    n = parents.size
    nontree_u = np.asarray(nontree_u, dtype=np.int64)
    nontree_v = np.asarray(nontree_v, dtype=np.int64)
    if nontree_u.shape != nontree_v.shape:
        raise InvalidGraphError("non-tree endpoint arrays must align")
    marked = np.zeros(n, dtype=bool)
    if nontree_u.size == 0:
        return marked

    ax = nontree_u.copy()
    ay = nontree_v.copy()
    # Drop self-loops immediately; they close trivial cycles through no tree edge.
    keep = ax != ay
    ax, ay = ax[keep], ay[keep]
    num_walks = int(ax.size)

    # On the device the marking phase is ONE kernel: a thread per non-tree
    # edge walks both endpoints to the LCA inside the kernel.  The lockstep
    # rounds below exist only to vectorize the simulation; the cost is charged
    # once, with the total number of walk steps (= total marked-path length,
    # the O(m·d) quantity) as the work.
    rounds = 0
    total_steps = 0
    while ax.size:
        lx = levels[ax]
        ly = levels[ay]
        move_x = lx >= ly
        move_y = ly >= lx
        # Mark the tree edges being traversed (the edge from the moving node
        # to its parent is identified by the moving node).
        marked[ax[move_x]] = True
        marked[ay[move_y]] = True
        ax = np.where(move_x, parents[ax], ax)
        ay = np.where(move_y, parents[ay], ay)
        total_steps += int(ax.size)
        still = ax != ay
        if not still.all():
            ax = ax[still]
            ay = ay[still]
        rounds += 1
        if rounds > 2 * n + 4:  # pragma: no cover - defensive
            raise InvalidGraphError("marking walk did not terminate; tree inputs corrupt")
    ctx.kernel(
        "ck_mark_walk",
        threads=max(num_walks, 1),
        ops=4.0 * num_walks + 5.0 * total_steps,
        bytes_read=16.0 * num_walks + 24.0 * total_steps,
        bytes_written=2.0 * total_steps,
        launches=1,
        divergent=True,
        random_access=True,
    )
    return marked
