"""Tarjan–Vishkin bridge finding (paper §4.1), the Euler-tour-based GPU algorithm.

Three phases, mirroring the breakdown of the paper's Figure 11:

1. **Spanning tree** — the connectivity algorithm (hook-and-compress, the
   ECL-CC substitute) produces an unrooted spanning tree as a byproduct.
2. **Euler tour** — the tree is rooted with the Euler tour technique, giving
   preorder numbers and subtree sizes; a segmented reduction then computes,
   for every node, the minimum and maximum preorder number among its non-tree
   neighbours.
3. **Detect bridges** — the per-node extremes are aggregated over subtrees
   (contiguous preorder intervals, answered with a range-min/max structure)
   into the classical ``low``/``high`` functions; the tree edge above ``v`` is
   a bridge iff neither function escapes ``v``'s preorder interval, i.e. no
   non-tree edge leaves the subtree of ``v``.

Unlike the original DFS-based criterion, this works for *any* spanning tree
(Tarjan's observation), which is what removes depth-first search — and with
it the sequential bottleneck — from the pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from ..euler import build_euler_tour, compute_tree_stats
from ..graphs.components import spanning_forest
from ..graphs.edgelist import EdgeList
from ..primitives import build_rmq, segreduce_by_key
from .result import BridgeResult
from .spanning import child_endpoints, split_tree_edges

__all__ = ["find_bridges_tarjan_vishkin"]


def find_bridges_tarjan_vishkin(edges: EdgeList, *, root: int = 0,
                                rmq_backend: str = "segment-tree",
                                list_rank_method: str = "wei-jaja",
                                ctx: Optional[ExecutionContext] = None) -> BridgeResult:
    """Find all bridges of a connected graph with the Tarjan–Vishkin algorithm.

    Parameters
    ----------
    edges:
        Connected undirected graph (run
        :func:`repro.graphs.largest_connected_component` first if unsure).
    root:
        Node at which the spanning tree is rooted.
    rmq_backend:
        ``"segment-tree"`` (paper's choice) or ``"sparse-table"`` for the
        subtree low/high aggregation.
    list_rank_method:
        List-ranking algorithm used by the Euler tour.
    ctx:
        Execution context; phases are tagged ``"Spanning tree"``,
        ``"Euler tour"`` and ``"Detect bridges"``.
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    bridge_mask = np.zeros(m, dtype=bool)
    if n <= 1 or m == 0:
        return BridgeResult(bridge_mask, algorithm="GPU TV", phase_times=dict(ctx.breakdown()))

    # Phase 1: spanning tree from the connectivity algorithm.
    with ctx.phase("Spanning tree"):
        forest = spanning_forest(edges, ctx=ctx)
        if forest.num_components != 1:
            raise InvalidGraphError(
                "Tarjan–Vishkin bridge finding requires a connected graph; "
                f"found {forest.num_components} components"
            )
    view = split_tree_edges(edges, forest.tree_edge_mask)

    # Phase 2: root the tree with the Euler tour; compute per-node non-tree extremes.
    with ctx.phase("Euler tour"):
        tour = build_euler_tour(view.tree_edges, root, list_rank_method=list_rank_method,
                                ctx=ctx)
        stats = compute_tree_stats(tour, ctx=ctx)
        pre = stats.preorder  # 1-based
        size = stats.subtree_size

        # Per-node minimum / maximum preorder among non-tree neighbours.  Each
        # non-tree edge {x, y} contributes pre[y] to x and pre[x] to y (this is
        # the moderngpu segreduce step of the paper).
        keys = np.concatenate([view.nontree_u, view.nontree_v])
        vals = np.concatenate([pre[view.nontree_v], pre[view.nontree_u]])
        min_nontree = segreduce_by_key(keys, vals, n, "min",
                                       identity=np.int64(np.iinfo(np.int64).max), ctx=ctx)
        max_nontree = segreduce_by_key(keys, vals, n, "max",
                                       identity=np.int64(0), ctx=ctx)
        # A node with no non-tree neighbour contributes its own preorder number
        # (the classical definition includes preorder(v) in low(v)/high(v)).
        min_nontree = np.minimum(min_nontree, pre)
        max_nontree = np.maximum(max_nontree, pre)

    # Phase 3: aggregate over subtrees and apply the bridge criterion.
    with ctx.phase("Detect bridges"):
        # Lay the per-node extremes out in preorder positions (0-based) so a
        # subtree becomes a contiguous interval.
        order_pos = pre - 1
        min_by_pos = np.empty(n, dtype=np.int64)
        max_by_pos = np.empty(n, dtype=np.int64)
        min_by_pos[order_pos] = min_nontree
        max_by_pos[order_pos] = max_nontree
        ctx.kernel(
            "tv_scatter_preorder",
            threads=n,
            ops=2.0 * n,
            bytes_read=3.0 * n * 8,
            bytes_written=2.0 * n * 8,
            launches=1,
            random_access=True,
        )
        rmq_min = build_rmq(min_by_pos, "min", backend=rmq_backend, ctx=ctx)
        rmq_max = build_rmq(max_by_pos, "max", backend=rmq_backend, ctx=ctx)

        # Evaluate low/high only for the nodes that head a tree edge (every
        # non-root node); intervals are [pre - 1, pre + size - 2] in 0-based
        # position space.
        children = child_endpoints(view, stats.parent)
        lo_idx = pre[children] - 1
        hi_idx = lo_idx + size[children] - 1
        low = rmq_min.query(lo_idx, hi_idx, ctx=ctx)
        high = rmq_max.query(lo_idx, hi_idx, ctx=ctx)
        inside_low = low >= pre[children]
        inside_high = high <= pre[children] + size[children] - 1
        is_bridge = inside_low & inside_high
        bridge_mask[view.tree_edge_indices] = is_bridge
        ctx.kernel(
            "tv_bridge_criterion",
            threads=int(children.size),
            ops=6.0 * children.size,
            bytes_read=6.0 * children.size * 8,
            bytes_written=1.0 * children.size,
            launches=1,
            random_access=True,
        )

    return BridgeResult(bridge_mask, algorithm="GPU TV", phase_times=dict(ctx.breakdown()))
