"""NetworkX-based bridge oracle, used only by the test suite.

NetworkX is an optional test dependency; importing this module outside the
test environment without networkx installed raises a clear error.
"""

from __future__ import annotations

import numpy as np

from ..graphs.edgelist import EdgeList
from .result import BridgeResult

__all__ = ["find_bridges_networkx"]


def find_bridges_networkx(edges: EdgeList) -> BridgeResult:
    """Find bridges using :func:`networkx.bridges` (oracle, no cost accounting).

    Parallel edges and self-loops are handled the same way the library's own
    algorithms handle them: a duplicated edge is never a bridge, and the
    verdict of a simple edge is unaffected by self-loops elsewhere.
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - test env always has networkx
        raise ImportError("networkx is required for the bridge oracle") from exc

    graph = nx.Graph()
    graph.add_nodes_from(range(edges.num_nodes))
    m = edges.num_edges
    # Track multiplicity: an edge that appears more than once (in either
    # direction) can never be a bridge.
    multiplicity: dict = {}
    for idx, (a, b) in enumerate(zip(edges.u.tolist(), edges.v.tolist())):
        key = (min(a, b), max(a, b))
        multiplicity.setdefault(key, []).append(idx)
        if a != b:
            graph.add_edge(a, b)

    bridge_mask = np.zeros(m, dtype=bool)
    for a, b in nx.bridges(graph):
        key = (min(a, b), max(a, b))
        indices = multiplicity.get(key, [])
        if len(indices) == 1:
            bridge_mask[indices[0]] = True
    return BridgeResult(bridge_mask, algorithm="networkx oracle")
