"""Sequential DFS bridge finding (Hopcroft–Tarjan), the single-core CPU baseline.

The classical linear-time algorithm: run a depth-first search, compute for
every node ``low(v)`` — the smallest discovery time reachable from the subtree
of ``v`` using at most one back edge — and report the tree edge into ``v`` as
a bridge whenever ``low(v)`` is not smaller than ``v``'s own discovery time.

The implementation is iterative (explicit stack) so that road-network-sized
graphs do not overflow Python's recursion limit, handles parallel edges
correctly (only the specific half-edge used to enter a node is excluded from
its back edges, so a doubled edge is never a bridge), and is also the
correctness oracle the parallel algorithms are tested against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..graphs.csr import CSRGraph
from ..graphs.edgelist import EdgeList
from .result import BridgeResult

__all__ = ["find_bridges_dfs"]


def find_bridges_dfs(edges: EdgeList, *, ctx: Optional[ExecutionContext] = None,
                     csr: Optional[CSRGraph] = None) -> BridgeResult:
    """Find all bridges with a sequential iterative DFS.

    Works on disconnected graphs (every component is searched).  The modeled
    cost is a single sequential pass over ``n + 2m`` adjacency slots with
    random access.
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    graph = csr if csr is not None else CSRGraph.from_edgelist(edges)
    bridge_mask = np.zeros(m, dtype=bool)
    if n == 0 or m == 0:
        return BridgeResult(bridge_mask, algorithm="Single-core CPU DFS")

    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    edge_ids = graph.edge_ids.tolist()

    disc = [-1] * n
    low = [0] * n
    timer = 0
    bridges = bridge_mask  # alias; set via numpy indexing at the end
    bridge_list = [False] * m

    with ctx.phase("DFS"):
        for start in range(n):
            if disc[start] != -1:
                continue
            # Stack frames: (node, entry half-edge slot or -1, next slot to scan)
            disc[start] = low[start] = timer
            timer += 1
            stack = [(start, -1, indptr[start])]
            while stack:
                node, entry_slot, next_slot = stack.pop()
                if next_slot < indptr[node + 1]:
                    # Re-push the current frame with the scan pointer advanced.
                    stack.append((node, entry_slot, next_slot + 1))
                    neighbor = indices[next_slot]
                    if disc[neighbor] == -1:
                        disc[neighbor] = low[neighbor] = timer
                        timer += 1
                        stack.append((neighbor, next_slot, indptr[neighbor]))
                    elif edge_ids[next_slot] != (edge_ids[entry_slot] if entry_slot != -1 else -2):
                        # Back (or forward/cross in undirected DFS: impossible)
                        # edge; parallel edges are distinct edge ids and do count.
                        if disc[neighbor] < low[node]:
                            low[node] = disc[neighbor]
                    continue
                # Node finished: propagate its low value to its DFS parent and
                # decide whether the entry edge is a bridge.
                if entry_slot != -1:
                    # Parent is the source of the entry slot; recover it from
                    # the stack top (it is the frame that pushed us).
                    parent = stack[-1][0]
                    if low[node] < low[parent]:
                        low[parent] = low[node]
                    if low[node] > disc[parent]:
                        bridge_list[edge_ids[entry_slot]] = True

        ctx.sequential(
            "dfs_bridges",
            ops=4.0 * (n + 2 * m),
            bytes_touched=48.0 * (n + 2 * m),
            random_access=True,
        )

    bridges[:] = np.asarray(bridge_list, dtype=bool)
    return BridgeResult(bridges, algorithm="Single-core CPU DFS",
                        phase_times=dict(ctx.breakdown()))
