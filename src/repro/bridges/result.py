"""Common result type for bridge-finding algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class BridgeResult:
    """Outcome of a bridge-finding run.

    Attributes
    ----------
    bridge_mask:
        Boolean array over the *undirected* edges of the input
        :class:`~repro.graphs.edgelist.EdgeList`: ``True`` where the edge is a
        bridge.
    algorithm:
        Human-readable name of the algorithm that produced the result.
    phase_times:
        Modeled per-phase times in seconds (e.g. ``{"Spanning tree": …,
        "Euler tour": …, "Detect bridges": …}``) captured from the execution
        context, matching the paper's Figure 11 breakdown.
    """

    bridge_mask: np.ndarray
    algorithm: str = ""
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def num_bridges(self) -> int:
        """Number of bridges found."""
        return int(np.count_nonzero(self.bridge_mask))

    @property
    def bridge_edge_indices(self) -> np.ndarray:
        """Indices of the bridge edges in the input edge list."""
        return np.flatnonzero(self.bridge_mask)

    @property
    def total_time_s(self) -> float:
        """Total modeled time across recorded phases."""
        return float(sum(self.phase_times.values()))

    def agrees_with(self, other: "BridgeResult") -> bool:
        """True when both results mark exactly the same edges as bridges."""
        return bool(np.array_equal(self.bridge_mask, other.bridge_mask))

    @property
    def nbytes(self) -> int:
        """Memory footprint of the result mask."""
        return int(self.bridge_mask.nbytes)
