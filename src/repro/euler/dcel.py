"""DCEL-like intermediate representation of a tree (paper §2.1).

The Euler tour of a tree is derived from a doubly-connected-edge-list style
structure over the ``2(n-1)`` directed half-edges: every half-edge stores a
``twin`` pointer (the opposite direction of the same undirected edge) and a
``next`` pointer (the next half-edge leaving the same source node, cyclically).

Construction follows the paper exactly:

1. build array ``A`` of directed half-edges with each undirected edge
   contributing its two directions *adjacently* — so ``twin`` is free;
2. build ``B``, the lexicographically sorted copy of ``A`` (sorted by
   ``(source, target)``), keeping cross pointers between the two copies;
3. ``next`` of an edge is its successor inside its source's block of ``B``,
   wrapping around to ``first[source]`` at the block boundary.

The sort is the dominant cost, which is why the cost model charges it as a
full radix sort of the half-edge array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import NotATreeError
from ..graphs.edgelist import EdgeList
from ..primitives import sort_pairs


@dataclass
class DCEL:
    """Half-edge structure of a tree.

    Half-edge ``2i`` is undirected edge ``i`` traversed from ``u[i]`` to
    ``v[i]``; half-edge ``2i + 1`` is the reverse.  All arrays are indexed by
    half-edge id.

    Attributes
    ----------
    src, dst:
        Endpoints of each half-edge.
    twin:
        Id of the opposite-direction half-edge (an involution).
    next:
        Id of the next half-edge with the same source, cyclic per source.
    first:
        For every node, the id of the lexicographically first half-edge
        leaving it (-1 for isolated nodes, which cannot occur in a tree with
        more than one node).
    n:
        Number of tree nodes.
    """

    src: np.ndarray
    dst: np.ndarray
    twin: np.ndarray
    next: np.ndarray
    first: np.ndarray
    n: int

    @property
    def num_halfedges(self) -> int:
        """Number of directed half-edges, ``2(n-1)``."""
        return int(self.src.size)

    @property
    def undirected_edge_ids(self) -> np.ndarray:
        """Undirected edge id of each half-edge (``halfedge_id // 2``)."""
        return np.arange(self.num_halfedges, dtype=np.int64) // 2


def build_dcel(tree_edges: EdgeList, *, ctx: Optional[ExecutionContext] = None) -> DCEL:
    """Construct the DCEL of an (unrooted) tree given as an undirected edge list.

    Raises :class:`NotATreeError` when the edge count is not ``n - 1``; full
    connectivity/acyclicity is verified later by the tour construction (a
    disconnected "tree" yields a tour that does not cover all half-edges).
    """
    ctx = ensure_context(ctx)
    n = tree_edges.num_nodes
    m = tree_edges.num_edges
    if n == 0:
        raise NotATreeError("a tree must have at least one node")
    if m != n - 1:
        raise NotATreeError(f"a tree on {n} nodes needs {n - 1} edges, got {m}")
    if np.any(tree_edges.u == tree_edges.v):
        raise NotATreeError("trees cannot contain self-loops")

    # Array A: interleaved directions so twin(e) = e XOR 1.
    src, dst, _ = tree_edges.directed_halfedges()
    h = src.size  # = 2 m
    twin = np.arange(h, dtype=np.int64) ^ 1
    ctx.kernel(
        "dcel_build_A",
        threads=max(h, 1),
        ops=2.0 * h,
        bytes_read=float(tree_edges.u.nbytes + tree_edges.v.nbytes),
        bytes_written=float(src.nbytes + dst.nbytes + twin.nbytes),
        launches=1,
    )

    if h == 0:
        return DCEL(
            src=src, dst=dst, twin=twin,
            next=np.empty(0, dtype=np.int64),
            first=np.full(n, -1, dtype=np.int64),
            n=n,
        )

    # Array B: lexicographically sorted copy, with `order` giving, for each
    # position in B, the corresponding half-edge id in A.
    sorted_src, _sorted_dst, order = sort_pairs(src, dst, ctx=ctx)

    # first[x]: position in B of the first half-edge leaving x, scattered from
    # the block boundaries of the sorted source array.
    is_block_start = np.empty(h, dtype=bool)
    is_block_start[0] = True
    is_block_start[1:] = sorted_src[1:] != sorted_src[:-1]
    first_pos = np.full(n, -1, dtype=np.int64)
    first_pos[sorted_src[is_block_start]] = np.flatnonzero(is_block_start)
    first = np.full(n, -1, dtype=np.int64)
    first[sorted_src[is_block_start]] = order[np.flatnonzero(is_block_start)]

    # next pointers: within a block, the next position in B; at block ends,
    # wrap to the block start.
    next_pos = np.arange(1, h + 1, dtype=np.int64)
    is_block_end = np.empty(h, dtype=bool)
    is_block_end[:-1] = sorted_src[1:] != sorted_src[:-1]
    is_block_end[-1] = True
    next_pos[is_block_end] = first_pos[sorted_src[is_block_end]]
    nxt = np.empty(h, dtype=np.int64)
    nxt[order] = order[next_pos]

    ctx.kernel(
        "dcel_build_next",
        threads=h,
        ops=5.0 * h,
        bytes_read=float(h) * 40.0,
        bytes_written=float(h) * 16.0 + float(first.nbytes),
        launches=3,
        random_access=True,
    )
    return DCEL(src=src, dst=dst, twin=twin, next=nxt, first=first, n=n)
