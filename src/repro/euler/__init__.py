"""The Euler tour technique (paper §2): DCEL, tour construction, node statistics."""

from .dcel import DCEL, build_dcel
from .stats import TreeStats, compute_tree_stats, tree_statistics_from_parents
from .tour import (
    EulerTour,
    build_euler_tour,
    build_euler_tour_from_dcel,
    build_euler_tour_from_parents,
)

__all__ = [
    "DCEL",
    "build_dcel",
    "EulerTour",
    "build_euler_tour",
    "build_euler_tour_from_dcel",
    "build_euler_tour_from_parents",
    "TreeStats",
    "compute_tree_stats",
    "tree_statistics_from_parents",
]
