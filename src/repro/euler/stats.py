"""Node statistics from an Euler tour: parent, depth, preorder, subtree size.

Once the tour is an array, each statistic is one scan plus one scatter
(paper §2, §2.2):

* assigning weight 1 to *down* half-edges (an edge is down iff it appears
  before its twin) and 0 to *up* ones, the prefix sums are the preorder
  numbers;
* with weights +1/-1 instead, the prefix sums are the node depths;
* a node's parent is the source of its down half-edge;
* a subtree corresponds to the contiguous tour interval between a node's down
  half-edge and that edge's twin, so the subtree size is half the interval
  length (plus the node itself).

These are exactly the quantities the Inlabel LCA preprocessing and the
Tarjan–Vishkin bridge algorithm consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..graphs.trees import NO_PARENT
from ..primitives import inclusive_scan
from .tour import EulerTour, build_euler_tour_from_parents


@dataclass
class TreeStats:
    """Per-node statistics of a rooted tree.

    Attributes
    ----------
    root:
        The root node.
    parent:
        Parent of every node (``-1`` for the root).
    depth:
        Distance from the root.
    preorder:
        1-based preorder (DFS visiting) number, following the tour order.
        The subtree of ``v`` occupies preorder interval
        ``[preorder[v], preorder[v] + subtree_size[v] - 1]``.
    subtree_size:
        Number of nodes in the subtree rooted at each node.
    """

    root: int
    parent: np.ndarray
    depth: np.ndarray
    preorder: np.ndarray
    subtree_size: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.parent.size)

    def preorder_interval(self) -> tuple:
        """0-based, inclusive subtree intervals ``(start, end)`` in preorder space.

        ``start[v] = preorder[v] - 1`` and ``end[v] = start[v] + size[v] - 1``;
        useful for range queries over arrays indexed by ``preorder - 1``.
        """
        start = self.preorder - 1
        end = start + self.subtree_size - 1
        return start, end


def compute_tree_stats(tour: EulerTour,
                       *, ctx: Optional[ExecutionContext] = None) -> TreeStats:
    """Derive parent / depth / preorder / subtree size from an Euler tour."""
    ctx = ensure_context(ctx)
    n = tour.n
    root = tour.root
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    preorder = np.ones(n, dtype=np.int64)
    subtree_size = np.full(n, 1, dtype=np.int64)

    h = tour.length
    if h == 0:
        subtree_size[root] = n
        return TreeStats(root=root, parent=parent, depth=depth,
                         preorder=preorder, subtree_size=subtree_size)

    rank = tour.rank
    twin_rank = rank[tour.twin]
    is_down = rank < twin_rank
    ctx.kernel(
        "euler_classify_direction",
        threads=h,
        ops=2.0 * h,
        bytes_read=2.0 * h * 8,
        bytes_written=float(h),
        launches=1,
        random_access=True,
    )

    # Scans over the tour-ordered arrays.
    down_in_order = is_down[tour.tour]
    ctx.kernel(
        "euler_gather_tour_order",
        threads=h,
        ops=float(h),
        bytes_read=2.0 * h * 8,
        bytes_written=float(h),
        launches=1,
        random_access=True,
    )
    depth_delta = np.where(down_in_order, 1, -1).astype(np.int64)
    depth_scan = inclusive_scan(depth_delta, ctx=ctx)
    preorder_scan = inclusive_scan(down_in_order.astype(np.int64), ctx=ctx)

    # Scatter per down half-edge into per-node arrays.
    down_edges = np.flatnonzero(is_down)
    pos = rank[down_edges]
    target = tour.dst[down_edges]
    parent[target] = tour.src[down_edges]
    depth[target] = depth_scan[pos]
    preorder[target] = preorder_scan[pos] + 1
    subtree_size[target] = (twin_rank[down_edges] - pos + 1) // 2
    # Root values.
    parent[root] = NO_PARENT
    depth[root] = 0
    preorder[root] = 1
    subtree_size[root] = n
    ctx.kernel(
        "euler_scatter_node_stats",
        threads=int(down_edges.size),
        ops=6.0 * down_edges.size,
        bytes_read=float(down_edges.size) * 48.0,
        bytes_written=float(down_edges.size) * 32.0,
        launches=2,
        random_access=True,
    )
    return TreeStats(root=root, parent=parent, depth=depth,
                     preorder=preorder, subtree_size=subtree_size)


def tree_statistics_from_parents(parents: np.ndarray,
                                 *, list_rank_method: str = "wei-jaja",
                                 ctx: Optional[ExecutionContext] = None) -> TreeStats:
    """Full pipeline: parent array → Euler tour → node statistics.

    The returned parents are recomputed from the tour (they equal the input
    up to the validity of the input parent array); this is the path the GPU
    algorithms use so all their inputs flow through the tour machinery.
    """
    tour = build_euler_tour_from_parents(parents, list_rank_method=list_rank_method, ctx=ctx)
    return compute_tree_stats(tour, ctx=ctx)
