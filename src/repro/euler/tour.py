"""Euler tour construction and materialization as an array (paper §2.1–2.2).

Given the DCEL of a tree, the successor of half-edge ``e`` along the Euler
tour is ``succ(e) = next(twin(e))`` — after traversing ``e = (x, y)`` and
arriving at ``y``... conceptually, one looks back along ``twin(e) = (y, x)``
and departs along the next half-edge leaving ``y``.  The resulting list is
cyclic; it is cut at an arbitrary half-edge leaving the chosen root, which is
also how an unrooted tree gets its root.

Following the paper's key optimization, list ranking is called exactly
**once**, to turn the linked list into an array of half-edges in tour order;
every subsequent node statistic is then an array scan (see
:mod:`repro.euler.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError, NotATreeError
from ..graphs.edgelist import EdgeList
from ..graphs.trees import NO_PARENT, parents_to_edgelist, tree_root
from ..primitives import list_rank, order_from_ranks
from .dcel import DCEL, build_dcel


@dataclass
class EulerTour:
    """An Euler tour of a rooted tree, materialized as an array.

    Half-edge ids refer to the DCEL numbering (half-edge ``2i``/``2i+1`` are
    the two directions of undirected tree edge ``i``).

    Attributes
    ----------
    dcel:
        The underlying half-edge structure.
    root:
        The root node the cyclic tour was cut at.
    head:
        The first half-edge of the tour (leaves the root).
    succ:
        Successor half-edge along the tour; the last half-edge has ``-1``.
    rank:
        Position of each half-edge in the tour (0-based).
    tour:
        Inverse of ``rank``: ``tour[p]`` is the half-edge at position ``p``.
    """

    dcel: DCEL
    root: int
    head: int
    succ: np.ndarray
    rank: np.ndarray
    tour: np.ndarray

    @property
    def n(self) -> int:
        """Number of tree nodes."""
        return self.dcel.n

    @property
    def length(self) -> int:
        """Tour length, ``2(n-1)``."""
        return int(self.rank.size)

    @property
    def src(self) -> np.ndarray:
        """Source node of each half-edge (DCEL order)."""
        return self.dcel.src

    @property
    def dst(self) -> np.ndarray:
        """Target node of each half-edge (DCEL order)."""
        return self.dcel.dst

    @property
    def twin(self) -> np.ndarray:
        """Twin half-edge of each half-edge (DCEL order)."""
        return self.dcel.twin

    def nodes_in_tour_order(self) -> np.ndarray:
        """Nodes visited by the tour: destination of every tour edge, prefixed by the root."""
        return np.concatenate(
            [np.asarray([self.root], dtype=np.int64), self.dst[self.tour]]
        )


def build_euler_tour_from_dcel(dcel: DCEL, root: int = 0,
                               *, list_rank_method: str = "wei-jaja",
                               ctx: Optional[ExecutionContext] = None) -> EulerTour:
    """Cut and rank the Euler tour of a tree whose DCEL is already built."""
    ctx = ensure_context(ctx)
    n = dcel.n
    if not (0 <= root < n):
        raise InvalidGraphError(f"root {root} out of range for tree of {n} nodes")
    h = dcel.num_halfedges
    if h == 0:
        # Single-node tree: an empty tour.
        empty = np.empty(0, dtype=np.int64)
        return EulerTour(dcel=dcel, root=root, head=-1, succ=empty,
                         rank=empty.copy(), tour=empty.copy())

    # A tree with more than one node has no isolated vertex; an isolated
    # vertex here means the edge set (of the right cardinality n - 1) is
    # disconnected, in which case the remaining edges necessarily contain a
    # cycle and the "tour" would silently skip part of the node set.
    if n > 1 and bool(np.any(dcel.first < 0)):
        raise NotATreeError("input has isolated nodes; it is not a connected tree")

    # succ(e) = next(twin(e)); one gather-compose kernel.
    succ = dcel.next[dcel.twin]
    ctx.kernel(
        "euler_succ",
        threads=h,
        ops=2.0 * h,
        bytes_read=2.0 * h * 8,
        bytes_written=1.0 * h * 8,
        launches=1,
        random_access=True,
    )

    head = int(dcel.first[root])
    if head < 0:
        raise NotATreeError(f"root {root} has no incident edges; tree is disconnected")

    # Cut the cycle: the unique predecessor of the head becomes the tail.
    pred_mask = succ == head
    preds = np.flatnonzero(pred_mask)
    if preds.size != 1:
        raise NotATreeError("Euler tour is not a single cycle; input is not a tree")
    succ = succ.copy()
    succ[preds[0]] = -1
    ctx.kernel(
        "euler_cut_cycle",
        threads=h,
        ops=float(h),
        bytes_read=1.0 * h * 8,
        bytes_written=8.0,
        launches=1,
    )

    try:
        rank = list_rank(succ, head, method=list_rank_method, ctx=ctx)
    except InvalidGraphError as exc:
        raise NotATreeError(
            "Euler tour does not visit every half-edge; input is not a connected tree"
        ) from exc
    tour = order_from_ranks(rank, ctx=ctx)
    return EulerTour(dcel=dcel, root=root, head=head, succ=succ, rank=rank, tour=tour)


def build_euler_tour(tree_edges: EdgeList, root: int = 0,
                     *, list_rank_method: str = "wei-jaja",
                     ctx: Optional[ExecutionContext] = None) -> EulerTour:
    """Build an Euler tour from an unordered undirected tree edge list.

    This is the full pipeline of paper §2.1–2.2: DCEL construction (sort),
    successor composition, cycle cut at ``root``, and a single list ranking.
    """
    ctx = ensure_context(ctx)
    dcel = build_dcel(tree_edges, ctx=ctx)
    return build_euler_tour_from_dcel(dcel, root, list_rank_method=list_rank_method, ctx=ctx)


def build_euler_tour_from_parents(parents: np.ndarray,
                                  *, list_rank_method: str = "wei-jaja",
                                  ctx: Optional[ExecutionContext] = None) -> EulerTour:
    """Build an Euler tour of a tree given as a parent array, rooted at its root."""
    parents = np.asarray(parents, dtype=np.int64)
    root = tree_root(parents)
    if parents.size == 1:
        if parents[0] != NO_PARENT:
            raise NotATreeError("single-node tree must have parent -1")
        edges = EdgeList(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 1)
        return build_euler_tour(edges, 0, list_rank_method=list_rank_method, ctx=ctx)
    edges = parents_to_edgelist(parents)
    return build_euler_tour(edges, root, list_rank_method=list_rank_method, ctx=ctx)
