"""Columnar lifecycle-event recorder for the serving stack.

A serving system's aggregates (:class:`~repro.service.stats.ServiceStats`)
answer "how did the run go"; they cannot answer "what did *that* query spend
its time on".  :class:`TraceRecorder` closes the gap: every layer of the
stack emits small, typed lifecycle events — arrival, enqueue, flush,
dispatch decision, kernel start/end, completion, cache and index activity —
that freeze into one set of parallel NumPy columns.  The recorder rides the
columnar hot path by *journaling*: :meth:`TraceRecorder.record` appends one
tuple, :meth:`TraceRecorder.record_block` appends defensive copies of the
caller's arrays, and all per-row work — sampling masks, dtype conversion,
broadcasting, column assembly — is deferred to the first
:meth:`TraceRecorder.table` call, off the serving hot path.  When no
recorder is attached the emission sites reduce to one ``is None`` check.

Events are rows of seven parallel columns:

``time_s``
    When the event happened, on the *simulated* clock shared by every
    scheduler, backend lane and replica — so traces from different replicas
    merge onto one time axis with no skew correction.
``kind``
    Small integer event type (the ``EV_*`` constants; :data:`EVENT_NAMES`
    maps codes to names).
``ticket``
    The query's ticket for per-query events, ``-1`` for batch- or
    system-level events.
``batch``
    Recorder-issued batch id (:meth:`TraceRecorder.next_batch_id`), ``-1``
    when the event belongs to no batch.
``replica``
    Emitting replica id (``0`` on a single service, ``-1`` for
    cluster-level events such as shedding).
``detail``
    One float payload whose meaning depends on the kind (latency, batch
    size, predicted cost, hit count, build time — see the constants below).
``aux``
    An interned string code (:meth:`TraceRecorder.intern`) naming the
    dataset, backend lane or flush trigger involved; ``-1`` when none.

Sampling: ``sample=N`` keeps per-query events only for tickets divisible by
``N``.  Because the predicate is a pure function of the ticket — not of
arrival order or recorder state — a sampled trace is a strict subset of the
full trace of the same run, and batch-level events are always kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ServiceError

__all__ = [
    "EV_ARRIVAL",
    "EV_ENQUEUE",
    "EV_CACHE_LANE_HIT",
    "EV_FLUSH",
    "EV_DISPATCH",
    "EV_KERNEL_START",
    "EV_KERNEL_END",
    "EV_COMPLETE",
    "EV_CACHE_HITS",
    "EV_CACHE_MISSES",
    "EV_CACHE_INSERT",
    "EV_CACHE_RESET",
    "EV_INDEX_LOAD",
    "EV_INDEX_EVICT",
    "EV_SHED",
    "EV_FAULT",
    "EV_RETRY",
    "EV_HEDGE",
    "EV_MEMBERSHIP",
    "EV_SCALE",
    "EVENT_NAMES",
    "TraceRecorder",
    "TraceTable",
]

#: A query arrived at the front door.  ``detail`` unused; ``aux`` = dataset.
EV_ARRIVAL = 0
#: A query entered a scheduler's pending queue.  ``aux`` = dataset.
EV_ENQUEUE = 1
#: A query was answered from the answer cache at admission (the front-door
#: memoization lane).  ``time_s`` is the completion instant, ``detail`` the
#: modeled latency.
EV_CACHE_LANE_HIT = 2
#: A scheduler flushed a batch.  ``detail`` = batch size, ``aux`` = trigger
#: ("size" / "wait" / "drain" / "hit").
EV_FLUSH = 3
#: The dispatcher chose a backend for a batch.  ``detail`` = predicted
#: modeled seconds for the priced (kernel) queries, ``aux`` = backend key.
EV_DISPATCH = 4
#: A batch started occupying its backend lane.  ``detail`` = charged
#: service seconds, ``aux`` = lane key.
EV_KERNEL_START = 5
#: A batch released its backend lane.  ``aux`` = lane key.
EV_KERNEL_END = 6
#: A query's answer was stored.  ``detail`` = modeled latency.
EV_COMPLETE = 7
#: An answer-cache probe found keys.  ``detail`` = hit count.
EV_CACHE_HITS = 8
#: An answer-cache probe missed keys.  ``detail`` = miss count.
EV_CACHE_MISSES = 9
#: Unique miss answers were inserted into the answer cache.
#: ``detail`` = inserted count.
EV_CACHE_INSERT = 10
#: The answer cache reset an epoch under load pressure.
#: ``detail`` = resets in this event (normally 1).
EV_CACHE_RESET = 11
#: The index registry built an artifact.  ``detail`` = modeled build
#: seconds, ``aux`` = dataset.
EV_INDEX_LOAD = 12
#: The index registry evicted an artifact.  ``detail`` = freed bytes,
#: ``aux`` = dataset.
EV_INDEX_EVICT = 13
#: Admission control shed queries.  ``detail`` = shed count,
#: ``replica`` = -1 (a cluster-level event).
EV_SHED = 14
#: A fault-schedule event was applied.  ``replica`` = target (-1 for "add"),
#: ``detail`` = factor (slowdown) or count (transient), ``aux`` = action.
EV_FAULT = 15
#: Queries were re-dispatched to a surviving copy after a replica failure.
#: ``replica`` = new target, ``detail`` = query count, ``aux`` = dataset.
EV_RETRY = 16
#: A straggling batch was hedged to a second copy.  ``replica`` = hedge
#: target, ``batch`` = the straggler's batch id, ``detail`` = the hedge's
#: modeled service seconds, ``aux`` = 1 if the hedge won else 0.
EV_HEDGE = 17
#: Cluster membership changed.  ``replica`` = the replica added/retired,
#: ``detail`` = live replica count afterwards, ``aux`` = action.
EV_MEMBERSHIP = 18
#: A reactive scale decision landed (:meth:`ClusterService.scale_to`).
#: ``detail`` = the target replica count, ``aux`` = direction
#: (``"out"`` / ``"in"``), ``replica`` = -1 (a cluster-level event); the
#: individual adds/retires it causes emit their own ``EV_MEMBERSHIP`` rows.
EV_SCALE = 19

#: Event-kind code -> stable short name (JSONL and report rendering).
EVENT_NAMES: Tuple[str, ...] = (
    "arrival",
    "enqueue",
    "cache_lane_hit",
    "flush",
    "dispatch",
    "kernel_start",
    "kernel_end",
    "complete",
    "cache_hits",
    "cache_misses",
    "cache_insert",
    "cache_reset",
    "index_load",
    "index_evict",
    "shed",
    "fault",
    "retry",
    "hedge",
    "membership",
    "scale",
)

#: Kinds that carry a real ticket (and are therefore subject to sampling).
PER_QUERY_KINDS: Tuple[int, ...] = (
    EV_ARRIVAL,
    EV_ENQUEUE,
    EV_CACHE_LANE_HIT,
    EV_COMPLETE,
)

#: Column names and dtypes of a materialized trace, in storage order.
_COLUMNS: Tuple[Tuple[str, type], ...] = (
    ("time_s", np.float64),
    ("kind", np.int16),
    ("ticket", np.int64),
    ("batch", np.int64),
    ("replica", np.int32),
    ("detail", np.float64),
    ("aux", np.int32),
)


@dataclass(frozen=True)
class TraceTable:
    """Immutable columnar snapshot of recorded events.

    Columns are trimmed copies, so a table stays valid after its recorder
    keeps appending.  ``labels`` resolves the ``aux`` codes: ``aux`` value
    ``i >= 0`` means ``labels[i]``.

    >>> rec = TraceRecorder()
    >>> rec.record(EV_ARRIVAL, 0.5, ticket=3, aux=rec.intern("t"))
    >>> table = rec.table()
    >>> (table.n_events, table.labels)
    (1, ('t',))
    >>> float(table.time_s[0]), int(table.ticket[0])
    (0.5, 3)
    """

    time_s: np.ndarray
    kind: np.ndarray
    ticket: np.ndarray
    batch: np.ndarray
    replica: np.ndarray
    detail: np.ndarray
    aux: np.ndarray

    labels: Tuple[str, ...]

    @property
    def n_events(self) -> int:
        """Number of recorded events (rows)."""
        return int(self.time_s.size)

    def __len__(self) -> int:
        return self.n_events

    def label_code(self, label: str) -> int:
        """The ``aux`` code for ``label`` (``-1`` when never recorded)."""
        try:
            return self.labels.index(label)
        except ValueError:
            return -1

    def label_of(self, code: int) -> str:
        """The label behind an ``aux`` code (empty string for ``-1``)."""
        return self.labels[code] if 0 <= code < len(self.labels) else ""

    def select(self, mask: np.ndarray) -> "TraceTable":
        """A new table holding the rows where ``mask`` is True."""
        return TraceTable(
            time_s=self.time_s[mask],
            kind=self.kind[mask],
            ticket=self.ticket[mask],
            batch=self.batch[mask],
            replica=self.replica[mask],
            detail=self.detail[mask],
            aux=self.aux[mask],
            labels=self.labels,
        )

    def of_kind(self, *kinds: int) -> "TraceTable":
        """Rows whose event kind is one of ``kinds``.

        >>> rec = TraceRecorder()
        >>> rec.record(EV_FLUSH, 0.0, batch=0, detail=4.0)
        >>> rec.record(EV_COMPLETE, 1.0, ticket=0, batch=0)
        >>> rec.table().of_kind(EV_FLUSH).n_events
        1
        """
        mask = np.isin(self.kind, np.asarray(kinds, dtype=self.kind.dtype))
        return self.select(mask)

    def for_replica(self, replica: int) -> "TraceTable":
        """Rows emitted by one replica."""
        return self.select(self.replica == int(replica))

    def canonical(self) -> "TraceTable":
        """The table sorted by a full lexicographic row key (time first).

        Two traces that record the same event *multiset* — e.g. a single
        service and a 1-replica cluster, whose emission order differs only
        where simultaneous events interleave — canonicalize to bit-identical
        tables.
        """
        order = np.lexsort(
            (
                self.aux,
                self.detail,
                self.replica,
                self.batch,
                self.ticket,
                self.kind,
                self.time_s,
            )
        )
        return self.select(order)

    def equals(self, other: "TraceTable") -> bool:
        """Exact equality: same labels and bit-identical columns."""
        return (
            self.labels == other.labels
            and np.array_equal(self.time_s, other.time_s)
            and np.array_equal(self.kind, other.kind)
            and np.array_equal(self.ticket, other.ticket)
            and np.array_equal(self.batch, other.batch)
            and np.array_equal(self.replica, other.replica)
            and np.array_equal(self.detail, other.detail)
            and np.array_equal(self.aux, other.aux)
        )

    @staticmethod
    def merge(tables: Sequence["TraceTable"]) -> "TraceTable":
        """Merge several tables onto one time axis.

        Label tables are unioned in first-appearance order and every
        ``aux`` code remapped; rows are ordered by time with ties broken by
        input order (a stable merge).  Recorders on the same simulated
        clock therefore merge with no skew correction.

        >>> a, b = TraceRecorder(), TraceRecorder()
        >>> a.record(EV_FLUSH, 0.2, batch=0, aux=a.intern("size"))
        >>> b.record(EV_FLUSH, 0.1, batch=0, aux=b.intern("wait"))
        >>> merged = TraceTable.merge([a.table(), b.table()])
        >>> [merged.label_of(int(c)) for c in merged.aux]
        ['wait', 'size']
        """
        if not tables:
            return TraceRecorder().table()
        labels: List[str] = []
        codes: Dict[str, int] = {}
        remapped_aux: List[np.ndarray] = []
        for table in tables:
            mapping = np.empty(len(table.labels) + 1, dtype=np.int32)
            mapping[-1] = -1
            for i, label in enumerate(table.labels):
                code = codes.get(label)
                if code is None:
                    code = len(labels)
                    codes[label] = code
                    labels.append(label)
                mapping[i] = code
            remapped_aux.append(mapping[table.aux])
        time_s = np.concatenate([t.time_s for t in tables])
        sequence = np.arange(time_s.size)
        order = np.lexsort((sequence, time_s))
        return TraceTable(
            time_s=time_s[order],
            kind=np.concatenate([t.kind for t in tables])[order],
            ticket=np.concatenate([t.ticket for t in tables])[order],
            batch=np.concatenate([t.batch for t in tables])[order],
            replica=np.concatenate([t.replica for t in tables])[order],
            detail=np.concatenate([t.detail for t in tables])[order],
            aux=np.concatenate(remapped_aux)[order],
            labels=tuple(labels),
        )


class TraceRecorder:
    """Journaling sink for lifecycle events, frozen into columns on demand.

    Appends are O(1): a scalar event is one tuple append, a block event one
    defensive copy of the caller's arrays plus a tuple append.  Sampling
    masks, dtype conversion and column assembly all happen once, inside
    :meth:`table`, so the cost a live recorder adds to the serving hot path
    is per-*call*, not per-*row* — the property the overhead benchmark
    (``benchmarks/bench_obs_overhead.py``) gates.

    Parameters
    ----------
    sample:
        Keep per-query events only for tickets divisible by ``sample``
        (``1``, the default, keeps everything).  Batch- and system-level
        events (``ticket == -1``) are always kept, so batch spans stay
        complete under sampling.

    Usage
    -----
    >>> rec = TraceRecorder(sample=2)
    >>> rec.record_block(EV_ARRIVAL, np.array([0.0, 1e-6, 2e-6]),
    ...                  np.array([0, 1, 2]))
    >>> rec.table().ticket.tolist()     # ticket 1 sampled out
    [0, 2]
    """

    def __init__(self, *, sample: int = 1) -> None:
        sample = int(sample)
        if sample < 1:
            raise ServiceError(f"sample must be at least 1, got {sample}")
        self.sample = sample
        # Journal entries, in emission order.  A scalar event is the 7-tuple
        # (kind, time_s, ticket, batch, replica, detail, aux); a block event
        # is the same shape with owned ndarrays in the time/ticket/detail
        # slots (ticket is the discriminator: ndarray = block).
        self._entries: List[Tuple[object, ...]] = []
        self._frozen: Optional[TraceTable] = None
        self._labels: List[str] = []
        self._codes: Dict[str, int] = {}
        self._next_batch = 0

    # ------------------------------------------------------------------
    # Identity services
    # ------------------------------------------------------------------
    def intern(self, label: str) -> int:
        """The stable small-integer code for ``label`` (allocating one once).

        >>> rec = TraceRecorder()
        >>> rec.intern("gpu"), rec.intern("cpu1"), rec.intern("gpu")
        (0, 1, 0)
        """
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._codes[label] = code
            self._labels.append(label)
        return code

    @property
    def labels(self) -> Tuple[str, ...]:
        """Every interned label, in code order."""
        return tuple(self._labels)

    def next_batch_id(self) -> int:
        """Issue the next recorder-wide batch id (consecutive from 0).

        One recorder spans every replica of a cluster, so batch ids are
        unique across the whole deployment being traced.
        """
        batch_id = self._next_batch
        self._next_batch += 1
        return batch_id

    @property
    def n_events(self) -> int:
        """Number of events recorded so far (after sampling)."""
        return self.table().n_events

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        kind: int,
        time_s: float,
        *,
        ticket: int = -1,
        batch: int = -1,
        replica: int = 0,
        detail: float = 0.0,
        aux: int = -1,
    ) -> None:
        """Append one event row (sampled out when its ticket says so)."""
        if ticket >= 0 and self.sample > 1 and ticket % self.sample:
            return
        self._frozen = None
        self._entries.append((kind, time_s, ticket, batch, replica, detail, aux))

    def record_span(
        self,
        kind_start: int,
        kind_end: int,
        start_s: float,
        end_s: float,
        *,
        batch: int = -1,
        replica: int = 0,
        detail: float = 0.0,
        aux: int = -1,
    ) -> None:
        """Append a start/end event pair in one call.

        Equivalent to two :meth:`record` calls with ``ticket=-1`` — the
        start row carries ``detail``, the end row does not.  Exists because
        the serving layer emits one span per batch on its hot path, where
        halving the call count is measurable.
        """
        self._frozen = None
        self._entries.append(
            (kind_start, start_s, -1, batch, replica, detail, aux))
        self._entries.append((kind_end, end_s, -1, batch, replica, 0.0, aux))

    def record_block(
        self,
        kind: int,
        time_s: Union[float, np.ndarray],
        tickets: np.ndarray,
        *,
        batch: int = -1,
        replica: int = 0,
        detail: Union[float, np.ndarray] = 0.0,
        aux: int = -1,
        own: bool = False,
    ) -> None:
        """Append one per-query event row per ticket.

        ``time_s`` and ``detail`` may be scalars (broadcast) or arrays
        aligned with ``tickets``.  ``tickets`` must hold distinct,
        non-decreasing values (every serving-stack emitter satisfies this —
        tickets are issued in admission order).  Array arguments are copied
        by default, so callers may keep mutating their buffers; ``own=True``
        transfers ownership instead (the caller promises never to mutate the
        arrays again), skipping the defensive copies.  A sampling recorder
        filters eagerly — the surviving slice is tiny and freshly allocated,
        so the journal never retains a full-size copy of a sampled-down
        block, and a consecutive ticket range is sampled by stride in
        O(kept) rather than masked in O(block).
        """
        tickets = np.asarray(tickets, dtype=np.int64)
        if tickets.size == 0:
            return
        self._frozen = None
        times: Union[float, np.ndarray]
        details: Union[float, np.ndarray]
        if own:
            # Ownership transferred: append references as-is and leave even
            # the sampling mask to materialization.  This is the cheapest
            # path — one tuple append — and the one the per-batch completion
            # hook on the serving hot path uses.
            times = (
                np.asarray(time_s, dtype=np.float64)
                if isinstance(time_s, np.ndarray) else float(time_s)
            )
            details = (
                np.asarray(detail, dtype=np.float64)
                if isinstance(detail, np.ndarray) else float(detail)
            )
        elif self.sample > 1:
            n = tickets.size
            first_ticket = int(tickets[0])
            pick: Union[slice, np.ndarray]
            if int(tickets[-1]) - first_ticket + 1 == n:
                # Distinct non-decreasing tickets spanning exactly n values
                # form the consecutive range first..first+n-1, so the kept
                # rows sit at a fixed stride.
                offset = -first_ticket % self.sample
                if offset >= n:
                    return
                pick = slice(offset, None, self.sample)
                fresh = False        # a slice is a view; copy below
            else:
                pick = tickets % self.sample == 0
                if not pick.any():
                    return
                fresh = True         # boolean indexing allocates
            kept = tickets[pick]
            tickets = kept if fresh else kept.copy()
            times = (
                self._picked(time_s, pick, fresh)
                if isinstance(time_s, np.ndarray) else float(time_s)
            )
            details = (
                self._picked(detail, pick, fresh)
                if isinstance(detail, np.ndarray) else float(detail)
            )
        else:
            times = (
                self._owned(time_s, np.float64, own)
                if isinstance(time_s, np.ndarray) else float(time_s)
            )
            details = (
                self._owned(detail, np.float64, own)
                if isinstance(detail, np.ndarray) else float(detail)
            )
            tickets = self._owned(tickets, np.int64, own)
        self._entries.append(
            (kind, times, tickets, batch, replica, details, aux)
        )

    @staticmethod
    def _owned(values: np.ndarray, dtype: type, own: bool) -> np.ndarray:
        """``values`` as an array the journal may keep (copying if needed)."""
        converted = np.asarray(values, dtype=dtype)
        if converted is values and not own:
            converted = converted.copy()
        return converted

    @staticmethod
    def _picked(
        values: Union[np.ndarray, Sequence[float]],
        pick: Union[slice, np.ndarray],
        fresh: bool,
    ) -> np.ndarray:
        """The sampled rows of ``values``, owned by the journal."""
        taken = np.asarray(values, dtype=np.float64)[pick]
        return taken if fresh else taken.copy()

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def _expand(
        self, entry: Tuple[object, ...]
    ) -> Optional[Tuple[np.ndarray, ...]]:
        """One journal block entry -> full-length column pieces (or None)."""
        kind, times, tickets, batch, replica, details, aux = entry
        assert isinstance(tickets, np.ndarray)
        if self.sample > 1:
            keep = tickets % self.sample == 0
            tickets = tickets[keep]
            if tickets.size == 0:
                return None
            if isinstance(times, np.ndarray):
                times = times[keep]
            if isinstance(details, np.ndarray):
                details = details[keep]
        n = tickets.size
        return (
            np.broadcast_to(np.float64(times), (n,))
            if not isinstance(times, np.ndarray) else times,
            np.full(n, kind, dtype=np.int16),
            tickets,
            np.full(n, batch, dtype=np.int64),
            np.full(n, replica, dtype=np.int32),
            np.broadcast_to(np.float64(details), (n,))
            if not isinstance(details, np.ndarray) else details,
            np.full(n, aux, dtype=np.int32),
        )

    def table(self) -> TraceTable:
        """Freeze the recorded events into an immutable :class:`TraceTable`.

        The first call after new appends materializes the journal — applies
        sampling to block entries, coalesces runs of scalar events, and
        concatenates everything into columns in emission order.  The result
        is cached until the next append.
        """
        if self._frozen is not None:
            return self._frozen
        parts: List[Tuple[np.ndarray, ...]] = []
        scalars: List[Tuple[object, ...]] = []

        def flush_scalars() -> None:
            if not scalars:
                return
            rows = list(zip(*scalars))
            parts.append(tuple(
                np.array(rows[i], dtype=dtype)
                for i, (_, dtype) in enumerate(_COLUMNS)
            ))
            scalars.clear()

        for entry in self._entries:
            if isinstance(entry[2], np.ndarray):  # block entry
                flush_scalars()
                piece = self._expand(entry)
                if piece is not None:
                    parts.append(piece)
            else:
                # Reorder to storage order (time before kind).
                scalars.append((entry[1],) + (entry[0],) + entry[2:])
        flush_scalars()

        if parts:
            columns = tuple(
                np.concatenate([p[i] for p in parts])
                for i in range(len(_COLUMNS))
            )
        else:
            columns = tuple(
                np.empty(0, dtype=dtype) for _, dtype in _COLUMNS
            )
        self._frozen = TraceTable(*columns, labels=tuple(self._labels))
        return self._frozen

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"TraceRecorder(entries={len(self._entries)}, "
            f"sample={self.sample}, batches={self._next_batch}, "
            f"labels={len(self._labels)})"
        )


def kind_name(kind: int) -> str:
    """The stable short name of an event-kind code.

    >>> kind_name(EV_FLUSH)
    'flush'
    """
    if 0 <= kind < len(EVENT_NAMES):
        return EVENT_NAMES[kind]
    return f"kind_{kind}"


#: Re-exported for callers that only need the optional-recorder type.
OptionalRecorder = Optional[TraceRecorder]
