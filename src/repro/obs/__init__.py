"""repro.obs — observability for the serving stack.

Zero-cost-when-disabled tracing, metrics and reporting:

* :mod:`repro.obs.events` — columnar :class:`TraceRecorder` capturing the
  full query lifecycle (arrival → enqueue → flush → dispatch → kernel →
  complete) plus cache and index-registry events, with 1-in-N sampling;
* :mod:`repro.obs.metrics` — a labeled metric registry (counters, gauges,
  histograms) with snapshot/delta semantics and adapters re-expressing
  :class:`~repro.service.stats.ServiceStats` /
  :class:`~repro.service.cluster.ClusterStats` as metric families;
* :mod:`repro.obs.timers` — host wall-clock stage accounting;
* :mod:`repro.obs.export` — JSONL, Prometheus text and Perfetto-loadable
  Chrome trace-event exporters;
* :mod:`repro.obs.report` — latency decomposition, tail attribution and
  the ``python -m repro.obs.report`` CLI (imported lazily: it depends on
  the service layer, which this package deliberately does not).

When no recorder is attached, the serving stack's observability hooks are
single ``is None`` checks — see ``benchmarks/bench_obs_overhead.py`` for
the measured cost.
"""

from .events import (
    EVENT_NAMES,
    PER_QUERY_KINDS,
    TraceRecorder,
    TraceTable,
    kind_name,
)
from .export import (
    chrome_trace_events,
    kernel_records_to_chrome,
    prometheus_text,
    summarize_kernel_records,
    write_chrome_trace,
    write_events_jsonl,
)
from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
    cluster_stats_metrics,
    service_stats_metrics,
)
from .timers import StageTimer

__all__ = [
    "EVENT_NAMES",
    "PER_QUERY_KINDS",
    "TraceRecorder",
    "TraceTable",
    "kind_name",
    "chrome_trace_events",
    "kernel_records_to_chrome",
    "prometheus_text",
    "summarize_kernel_records",
    "write_chrome_trace",
    "write_events_jsonl",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "cluster_stats_metrics",
    "service_stats_metrics",
    "StageTimer",
]
