"""Derived trace analyses: latency decomposition and tail attribution.

The recorder (:mod:`repro.obs.events`) stores *what happened*; this module
answers the questions operators actually ask of a trace:

* :func:`query_breakdown` — every answered query's modeled latency split
  into queue wait (batching), lane wait (backend occupancy) and service
  time, exactly summing to the recorded latency;
* :func:`batch_spans` — every batch's flush → start → end lifecycle with
  its lane, trigger, size and the dispatcher's predicted cost;
* :func:`dispatch_error` — predicted vs charged batch cost, the signal a
  future SLO-aware tuner would train on;
* :func:`replica_utilization` — per-(replica, lane) busy fractions;
* :func:`tail_attribution` — the headline table: for each of the worst
  queries, *where* the time went and *which batch it queued behind*.

``python -m repro.obs.report`` runs a scenario replay with tracing on and
prints all of the above, writing a Perfetto-loadable Chrome trace next to
it — a one-command worked example of the whole subsystem.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .events import (
    EV_ARRIVAL,
    EV_CACHE_LANE_HIT,
    EV_COMPLETE,
    EV_DISPATCH,
    EV_FLUSH,
    EV_KERNEL_END,
    EV_KERNEL_START,
    TraceTable,
)

__all__ = [
    "BatchSpan",
    "QueryBreakdown",
    "DispatchError",
    "ReplicaUtilization",
    "BackendUsage",
    "batch_spans",
    "query_breakdown",
    "dispatch_error",
    "replica_utilization",
    "backend_breakdown",
    "backend_table",
    "tail_attribution",
    "decomposition_summary",
    "main",
]


@dataclass(frozen=True)
class BatchSpan:
    """One batch's lifecycle joined across its flush/dispatch/kernel events."""

    batch: int
    replica: int
    lane: str
    trigger: str
    size: int
    flush_s: float
    start_s: float
    end_s: float
    #: Dispatcher-predicted modeled seconds (NaN when no dispatch event —
    #: cache-lane batches are never dispatched).
    predicted_s: float

    @property
    def queue_s(self) -> float:
        """Time the flushed batch waited for its backend lane."""
        return self.start_s - self.flush_s

    @property
    def service_s(self) -> float:
        """Time the batch occupied its lane."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class QueryBreakdown:
    """Columnar per-query latency decomposition.

    For every answered query: ``latency_s`` equals
    ``queue_wait_s + lane_wait_s + service_s`` *exactly* (the service
    component absorbs the float-rounding residual).  Queue wait is the
    batching delay (zero for front-door cache hits), lane wait the time
    the formed batch spent waiting for its backend, service the batch
    execution (or cache probe) itself.
    """

    ticket: np.ndarray
    arrival_s: np.ndarray
    completion_s: np.ndarray
    latency_s: np.ndarray
    queue_wait_s: np.ndarray
    lane_wait_s: np.ndarray
    service_s: np.ndarray
    batch: np.ndarray
    replica: np.ndarray
    #: True where the query was answered on the front-door cache lane.
    cache_lane: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of answered queries in the breakdown."""
        return int(self.ticket.size)


@dataclass(frozen=True)
class DispatchError:
    """Predicted vs charged batch cost, over every dispatched batch.

    The prediction prices the kernel work of the batch's (possibly
    deduplicated) queries; the charge additionally includes the modeled
    cache-probe and any index-build time, so a positive bias is expected
    on cold caches.
    """

    n_batches: int
    mean_predicted_s: float
    mean_charged_s: float
    #: Mean of ``|charged - predicted| / charged``.
    mean_abs_rel_error: float
    #: ``sum(charged) / sum(predicted)``.
    bias: float


@dataclass(frozen=True)
class ReplicaUtilization:
    """Busy fraction of one (replica, lane) pair over the trace span."""

    replica: int
    lane: str
    busy_s: float
    span_s: float
    utilization: float


def batch_spans(table: TraceTable) -> List[BatchSpan]:
    """Join each batch's flush/dispatch/kernel events into one span."""
    flush: Dict[int, Tuple[float, float, str]] = {}
    predicted: Dict[int, float] = {}
    spans: List[BatchSpan] = []
    starts: Dict[int, Tuple[float, str, int, float]] = {}
    ends: Dict[int, float] = {}
    for i in range(table.n_events):
        kind = int(table.kind[i])
        batch = int(table.batch[i])
        if batch < 0:
            continue
        if kind == EV_FLUSH:
            flush[batch] = (
                float(table.time_s[i]),
                float(table.detail[i]),
                table.label_of(int(table.aux[i])),
            )
        elif kind == EV_DISPATCH:
            predicted[batch] = float(table.detail[i])
        elif kind == EV_KERNEL_START:
            starts[batch] = (
                float(table.time_s[i]),
                table.label_of(int(table.aux[i])),
                int(table.replica[i]),
                float(table.detail[i]),
            )
        elif kind == EV_KERNEL_END:
            ends[batch] = float(table.time_s[i])
    for batch in sorted(starts):
        start_s, lane, replica, service_s = starts[batch]
        flush_s, size, trigger = flush.get(batch, (start_s, 0.0, ""))
        spans.append(
            BatchSpan(
                batch=batch,
                replica=replica,
                lane=lane,
                trigger=trigger,
                size=int(size),
                flush_s=flush_s,
                start_s=start_s,
                end_s=ends.get(batch, start_s + service_s),
                predicted_s=predicted.get(batch, float("nan")),
            )
        )
    return spans


def query_breakdown(table: TraceTable) -> QueryBreakdown:
    """Decompose every answered query's latency from its trace events.

    Requires the trace to contain each answered query's arrival and
    completion (or cache-lane hit) events — true for unsampled traces and
    for sampled ones restricted to the kept tickets.
    """
    arrivals = table.of_kind(EV_ARRIVAL)
    completes = table.of_kind(EV_COMPLETE, EV_CACHE_LANE_HIT)
    # Tickets are worker-local, so in a cluster trace they collide across
    # replicas — join on the (ticket, replica) composite key.
    n_rep = 1 + max(
        int(table.replica.max(initial=0)), 0
    )
    arr_keys = arrivals.ticket * n_rep + arrivals.replica
    cmp_keys = completes.ticket * n_rep + completes.replica
    order = np.argsort(arr_keys, kind="stable")
    arr_keys = arr_keys[order]
    arr_times = arrivals.time_s[order]
    pos = np.searchsorted(arr_keys, cmp_keys)
    pos = np.clip(pos, 0, max(0, arr_keys.size - 1))
    known = (
        arr_keys[pos] == cmp_keys
        if arr_keys.size
        else np.zeros(cmp_keys.size, dtype=bool)
    )
    completes = completes.select(known)
    arrival_s = arr_times[pos[known]] if arr_keys.size else np.empty(0)

    spans = batch_spans(table)
    max_batch = int(completes.batch.max()) if completes.n_events else -1
    flush_of = np.full(max_batch + 1, np.nan)
    start_of = np.full(max_batch + 1, np.nan)
    for span in spans:
        if span.batch <= max_batch:
            flush_of[span.batch] = span.flush_s
            start_of[span.batch] = span.start_s

    latency = completes.detail.astype(np.float64)
    batch = completes.batch
    cache_lane = completes.kind == EV_CACHE_LANE_HIT
    b_flush = flush_of[batch]
    b_start = start_of[batch]
    # Queue wait: arrival -> flush for batched queries, zero for front-door
    # hits (they never queue for a batch).  Lane wait: flush -> lane start.
    # Service absorbs the remainder so the three parts sum exactly.
    queue_wait = np.where(cache_lane, 0.0, b_flush - arrival_s)
    lane_wait = b_start - b_flush
    missing = np.isnan(b_flush)
    queue_wait = np.where(missing, 0.0, queue_wait)
    lane_wait = np.where(missing, 0.0, lane_wait)
    service = latency - queue_wait - lane_wait
    return QueryBreakdown(
        ticket=completes.ticket,
        arrival_s=arrival_s,
        completion_s=completes.time_s,
        latency_s=latency,
        queue_wait_s=queue_wait,
        lane_wait_s=lane_wait,
        service_s=service,
        batch=batch,
        replica=completes.replica,
        cache_lane=cache_lane,
    )


def dispatch_error(table: TraceTable) -> DispatchError:
    """Predicted-vs-charged cost error over every dispatched batch."""
    predicted: List[float] = []
    charged: List[float] = []
    for span in batch_spans(table):
        if np.isnan(span.predicted_s):
            continue
        predicted.append(span.predicted_s)
        charged.append(span.service_s)
    if not predicted:
        return DispatchError(0, 0.0, 0.0, 0.0, 1.0)
    p = np.asarray(predicted)
    c = np.asarray(charged)
    safe = np.where(c > 0, c, 1.0)
    return DispatchError(
        n_batches=int(p.size),
        mean_predicted_s=float(p.mean()),
        mean_charged_s=float(c.mean()),
        mean_abs_rel_error=float((np.abs(c - p) / safe).mean()),
        bias=float(c.sum() / p.sum()) if p.sum() > 0 else 1.0,
    )


def replica_utilization(table: TraceTable) -> List[ReplicaUtilization]:
    """Busy fraction of each (replica, lane) pair over the trace span."""
    spans = batch_spans(table)
    if not spans or table.n_events == 0:
        return []
    t0 = float(table.time_s.min())
    t1 = float(table.time_s.max())
    span_s = max(t1 - t0, 0.0)
    busy: Dict[Tuple[int, str], float] = {}
    for span in spans:
        key = (span.replica, span.lane)
        busy[key] = busy.get(key, 0.0) + span.service_s
    return [
        ReplicaUtilization(
            replica=replica,
            lane=lane,
            busy_s=b,
            span_s=span_s,
            utilization=b / span_s if span_s > 0 else 0.0,
        )
        for (replica, lane), b in sorted(busy.items())
    ]


def decomposition_summary(breakdown: QueryBreakdown) -> str:
    """Aggregate the per-query decomposition into an aligned text block."""
    if breakdown.n_queries == 0:
        return "latency decomposition : no answered queries in trace"
    total = float(breakdown.latency_s.sum())
    lines = [
        f"latency decomposition over {breakdown.n_queries} answered queries "
        f"({int(breakdown.cache_lane.sum())} on the cache lane):",
        f"  {'component':<12} {'mean us':>10} {'p50 us':>10} {'p99 us':>10} "
        f"{'share':>7}",
    ]
    parts = (
        ("queue", breakdown.queue_wait_s),
        ("lane wait", breakdown.lane_wait_s),
        ("service", breakdown.service_s),
        ("total", breakdown.latency_s),
    )
    for name, values in parts:
        p50, p99 = np.percentile(values, [50.0, 99.0])
        share = float(values.sum()) / total if total > 0 else 0.0
        lines.append(
            f"  {name:<12} {values.mean() * 1e6:>10.2f} {p50 * 1e6:>10.2f} "
            f"{p99 * 1e6:>10.2f} {share:>6.1%}"
        )
    return "\n".join(lines)


def _blocking_batch(
    span: BatchSpan, by_lane: Dict[Tuple[int, str], List[BatchSpan]]
) -> Optional[BatchSpan]:
    """The batch ``span`` queued behind on its lane, if it waited at all."""
    lane_spans = by_lane.get((span.replica, span.lane), [])
    best: Optional[BatchSpan] = None
    for other in lane_spans:
        if other.batch == span.batch or other.start_s >= span.start_s:
            continue
        if other.end_s > span.flush_s and (
            best is None or other.end_s > best.end_s
        ):
            best = other
    return best


def tail_attribution(
    table: TraceTable, *, quantile: float = 0.99, worst: int = 10
) -> str:
    """The tail table: where each of the worst queries' time went.

    One row per query at or beyond the ``quantile`` latency threshold
    (worst first, capped at ``worst`` rows), decomposed into queue / lane
    wait / service, and attributed to the batch it was served in — plus
    the batch it *queued behind* when lane occupancy dominated.
    """
    breakdown = query_breakdown(table)
    if breakdown.n_queries == 0:
        return "tail attribution      : no answered queries in trace"
    threshold = float(np.percentile(breakdown.latency_s, quantile * 100.0))
    tail = np.flatnonzero(breakdown.latency_s >= threshold)
    tail = tail[np.argsort(-breakdown.latency_s[tail], kind="stable")][:worst]
    spans = {span.batch: span for span in batch_spans(table)}
    by_lane: Dict[Tuple[int, str], List[BatchSpan]] = {}
    for span in spans.values():
        by_lane.setdefault((span.replica, span.lane), []).append(span)
    lines = [
        f"p{quantile * 100:g} latency {threshold * 1e6:.2f} us over "
        f"{breakdown.n_queries} answered queries; worst {tail.size}:",
        f"  {'ticket':>8} {'rep':>3} {'latency us':>11} {'queue us':>9} "
        f"{'lane us':>8} {'svc us':>8}  {'served in':<24} {'behind':<24}",
    ]
    for i in tail:
        batch_id = int(breakdown.batch[i])
        span = spans.get(batch_id)
        if span is not None:
            served = (
                f"batch {span.batch} ({span.size}q {span.lane}"
                f"{'/' + span.trigger if span.trigger else ''})"
            )
            blocker = _blocking_batch(span, by_lane)
            behind = (
                f"batch {blocker.batch} ({blocker.size}q {blocker.lane})"
                if blocker is not None
                else "-"
            )
        else:
            served, behind = "-", "-"
        lines.append(
            f"  {int(breakdown.ticket[i]):>8} {int(breakdown.replica[i]):>3} "
            f"{breakdown.latency_s[i] * 1e6:>11.2f} "
            f"{breakdown.queue_wait_s[i] * 1e6:>9.2f} "
            f"{breakdown.lane_wait_s[i] * 1e6:>8.2f} "
            f"{breakdown.service_s[i] * 1e6:>8.2f}  {served:<24} {behind:<24}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class BackendUsage:
    """One backend lane's share of the serving work, cluster-wide.

    ``lane`` is the backend key the batches were dispatched to (or the
    ``"cache"`` lane); latency percentiles are over the queries whose
    answering batch ran on this lane.
    """

    lane: str
    batches: int
    queries: int
    busy_s: float
    p50_latency_s: float
    p99_latency_s: float


def backend_breakdown(table: TraceTable) -> List[BackendUsage]:
    """Per-backend serving breakdown: who answered what, and how slowly.

    The dispatch satellite of the backends work: with several real kernel
    backends live, tail attribution needs to say *which backend* a slow
    query was served by, not just which replica.  Joins every batch span's
    lane onto the per-query latency decomposition; rows are sorted by
    descending query count.
    """
    spans = batch_spans(table)
    if not spans:
        return []
    lane_of_batch: Dict[int, str] = {s.batch: s.lane for s in spans}
    batches: Dict[str, int] = {}
    busy: Dict[str, float] = {}
    for span in spans:
        batches[span.lane] = batches.get(span.lane, 0) + 1
        busy[span.lane] = busy.get(span.lane, 0.0) + span.service_s
    breakdown = query_breakdown(table)
    lat_by_lane: Dict[str, List[float]] = {}
    for i in range(breakdown.n_queries):
        if bool(breakdown.cache_lane[i]):
            lane = "cache"
        else:
            lane = lane_of_batch.get(int(breakdown.batch[i]), "")
        if not lane:
            continue
        lat_by_lane.setdefault(lane, []).append(float(breakdown.latency_s[i]))
    rows = []
    for lane in sorted(batches, key=lambda k: -len(lat_by_lane.get(k, []))):
        lats = np.asarray(lat_by_lane.get(lane, []), dtype=np.float64)
        rows.append(
            BackendUsage(
                lane=lane,
                batches=batches[lane],
                queries=int(lats.size),
                busy_s=busy[lane],
                p50_latency_s=(float(np.percentile(lats, 50))
                               if lats.size else float("nan")),
                p99_latency_s=(float(np.percentile(lats, 99))
                               if lats.size else float("nan")),
            )
        )
    return rows


def backend_table(table: TraceTable) -> str:
    """Per-backend serving breakdown as an aligned text block."""
    rows = backend_breakdown(table)
    if not rows:
        return "backend breakdown     : no batch spans in trace"
    lines = [
        "backend breakdown (which backend answered what):",
        f"  {'lane':<12} {'batches':>8} {'queries':>9} {'busy ms':>10} "
        f"{'p50 us':>9} {'p99 us':>9}",
    ]
    for row in rows:
        lines.append(
            f"  {row.lane:<12} {row.batches:>8} {row.queries:>9} "
            f"{row.busy_s * 1e3:>10.3f} {row.p50_latency_s * 1e6:>9.2f} "
            f"{row.p99_latency_s * 1e6:>9.2f}"
        )
    return "\n".join(lines)


def utilization_table(table: TraceTable) -> str:
    """Per-(replica, lane) busy fractions as an aligned text block."""
    rows = replica_utilization(table)
    if not rows:
        return "replica utilization   : no batch spans in trace"
    lines = [
        "replica utilization over the trace span:",
        f"  {'replica':>7} {'lane':<8} {'busy ms':>10} {'util':>7}",
    ]
    for row in rows:
        lines.append(
            f"  {row.replica:>7} {row.lane:<8} {row.busy_s * 1e3:>10.3f} "
            f"{row.utilization:>6.1%}"
        )
    return "\n".join(lines)


def dispatch_error_summary(table: TraceTable) -> str:
    """The dispatcher's prediction error as a short text block."""
    err = dispatch_error(table)
    if err.n_batches == 0:
        return "dispatch accuracy     : no dispatched batches in trace"
    return (
        f"dispatch accuracy over {err.n_batches} dispatched batches: "
        f"predicted {err.mean_predicted_s * 1e6:.2f} us mean vs charged "
        f"{err.mean_charged_s * 1e6:.2f} us mean "
        f"(abs rel err {err.mean_abs_rel_error:.1%}, "
        f"charged/predicted {err.bias:.2f}x)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Replay a scenario with tracing on; print and export the analyses."""
    from ..service import BatchPolicy, ClusterService, LCAQueryService
    from ..workloads import make_scenario
    from ..workloads.replay import replay
    from .events import TraceRecorder
    from .export import chrome_trace_events, write_chrome_trace, write_events_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Replay a named scenario with end-to-end tracing and print the "
            "latency decomposition, tail attribution, utilization and "
            "dispatch-accuracy reports (writing a Perfetto-loadable Chrome "
            "trace alongside)."
        ),
    )
    parser.add_argument("--scenario", default="flash-crowd")
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--max-pending", type=int, default=8192)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sample", type=int, default=1, help="keep 1-in-N per-query events"
    )
    parser.add_argument(
        "--answer-cache-kib",
        type=int,
        default=0,
        help="per-cluster answer-cache budget (0 disables the cache)",
    )
    parser.add_argument("--out", default="results/obs")
    parser.add_argument(
        "--jsonl", action="store_true", help="also dump the raw events as JSONL"
    )
    args = parser.parse_args(argv)

    policy = BatchPolicy(max_batch_size=256, max_wait_s=2e-4)
    cache_bytes = args.answer_cache_kib * 1024 or None
    recorder = TraceRecorder(sample=args.sample)
    target: object
    if args.replicas > 1:
        target = ClusterService(
            args.replicas,
            policy=policy,
            max_pending=args.max_pending,
            answer_cache_bytes=cache_bytes,
        )
    else:
        target = LCAQueryService(policy=policy, answer_cache_bytes=cache_bytes)
    scenario = make_scenario(args.scenario, scale=args.scale, seed=args.seed)
    report = replay(target, scenario, observer=recorder)  # type: ignore[arg-type]
    table = recorder.table()

    print(report.format())
    print()
    print(decomposition_summary(query_breakdown(table)))
    print()
    print(tail_attribution(table))
    print()
    print(utilization_table(table))
    print()
    print(backend_table(table))
    print()
    print(dispatch_error_summary(table))

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, f"trace_{scenario.name}.json")
    n = write_chrome_trace(trace_path, chrome_trace_events(table))
    print()
    print(
        f"chrome trace          : {trace_path} ({n} events; load in "
        f"https://ui.perfetto.dev)"
    )
    if args.jsonl:
        jsonl_path = os.path.join(args.out, f"events_{scenario.name}.jsonl")
        rows = write_events_jsonl(jsonl_path, table)
        print(f"event dump            : {jsonl_path} ({rows} rows)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
