"""Exporters: JSONL event dumps, Prometheus text, Chrome trace-event JSON.

Three output formats, one source of truth:

* :func:`write_events_jsonl` — the raw :class:`~repro.obs.events.TraceTable`
  as one JSON object per line, for ad-hoc analysis with any tool that
  reads JSONL.
* :func:`prometheus_text` — a :class:`~repro.obs.metrics.MetricsSnapshot`
  in the Prometheus text exposition format, so the simulated stack can be
  scraped (or just diffed) like a real deployment.
* :func:`chrome_trace_events` — batch/kernel/replica spans as Chrome
  trace-event JSON on the shared simulated time axis.  Load the written
  file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:
  replicas render as processes, backend lanes as threads, each batch as a
  queue span followed by a kernel span.

The same viewer also ingests offline algorithm traces:
:func:`kernel_records_to_chrome` converts a
:class:`~repro.device.context.KernelRecord` sequence (the Fig-11 per-phase
world) into the identical span format, and
:func:`summarize_kernel_records` hosts the per-kernel aggregation that
:func:`repro.device.tracing.summarize_kernels` is a thin wrapper over.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from .events import (
    EV_CACHE_RESET,
    EV_DISPATCH,
    EV_FAULT,
    EV_FLUSH,
    EV_HEDGE,
    EV_KERNEL_END,
    EV_KERNEL_START,
    EV_MEMBERSHIP,
    EV_RETRY,
    EV_SCALE,
    EV_SHED,
    TraceTable,
    kind_name,
)
from .metrics import HistogramValue, MetricsSnapshot

__all__ = [
    "event_rows",
    "write_events_jsonl",
    "prometheus_text",
    "chrome_trace_events",
    "kernel_records_to_chrome",
    "write_chrome_trace",
    "summarize_kernel_records",
]

#: Chrome trace timestamps are microseconds.
_US = 1e6


def event_rows(table: TraceTable) -> List[Dict[str, Any]]:
    """The table as a list of plain dicts (kind and aux codes resolved)."""
    rows: List[Dict[str, Any]] = []
    for i in range(table.n_events):
        rows.append(
            {
                "time_s": float(table.time_s[i]),
                "kind": kind_name(int(table.kind[i])),
                "ticket": int(table.ticket[i]),
                "batch": int(table.batch[i]),
                "replica": int(table.replica[i]),
                "detail": float(table.detail[i]),
                "label": table.label_of(int(table.aux[i])),
            }
        )
    return rows


def write_events_jsonl(path: str, table: TraceTable) -> int:
    """Write the table as JSONL (one event object per line); returns rows."""
    rows = event_rows(table)
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    return len(rows)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _label_str(pairs: Iterable[Any], extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Histograms follow the cumulative-``le`` convention with ``+Inf``,
    ``_sum`` and ``_count`` series.

    >>> from repro.obs.metrics import MetricRegistry
    >>> reg = MetricRegistry()
    >>> reg.counter("up", "Liveness").inc()
    >>> print(prometheus_text(reg.snapshot()))
    # HELP up Liveness
    # TYPE up counter
    up 1
    <BLANKLINE>
    """
    lines: List[str] = []
    for metric in snapshot.metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.type}")
        for pairs, value in metric.series:
            if isinstance(value, HistogramValue):
                cumulative = 0
                for bound, count in zip(metric.buckets, value.bucket_counts):
                    cumulative += count
                    labels = _label_str(pairs, f'le="{_fmt(bound)}"')
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _label_str(pairs, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{labels} {value.count}")
                lines.append(
                    f"{metric.name}_sum{_label_str(pairs)} {_fmt(value.sum)}"
                )
                lines.append(f"{metric.name}_count{_label_str(pairs)} {value.count}")
            else:
                lines.append(f"{metric.name}{_label_str(pairs)} {_fmt(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(table: TraceTable) -> List[Dict[str, Any]]:
    """Convert a serving trace into Chrome trace-event objects.

    Layout: one *process* per replica, two *threads* per backend lane —
    ``<lane>`` carries the kernel spans (flush → start → end pairing from
    the batch events), ``<lane> queue`` the time each batch spent waiting
    for its lane.  Shed, cache-reset, fault, retry, hedge and membership
    events render as instants.
    """
    events: List[Dict[str, Any]] = []
    # Join the per-batch lifecycle events on the batch id.
    flush_at: Dict[int, float] = {}
    flush_size: Dict[int, float] = {}
    flush_trigger: Dict[int, str] = {}
    predicted: Dict[int, float] = {}
    start_at: Dict[int, float] = {}
    start_lane: Dict[int, str] = {}
    start_replica: Dict[int, int] = {}
    service_s: Dict[int, float] = {}
    end_at: Dict[int, float] = {}
    for i in range(table.n_events):
        kind = int(table.kind[i])
        batch = int(table.batch[i])
        if batch < 0:
            continue
        if kind == EV_FLUSH:
            flush_at[batch] = float(table.time_s[i])
            flush_size[batch] = float(table.detail[i])
            flush_trigger[batch] = table.label_of(int(table.aux[i]))
        elif kind == EV_DISPATCH:
            predicted[batch] = float(table.detail[i])
        elif kind == EV_KERNEL_START:
            start_at[batch] = float(table.time_s[i])
            start_lane[batch] = table.label_of(int(table.aux[i]))
            start_replica[batch] = int(table.replica[i])
            service_s[batch] = float(table.detail[i])
        elif kind == EV_KERNEL_END:
            end_at[batch] = float(table.time_s[i])

    seen: Dict[int, List[str]] = {}
    for batch in sorted(start_at):
        start = start_at[batch]
        end = end_at.get(batch, start + service_s.get(batch, 0.0))
        lane = start_lane[batch]
        pid = start_replica[batch]
        size = int(flush_size.get(batch, 0.0))
        args: Dict[str, Any] = {"batch": batch, "size": size, "lane": lane}
        trigger = flush_trigger.get(batch)
        if trigger is not None:
            args["trigger"] = trigger
        if batch in predicted:
            args["predicted_us"] = predicted[batch] * _US
        events.append(
            {
                "name": f"batch {batch} ({size}q)",
                "ph": "X",
                "pid": pid,
                "tid": lane,
                "ts": start * _US,
                "dur": max(0.0, end - start) * _US,
                "cat": "kernel",
                "args": args,
            }
        )
        flushed = flush_at.get(batch)
        if flushed is not None and start > flushed:
            events.append(
                {
                    "name": f"queue batch {batch}",
                    "ph": "X",
                    "pid": pid,
                    "tid": f"{lane} queue",
                    "ts": flushed * _US,
                    "dur": (start - flushed) * _US,
                    "cat": "queue",
                    "args": {"batch": batch, "size": size},
                }
            )
        lanes = seen.setdefault(pid, [])
        if lane not in lanes:
            lanes.append(lane)

    instants = table.of_kind(
        EV_SHED, EV_CACHE_RESET, EV_FAULT, EV_RETRY, EV_HEDGE, EV_MEMBERSHIP,
        EV_SCALE,
    )
    for i in range(instants.n_events):
        kind = int(instants.kind[i])
        events.append(
            {
                "name": kind_name(kind),
                "ph": "i",
                "s": "g",
                "pid": max(0, int(instants.replica[i])),
                "tid": kind_name(kind),
                "ts": float(instants.time_s[i]) * _US,
                "cat": "system",
                "args": {"count": float(instants.detail[i])},
            }
        )

    meta: List[Dict[str, Any]] = []
    for pid in sorted(seen):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"replica {pid}"},
            }
        )
    return meta + events


def kernel_records_to_chrome(
    records: Sequence[Any], *, pid: int = 0, start_s: float = 0.0
) -> List[Dict[str, Any]]:
    """Convert a :class:`KernelRecord` trace into Chrome trace spans.

    The records of an :class:`~repro.device.context.ExecutionContext` run
    serially on the modeled device, so span starts are the running sum of
    the recorded kernel times (offset by ``start_s``).  Phases become
    threads, kernels become spans — the offline Fig-11 world in the same
    viewer as the serving traces.
    """
    events: List[Dict[str, Any]] = []
    phases: List[str] = []
    cursor = float(start_s)
    for rec in records:
        phase = rec.phase or "(no phase)"
        if phase not in phases:
            phases.append(phase)
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "pid": pid,
                "tid": phase,
                "ts": cursor * _US,
                "dur": float(rec.time_s) * _US,
                "cat": "kernel",
                "args": {
                    "launches": int(rec.launches),
                    "threads": int(rec.threads),
                    "ops": float(rec.ops),
                    "bytes": float(rec.bytes_total),
                },
            }
        )
        cursor += float(rec.time_s)
    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "modeled device"},
        }
    ]
    return meta + events


def write_chrome_trace(path: str, events: List[Dict[str, Any]]) -> int:
    """Write trace events as a Perfetto-loadable JSON object; returns count."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"}, fh, indent=None
        )
    return len(events)


def summarize_kernel_records(
    records: Iterable[Any],
) -> Dict[str, Dict[str, float]]:
    """Aggregate a kernel trace by kernel name.

    Returns ``kernel name -> {"launches", "ops", "bytes", "time_s"}`` —
    the shared implementation behind
    :func:`repro.device.tracing.summarize_kernels`.
    """
    out: Dict[str, Dict[str, float]] = {}
    for rec in records:
        agg = out.setdefault(
            rec.name, {"launches": 0.0, "ops": 0.0, "bytes": 0.0, "time_s": 0.0}
        )
        agg["launches"] += rec.launches
        agg["ops"] += rec.ops
        agg["bytes"] += rec.bytes_total
        agg["time_s"] += rec.time_s
    return out
