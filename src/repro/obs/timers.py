"""Host wall-clock stage accounting built on ``time.perf_counter``.

Where :mod:`repro.obs.events` records *simulated* time (the modeled
latencies of the serving stack), :class:`StageTimer` accounts the *host*
wall clock: how long the Python process actually spent inside named stages
of a harness run.  The replay harness uses it to split its single
``serve_wall_s`` total into submit / drain / latencies / verify spans, and
the overhead benchmark uses the same spans to price tracing itself.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulates wall-clock seconds into named stages.

    Spans for the same stage accumulate; nesting different stages is fine
    (each span charges its own stage for its full duration).

    >>> timer = StageTimer()
    >>> with timer.span("submit"):
    ...     pass
    >>> timer.seconds("submit") >= 0.0
    True
    >>> timer.seconds("never-entered")
    0.0
    """

    def __init__(self) -> None:
        self._acc: Dict[str, float] = {}

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Context manager charging its wall-clock duration to ``stage``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._acc[stage] = self._acc.get(stage, 0.0) + elapsed

    def add(self, stage: str, seconds: float) -> None:
        """Charge ``seconds`` to ``stage`` directly (pre-measured spans)."""
        self._acc[stage] = self._acc.get(stage, 0.0) + float(seconds)

    def seconds(self, stage: str) -> float:
        """Accumulated seconds of one stage (0.0 if never entered)."""
        return self._acc.get(stage, 0.0)

    @property
    def stages(self) -> Dict[str, float]:
        """Copy of the full stage -> seconds mapping."""
        return dict(self._acc)

    def total(self, *stages: str) -> float:
        """Sum over the named stages (over every stage when none given)."""
        if not stages:
            return sum(self._acc.values())
        return sum(self._acc.get(s, 0.0) for s in stages)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        spans = ", ".join(f"{k}={v:.3g}s" for k, v in self._acc.items())
        return f"StageTimer({spans})"
