"""Labeled metric registry: counters, gauges and fixed-bucket histograms.

Prometheus-shaped but in-process and NumPy-backed: a
:class:`MetricRegistry` owns named metrics, each metric owns one time
series per label set, and histograms fold whole arrays of observations in
with one ``searchsorted`` + ``bincount`` pass
(:meth:`Histogram.observe_many`) instead of a Python loop per value.

Snapshots (:meth:`MetricRegistry.snapshot`) are immutable and support
*delta* semantics: ``current.delta(previous)`` re-expresses counters and
histograms as the activity between two snapshots (gauges keep their
current value), which is how a long-lived service reports per-window rates
without resetting its counters.

The adapters at the bottom re-express the serving stack's existing
aggregate snapshots (:class:`~repro.service.stats.ServiceStats`,
:class:`~repro.service.cluster.ClusterStats`) as metrics, so anything that
can scrape the Prometheus text format (see
:func:`repro.obs.export.prometheus_text`) can watch the simulated stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from ..service.cluster import ClusterStats
    from ..service.stats import ServiceStats

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricSnapshot",
    "MetricsSnapshot",
    "MetricRegistry",
    "histogram_quantile",
    "service_stats_metrics",
    "cluster_stats_metrics",
]

#: Label sets are canonicalized to sorted (name, value) pairs.
LabelPairs = Tuple[Tuple[str, str], ...]

#: Default latency buckets: 1 us .. ~100 ms in half-decade steps.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6,
    3e-6,
    1e-5,
    3e-5,
    1e-4,
    3e-4,
    1e-3,
    3e-3,
    1e-2,
    3e-2,
    1e-1,
)


def _canonical(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class HistogramValue:
    """One histogram series' state: per-bucket counts, sum and count.

    ``bucket_counts`` has one entry per finite bucket bound plus a final
    overflow bucket; counts are per-bucket (not cumulative — the exporter
    cumulates for the Prometheus ``le`` convention).
    """

    bucket_counts: Tuple[int, ...]
    sum: float
    count: int


#: A series' value in a snapshot: a float for counters/gauges, a
#: :class:`HistogramValue` for histograms.
SeriesValue = Union[float, HistogramValue]


@dataclass(frozen=True)
class MetricSnapshot:
    """Immutable state of one metric: every series under one name."""

    name: str
    type: str
    help: str
    buckets: Tuple[float, ...]
    series: Tuple[Tuple[LabelPairs, SeriesValue], ...]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable state of a whole registry at one instant."""

    metrics: Tuple[MetricSnapshot, ...]

    def get(self, name: str) -> Optional[MetricSnapshot]:
        """The snapshot of one metric by name (``None`` when absent)."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def value(self, name: str, **labels: str) -> SeriesValue:
        """One series' value; raises :class:`ServiceError` when absent."""
        metric = self.get(name)
        if metric is not None:
            wanted = _canonical(labels)
            for pairs, value in metric.series:
                if pairs == wanted:
                    return value
        raise ServiceError(f"no series {name}{dict(labels)} in snapshot")

    def delta(self, previous: "MetricsSnapshot") -> "MetricsSnapshot":
        """Activity between ``previous`` and this snapshot.

        Counters and histograms subtract series-wise (a series absent from
        ``previous`` counts from zero); gauges keep their current value.

        >>> reg = MetricRegistry()
        >>> c = reg.counter("queries_total", "Queries seen")
        >>> c.inc(3.0)
        >>> before = reg.snapshot()
        >>> c.inc(2.0)
        >>> reg.snapshot().delta(before).value("queries_total")
        2.0
        """
        prev: Dict[str, Dict[LabelPairs, SeriesValue]] = {
            m.name: dict(m.series) for m in previous.metrics
        }
        out: List[MetricSnapshot] = []
        for metric in self.metrics:
            if metric.type == "gauge":
                out.append(metric)
                continue
            old = prev.get(metric.name, {})
            series: List[Tuple[LabelPairs, SeriesValue]] = []
            for pairs, value in metric.series:
                before = old.get(pairs)
                if before is None:
                    series.append((pairs, value))
                elif isinstance(value, HistogramValue):
                    assert isinstance(before, HistogramValue)
                    series.append(
                        (
                            pairs,
                            HistogramValue(
                                bucket_counts=tuple(
                                    a - b
                                    for a, b in zip(
                                        value.bucket_counts, before.bucket_counts
                                    )
                                ),
                                sum=value.sum - before.sum,
                                count=value.count - before.count,
                            ),
                        )
                    )
                else:
                    assert not isinstance(before, HistogramValue)
                    series.append((pairs, value - before))
            out.append(
                MetricSnapshot(
                    name=metric.name,
                    type=metric.type,
                    help=metric.help,
                    buckets=metric.buckets,
                    series=tuple(series),
                )
            )
        return MetricsSnapshot(metrics=tuple(out))


class Counter:
    """A monotonically increasing labeled metric."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelPairs, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``.

        >>> c = Counter("hits_total", "Cache hits")
        >>> c.inc(2.0, lane="cache")
        >>> c.value(lane="cache")
        2.0
        """
        amount = float(amount)
        if amount < 0:
            raise ServiceError(f"counter {self.name} cannot decrease")
        key = _canonical(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 before the first ``inc``)."""
        return self._series.get(_canonical(labels), 0.0)

    def snapshot(self) -> MetricSnapshot:
        """Freeze every series."""
        return MetricSnapshot(
            name=self.name,
            type="counter",
            help=self.help,
            buckets=(),
            series=tuple(sorted(self._series.items())),
        )


class Gauge:
    """A labeled metric that can move both ways (set to current level)."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelPairs, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the series selected by ``labels`` to ``value``.

        >>> g = Gauge("queue_depth", "Queued queries")
        >>> g.set(7, dataset="t")
        >>> g.value(dataset="t")
        7.0
        """
        self._series[_canonical(labels)] = float(value)

    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 before the first ``set``)."""
        return self._series.get(_canonical(labels), 0.0)

    def snapshot(self) -> MetricSnapshot:
        """Freeze every series."""
        return MetricSnapshot(
            name=self.name,
            type="gauge",
            help=self.help,
            buckets=(),
            series=tuple(sorted(self._series.items())),
        )


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.sum = 0.0
        self.count = 0


class Histogram:
    """A labeled fixed-bucket histogram with vectorized bulk observation.

    ``buckets`` are ascending upper bounds (``le`` semantics); an implicit
    overflow bucket catches everything beyond the last bound.
    """

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Tuple[float, ...] = LATENCY_BUCKETS_S,
    ) -> None:
        if not buckets:
            raise ServiceError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ServiceError(
                f"histogram {name} buckets must be strictly ascending"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._bounds = np.asarray(bounds, dtype=np.float64)
        self._series: Dict[LabelPairs, _HistogramSeries] = {}

    def _get(self, labels: Mapping[str, str]) -> _HistogramSeries:
        key = _canonical(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(self._bounds.size + 1)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: str) -> None:
        """Fold one observation in."""
        self.observe_many(np.asarray([value], dtype=np.float64), **labels)

    def observe_many(self, values: np.ndarray, **labels: str) -> None:
        """Fold a whole array of observations in, vectorized.

        One ``searchsorted`` finds every value's bucket, one ``bincount``
        accumulates them — equivalent to observing each value singly.

        >>> h = Histogram("lat", "Latency", buckets=(1.0, 2.0))
        >>> h.observe_many(np.array([0.5, 1.5, 9.0]))
        >>> h.snapshot().series[0][1].bucket_counts
        (1, 1, 1)
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        series = self._get(labels)
        idx = np.searchsorted(self._bounds, values, side="left")
        series.counts += np.bincount(idx, minlength=self._bounds.size + 1)
        series.sum += float(values.sum())
        series.count += int(values.size)

    def value(self, **labels: str) -> HistogramValue:
        """Current state of one series (all-zero before any observation)."""
        series = self._series.get(_canonical(labels))
        if series is None:
            return HistogramValue(
                bucket_counts=(0,) * (self._bounds.size + 1), sum=0.0, count=0
            )
        return HistogramValue(
            bucket_counts=tuple(int(c) for c in series.counts),
            sum=series.sum,
            count=series.count,
        )

    def snapshot(self) -> MetricSnapshot:
        """Freeze every series."""
        series = tuple(
            (
                pairs,
                HistogramValue(
                    bucket_counts=tuple(int(c) for c in s.counts),
                    sum=s.sum,
                    count=s.count,
                ),
            )
            for pairs, s in sorted(self._series.items(), key=lambda kv: kv[0])
        )
        return MetricSnapshot(
            name=self.name,
            type="histogram",
            help=self.help,
            buckets=self.buckets,
            series=series,
        )


#: Any of the three metric kinds a registry can own.
Metric = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """Owns named metrics; get-or-create accessors keep call sites terse.

    >>> reg = MetricRegistry()
    >>> reg.counter("batches_total", "Batches flushed").inc()
    >>> reg.counter("batches_total", "Batches flushed").value()
    1.0
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ServiceError(
                    f"metric {metric.name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get (or create) the counter called ``name``."""
        metric = self._register(Counter(name, help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get (or create) the gauge called ``name``."""
        metric = self._register(Gauge(name, help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get (or create) the histogram called ``name``."""
        metric = self._register(Histogram(name, help, buckets))
        assert isinstance(metric, Histogram)
        return metric

    @property
    def names(self) -> List[str]:
        """Registered metric names, in registration order."""
        return list(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every metric into an immutable :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            metrics=tuple(m.snapshot() for m in self._metrics.values())
        )


def histogram_quantile(
    value: HistogramValue,
    q: float,
    *,
    buckets: Tuple[float, ...] = LATENCY_BUCKETS_S,
) -> float:
    """Estimate the ``q``-quantile of a :class:`HistogramValue`.

    The Prometheus ``histogram_quantile`` estimator: find the bucket where
    the cumulative count first reaches ``q * count`` and interpolate
    linearly within it (the first bucket interpolates from zero; the
    overflow bucket clamps to the last finite bound, which is all a
    fixed-bucket histogram can say about its tail).  The estimate is
    bucket-resolution coarse by construction — callers compare it against
    bounds, they do not report it as a measured latency.

    >>> h = Histogram("lat", "demo", buckets=(1.0, 2.0, 4.0))
    >>> h.observe_many([0.5, 1.5, 1.5, 3.0])
    >>> histogram_quantile(h.snapshot().series[0][1], 0.5, buckets=(1.0, 2.0, 4.0))
    1.5
    """
    if not 0.0 < q <= 1.0:
        raise ServiceError("quantile q must be in (0, 1]")
    if value.count <= 0:
        return 0.0
    rank = q * value.count
    cumulative = 0
    for i, n in enumerate(value.bucket_counts):
        if n == 0:
            continue
        lo = buckets[i - 1] if 0 < i <= len(buckets) else 0.0
        if cumulative + n >= rank:
            if i >= len(buckets):  # overflow bucket: clamp to last bound
                return float(buckets[-1])
            hi = buckets[i]
            return float(lo + (hi - lo) * (rank - cumulative) / n)
        cumulative += n
    return float(buckets[-1])


# ----------------------------------------------------------------------
# Adapters: existing aggregate snapshots re-expressed as metrics
# ----------------------------------------------------------------------
def service_stats_metrics(
    stats: "ServiceStats",
    *,
    registry: Optional[MetricRegistry] = None,
    replica: Optional[int] = None,
) -> MetricRegistry:
    """Re-express one :class:`ServiceStats` snapshot as registry metrics.

    ``replica`` adds a ``replica`` label to every series, so per-worker
    snapshots of a cluster land in the same registry without colliding.
    """
    reg = registry if registry is not None else MetricRegistry()
    labels: Dict[str, str] = {}
    if replica is not None:
        labels["replica"] = str(replica)
    reg.counter(
        "repro_queries_submitted_total", "Queries submitted to the service"
    ).inc(stats.queries_submitted, **labels)
    reg.counter("repro_queries_answered_total", "Queries answered").inc(
        stats.queries_answered, **labels
    )
    reg.counter(
        "repro_kernel_queries_total", "Queries executed on a backend kernel"
    ).inc(stats.kernel_queries, **labels)
    reg.counter("repro_batches_flushed_total", "Batches flushed").inc(
        stats.batches_flushed, **labels
    )
    for trigger, count in sorted(stats.flush_triggers.items()):
        reg.counter(
            "repro_flush_trigger_total", "Batches flushed, by trigger"
        ).inc(count, trigger=trigger, **labels)
    for backend, count in sorted(stats.backend_choices.items()):
        reg.counter(
            "repro_backend_chosen_total", "Batches dispatched, by backend"
        ).inc(count, backend=backend, **labels)
    reg.gauge(
        "repro_latency_p99_seconds", "Modeled p99 end-to-end latency"
    ).set(stats.latency_p99_s, **labels)
    reg.gauge(
        "repro_latency_p50_seconds", "Modeled median end-to-end latency"
    ).set(stats.latency_p50_s, **labels)
    reg.gauge(
        "repro_backend_busy_seconds", "Modeled backend busy time"
    ).set(stats.busy_time_s, **labels)
    reg.counter("repro_index_cache_hits_total", "Index-cache hits").inc(
        stats.cache_hits, **labels
    )
    reg.counter("repro_index_cache_misses_total", "Index-cache misses").inc(
        stats.cache_misses, **labels
    )
    reg.counter(
        "repro_index_cache_evictions_total", "Index-cache evictions"
    ).inc(stats.cache_evictions, **labels)
    reg.counter("repro_answer_cache_hits_total", "Answer-cache hits").inc(
        stats.answer_cache_hits, **labels
    )
    reg.counter("repro_answer_cache_misses_total", "Answer-cache misses").inc(
        stats.answer_cache_misses, **labels
    )
    reg.counter("repro_answer_cache_resets_total", "Answer-cache resets").inc(
        stats.answer_cache_resets, **labels
    )
    return reg


def cluster_stats_metrics(
    stats: "ClusterStats", *, registry: Optional[MetricRegistry] = None
) -> MetricRegistry:
    """Re-express one :class:`ClusterStats` snapshot as registry metrics.

    Cluster-level series carry no ``replica`` label; every per-worker
    :class:`ServiceStats` is folded in with its replica id as a label.
    """
    reg = registry if registry is not None else MetricRegistry()
    reg.counter(
        "repro_cluster_queries_offered_total", "Queries offered to the cluster"
    ).inc(stats.queries_offered)
    reg.counter(
        "repro_cluster_queries_shed_total", "Queries shed by admission control"
    ).inc(stats.queries_shed)
    reg.gauge(
        "repro_cluster_load_imbalance_ratio", "Max/mean answered load"
    ).set(stats.load_imbalance)
    reg.gauge(
        "repro_cluster_latency_p99_seconds", "Modeled cluster p99 latency"
    ).set(stats.latency_p99_s)
    for replica, per in enumerate(stats.replicas):
        service_stats_metrics(per, registry=reg, replica=replica)
    return reg
