"""The existing vectorized NumPy execution paths as kernel backends.

Two backends, one per execution flavour of the Inlabel algorithm:

* ``"numpy"`` — the bulk-vectorized batch kernel
  (:class:`~repro.lca.InlabelLCA`; the paper's GPU algorithm, modeled on the
  GTX-980 spec);
* ``"numpy-seq"`` — the sequential single-core flavour
  (:class:`~repro.lca.SequentialInlabelLCA`, modeled on the single-core Xeon
  spec).

Both delegate compilation and execution to the legacy classes, so their
answers *and* their modeled charges are bit-identical to the pre-backend
serving stack — they are the continuity anchors the acceptance criterion
("no profile ⇒ bit-identical") rests on.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..device import ExecutionContext
from ..lca import InlabelLCA, SequentialInlabelLCA
from .base import BackendCapabilities, CompiledKernel, KernelBackend

__all__ = ["NumpyBackend", "NUMPY_BACKEND_KEY", "NUMPY_SEQ_BACKEND_KEY"]

NUMPY_BACKEND_KEY = "numpy"
NUMPY_SEQ_BACKEND_KEY = "numpy-seq"


class _NumpyCompiledKernel(CompiledKernel):
    """Compiled kernel delegating to a legacy Inlabel artifact."""

    def __init__(
        self, key: str, artifact: Union[InlabelLCA, SequentialInlabelLCA]
    ) -> None:
        self.backend_key = key
        self.artifact = artifact

    @property
    def n(self) -> int:
        """Number of tree nodes the kernel was compiled for."""
        return int(self.artifact.n)

    def _execute(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        # ctx=None: the uncharged real computation; query() books the
        # modeled charge separately through _charge.
        return self.artifact.query(xs, ys)

    def _charge(self, ctx: ExecutionContext, batch_size: int) -> None:
        # Unreachable via query() below, which delegates whole to the
        # artifact so charges stay bit-identical; kept for the contract.
        raise AssertionError(
            "numpy kernels charge through the legacy artifact"
        )  # pragma: no cover

    def query(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        *,
        ctx: Optional[ExecutionContext] = None,
    ) -> np.ndarray:
        """Delegate straight to the legacy artifact (identical charges)."""
        return self.artifact.query(xs, ys, ctx=ctx)


class NumpyBackend(KernelBackend):
    """The vectorized NumPy path, in sequential or batch-parallel flavour."""

    def __init__(self, *, sequential: bool = False) -> None:
        self.sequential = bool(sequential)
        self.key = NUMPY_SEQ_BACKEND_KEY if sequential else NUMPY_BACKEND_KEY
        self.label = (
            "Sequential NumPy Inlabel" if sequential else "Vectorized NumPy Inlabel"
        )

    def capabilities(self) -> BackendCapabilities:
        """No size limits; vectorized batches, single host thread."""
        return BackendCapabilities(parallel=not self.sequential)

    def compile(
        self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None
    ) -> CompiledKernel:
        """Build the matching legacy artifact for this tree."""
        parents = np.asarray(parents, dtype=np.int64)
        artifact: Union[InlabelLCA, SequentialInlabelLCA]
        if self.sequential:
            artifact = SequentialInlabelLCA(parents, ctx=ctx)
        else:
            artifact = InlabelLCA(parents, ctx=ctx)
        return _NumpyCompiledKernel(self.key, artifact)
