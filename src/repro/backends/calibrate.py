"""Measured calibration: fit per-backend cost constants from real launches.

The modeled dispatch path prices batches with hardcoded roofline specs
(:mod:`repro.device.specs`): deterministic, reproducible, and wrong about
the machine actually running the kernels.  This module closes the loop the
way the paper does — measure, fit, then dispatch on the fit:

1. :func:`calibrate_backends` runs a **seeded grid** of batch sizes through
   each registered backend (same tree, same query streams for every backend)
   under a :class:`~repro.service.clock.WallClock` timer, taking the median
   of repeated timed ``bind → launch → readback`` cycles per grid point;
2. :func:`fit_launch_cost` fits ``time ≈ launch_overhead + per_query · q``
   to those medians by robust least squares (IRLS with Huber weights), so a
   scheduler hiccup at one grid point cannot poison the line;
3. the per-backend fits ship as a JSON :class:`CalibrationProfile` that
   :class:`~repro.service.dispatch.CostModelDispatcher` consumes in place of
   the modeled specs.

A profile only speaks for the range it measured: :meth:`CalibrationProfile.
predict` raises a typed :class:`~repro.errors.DeviceError` for batch sizes
outside a backend's calibrated ``[min_batch, max_batch]`` window rather than
silently extrapolating the line (the drift trap — an extrapolated fiction is
exactly what calibration exists to remove).

Wall time is inherently noisy, so measured profiles are not reproducible bit
for bit — which is why they are an explicit opt-in artifact (a file a config
points at) and the modeled specs remain the deterministic default.  For
deterministic tests, inject ``timer=`` with a scripted time source.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import DeviceError, ServiceError
from ..graphs.generators.random_trees import random_attachment_tree
from ..service.clock import WallClock
from .base import get_kernel_backend

__all__ = [
    "BackendCalibration",
    "CalibrationProfile",
    "fit_launch_cost",
    "calibrate_backends",
    "DEFAULT_CALIBRATION_GRID",
]

#: Default batch-size grid: geometric, so the fit sees both the
#: overhead-dominated and the throughput-dominated regime.
DEFAULT_CALIBRATION_GRID: Tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

_PROFILE_VERSION = 1


@dataclass(frozen=True)
class BackendCalibration:
    """One backend's fitted cost line and the range it is valid over."""

    #: Backend registry key the fit belongs to.
    backend: str
    #: Fitted fixed cost per launch, seconds (the intercept; clamped ≥ 0).
    launch_overhead_s: float
    #: Fitted marginal cost per query, seconds (the slope; clamped > 0).
    per_query_s: float
    #: Smallest batch size the grid measured.
    min_batch: int
    #: Largest batch size the grid measured.
    max_batch: int
    #: Number of timed samples behind the fit.
    samples: int
    #: Mean absolute relative residual of the fit (fit-quality indicator).
    residual: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return {
            "launch_overhead_s": self.launch_overhead_s,
            "per_query_s": self.per_query_s,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "samples": self.samples,
            "residual": self.residual,
        }

    @classmethod
    def from_dict(
        cls, backend: str, data: Mapping[str, Any]
    ) -> "BackendCalibration":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {
            "launch_overhead_s",
            "per_query_s",
            "min_batch",
            "max_batch",
            "samples",
            "residual",
        }
        unknown = set(data) - known
        if unknown:
            raise ServiceError(
                f"unknown calibration fields for backend {backend!r}: "
                f"{sorted(unknown)}"
            )
        missing = known - set(data)
        if missing:
            raise ServiceError(
                f"missing calibration fields for backend {backend!r}: "
                f"{sorted(missing)}"
            )
        return cls(
            backend=backend,
            launch_overhead_s=float(data["launch_overhead_s"]),
            per_query_s=float(data["per_query_s"]),
            min_batch=int(data["min_batch"]),
            max_batch=int(data["max_batch"]),
            samples=int(data["samples"]),
            residual=float(data["residual"]),
        )


@dataclass(frozen=True)
class CalibrationProfile:
    """A set of per-backend cost fits, as measured on one machine."""

    #: Backend key → fitted cost line.
    entries: Dict[str, BackendCalibration]
    #: Provenance of the measurement (grid, seed, tree size, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    def backends(self) -> Tuple[str, ...]:
        """Calibrated backend keys, sorted."""
        return tuple(sorted(self.entries))

    def predict(self, backend_key: str, batch_size: int) -> float:
        """Predicted seconds for one launch of ``batch_size`` queries.

        Raises :class:`~repro.errors.DeviceError` when the backend is not in
        the profile or ``batch_size`` falls outside its calibrated range —
        a measured profile never extrapolates.
        """
        entry = self.entries.get(backend_key)
        if entry is None:
            raise DeviceError(
                f"no calibration for backend {backend_key!r}; "
                f"profile covers {list(self.backends())}"
            )
        q = int(batch_size)
        if q < entry.min_batch or q > entry.max_batch:
            raise DeviceError(
                f"batch of {q} queries is outside backend {backend_key!r}'s "
                f"calibrated range [{entry.min_batch}, {entry.max_batch}]; "
                f"recalibrate with a wider grid instead of extrapolating"
            )
        return entry.launch_overhead_s + entry.per_query_s * q

    def batch_range(self, backend_keys: Sequence[str]) -> Tuple[int, int]:
        """The batch-size window every listed backend is calibrated over."""
        lo = 1
        hi: Optional[int] = None
        for key in backend_keys:
            entry = self.entries.get(key)
            if entry is None:
                raise DeviceError(
                    f"no calibration for backend {key!r}; "
                    f"profile covers {list(self.backends())}"
                )
            lo = max(lo, entry.min_batch)
            hi = entry.max_batch if hi is None else min(hi, entry.max_batch)
        if hi is None or hi < lo:
            raise DeviceError(
                f"backends {list(backend_keys)} share no calibrated "
                f"batch-size range"
            )
        return lo, hi

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return {
            "version": _PROFILE_VERSION,
            "meta": dict(self.meta),
            "backends": {
                key: entry.to_dict() for key, entry in sorted(self.entries.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CalibrationProfile":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        unknown = set(data) - {"version", "meta", "backends"}
        if unknown:
            raise ServiceError(
                f"unknown calibration profile fields: {sorted(unknown)}"
            )
        version = data.get("version")
        if version != _PROFILE_VERSION:
            raise ServiceError(
                f"unsupported calibration profile version {version!r} "
                f"(expected {_PROFILE_VERSION})"
            )
        backends = data.get("backends")
        if not isinstance(backends, Mapping) or not backends:
            raise ServiceError(
                "calibration profile must map at least one backend"
            )
        entries = {
            str(key): BackendCalibration.from_dict(str(key), entry)
            for key, entry in backends.items()
        }
        return cls(entries=entries, meta=dict(data.get("meta", {})))

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the profile to ``path`` as JSON."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CalibrationProfile":
        """Read a profile previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def fit_launch_cost(
    batch_sizes: Sequence[float], times_s: Sequence[float], *, iterations: int = 25
) -> Tuple[float, float, float]:
    """Robust fit of ``t ≈ a + b·q``; returns ``(a, b, residual)``.

    Iteratively reweighted least squares with Huber weights: points whose
    residual exceeds ~1.345 median-absolute-deviations are downweighted, so
    a single scheduler hiccup in the timing grid does not tilt the line.
    ``a`` (launch overhead) is clamped to ≥ 0 and ``b`` (per-query cost) to
    > 0, since negative costs are always measurement noise.
    """
    q = np.asarray(batch_sizes, dtype=np.float64)
    t = np.asarray(times_s, dtype=np.float64)
    if q.shape != t.shape or q.ndim != 1:
        raise ServiceError("batch_sizes and times_s must be equal-length 1-D")
    if q.size < 2:
        raise ServiceError("need at least two grid points to fit a cost line")
    w = np.ones_like(q)
    a = 0.0
    b = 0.0
    for _ in range(iterations):
        sw = float(w.sum())
        qm = float((w * q).sum()) / sw
        tm = float((w * t).sum()) / sw
        var = float((w * (q - qm) ** 2).sum())
        cov = float((w * (q - qm) * (t - tm)).sum())
        b = cov / var if var > 0 else 0.0
        a = tm - b * qm
        resid = t - (a + b * q)
        scale = float(np.median(np.abs(resid))) * 1.4826
        if scale <= 0.0:
            break
        w = np.minimum(1.0, (1.345 * scale) / np.maximum(np.abs(resid), 1e-300))
    a = max(a, 0.0)
    b = max(b, 1e-12)
    residual = float(np.mean(np.abs(t - (a + b * q)) / np.maximum(np.abs(t), 1e-300)))
    return a, b, residual


def calibrate_backends(
    backend_keys: Sequence[str],
    *,
    batch_sizes: Sequence[int] = DEFAULT_CALIBRATION_GRID,
    repeats: int = 5,
    warmup: int = 2,
    n_nodes: int = 4096,
    seed: int = 0,
    timer: Optional[Callable[[], float]] = None,
) -> CalibrationProfile:
    """Measure and fit every listed backend; returns the profile.

    The grid is seeded: every backend sees the same tree and the same query
    stream per batch size, so the fits are comparable.  Per grid point the
    median of ``repeats`` timed ``bind → launch → readback`` cycles is taken
    (after ``warmup`` untimed cycles).  ``timer`` defaults to a fresh
    :class:`~repro.service.clock.WallClock`; tests inject a scripted source
    for determinism.
    """
    if not backend_keys:
        raise ServiceError("calibrate_backends needs at least one backend key")
    if repeats < 1:
        raise ServiceError(f"repeats must be positive, got {repeats}")
    sizes = sorted({int(s) for s in batch_sizes})
    if sizes and sizes[0] < 1:
        raise ServiceError("batch sizes must be positive")
    if timer is None:
        wall = WallClock()

        def timer() -> float:
            return wall.now

    parents = random_attachment_tree(n_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    queries = {
        s: (rng.integers(0, n_nodes, size=s), rng.integers(0, n_nodes, size=s))
        for s in sizes
    }
    entries: Dict[str, BackendCalibration] = {}
    for key in backend_keys:
        backend = get_kernel_backend(key)
        caps = backend.capabilities()
        grid = [s for s in sizes if caps.max_batch is None or s <= caps.max_batch]
        if len(grid) < 2:
            raise ServiceError(
                f"backend {key!r} admits fewer than two grid points "
                f"(max_batch={caps.max_batch}); widen the grid"
            )
        kernel = backend.compile(parents)
        grid_times: List[float] = []
        try:
            for s in grid:
                xs, ys = queries[s]
                for _ in range(warmup):
                    kernel.bind(xs, ys).readback()
                samples = []
                for _ in range(repeats):
                    t0 = timer()
                    kernel.bind(xs, ys).readback()
                    samples.append(timer() - t0)
                grid_times.append(median(samples))
        finally:
            closer = getattr(kernel, "close", None)
            if callable(closer):
                closer()
        overhead, per_query, residual = fit_launch_cost(grid, grid_times)
        entries[key] = BackendCalibration(
            backend=key,
            launch_overhead_s=overhead,
            per_query_s=per_query,
            min_batch=min(grid),
            max_batch=max(grid),
            samples=len(grid) * repeats,
            residual=residual,
        )
    meta = {
        "n_nodes": int(n_nodes),
        "seed": int(seed),
        "repeats": int(repeats),
        "warmup": int(warmup),
        "grid": sizes,
    }
    return CalibrationProfile(entries=entries, meta=meta)
