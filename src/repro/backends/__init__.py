"""Real kernel backends and measured calibration for the serving stack.

Until this package, the dispatcher's "devices" were priced fictions: every
backend ran the same vectorized NumPy kernel and only the modeled roofline
constants differed.  :mod:`repro.backends` makes them real:

* :mod:`~repro.backends.base` — the contract (``compile → bind → launch →
  readback`` plus ``capabilities()``), modeled on reikna's CLUDA layer, and
  the process-wide backend registry;
* :mod:`~repro.backends.numpy_backend` — the existing vectorized paths as
  backends (``"numpy"``, ``"numpy-seq"``); the continuity anchors;
* :mod:`~repro.backends.smallbatch` — a tuned low-overhead kernel for small
  batches (``"smallbatch"``): compile-time-specialized tables, fused probe
  passes, preallocated answer scratch;
* :mod:`~repro.backends.pool` — an opt-in multiprocess worker-pool device
  (``"pool"``) over shared-memory columnar blocks;
* :mod:`~repro.backends.calibrate` — the measurement harness: seeded
  batch-size grids, robust least-squares fits, JSON
  :class:`~repro.backends.calibrate.CalibrationProfile` artifacts that
  :class:`~repro.service.dispatch.CostModelDispatcher` consumes in place of
  the hardcoded specs.

Importing the package registers the built-in backends by key.  Registration
is factory-based and side-effect free: no worker process is forked and no
scratch is allocated until a backend is actually requested through
:func:`get_kernel_backend`.
"""

from .base import (
    BackendCapabilities,
    CompiledKernel,
    KernelBackend,
    Launch,
    available_backends,
    get_kernel_backend,
    register_backend,
)
from .calibrate import (
    DEFAULT_CALIBRATION_GRID,
    BackendCalibration,
    CalibrationProfile,
    calibrate_backends,
    fit_launch_cost,
)
from .numpy_backend import NUMPY_BACKEND_KEY, NUMPY_SEQ_BACKEND_KEY, NumpyBackend
from .pool import POOL_BACKEND_KEY, ProcessPoolBackend
from .smallbatch import SMALLBATCH_BACKEND_KEY, SmallBatchBackend

__all__ = [
    "BackendCapabilities",
    "Launch",
    "CompiledKernel",
    "KernelBackend",
    "register_backend",
    "get_kernel_backend",
    "available_backends",
    "NumpyBackend",
    "NUMPY_BACKEND_KEY",
    "NUMPY_SEQ_BACKEND_KEY",
    "SmallBatchBackend",
    "SMALLBATCH_BACKEND_KEY",
    "ProcessPoolBackend",
    "POOL_BACKEND_KEY",
    "BackendCalibration",
    "CalibrationProfile",
    "calibrate_backends",
    "fit_launch_cost",
    "DEFAULT_CALIBRATION_GRID",
]


def _register_builtin_backends() -> None:
    register_backend(NUMPY_BACKEND_KEY, NumpyBackend, replace=True)
    register_backend(
        NUMPY_SEQ_BACKEND_KEY,
        lambda: NumpyBackend(sequential=True),
        replace=True,
    )
    register_backend(SMALLBATCH_BACKEND_KEY, SmallBatchBackend, replace=True)
    register_backend(POOL_BACKEND_KEY, ProcessPoolBackend, replace=True)


_register_builtin_backends()
