"""The kernel-backend contract: compile → bind → launch → readback.

The serving stack's :class:`~repro.service.dispatch.CostModelDispatcher`
chooses *which device* should answer a batch, but until this package every
"device" executed the very same vectorized NumPy kernel and only the modeled
charge differed.  This module defines the seam that makes backends real,
modeled on reikna's CLUDA device layer:

* a :class:`KernelBackend` turns a raw dataset (a parent array) into a
  :class:`CompiledKernel` — the analogue of compiling a CUDA kernel for one
  problem instance — and publishes its :class:`BackendCapabilities` (dtype
  and size limits, parallelism) so harnesses can negotiate workloads;
* a :class:`CompiledKernel` answers query batches.  The explicit lifecycle is
  ``bind(xs, ys) → launch() → readback()`` (stage arrays, execute, fetch
  results); :meth:`CompiledKernel.query` fuses the three for the serving hot
  path and matches the artifact API of the legacy LCA classes, so the index
  registry can cache compiled kernels exactly like any other artifact.

Answers are part of the contract: every backend must be **bit-identical** to
the reference implementation (:mod:`repro.lca.reference`) on every valid
batch — backends may differ in *how fast* they answer, never in *what* they
answer.  The property tests in ``tests/test_backends.py`` enforce this
against every registered backend.

Backends register themselves in a process-wide registry
(:func:`register_backend`) keyed by a short string; the service layer's
:class:`~repro.service.dispatch.Backend` descriptors reference backends by
that key, which keeps the descriptors serializable (a config names
``("smallbatch", "numpy")``, not live objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..device import ExecutionContext
from ..errors import ServiceError

__all__ = [
    "BackendCapabilities",
    "Launch",
    "CompiledKernel",
    "KernelBackend",
    "register_backend",
    "get_kernel_backend",
    "available_backends",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """Static limits and traits one kernel backend publishes.

    Harnesses (the calibration grid, the benchmark sweeps) read these to
    stay inside what the backend can execute instead of discovering limits
    by crashing.
    """

    #: Largest batch one launch accepts (``None`` = unbounded).
    max_batch: Optional[int] = None
    #: Largest tree (node count) the backend can compile (``None`` = any).
    max_nodes: Optional[int] = None
    #: Query dtypes accepted by :meth:`CompiledKernel.bind`.
    dtypes: Tuple[str, ...] = ("int64",)
    #: Whether launches exploit parallelism (worker pool / modeled device)
    #: or run on the calling thread.
    parallel: bool = False

    def validate_batch(self, batch_size: int) -> None:
        """Raise :class:`~repro.errors.ServiceError` for an oversized batch."""
        if self.max_batch is not None and batch_size > self.max_batch:
            raise ServiceError(
                f"batch of {batch_size} queries exceeds the backend's "
                f"max_batch={self.max_batch} capability"
            )


class Launch:
    """One bound batch moving through the launch → readback lifecycle.

    Returned by :meth:`CompiledKernel.bind` with the query arrays staged;
    :meth:`launch` executes the kernel (idempotent — a second call is a
    no-op) and :meth:`readback` returns the answers, launching first if the
    caller skipped the explicit step.
    """

    def __init__(
        self,
        run: Callable[[np.ndarray, np.ndarray], np.ndarray],
        xs: np.ndarray,
        ys: np.ndarray,
    ) -> None:
        self._run = run
        self._xs = xs
        self._ys = ys
        self._answers: Optional[np.ndarray] = None

    @property
    def batch_size(self) -> int:
        """Number of queries staged in this launch."""
        return int(self._xs.size)

    def launch(self) -> "Launch":
        """Execute the kernel over the bound arrays (idempotent)."""
        if self._answers is None:
            self._answers = self._run(self._xs, self._ys)
        return self

    def readback(self) -> np.ndarray:
        """The answer array (executing the launch first if still pending)."""
        self.launch()
        assert self._answers is not None
        return self._answers


class CompiledKernel:
    """A kernel compiled for one tree, ready to answer query batches.

    Subclasses implement :meth:`_execute` (the real computation, returning
    an int64 answer array) and :meth:`_charge` (the modeled cost of a batch,
    booked to an :class:`~repro.device.ExecutionContext`); the lifecycle and
    the artifact-compatible :meth:`query` entry point live here.
    """

    #: The owning backend's key (set by :meth:`KernelBackend.compile`).
    backend_key: str = ""

    def bind(self, xs: np.ndarray, ys: np.ndarray) -> Launch:
        """Stage one query batch: validate, convert and wrap it in a Launch."""
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        return Launch(self._execute, xs, ys)

    def query(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        *,
        ctx: Optional[ExecutionContext] = None,
    ) -> np.ndarray:
        """bind → launch → readback in one call (the artifact API).

        ``ctx`` receives the backend's modeled charge for the batch, exactly
        like the legacy LCA artifact classes — which is what lets the index
        registry and the serving layer treat compiled kernels and legacy
        artifacts uniformly.
        """
        launch = self.bind(xs, ys)
        answers = launch.readback()
        if ctx is not None:
            self._charge(ctx, launch.batch_size)
        return answers

    # -- subclass hooks -------------------------------------------------
    def _execute(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _charge(self, ctx: ExecutionContext, batch_size: int) -> None:
        raise NotImplementedError


class KernelBackend:
    """One real execution backend: capabilities plus a compile step.

    Subclasses set :attr:`key` / :attr:`label` and implement
    :meth:`compile`; instances are cheap descriptors (expensive resources —
    scratch buffers, worker processes, shared-memory blocks — belong to the
    per-tree :class:`CompiledKernel`).
    """

    #: Registry key (short, stable; referenced from configs and profiles).
    key: str = ""
    #: Human-readable backend name.
    label: str = ""

    def capabilities(self) -> BackendCapabilities:
        """The backend's static limits (dtype/size) and traits."""
        return BackendCapabilities()

    def compile(
        self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None
    ) -> CompiledKernel:
        """Build the per-tree kernel (charging preprocessing to ``ctx``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(key={self.key!r})"


# ----------------------------------------------------------------------
# Process-wide backend registry
# ----------------------------------------------------------------------

#: Key → zero-argument factory.  Factories keep registration side-effect
#: free: merely importing :mod:`repro.backends` must never spawn worker
#: processes or allocate scratch — that happens when a backend is first
#: *requested*.
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    key: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register a kernel backend under ``key``.

    ``factory`` is a zero-argument callable returning the backend; it runs
    at most once (the instance is memoized).  Re-registering an existing key
    raises unless ``replace=True`` (tests use that to install fakes).
    """
    if not key:
        raise ServiceError("backend key must be non-empty")
    if key in _FACTORIES and not replace:
        raise ServiceError(f"kernel backend {key!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def get_kernel_backend(key: str) -> KernelBackend:
    """The registered backend for ``key`` (instantiated once, memoized)."""
    backend = _INSTANCES.get(key)
    if backend is None:
        factory = _FACTORIES.get(key)
        if factory is None:
            raise ServiceError(
                f"unknown kernel backend {key!r}; "
                f"registered: {available_backends()}"
            )
        backend = factory()
        _INSTANCES[key] = backend
    return backend


def available_backends() -> List[str]:
    """Keys of every registered kernel backend, sorted."""
    return sorted(_FACTORIES)
