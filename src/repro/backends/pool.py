"""Opt-in multiprocess worker-pool backend ("a device made of processes").

:class:`ProcessPoolBackend` executes query batches across a small pool of
persistent worker processes.  The data plane is shared memory, laid out as
columnar blocks — one anonymous shared mapping per column (``xs``, ``ys``,
``answers``), allocated once per compiled kernel:

* the parent stages a batch by writing the query columns into the shared
  blocks (no serialization of array payloads, ever);
* each worker receives only a ``(lo, hi)`` shard descriptor over its pipe,
  computes answers for its rows with the vectorized kernel, and writes them
  into its slice of the answer column;
* the parent reads the assembled answer column back after all shards ack.

Workers are forked, so the compiled Inlabel tables are inherited
copy-on-write — compilation happens once, in one process, and is never
re-run or pickled.  Because :func:`~repro.lca.inlabel._query_inlabel` is
elementwise, sharding any batch across workers is bit-identical to answering
it in one piece.

The backend is **opt-in**: it is registered but never part of the default
backend set, and the single-process paths remain first-class (the reference
container has one core, where a pool can only lose).  Batches above the
block size and non-1-D inputs fall back to the in-process vectorized kernel,
so the backend is correct at any size.

Compiled pool kernels own real OS resources (processes, mappings).  They are
context managers; call :meth:`_PoolCompiledKernel.close` (or use ``with``)
when done — garbage collection also closes them, best-effort.
"""

from __future__ import annotations

import mmap
import multiprocessing
import traceback
from typing import List, Optional

import numpy as np

from ..device import ExecutionContext
from ..errors import InvalidQueryError, ServiceError
from ..graphs.trees import query_bounds_mask
from ..lca.inlabel import (
    INLABEL_QUERY_COST,
    InlabelLCA,
    InlabelStructure,
    _query_inlabel,
)
from .base import BackendCapabilities, CompiledKernel, KernelBackend

__all__ = [
    "ProcessPoolBackend",
    "POOL_BACKEND_KEY",
    "DEFAULT_POOL_WORKERS",
    "DEFAULT_POOL_MAX_BATCH",
]

POOL_BACKEND_KEY = "pool"
DEFAULT_POOL_WORKERS = 2
#: Rows per shared columnar block; batches above this fall back in-process.
DEFAULT_POOL_MAX_BATCH = 4096


def _pool_worker(
    conn: "multiprocessing.connection.Connection",
    structure: InlabelStructure,
    xs_col: np.ndarray,
    ys_col: np.ndarray,
    out_col: np.ndarray,
) -> None:
    """Worker loop: answer ``(lo, hi)`` shards until the ``None`` sentinel.

    All arrays arrive through fork inheritance — the tables copy-on-write,
    the columns as views of the shared mappings — so the loop only ever
    moves shard descriptors and acks over the pipe.
    """
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            lo, hi = msg
            try:
                out_col[lo:hi] = _query_inlabel(
                    structure, xs_col[lo:hi], ys_col[lo:hi]
                )
                conn.send(("ok", hi - lo))
            except Exception:  # pragma: no cover - defensive; parent validates
                conn.send(("err", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class _PoolCompiledKernel(CompiledKernel):
    """A compiled Inlabel kernel backed by a pool of forked workers."""

    def __init__(
        self,
        key: str,
        structure: InlabelStructure,
        *,
        n_workers: int,
        max_batch: int,
    ) -> None:
        self.backend_key = key
        self.structure = structure
        self.max_batch = int(max_batch)
        self._closed = False
        nbytes = 8 * self.max_batch
        self._blocks = [mmap.mmap(-1, nbytes) for _ in range(3)]
        self._xs_col: Optional[np.ndarray] = np.frombuffer(
            self._blocks[0], dtype=np.int64)
        self._ys_col: Optional[np.ndarray] = np.frombuffer(
            self._blocks[1], dtype=np.int64)
        self._out_col: Optional[np.ndarray] = np.frombuffer(
            self._blocks[2], dtype=np.int64)
        ctx = multiprocessing.get_context("fork")
        self._workers: List[multiprocessing.process.BaseProcess] = []
        self._conns: List["multiprocessing.connection.Connection"] = []
        try:
            for _ in range(int(n_workers)):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(child_conn, structure, self._xs_col, self._ys_col,
                          self._out_col),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise

    @property
    def n(self) -> int:
        """Number of tree nodes the kernel was compiled for."""
        return self.structure.n

    @property
    def n_workers(self) -> int:
        """Number of live worker processes."""
        return len(self._workers)

    def _execute(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        if xs.shape != ys.shape:
            raise InvalidQueryError("query arrays must have the same shape")
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        m = int(xs.size)
        if self._closed or xs.ndim != 1 or m > self.max_batch:
            # Closed pools and oversized batches still answer correctly.
            return _query_inlabel(self.structure, xs, ys)
        # Validate in the parent so shards can never fail in a worker.
        if query_bounds_mask(xs, ys, self.structure.n).any():
            raise InvalidQueryError("query nodes out of range")
        assert self._xs_col is not None
        assert self._ys_col is not None
        assert self._out_col is not None
        self._xs_col[:m] = xs
        self._ys_col[:m] = ys
        step = -(-m // len(self._conns))  # ceil division
        active = []
        lo = 0
        for conn in self._conns:
            hi = min(lo + step, m)
            if lo < hi:
                conn.send((lo, hi))
                active.append(conn)
            lo = hi
        for conn in active:
            tag, payload = conn.recv()
            if tag != "ok":  # pragma: no cover - defensive; parent validates
                raise ServiceError(f"pool worker failed:\n{payload}")
        return self._out_col[:m].copy()

    def _charge(self, ctx: ExecutionContext, batch_size: int) -> None:
        # Modeled as one parallel batch kernel, same shape as the vectorized
        # path — the pool changes where the work runs, not what it is.
        with ctx.phase("queries"):
            ctx.kernel(
                "pool_inlabel_query_batch",
                threads=batch_size,
                ops=INLABEL_QUERY_COST.ops * batch_size,
                bytes_read=INLABEL_QUERY_COST.bytes_read * batch_size,
                bytes_written=INLABEL_QUERY_COST.bytes_written * batch_size,
                launches=1,
                random_access=True,
            )

    def close(self) -> None:
        """Shut down the workers and release the shared blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._workers:
            proc.join(timeout=5)
        for proc in self._workers:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._workers = []
        # Drop the views before closing the mappings they reference.
        self._xs_col = self._ys_col = self._out_col = None
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - a view escaped
                pass
        self._blocks = []

    def __enter__(self) -> "_PoolCompiledKernel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class ProcessPoolBackend(KernelBackend):
    """Worker-pool Inlabel backend over shared-memory columnar blocks."""

    key = POOL_BACKEND_KEY
    label = "Process-pool Inlabel"

    def __init__(
        self,
        *,
        n_workers: int = DEFAULT_POOL_WORKERS,
        max_batch: int = DEFAULT_POOL_MAX_BATCH,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServiceError(
                "the pool backend needs the fork start method (compiled "
                "tables are inherited copy-on-write); not available here"
            )
        self.n_workers = int(n_workers)
        self.max_batch = int(max_batch)

    def capabilities(self) -> BackendCapabilities:
        """One launch is bounded by the shared block size."""
        return BackendCapabilities(max_batch=self.max_batch, parallel=True)

    def compile(
        self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None
    ) -> CompiledKernel:
        """Compile the tables once, then fork the workers that inherit them.

        The modeled preprocessing charge matches the parallel baseline
        (:class:`~repro.lca.InlabelLCA`) — same logical work.
        """
        parents = np.asarray(parents, dtype=np.int64)
        artifact = InlabelLCA(parents, ctx=ctx)
        return _PoolCompiledKernel(
            self.key, artifact.structure,
            n_workers=self.n_workers, max_batch=self.max_batch,
        )
