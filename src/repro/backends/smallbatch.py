"""Tuned low-overhead Inlabel kernel for small batches.

The vectorized :func:`repro.lca.inlabel._query_inlabel` kernel is built for
bulk batches: each call pays ~30 ufunc dispatches and as many temporary array
allocations before any real work happens.  Amortized over thousands of
queries that overhead vanishes; on the single-query hot path — a hedged
retry, a cache-miss straggler, an interactive probe — it *is* the latency
(tens of microseconds of dispatch for ~30 integer operations of actual LCA
arithmetic).

:class:`SmallBatchBackend` compiles a kernel specialized for that regime:

* **compile-time layout**: the Inlabel tables are pinned as plain Python int
  lists at compile time, so the hot loop does list indexing and native int
  arithmetic with no numpy scalar boxing;
* **fused probe passes**: each query runs the whole probe sequence (inlabel
  compare → common-ascendant level → both climbs → depth tie-break) as one
  straight-line pass of exact integer ops — no masked multi-pass vectors;
* **no per-call array allocation**: answers are written into a preallocated
  scratch buffer.

Batches larger than the scratch fall back to the vectorized kernel, so the
backend is correct at any size and merely fastest below its tuning point
(measured crossover ≈ 80 queries on the reference container; the default
scratch of 64 stays safely inside it).

Answers are bit-identical to :func:`~repro.lca.inlabel._query_inlabel` by
construction: Python ints evaluate the same fixed-width bit expressions
exactly (every intermediate fits in int64), so the scalar pass computes the
same values the vectorized pass does.

The returned answer array is a view into the kernel's scratch: it is valid
until the next launch on the same compiled kernel.  The serving layer copies
answers into its result tables immediately, so this is safe there; callers
holding answers across launches must copy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidQueryError
from ..euler import tree_statistics_from_parents
from ..lca.inlabel import (
    INLABEL_QUERY_COST,
    InlabelStructure,
    SequentialInlabelLCA,
    _query_inlabel,
    build_inlabel_structure,
)
from .base import BackendCapabilities, CompiledKernel, KernelBackend

__all__ = ["SmallBatchBackend", "SMALLBATCH_BACKEND_KEY", "DEFAULT_SCRATCH_SIZE"]

SMALLBATCH_BACKEND_KEY = "smallbatch"

#: Batches up to this size run the fused scalar pass; larger ones fall back
#: to the vectorized kernel.
DEFAULT_SCRATCH_SIZE = 64


class _SmallBatchKernel(CompiledKernel):
    """Compile-time-specialized Inlabel kernel for one tree."""

    def __init__(
        self, key: str, structure: InlabelStructure, scratch_size: int
    ) -> None:
        self.backend_key = key
        self.structure = structure
        self.scratch_size = int(scratch_size)
        # Compile-time specialization: pin the tables as plain Python ints so
        # the fused pass never touches numpy scalar boxing.
        self._inlabel = structure.inlabel.tolist()
        self._ascendant = structure.ascendant.tolist()
        self._head = structure.head.tolist()
        self._depth = structure.depth.tolist()
        self._parent = structure.parent.tolist()
        # Preallocated answer scratch (the only array the hot path writes).
        self._out = np.empty(self.scratch_size, np.int64)

    @property
    def n(self) -> int:
        """Number of tree nodes the kernel was compiled for."""
        return self.structure.n

    def _execute(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        if xs.shape != ys.shape:
            raise InvalidQueryError("query arrays must have the same shape")
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        if xs.ndim != 1 or xs.size > self.scratch_size:
            # Correct at any size: the vectorized kernel handles the rest.
            return _query_inlabel(self.structure, xs, ys)
        return self._fused(xs, ys, int(xs.size))

    def _fused(self, xs: np.ndarray, ys: np.ndarray, m: int) -> np.ndarray:
        inlabel = self._inlabel
        ascendant = self._ascendant
        head = self._head
        depth = self._depth
        parent = self._parent
        n = self.structure.n
        out = self._out[:m]
        xl = xs.tolist()
        yl = ys.tolist()
        for j in range(m):
            x = xl[j]
            y = yl[j]
            if x < 0 or x >= n or y < 0 or y >= n:
                raise InvalidQueryError("query nodes out of range")
            ix = inlabel[x]
            iy = inlabel[y]
            if ix == iy:
                # Same inlabel path: the shallower endpoint is the LCA.
                out[j] = x if depth[x] <= depth[y] else y
                continue
            # One fused probe pass; the same exact int expressions as the
            # vectorized kernel (see _query_inlabel for the derivation).
            i = (ix ^ iy).bit_length() - 1
            common = ascendant[x] & ascendant[y]
            common_high = (common >> i) << i
            low_j = common_high & -common_high
            inlabel_z = (ix & ~((low_j << 1) - 1)) | low_j
            if ix == inlabel_z:
                xbar = x
            else:
                below = ascendant[x] & (low_j - 1)
                high_k = 1 << (below.bit_length() - 1)
                xbar = parent[head[(ix & ~((high_k << 1) - 1)) | high_k]]
            if iy == inlabel_z:
                ybar = y
            else:
                below = ascendant[y] & (low_j - 1)
                high_k = 1 << (below.bit_length() - 1)
                ybar = parent[head[(iy & ~((high_k << 1) - 1)) | high_k]]
            out[j] = xbar if depth[xbar] <= depth[ybar] else ybar
        return out

    def _charge(self, ctx: ExecutionContext, batch_size: int) -> None:
        # Identical modeled shape to the sequential CPU baseline: the tuned
        # kernel does the same logical work, it just wastes less host time.
        with ctx.phase("queries"):
            ctx.sequential(
                "smallbatch_inlabel_query_batch",
                ops=INLABEL_QUERY_COST.ops * batch_size,
                bytes_touched=INLABEL_QUERY_COST.bytes_read * batch_size,
                random_access=True,
            )


class SmallBatchBackend(KernelBackend):
    """Preallocated-scratch, fused-pass Inlabel backend for small batches."""

    key = SMALLBATCH_BACKEND_KEY
    label = "Tuned small-batch Inlabel"

    def __init__(self, *, scratch_size: int = DEFAULT_SCRATCH_SIZE) -> None:
        if scratch_size < 1:
            raise ValueError(f"scratch_size must be positive, got {scratch_size}")
        self.scratch_size = int(scratch_size)

    def capabilities(self) -> BackendCapabilities:
        """Unbounded (large batches fall back to the vectorized kernel)."""
        return BackendCapabilities(parallel=False)

    def compile(
        self, parents: np.ndarray, *, ctx: Optional[ExecutionContext] = None
    ) -> CompiledKernel:
        """Build the Inlabel tables and pin them in hot-loop layout.

        The modeled preprocessing charge matches the sequential CPU baseline
        (:class:`~repro.lca.SequentialInlabelLCA`) — same logical work.
        """
        parents = np.asarray(parents, dtype=np.int64)
        stats = tree_statistics_from_parents(parents, ctx=None)
        structure = build_inlabel_structure(stats, ctx=None)
        ctx = ensure_context(ctx)
        with ctx.phase("preprocessing"):
            ctx.sequential(
                "smallbatch_inlabel_preprocess",
                ops=SequentialInlabelLCA._PREPROCESS_OPS_PER_NODE * structure.n,
                bytes_touched=(
                    SequentialInlabelLCA._PREPROCESS_BYTES_PER_NODE * structure.n
                ),
                random_access=True,
            )
        return _SmallBatchKernel(self.key, structure, self.scratch_size)
