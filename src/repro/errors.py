"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from :class:`ReproError`
so that callers can distinguish library failures from programming errors in
their own code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidGraphError(ReproError):
    """Raised when an input graph violates a documented precondition.

    Typical causes: self-loops where they are not allowed, node identifiers
    outside ``[0, n)``, an edge list that does not describe a tree when a tree
    is required, or a disconnected graph passed to an algorithm that requires
    connectivity.
    """


class NotATreeError(InvalidGraphError):
    """Raised when an edge set expected to form a tree does not.

    A tree on ``n`` nodes must have exactly ``n - 1`` undirected edges and be
    connected (equivalently, acyclic).
    """


class InvalidQueryError(ReproError):
    """Raised when an LCA (or similar) query refers to nonexistent nodes."""


class DeviceError(ReproError):
    """Raised for misuse of the simulated-device execution machinery."""


class ConfigurationError(ReproError):
    """Raised when an experiment or dataset configuration is inconsistent."""


class ServiceError(ReproError):
    """Raised for misuse of the query-serving subsystem (:mod:`repro.service`).

    Typical causes: submitting queries against an unregistered dataset, moving
    the simulated clock backwards, or asking for the result of a ticket whose
    batch has not been flushed yet.
    """
