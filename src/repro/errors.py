"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from :class:`ReproError`
so that callers can distinguish library failures from programming errors in
their own code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidGraphError(ReproError):
    """Raised when an input graph violates a documented precondition.

    Typical causes: self-loops where they are not allowed, node identifiers
    outside ``[0, n)``, an edge list that does not describe a tree when a tree
    is required, or a disconnected graph passed to an algorithm that requires
    connectivity.
    """


class NotATreeError(InvalidGraphError):
    """Raised when an edge set expected to form a tree does not.

    A tree on ``n`` nodes must have exactly ``n - 1`` undirected edges and be
    connected (equivalently, acyclic).
    """


class InvalidQueryError(ReproError):
    """Raised when an LCA (or similar) query refers to nonexistent nodes."""


class DeviceError(ReproError):
    """Raised for misuse of the simulated-device execution machinery."""


class ConfigurationError(ReproError):
    """Raised when an experiment or dataset configuration is inconsistent."""


class ServiceError(ReproError):
    """Raised for misuse of the query-serving subsystem (:mod:`repro.service`).

    Typical causes: submitting queries against an unregistered dataset, moving
    the simulated clock backwards, or asking for the result of a ticket whose
    batch has not been flushed yet.
    """


class Overloaded(ServiceError):
    """Raised when cluster admission control sheds load.

    A :class:`~repro.service.cluster.ClusterService` with a bounded
    cluster-wide queue rejects submissions that would push the total number
    of queued queries past ``max_pending``.  The exception carries enough
    context for a caller to implement retry-with-backoff:

    ``pending``
        Queued queries across the cluster when the submission was rejected.
    ``capacity``
        The configured ``max_pending`` bound.
    ``admitted``
        How many queries of the rejected submission were admitted before the
        queue filled (always 0 for single-query submissions; a column block
        is admitted up to the capacity boundary and cut there).
    ``shed``
        How many queries were rejected.
    """

    def __init__(
        self,
        message: str,
        *,
        pending: int,
        capacity: int,
        admitted: int = 0,
        shed: int = 1,
    ) -> None:
        super().__init__(message)
        self.pending = pending
        self.capacity = capacity
        self.admitted = admitted
        self.shed = shed


class ReplicaDown(ServiceError):
    """Raised when no live replica can serve (or finish serving) a query.

    A :class:`~repro.service.cluster.ClusterService` raises this in two
    situations: a submission targets a dataset whose every placed copy is
    currently dead, or recovery gives up on already-admitted queries — the
    per-query retry cap was exhausted, or ``drain()`` found queries still
    parked with no surviving copy.  Admitted queries are never silently
    dropped; this exception is the loud alternative.

    ``dataset``
        The dataset whose copies were unavailable (``None`` when several
        datasets are affected).
    ``queries``
        How many queries could not be (re)placed.
    """

    def __init__(
        self,
        message: str,
        *,
        dataset: str | None = None,
        queries: int = 0,
    ) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.queries = queries
