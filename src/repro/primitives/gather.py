"""Instrumented gather / scatter wrappers.

Irregular graph algorithms are dominated by indexed loads and stores through
permutations and adjacency indices.  These helpers perform the NumPy fancy
indexing and charge the cost model a scattered-memory kernel, so algorithms
that chase more pointers are modeled as proportionally slower — the mechanism
behind the naïve-LCA and CK slowdowns on deep/large-diameter inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context


def gather(source: np.ndarray, indices: np.ndarray,
           *, ctx: Optional[ExecutionContext] = None,
           name: str = "gather") -> np.ndarray:
    """Return ``source[indices]`` with scattered-read pricing."""
    ctx = ensure_context(ctx)
    source = np.asarray(source)
    indices = np.asarray(indices)
    out = source[indices]
    ctx.kernel(
        name,
        threads=max(indices.size, 1),
        ops=float(indices.size),
        bytes_read=float(indices.nbytes + out.nbytes),
        bytes_written=float(out.nbytes),
        launches=1,
        random_access=True,
    )
    return out


def scatter(target: np.ndarray, indices: np.ndarray, values,
            *, ctx: Optional[ExecutionContext] = None,
            name: str = "scatter") -> np.ndarray:
    """In-place ``target[indices] = values`` with scattered-write pricing.

    Returns ``target`` for convenience.  Duplicate indices follow NumPy
    semantics (last write wins), matching non-deterministic GPU scatters where
    any single write surviving is acceptable for the algorithms in this
    library (they only scatter identical or order-independent values).
    """
    ctx = ensure_context(ctx)
    indices = np.asarray(indices)
    values_arr = np.asarray(values)
    target[indices] = values
    written = indices.size * target.dtype.itemsize
    ctx.kernel(
        name,
        threads=max(indices.size, 1),
        ops=float(indices.size),
        bytes_read=float(indices.nbytes + values_arr.nbytes),
        bytes_written=float(written),
        launches=1,
        random_access=True,
    )
    return target


def elementwise(n: int, ops_per_element: float = 1.0, bytes_per_element: float = 12.0,
                *, ctx: Optional[ExecutionContext] = None,
                name: str = "map", divergent: bool = False) -> float:
    """Charge a generic map-style kernel over ``n`` elements without doing work.

    Used by algorithms whose arithmetic is a handful of NumPy expressions that
    would be fused into a single kernel on a GPU: rather than pricing each
    NumPy call, the algorithm calls ``elementwise`` once with the fused cost.
    Returns the modeled time.
    """
    ctx = ensure_context(ctx)
    return ctx.kernel(
        name,
        threads=max(n, 1),
        ops=ops_per_element * n,
        bytes_read=bytes_per_element * n * 0.5,
        bytes_written=bytes_per_element * n * 0.5,
        launches=1,
        divergent=divergent,
    )
