"""Stream compaction (filter) and related selection primitives.

Stream compaction — keep the elements satisfying a predicate, densely packed —
is the standard GPU idiom for building frontiers (BFS), extracting non-tree
edges (Tarjan–Vishkin, Chaitanya–Kothapalli), and dropping finished work items
(naïve LCA query rounds).  It is charged as a scan over the flags plus a
scatter of the survivors.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..device import ExecutionContext, ensure_context


def compact(values: np.ndarray, mask: np.ndarray,
            *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Return ``values[mask]`` densely packed, with compaction pricing."""
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape[0] != mask.shape[0] or mask.ndim != 1:
        raise ValueError("mask must be a 1-D boolean array aligned with values")
    out = values[mask]
    n = mask.size
    ctx.kernel(
        "compact",
        threads=max(n, 1),
        ops=2.0 * n,
        bytes_read=float(values.nbytes + mask.nbytes),
        bytes_written=float(out.nbytes),
        launches=3,  # flag scan + scatter (+ count readback)
    )
    return out


def compact_many(arrays: Sequence[np.ndarray], mask: np.ndarray,
                 *, ctx: Optional[ExecutionContext] = None) -> Tuple[np.ndarray, ...]:
    """Compact several parallel arrays with a single shared mask.

    Charged once (the scan of the mask is shared; each array adds a scatter).
    """
    ctx = ensure_context(ctx)
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("mask must be a 1-D boolean array")
    outs = []
    total_in = 0
    total_out = 0
    for arr in arrays:
        arr = np.asarray(arr)
        if arr.shape[0] != mask.shape[0]:
            raise ValueError("all arrays must align with the mask along axis 0")
        out = arr[mask]
        outs.append(out)
        total_in += arr.nbytes
        total_out += out.nbytes
    n = mask.size
    ctx.kernel(
        "compact_many",
        threads=max(n, 1),
        ops=2.0 * n + float(n) * max(len(outs) - 1, 0),
        bytes_read=float(total_in + mask.nbytes),
        bytes_written=float(total_out),
        launches=2 + len(outs),
    )
    return tuple(outs)


def nonzero_indices(mask: np.ndarray,
                    *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Indices of the set positions of a boolean mask (compaction pricing)."""
    ctx = ensure_context(ctx)
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("mask must be a 1-D boolean array")
    out = np.flatnonzero(mask)
    ctx.kernel(
        "nonzero_indices",
        threads=max(mask.size, 1),
        ops=2.0 * mask.size,
        bytes_read=float(mask.nbytes),
        bytes_written=float(out.nbytes),
        launches=3,
    )
    return out
