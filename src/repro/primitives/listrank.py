"""List ranking: Wyllie pointer jumping and Wei–JaJa splitter-based ranking.

List ranking — given a linked list, compute every element's distance from the
head — is the key primitive that turns an Euler *tour as a linked list* into
an Euler *tour as an array* (paper §2.2).  The paper implements the
GPU-optimized algorithm of Wei and JaJa [64], a randomized splitter scheme in
the Helman–JaJa family, and reports that it performs far better than classical
Wyllie pointer jumping.  Both are implemented here:

* :func:`wyllie_rank` — textbook pointer jumping, ``O(n log n)`` work,
  ``O(log n)`` rounds.
* :func:`wei_jaja_rank` — pick ``s`` splitters, walk the sublists in lockstep,
  rank the (small) list of sublists, add offsets; ``O(n)`` work in expectation
  plus ``O(n/s)`` rounds.

Lists are represented by a successor array ``succ`` where ``succ[i]`` is the
index of the element after ``i`` and the last element has ``succ[last] == -1``.
Every element must be reachable from ``head``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError

_NIL = -1


def _validate_list(succ: np.ndarray, head: int) -> None:
    n = succ.size
    if n == 0:
        raise InvalidGraphError("cannot rank an empty list")
    if not (0 <= head < n):
        raise InvalidGraphError(f"head index {head} out of range for list of length {n}")
    if succ.min() < _NIL or succ.max() >= n:
        raise InvalidGraphError("successor indices must be in [-1, n)")


def sequential_rank(succ: np.ndarray, head: int,
                    *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Rank a list by walking it sequentially; reference and CPU baseline.

    Returns ``rank`` with ``rank[head] == 0``; unreachable elements (which
    indicate a malformed list) raise :class:`InvalidGraphError`.
    """
    ctx = ensure_context(ctx)
    succ = np.asarray(succ, dtype=np.int64)
    _validate_list(succ, head)
    n = succ.size
    rank = np.full(n, _NIL, dtype=np.int64)
    # The walk itself is performed with a NumPy trick (repeated gather) to
    # keep pure-Python overhead bounded, but it is *charged* as a sequential
    # pointer chase: n dependent random accesses.
    node = head
    r = 0
    succ_list = succ.tolist()
    rank_list = rank.tolist()
    while node != _NIL:
        if rank_list[node] != _NIL:
            raise InvalidGraphError("list contains a cycle")
        rank_list[node] = r
        node = succ_list[node]
        r += 1
    rank = np.asarray(rank_list, dtype=np.int64)
    if r != n:
        raise InvalidGraphError("not all list elements are reachable from the head")
    ctx.sequential("sequential_list_rank", ops=float(n),
                   bytes_touched=float(2 * n * 8), random_access=True)
    return rank


def wyllie_rank(succ: np.ndarray, head: int,
                *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Rank a list with classical Wyllie pointer jumping.

    Every element stores a jump pointer and a partial distance *to the tail*;
    in each of ``O(log n)`` rounds all pointers double.  Total work is
    ``O(n log n)`` — theoretically suboptimal, practically simple; included as
    the ablation baseline for Wei–JaJa (DESIGN.md §5).
    """
    ctx = ensure_context(ctx)
    succ = np.asarray(succ, dtype=np.int64).copy()
    _validate_list(succ, head)
    n = succ.size
    dist_to_tail = np.where(succ == _NIL, 0, 1).astype(np.int64)
    rounds = 0
    while True:
        active = succ != _NIL
        if not active.any():
            break
        rounds += 1
        idx = np.flatnonzero(active)
        nxt = succ[idx]
        dist_to_tail[idx] += dist_to_tail[nxt]
        succ[idx] = succ[nxt]
        ctx.kernel(
            "wyllie_jump",
            threads=int(idx.size),
            ops=2.0 * idx.size,
            bytes_read=float(idx.size) * 24.0,
            bytes_written=float(idx.size) * 16.0,
            launches=1,
            random_access=True,
        )
        if rounds > 2 * int(np.ceil(np.log2(max(n, 2)))) + 2:
            raise InvalidGraphError("pointer jumping did not converge; list is malformed")
    rank = (int(dist_to_tail[head])) - dist_to_tail
    if int(dist_to_tail[head]) != n - 1:
        raise InvalidGraphError("not all list elements are reachable from the head")
    return rank


def wei_jaja_rank(succ: np.ndarray, head: int,
                  *, num_splitters: Optional[int] = None,
                  seed: int = 0,
                  ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Rank a list with the Wei–JaJa (Helman–JaJa style) splitter algorithm.

    Parameters
    ----------
    succ, head:
        Successor-array list representation (see module docstring).
    num_splitters:
        Number of sublists to split the list into.  Defaults to roughly
        ``n / 64`` so each GPU "thread" (splitter) walks an expected 64
        elements, which is the regime in which the algorithm beats pointer
        jumping.  The head is always a splitter.
    seed:
        Seed for the random splitter choice (the algorithm is randomized but
        its output is exact).

    Notes
    -----
    The three phases are charged to the cost model individually:

    1. *sublist walk* — all splitters advance in lockstep; one kernel per
       round, with only still-active splitters counted;
    2. *sublist ranking* — the list of ``s`` sublists is ranked sequentially
       (it is tiny: ``s ≪ n``);
    3. *offset add* — one map kernel over all ``n`` elements.
    """
    ctx = ensure_context(ctx)
    succ = np.asarray(succ, dtype=np.int64)
    _validate_list(succ, head)
    n = succ.size
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    if num_splitters is None:
        num_splitters = max(1, n // 64)
    num_splitters = int(min(max(num_splitters, 1), n))

    rng = np.random.default_rng(seed)
    if num_splitters > 1:
        candidates = rng.choice(n, size=num_splitters - 1, replace=False)
        splitters = np.unique(np.concatenate(([head], candidates)))
    else:
        splitters = np.asarray([head], dtype=np.int64)
    s = splitters.size

    is_splitter = np.zeros(n, dtype=bool)
    is_splitter[splitters] = True
    splitter_id = np.full(n, _NIL, dtype=np.int64)
    splitter_id[splitters] = np.arange(s)

    sublist_id = np.full(n, _NIL, dtype=np.int64)
    local_rank = np.full(n, _NIL, dtype=np.int64)
    sublist_len = np.zeros(s, dtype=np.int64)
    # For sublist i, the id of the sublist that follows it in list order
    # (or -1 if it ends the list).
    sublist_next = np.full(s, _NIL, dtype=np.int64)

    # Phase 1: sublist walk.  On the device this is ONE kernel: every splitter
    # thread walks its own sublist to the next splitter inside the kernel.
    # The NumPy simulation below advances all splitters in lockstep purely for
    # vectorization; the cost is charged once at the end, with the total
    # number of hops as the work and the longest sublist as the critical path
    # (captured through the per-lane bytes of the single charged kernel).
    pos = splitters.copy()
    active = np.ones(s, dtype=bool)
    step = 0
    total_hops = 0
    while active.any():
        act_idx = np.flatnonzero(active)
        cur = pos[act_idx]
        sublist_id[cur] = act_idx
        # Every splitter still active at round `step` has taken exactly `step`
        # hops from its own starting element, so the round number is its
        # current element's local rank within the sublist.
        local_rank[cur] = step
        sublist_len[act_idx] += 1
        nxt = succ[cur]
        ended = nxt == _NIL
        hits_splitter = np.zeros_like(ended)
        valid = ~ended
        hits_splitter[valid] = is_splitter[nxt[valid]]
        finishing = ended | hits_splitter
        fin_local = act_idx[finishing]
        if fin_local.size:
            nxt_fin = nxt[finishing]
            sublist_next[fin_local] = np.where(
                nxt_fin == _NIL, _NIL, splitter_id[np.maximum(nxt_fin, 0)]
            )
            active[fin_local] = False
        cont = act_idx[~finishing]
        pos[cont] = nxt[~finishing]
        total_hops += int(act_idx.size)
        step += 1
        if step > n + 1:
            raise InvalidGraphError("sublist walk did not terminate; list is malformed")
    ctx.kernel(
        "weijaja_sublist_walk",
        threads=s,
        ops=3.0 * total_hops,
        bytes_read=float(total_hops) * 32.0,
        bytes_written=float(total_hops) * 24.0,
        launches=1,
        divergent=True,
        random_access=True,
    )

    if int(np.sum(sublist_len)) != n or (sublist_id == _NIL).any():
        raise InvalidGraphError("not all list elements are reachable from the head")

    # Phase 2: rank the sublists by walking the (short) sublist-successor list
    # starting from the head's sublist.
    head_sub = int(splitter_id[head])
    offsets = np.zeros(s, dtype=np.int64)
    order_count = 0
    running = 0
    cur_sub = head_sub
    visited = np.zeros(s, dtype=bool)
    while cur_sub != _NIL:
        if visited[cur_sub]:
            raise InvalidGraphError("sublist chain contains a cycle; list is malformed")
        visited[cur_sub] = True
        offsets[cur_sub] = running
        running += int(sublist_len[cur_sub])
        cur_sub = int(sublist_next[cur_sub])
        order_count += 1
    if order_count != s or running != n:
        raise InvalidGraphError("not all sublists are reachable from the head")
    ctx.sequential("weijaja_rank_sublists", ops=float(2 * s),
                   bytes_touched=float(3 * s * 8), random_access=True)

    # Phase 3: add the sublist offsets to the local ranks.
    rank = offsets[sublist_id] + local_rank
    ctx.kernel(
        "weijaja_add_offsets",
        threads=n,
        ops=float(n),
        bytes_read=float(2 * n * 8),
        bytes_written=float(n * 8),
        launches=1,
        random_access=True,
    )
    return rank


def list_rank(succ: np.ndarray, head: int, *, method: str = "wei-jaja",
              num_splitters: Optional[int] = None, seed: int = 0,
              ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Rank a linked list with the selected algorithm.

    ``method`` is one of ``"wei-jaja"`` (default, the paper's choice),
    ``"wyllie"`` (pointer jumping) or ``"sequential"`` (CPU baseline).
    """
    key = method.strip().lower().replace("_", "-")
    if key in ("wei-jaja", "weijaja", "helman-jaja"):
        return wei_jaja_rank(succ, head, num_splitters=num_splitters, seed=seed, ctx=ctx)
    if key == "wyllie":
        return wyllie_rank(succ, head, ctx=ctx)
    if key == "sequential":
        return sequential_rank(succ, head, ctx=ctx)
    raise ValueError(f"unknown list-ranking method {method!r}")


def order_from_ranks(ranks: np.ndarray,
                     *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Invert a rank array: ``order[r]`` is the element with rank ``r``.

    This is the scatter that materializes the Euler tour as an array after the
    single list-ranking call (paper §2.2).
    """
    ctx = ensure_context(ctx)
    ranks = np.asarray(ranks, dtype=np.int64)
    n = ranks.size
    order = np.empty(n, dtype=np.int64)
    order[ranks] = np.arange(n)
    ctx.kernel(
        "order_from_ranks",
        threads=max(n, 1),
        ops=float(n),
        bytes_read=float(n * 8),
        bytes_written=float(n * 8),
        launches=1,
        random_access=True,
    )
    return order
