"""Range-minimum/maximum query structures: segment tree and sparse table.

Two Euler-tour applications in the paper need range min/max over arrays laid
out in tour (preorder) order:

* Tarjan–Vishkin bridges aggregate per-node minimum/maximum non-tree
  neighbours over subtrees, which are contiguous preorder intervals
  (paper §4.1, "we do using the segment tree data structure");
* the RMQ-based LCA baseline used in the §3.1 preliminary CPU experiment.

Both backends are built level by level with bulk kernels and answer *batches*
of queries with ``O(log n)`` lockstep rounds, which is how a GPU would
traverse them.  The sparse table trades ``O(n log n)`` memory for
constant-round queries; it is the ablation alternative (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..device import ExecutionContext, ensure_context

_OPS = {"min": np.minimum, "max": np.maximum}

#: Segment-tree levels smaller than this are built together in one cleanup
#: kernel instead of one launch each (see :class:`SegmentTreeRMQ`).
_SMALL_LEVEL_THRESHOLD = 4096


def _identity_for(op: str, dtype: np.dtype):
    if op == "min":
        return np.iinfo(dtype).max if np.issubdtype(dtype, np.integer) else np.inf
    return np.iinfo(dtype).min if np.issubdtype(dtype, np.integer) else -np.inf


class SegmentTreeRMQ:
    """Iterative (bottom-up) segment tree answering range min/max queries.

    Parameters
    ----------
    values:
        1-D array the tree is built over.
    op:
        ``"min"`` or ``"max"``.
    ctx:
        Optional execution context; construction charges one kernel per tree
        level, queries charge one kernel per level per batch.
    """

    def __init__(self, values: np.ndarray, op: str = "min",
                 *, ctx: Optional[ExecutionContext] = None) -> None:
        if op not in _OPS:
            raise ValueError(f"op must be 'min' or 'max', got {op!r}")
        ctx = ensure_context(ctx)
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("SegmentTreeRMQ expects a 1-D array")
        if values.size == 0:
            raise ValueError("cannot build an RMQ structure over an empty array")
        self.op = op
        self.n = int(values.size)
        size = 1
        while size < self.n:
            size *= 2
        self.size = size
        identity = _identity_for(op, values.dtype)
        self._identity = identity
        tree = np.full(2 * size, identity, dtype=values.dtype)
        tree[size:size + self.n] = values
        ufunc = _OPS[op]
        # Build one level at a time; each sufficiently large level is its own
        # bulk kernel, while all the small top levels (whose total size is
        # negligible) are folded into a single cleanup kernel — the standard
        # way GPU segment-tree builds avoid paying one launch per tiny level.
        level_size = size // 2
        small_level_elements = 0
        small_level_ops = 0.0
        while level_size >= 1:
            lo = level_size
            hi = 2 * level_size
            tree[lo:hi] = ufunc(tree[2 * lo:2 * hi:2], tree[2 * lo + 1:2 * hi:2])
            if level_size >= _SMALL_LEVEL_THRESHOLD:
                ctx.kernel(
                    "segtree_build_level",
                    threads=level_size,
                    ops=float(level_size),
                    bytes_read=2.0 * level_size * tree.dtype.itemsize,
                    bytes_written=1.0 * level_size * tree.dtype.itemsize,
                    launches=1,
                )
            else:
                small_level_elements += level_size
                small_level_ops += float(level_size)
            level_size //= 2
        if small_level_elements:
            ctx.kernel(
                "segtree_build_top_levels",
                threads=small_level_elements,
                ops=small_level_ops,
                bytes_read=2.0 * small_level_elements * tree.dtype.itemsize,
                bytes_written=1.0 * small_level_elements * tree.dtype.itemsize,
                launches=1,
            )
        self.tree = tree

    def query(self, lo: np.ndarray, hi: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of inclusive range queries ``[lo[i], hi[i]]``.

        Empty ranges (``lo > hi``) return the operation identity.
        """
        ctx = ensure_context(ctx)
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        scalar = lo.ndim == 0
        lo = np.atleast_1d(lo).copy()
        hi = np.atleast_1d(hi).copy()
        if lo.shape != hi.shape:
            raise ValueError("lo and hi must have the same shape")
        if lo.size and (lo.min() < 0 or hi.max() >= self.n):
            # Allow empty ranges anywhere, but populated ones must be in bounds.
            populated = lo <= hi
            if populated.any() and (lo[populated].min() < 0 or hi[populated].max() >= self.n):
                raise IndexError("query range out of bounds")
        q = lo.size
        ufunc = _OPS[self.op]
        result = np.full(q, self._identity, dtype=self.tree.dtype)
        left = lo + self.size
        r = hi + self.size + 1  # exclusive
        # Treat empty ranges as already finished.
        left = np.where(lo > hi, 1, left)
        r = np.where(lo > hi, 1, r)
        # On the device each query thread performs its own O(log n) bottom-up
        # descent inside a single kernel; the per-level loop below is only a
        # vectorization device and the cost is charged once at the end.
        rounds = 0
        while np.any(left < r):
            take_left = (left < r) & (left % 2 == 1)
            if take_left.any():
                result[take_left] = ufunc(result[take_left], self.tree[left[take_left]])
                left[take_left] += 1
            take_right = (left < r) & (r % 2 == 1)
            if take_right.any():
                r[take_right] -= 1
                result[take_right] = ufunc(result[take_right], self.tree[r[take_right]])
            left //= 2
            r //= 2
            rounds += 1
            if rounds > 2 * int(np.log2(self.size)) + 4:  # pragma: no cover - defensive
                raise RuntimeError("segment tree query did not converge")
        levels = max(rounds, 1)
        ctx.kernel(
            "segtree_query",
            threads=q,
            ops=4.0 * q * levels,
            bytes_read=float(q) * levels * 16.0,
            bytes_written=float(q) * 8.0,
            launches=1,
            random_access=True,
        )
        return result[0] if scalar else result

    @property
    def identity(self):
        """The neutral element returned for empty query ranges."""
        return self._identity


class SparseTableRMQ:
    """Sparse-table RMQ: ``O(n log n)`` preprocessing, O(1)-round batch queries."""

    def __init__(self, values: np.ndarray, op: str = "min",
                 *, ctx: Optional[ExecutionContext] = None) -> None:
        if op not in _OPS:
            raise ValueError(f"op must be 'min' or 'max', got {op!r}")
        ctx = ensure_context(ctx)
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("SparseTableRMQ expects a 1-D array")
        if values.size == 0:
            raise ValueError("cannot build an RMQ structure over an empty array")
        self.op = op
        self.n = int(values.size)
        self._identity = _identity_for(op, values.dtype)
        levels = max(1, int(np.floor(np.log2(self.n))) + 1)
        table = np.empty((levels, self.n), dtype=values.dtype)
        table[0] = values
        ufunc = _OPS[op]
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            width = self.n - span + 1
            if width <= 0:
                table[k] = table[k - 1]
                continue
            table[k, :width] = ufunc(table[k - 1, :width], table[k - 1, half:half + width])
            table[k, width:] = table[k - 1, width:]
            ctx.kernel(
                "sparse_table_build_level",
                threads=width,
                ops=float(width),
                bytes_read=2.0 * width * values.dtype.itemsize,
                bytes_written=1.0 * width * values.dtype.itemsize,
                launches=1,
            )
        self.table = table
        self.levels = levels

    def query(self, lo: np.ndarray, hi: np.ndarray,
              *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
        """Answer a batch of inclusive range queries ``[lo[i], hi[i]]``.

        Empty ranges return the operation identity.  Each query combines two
        overlapping power-of-two windows, i.e. a single kernel regardless of
        range length.
        """
        ctx = ensure_context(ctx)
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        scalar = lo.ndim == 0
        lo = np.atleast_1d(lo)
        hi = np.atleast_1d(hi)
        if lo.shape != hi.shape:
            raise ValueError("lo and hi must have the same shape")
        populated = lo <= hi
        if populated.any() and (lo[populated].min() < 0 or hi[populated].max() >= self.n):
            raise IndexError("query range out of bounds")
        q = lo.size
        result = np.full(q, self._identity, dtype=self.table.dtype)
        if populated.any():
            plo = lo[populated]
            phi = hi[populated]
            length = phi - plo + 1
            k = np.floor(np.log2(length)).astype(np.int64)
            left = self.table[k, plo]
            right = self.table[k, phi - (1 << k) + 1]
            result[populated] = _OPS[self.op](left, right)
        ctx.kernel(
            "sparse_table_query",
            threads=q,
            ops=4.0 * q,
            bytes_read=float(q) * 4.0 * 8.0,
            bytes_written=float(q) * 8.0,
            launches=1,
            random_access=True,
        )
        return result[0] if scalar else result

    @property
    def identity(self):
        """The neutral element returned for empty query ranges."""
        return self._identity


def build_rmq(values: np.ndarray, op: str = "min", *, backend: str = "segment-tree",
              ctx: Optional[ExecutionContext] = None):
    """Build an RMQ structure with the requested backend.

    ``backend`` is ``"segment-tree"`` (the paper's choice) or ``"sparse-table"``.
    """
    key = backend.strip().lower().replace("_", "-")
    if key in ("segment-tree", "segtree"):
        return SegmentTreeRMQ(values, op, ctx=ctx)
    if key in ("sparse-table", "sparsetable"):
        return SparseTableRMQ(values, op, ctx=ctx)
    raise ValueError(f"unknown RMQ backend {backend!r}")


def range_minmax_over_subtrees(
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    *,
    backend: str = "segment-tree",
    ctx: Optional[ExecutionContext] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience helper: min and max of ``values`` over intervals ``[starts, ends]``.

    Used by Tarjan–Vishkin to turn per-node extremes into per-subtree
    ``low``/``high`` values in one shot.
    """
    rmq_min = build_rmq(values, "min", backend=backend, ctx=ctx)
    rmq_max = build_rmq(values, "max", backend=backend, ctx=ctx)
    return rmq_min.query(starts, ends, ctx=ctx), rmq_max.query(starts, ends, ctx=ctx)
