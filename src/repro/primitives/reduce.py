"""Reduction primitives: full reductions and segmented (keyed) reductions.

The Tarjan–Vishkin bridge algorithm needs, for every node, the minimum and
maximum preorder number among its *non-tree* neighbours.  The paper computes
this with moderngpu's ``segreduce``; :func:`segreduce_by_key` is the
equivalent here (keys = node ids, one segment per node).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context

_UFUNCS = {
    "min": (np.minimum, np.fmin),
    "max": (np.maximum, np.fmax),
    "sum": (np.add, np.add),
}

_IDENTITY = {
    "min": lambda dtype: np.iinfo(dtype).max if np.issubdtype(dtype, np.integer) else np.inf,
    "max": lambda dtype: np.iinfo(dtype).min if np.issubdtype(dtype, np.integer) else -np.inf,
    "sum": lambda dtype: 0,
}


def reduce_array(values: np.ndarray, op: str = "sum",
                 *, ctx: Optional[ExecutionContext] = None):
    """Reduce a 1-D array to a scalar with ``op`` in {"sum", "min", "max"}.

    Charged as a single-pass streaming kernel (``n`` operations, one read of
    the array, two launches for the block-then-final reduction).
    """
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    if op not in _UFUNCS:
        raise ValueError(f"unsupported reduction op {op!r}")
    if values.size == 0:
        raise ValueError("cannot reduce an empty array without an identity")
    ctx.kernel(
        f"reduce_{op}",
        threads=values.size,
        ops=float(values.size),
        bytes_read=float(values.nbytes),
        bytes_written=8.0,
        launches=2,
    )
    if op == "sum":
        return values.sum()
    if op == "min":
        return values.min()
    return values.max()


def segreduce_by_key(
    keys: np.ndarray,
    values: np.ndarray,
    num_segments: int,
    op: str = "min",
    *,
    identity=None,
    ctx: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Segmented reduction: reduce ``values`` grouped by integer ``keys``.

    Parameters
    ----------
    keys:
        Integer array of segment ids in ``[0, num_segments)``.  Keys do *not*
        need to be sorted (the cost model charges a scatter-style kernel,
        matching atomic-based GPU segreduce implementations).
    values:
        Values to reduce, same length as ``keys``.
    num_segments:
        Size of the output array.
    op:
        One of ``"min"``, ``"max"``, ``"sum"``.
    identity:
        Value used for segments that receive no elements.  Defaults to the
        natural identity of ``op`` for the value dtype.

    Returns
    -------
    numpy.ndarray of length ``num_segments``.
    """
    ctx = ensure_context(ctx)
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be 1-D arrays of equal length")
    if num_segments < 0:
        raise ValueError("num_segments must be non-negative")
    if op not in _UFUNCS:
        raise ValueError(f"unsupported reduction op {op!r}")
    if keys.size and (keys.min() < 0 or keys.max() >= num_segments):
        raise ValueError("keys must lie in [0, num_segments)")

    if identity is None:
        identity = _IDENTITY[op](values.dtype)
    out = np.full(num_segments, identity, dtype=values.dtype)
    ufunc = _UFUNCS[op][0]
    if keys.size:
        ufunc.at(out, keys, values)

    ctx.kernel(
        f"segreduce_{op}",
        threads=max(int(keys.size), 1),
        ops=float(keys.size),
        bytes_read=float(keys.nbytes + values.nbytes),
        bytes_written=float(out.nbytes),
        launches=1,
        random_access=True,
    )
    return out


def count_by_key(keys: np.ndarray, num_segments: int,
                 *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Histogram of integer keys: ``out[k] = #{i : keys[i] == k}``."""
    ctx = ensure_context(ctx)
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    if num_segments < 0:
        raise ValueError("num_segments must be non-negative")
    if keys.size and (keys.min() < 0 or keys.max() >= num_segments):
        raise ValueError("keys must lie in [0, num_segments)")
    out = np.bincount(keys, minlength=num_segments).astype(np.int64)
    ctx.kernel(
        "histogram",
        threads=max(int(keys.size), 1),
        ops=float(keys.size),
        bytes_read=float(keys.nbytes),
        bytes_written=float(out.nbytes),
        launches=1,
        random_access=True,
    )
    return out
