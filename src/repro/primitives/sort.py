"""Sorting primitives with radix-sort cost accounting.

DCEL construction (paper §2.1) needs a lexicographic sort of the directed
half-edge array — the single most expensive step of building an Euler tour.
The paper uses moderngpu's mergesort; GPUs more commonly use LSD radix sort
for integer keys, and that is what the cost model charges: a fixed number of
passes, each reading and writing the key/value payload once plus a histogram
and scan per pass.  The actual ordering is computed with ``numpy`` sorts so
results are exact.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..device import ExecutionContext, ensure_context

#: Number of radix passes charged for a 32-bit key sorted 8 bits at a time.
RADIX_PASSES_32 = 4
#: Bits handled per radix pass (used only to decide the number of passes).
RADIX_BITS_PER_PASS = 8


def _radix_passes_for(max_key: int) -> int:
    """Number of 8-bit radix passes needed to sort keys in ``[0, max_key]``."""
    if max_key <= 0:
        return 1
    bits = int(max_key).bit_length()
    return max(1, -(-bits // RADIX_BITS_PER_PASS))


def _charge_radix_sort(ctx: ExecutionContext, n: int, payload_bytes: int,
                       passes: int, name: str) -> None:
    if n == 0:
        return
    ctx.kernel(
        name,
        threads=n,
        ops=float(passes) * 3.0 * n,
        bytes_read=float(passes) * n * payload_bytes,
        bytes_written=float(passes) * n * payload_bytes,
        launches=3 * passes,  # histogram + scan + scatter per pass
        # LSD radix scatters are bucketed and reasonably coalesced on GPUs, so
        # no scattered-access penalty is applied on top of the per-pass traffic.
        random_access=False,
    )


def sort_values(values: np.ndarray, *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Sort a 1-D integer array ascending (stable), with radix-sort pricing."""
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("sort_values expects a 1-D array")
    passes = _radix_passes_for(int(values.max()) if values.size else 0)
    _charge_radix_sort(ctx, values.size, values.dtype.itemsize, passes, "radix_sort")
    return np.sort(values, kind="stable")


def argsort_values(values: np.ndarray, *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Stable argsort of a 1-D array, with radix-sort pricing (key + index payload)."""
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("argsort_values expects a 1-D array")
    passes = _radix_passes_for(int(values.max()) if values.size else 0)
    _charge_radix_sort(ctx, values.size, values.dtype.itemsize + 8, passes, "radix_argsort")
    return np.argsort(values, kind="stable")


def sort_pairs(
    first: np.ndarray,
    second: np.ndarray,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lexicographically sort pairs ``(first[i], second[i])``.

    Returns ``(sorted_first, sorted_second, order)`` where ``order`` is the
    permutation applied, so callers can maintain cross-array pointers exactly
    as the DCEL construction requires ("each element keeps an up-to-date
    pointer to its copy in the other array").

    The cost model charges two chained radix sorts (sort by ``second``, then
    stably by ``first``), the standard way of lexicographically sorting pairs
    of bounded integers on a GPU.
    """
    ctx = ensure_context(ctx)
    first = np.asarray(first)
    second = np.asarray(second)
    if first.shape != second.shape or first.ndim != 1:
        raise ValueError("sort_pairs expects two 1-D arrays of equal length")
    n = first.size
    passes = _radix_passes_for(int(first.max()) if n else 0) + _radix_passes_for(
        int(second.max()) if n else 0
    )
    _charge_radix_sort(ctx, n, first.dtype.itemsize + second.dtype.itemsize + 8,
                       passes, "radix_sort_pairs")
    order = np.lexsort((second, first))
    return first[order], second[order], order


def sort_key_value(
    keys: np.ndarray,
    values: np.ndarray,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable sort of ``values`` by integer ``keys`` (radix-sort pricing)."""
    ctx = ensure_context(ctx)
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape[0] != values.shape[0] or keys.ndim != 1:
        raise ValueError("keys must be 1-D and align with values along axis 0")
    passes = _radix_passes_for(int(keys.max()) if keys.size else 0)
    _charge_radix_sort(ctx, keys.size, keys.dtype.itemsize + values.dtype.itemsize,
                       passes, "radix_sort_kv")
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]
