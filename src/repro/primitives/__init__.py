"""Data-parallel building blocks (the moderngpu/Wei–JaJa substitute layer).

Everything an Euler-tour algorithm needs — scans, segmented reductions,
key sorting, stream compaction, gather/scatter, list ranking, and range
min/max structures — implemented as instrumented NumPy kernels.  See
DESIGN.md §2–3.
"""

from .compact import compact, compact_many, nonzero_indices
from .gather import elementwise, gather, scatter
from .listrank import (
    list_rank,
    order_from_ranks,
    sequential_rank,
    wei_jaja_rank,
    wyllie_rank,
)
from .reduce import count_by_key, reduce_array, segreduce_by_key
from .rmq import (
    SegmentTreeRMQ,
    SparseTableRMQ,
    build_rmq,
    range_minmax_over_subtrees,
)
from .scan import (
    add_scan_offsets,
    exclusive_scan,
    inclusive_scan,
    segmented_inclusive_scan,
)
from .sort import argsort_values, sort_key_value, sort_pairs, sort_values

__all__ = [
    # scan
    "inclusive_scan",
    "exclusive_scan",
    "segmented_inclusive_scan",
    "add_scan_offsets",
    # reduce
    "reduce_array",
    "segreduce_by_key",
    "count_by_key",
    # sort
    "sort_values",
    "argsort_values",
    "sort_pairs",
    "sort_key_value",
    # compact
    "compact",
    "compact_many",
    "nonzero_indices",
    # gather / scatter
    "gather",
    "scatter",
    "elementwise",
    # list ranking
    "list_rank",
    "wyllie_rank",
    "wei_jaja_rank",
    "sequential_rank",
    "order_from_ranks",
    # RMQ
    "SegmentTreeRMQ",
    "SparseTableRMQ",
    "build_rmq",
    "range_minmax_over_subtrees",
]
