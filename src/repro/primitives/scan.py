"""Prefix-sum (scan) primitives with cost accounting.

On real GPUs the array scan is one of the fastest primitives available
(the paper uses moderngpu's implementation), which is exactly why the paper's
§2.2 optimization — run list ranking *once*, then do every subsequent Euler
tour computation as an array scan — pays off.  Here the actual arithmetic is
delegated to :func:`numpy.cumsum`; the cost model charges the canonical
two-pass work-efficient scan: ``2n`` operations, one streaming read and one
streaming write of the array, and two kernel launches (upsweep + downsweep).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context


def _charge_scan(ctx: ExecutionContext, n: int, itemsize: int, name: str) -> None:
    ctx.kernel(
        name,
        threads=n,
        ops=2.0 * n,
        bytes_read=2.0 * n * itemsize,
        bytes_written=2.0 * n * itemsize,
        launches=2,
    )


def inclusive_scan(values: np.ndarray, *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Inclusive prefix sum of a 1-D array.

    ``out[i] = values[0] + ... + values[i]``.
    """
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("inclusive_scan expects a 1-D array")
    _charge_scan(ctx, values.size, values.dtype.itemsize, "inclusive_scan")
    return np.cumsum(values)


def exclusive_scan(values: np.ndarray, *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Exclusive prefix sum of a 1-D array.

    ``out[0] = 0`` and ``out[i] = values[0] + ... + values[i-1]`` for ``i > 0``.
    The output has the same length and dtype as the input.
    """
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("exclusive_scan expects a 1-D array")
    _charge_scan(ctx, values.size, values.dtype.itemsize, "exclusive_scan")
    out = np.empty_like(values)
    if values.size:
        out[0] = 0
        np.cumsum(values[:-1], out=out[1:])
    return out


def segmented_inclusive_scan(
    values: np.ndarray,
    segment_ids: np.ndarray,
    *,
    ctx: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Inclusive prefix sum restarted at every segment boundary.

    ``segment_ids`` must be non-decreasing (elements of one segment are
    contiguous); the scan restarts whenever the segment id changes.  This is
    the classical segmented scan primitive (moderngpu's ``segscan``).
    """
    ctx = ensure_context(ctx)
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids)
    if values.shape != segment_ids.shape or values.ndim != 1:
        raise ValueError("values and segment_ids must be 1-D arrays of equal length")
    n = values.size
    _charge_scan(ctx, n, values.dtype.itemsize + segment_ids.dtype.itemsize,
                 "segmented_inclusive_scan")
    if n == 0:
        return values.copy()
    if np.any(segment_ids[1:] < segment_ids[:-1]):
        raise ValueError("segment_ids must be non-decreasing")
    total = np.cumsum(values)
    # Subtract, within each segment, the running total accumulated before the
    # segment started.  boundaries[i] is True where a new segment begins; each
    # element is mapped to the index where its segment starts (a
    # max-accumulate over indices, which is monotone regardless of the sign of
    # the values being scanned).
    boundaries = np.empty(n, dtype=bool)
    boundaries[0] = True
    boundaries[1:] = segment_ids[1:] != segment_ids[:-1]
    seg_start_index = np.maximum.accumulate(np.where(boundaries, np.arange(n), 0))
    offset_before_segment = total[seg_start_index] - values[seg_start_index]
    return total - offset_before_segment


def add_scan_offsets(values: np.ndarray, initial: float = 0,
                     *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Exclusive scan shifted by an initial value; helper for bucket offsets."""
    out = exclusive_scan(values, ctx=ctx)
    if initial:
        out = out + initial
    return out
