"""The online controller: metric windows in, knob retunes out.

:class:`Controller` closes the loop the rest of the stack left open: the
services expose rich signals (:class:`~repro.service.ServiceStats`,
:class:`~repro.service.ClusterStats`, the
:mod:`~repro.obs.metrics` registry) and, since the config redesign, a
hot-swap seam (``apply_tuning()``) — the controller watches the former and
drives the latter against a declarative :class:`~repro.control.slo.SLO`.

The loop, once per ``interval_s`` of simulated time:

1. **Window the signals.**  The target's cumulative stats are re-expressed
   as a fresh metric registry (the :func:`~repro.obs.metrics.
   service_stats_metrics` / :func:`~repro.obs.metrics.cluster_stats_metrics`
   adapters), plus a window-local latency histogram fed only the latency
   values recorded since the previous observation.
   :meth:`~repro.obs.metrics.MetricsSnapshot.delta` against the previous
   snapshot turns cumulative counters into per-window counts; the window
   p99 comes from :func:`~repro.obs.metrics.histogram_quantile` over the
   window histogram.
2. **Compare against the SLO** and pick a direction:

   * *Deadline-aware flushing*: the wait-flush deadline is ``oldest
     arrival + max_wait_s``, so clamping ``max_wait_s`` to a fraction of
     the p99 bound (``wait_fraction``) guarantees a batch flushes before
     its oldest admitted query has spent the latency budget queueing.
   * *Shedding above bound / throughput below floor* → the system is
     capacity-limited: double the batch size (bulk is cheaper per query on
     the batch backend), restore the wait deadline to the budget, and —
     with p99 headroom — raise the admission limit.  Capacity recovery
     outranks the latency rule: under overload, shrinking batches only
     deepens the backlog.
   * *p99 violated* (and shedding within bound) → multiplicative backoff
     on the wait deadline, the direct lever on the tail; the batch size —
     which sets the cost per query — shrinks only once the wait is
     already at its floor.
   * *Deep p99 headroom* → probe upward: grow the batch size toward the
     cost-optimal bulk regime; creep the wait deadline back toward the
     budget when a violation pushed it down.
3. **Apply** through ``apply_tuning()`` — the knobs swap at a flush
   boundary, in-flight batches are untouched, and answers are bit-identical
   to an untuned run by construction.
4. **Priority lanes.**  With :attr:`~repro.control.slo.SLO.tenant_weights`
   declared, each tenant's dataset lane gets a per-lane wait deadline of
   ``effective_wait * (min_weight / weight)`` — heavier tenants flush
   sooner — re-applied every epoch on top of the global policy.

5. **Membership** (optional).  With an
   :class:`~repro.control.autoscale.AutoscalePolicy` attached and a
   cluster target, the same windowed signals (shed rate, queue-depth
   occupancy, window p99) drive ``n_replicas`` through
   ``apply_tuning(n_replicas=...)`` →
   :meth:`~repro.service.ClusterService.scale_to` — drain-before-retire,
   live-copy safety, cooldowns and hysteresis per the policy.

Every retune is recorded as a :class:`TuningDecision` in
:attr:`Controller.decisions`, so a bench (or a test) can audit exactly
when and why the controller moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ServiceError
from ..obs.metrics import (
    HistogramValue,
    MetricRegistry,
    MetricsSnapshot,
    cluster_stats_metrics,
    histogram_quantile,
    service_stats_metrics,
)
from ..service.cluster import ClusterService
from ..service.service import LCAQueryService
from .autoscale import AutoscalePolicy
from .slo import SLO

__all__ = ["Controller", "TuningDecision", "WINDOW_BUCKETS_S"]

#: Factor-2 buckets, 1 us .. ~0.13 s: finer than the reporting buckets so
#: the controller's p99 estimate tracks the bound it enforces.
WINDOW_BUCKETS_S: Tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(18))

_Target = Union[LCAQueryService, ClusterService]


@dataclass(frozen=True)
class TuningDecision:
    """One applied retune: when, why, and the resulting knob values."""

    #: Simulated time of the observation that triggered the retune.
    at_s: float
    #: Which rule fired: ``"p99"``, ``"shed"``, ``"throughput"``,
    #: ``"probe"`` or ``"deadline-clamp"`` (comma-joined when several) for
    #: knob retunes; ``"scale-out:<signals>"`` or ``"scale-in"`` for
    #: membership decisions.
    reason: str
    #: Knob values after the retune.
    max_batch_size: int
    max_wait_s: float
    max_pending: Optional[int]
    #: The window measurements the decision was based on.
    window_p99_s: float
    window_shed_rate: float
    window_throughput_qps: Optional[float]
    #: ``"knobs"`` for a flush-boundary knob swap, ``"membership"`` for a
    #: reactive scale decision applied through ``scale_to()``.
    kind: str = "knobs"
    #: The active replica count after a membership decision (``None`` on
    #: knob retunes).
    n_replicas: Optional[int] = None


class Controller:
    """Drives ``apply_tuning()`` from metric windows against an :class:`SLO`.

    Parameters
    ----------
    slo:
        The objectives to enforce.
    interval_s:
        Minimum simulated time between observations; calls inside the
        interval return ``None`` without touching the target.
    min_batch_size, max_batch_size, min_wait_s:
        Safety rails for the AIMD rules.
    wait_fraction:
        Fraction of the p99 bound granted to queue waiting (the
        deadline-aware flush budget).  The default leaves 20% of the
        bound for batch service time — generous for this stack, where a
        flushed batch serves in a few microseconds; lower it when service
        time is a larger share of the budget.
    max_pending_cap:
        Ceiling the admission limit may be raised to.
    autoscale:
        An optional :class:`~repro.control.autoscale.AutoscalePolicy`.
        When set and the target is a :class:`~repro.service.ClusterService`,
        every observation additionally evaluates the policy's windowed
        signals and may scale the active replica set through
        ``apply_tuning(n_replicas=...)`` — recorded as a
        ``kind="membership"`` :class:`TuningDecision`.  The first
        observation anchors the cooldowns (a fresh loop never scales at
        t=0), and a scale-in the cluster refuses for live-copy safety is
        skipped silently and re-evaluated next window.

    >>> from repro.service import LCAQueryService
    >>> ctl = Controller(SLO(p99_latency_s=1e-4), interval_s=0.0)
    >>> svc = LCAQueryService()
    >>> ctl.observe(svc, 0.0).reason    # wait deadline clamped to budget
    'deadline-clamp'
    >>> svc.policy.max_wait_s
    8e-05
    """

    def __init__(
        self,
        slo: SLO,
        *,
        interval_s: float = 1e-3,
        min_batch_size: int = 16,
        max_batch_size: int = 4096,
        min_wait_s: float = 2e-5,
        wait_fraction: float = 0.8,
        max_pending_cap: int = 65536,
        autoscale: Optional[AutoscalePolicy] = None,
    ) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        if not 0 < min_batch_size <= max_batch_size:
            raise ValueError("need 0 < min_batch_size <= max_batch_size")
        if min_wait_s <= 0:
            raise ValueError("min_wait_s must be positive")
        if not 0.0 < wait_fraction <= 1.0:
            raise ValueError("wait_fraction must be in (0, 1]")
        self.slo = slo
        self.interval_s = float(interval_s)
        self.min_batch_size = int(min_batch_size)
        self.max_batch_size = int(max_batch_size)
        self.min_wait_s = float(min_wait_s)
        self.wait_fraction = float(wait_fraction)
        self.max_pending_cap = int(max_pending_cap)
        self.autoscale = autoscale
        #: Every applied retune, in order.
        self.decisions: List[TuningDecision] = []
        self._last_s: Optional[float] = None
        self._prev: Optional[MetricsSnapshot] = None
        self._consumed: Dict[int, int] = {}
        #: Cooldown anchor: the most recent membership change (or the first
        #: observation, which arms the loop without scaling).
        self._last_scale_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Signal windowing
    # ------------------------------------------------------------------
    def _window(
        self, target: _Target, now_s: float
    ) -> Tuple[float, float, Optional[float], float]:
        """(p99_s, shed_rate, throughput_qps or None, answered) this window."""
        is_cluster = isinstance(target, ClusterService)
        reg = MetricRegistry()
        if is_cluster:
            cluster_stats_metrics(target.stats(), registry=reg)
            workers: List[LCAQueryService] = list(target.replicas)
        else:
            service_stats_metrics(target.stats(), registry=reg)
            workers = [target]
        hist = reg.histogram(
            "repro_window_latency_seconds",
            "Latencies recorded this control window",
            buckets=WINDOW_BUCKETS_S,
        )
        for index, worker in enumerate(workers):
            values = worker.stats_collector.latency_values
            start = self._consumed.get(index, 0)
            if values.size > start:
                hist.observe_many(values[start:])
                self._consumed[index] = int(values.size)
        snap = reg.snapshot()
        delta = snap.delta(self._prev) if self._prev is not None else snap
        prev_s = self._last_s
        self._prev = snap

        p99_s = 0.0
        window_metric = snap.get("repro_window_latency_seconds")
        if window_metric is not None and window_metric.series:
            window_hist = window_metric.series[0][1]
            assert isinstance(window_hist, HistogramValue)
            p99_s = histogram_quantile(
                window_hist, 0.99, buckets=WINDOW_BUCKETS_S
            )

        answered = self._sum(delta, "repro_queries_answered_total")
        if is_cluster:
            offered = self._sum(delta, "repro_cluster_queries_offered_total")
            shed = self._sum(delta, "repro_cluster_queries_shed_total")
        else:
            offered, shed = answered, 0.0
        shed_rate = shed / offered if offered > 0 else 0.0

        throughput: Optional[float] = None
        if prev_s is not None and now_s > prev_s:
            throughput = answered / (now_s - prev_s)
        return p99_s, shed_rate, throughput, answered

    @staticmethod
    def _sum(snapshot: MetricsSnapshot, name: str) -> float:
        """Total of a counter across all its series (0.0 when absent)."""
        metric = snapshot.get(name)
        if metric is None:
            return 0.0
        return float(
            sum(v for _, v in metric.series if not isinstance(v, HistogramValue))
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def observe(
        self, target: _Target, now_s: float
    ) -> Optional[TuningDecision]:
        """Observe one window and retune ``target`` if the SLO demands it.

        Returns the applied :class:`TuningDecision`, or ``None`` when the
        call landed inside ``interval_s`` of the previous observation or
        the window required no change.  Priority lanes are (re)applied on
        every observation that runs, whether or not the global knobs moved.
        With an :class:`~repro.control.autoscale.AutoscalePolicy` attached
        and a cluster target, the membership rules run after the knob
        rules; when both fire in one window the membership decision is
        returned (both are appended to :attr:`decisions`).
        """
        if self._last_s is not None and now_s - self._last_s < self.interval_s:
            return None
        p99_s, shed_rate, throughput, answered = self._window(target, now_s)
        self._last_s = now_s

        slo = self.slo
        config = target.config
        cur_batch = int(config.max_batch_size)
        cur_wait = float(config.max_wait_s)
        budget: Optional[float] = None
        if slo.p99_latency_s is not None:
            budget = self.wait_fraction * slo.p99_latency_s

        new_batch, new_wait = cur_batch, cur_wait
        reasons: List[str] = []

        # Deadline-aware flushing: the wait deadline is oldest-arrival +
        # max_wait_s, so a wait longer than the budget lets a batch's
        # oldest query burn the whole p99 bound before it even flushes.
        if budget is not None and new_wait > budget:
            new_wait = max(self.min_wait_s, budget)
            reasons.append("deadline-clamp")

        p99_violated = slo.p99_latency_s is not None and p99_s > slo.p99_latency_s
        shed_violated = (
            slo.max_shed_rate is not None and shed_rate > slo.max_shed_rate
        )
        throughput_violated = (
            slo.min_throughput_qps is not None
            and throughput is not None
            and throughput < slo.min_throughput_qps
        )
        p99_headroom = slo.p99_latency_s is None or p99_s < 0.8 * slo.p99_latency_s

        new_pending: Optional[int] = None
        if shed_violated or throughput_violated:
            # Capacity-limited: bulk up (cheaper per query), restore the
            # wait budget, and admit more if the tail can afford it.  This
            # outranks the p99 rule — under overload, shrinking batches
            # only deepens the backlog; the tail is reclaimed once
            # shedding clears.
            new_batch = min(self.max_batch_size, new_batch * 2)
            if budget is not None:
                new_wait = max(self.min_wait_s, budget)
            if (
                isinstance(target, ClusterService)
                and config.max_pending is not None
                and p99_headroom
            ):
                new_pending = min(
                    self.max_pending_cap, config.max_pending * 3 // 2
                )
                if new_pending == config.max_pending:
                    new_pending = None
            reasons.append("shed" if shed_violated else "throughput")
        elif p99_violated:
            # Latency backoff: the wait deadline is the direct lever on
            # the tail, so halve it first and keep batches large (large
            # batches are cheap per query and a shorter deadline flushes
            # them early anyway).  Only shrink batches once the wait is
            # already at its floor.
            shorter_wait = max(self.min_wait_s, new_wait / 2.0)
            if shorter_wait < new_wait:
                new_wait = shorter_wait
            else:
                new_batch = max(self.min_batch_size, new_batch // 2)
            reasons.append("p99")
        elif (
            answered > 0  # an empty window says nothing about the tail
            and slo.p99_latency_s is not None
            and p99_s < 0.5 * slo.p99_latency_s
            and new_batch < self.max_batch_size
        ):
            new_batch = min(self.max_batch_size, new_batch * 2)
            reasons.append("probe")

        if not (p99_violated or shed_violated or throughput_violated):
            # Additive-ish re-growth: a wait shorter than the budget means
            # batches flush before they must — creep back up (1.25x per
            # window) toward the budget, where batching is cheapest while
            # the deadline guarantee still holds.
            if budget is not None and new_wait < budget:
                new_wait = min(budget, new_wait * 1.25)
                reasons.append("wait-probe")

        decision: Optional[TuningDecision] = None
        changed = (
            new_batch != cur_batch
            or new_wait != cur_wait
            or new_pending is not None
        )
        if changed:
            if isinstance(target, ClusterService):
                target.apply_tuning(
                    max_batch_size=new_batch,
                    max_wait_s=new_wait,
                    max_pending=new_pending,
                )
            else:
                target.apply_tuning(
                    max_batch_size=new_batch, max_wait_s=new_wait
                )
            decision = TuningDecision(
                at_s=float(now_s),
                reason=",".join(reasons),
                max_batch_size=new_batch,
                max_wait_s=new_wait,
                max_pending=(
                    new_pending
                    if new_pending is not None
                    else getattr(target.config, "max_pending", None)
                ),
                window_p99_s=p99_s,
                window_shed_rate=shed_rate,
                window_throughput_qps=throughput,
            )
            self.decisions.append(decision)

        self._apply_lanes(target, new_wait)

        scale: Optional[TuningDecision] = None
        if self.autoscale is not None and isinstance(target, ClusterService):
            scale = self._autoscale_step(
                target, now_s, p99_s, shed_rate, throughput
            )
        return scale if scale is not None else decision

    def _autoscale_step(
        self,
        cluster: ClusterService,
        now_s: float,
        p99_s: float,
        shed_rate: float,
        throughput: Optional[float],
    ) -> Optional[TuningDecision]:
        """Evaluate the autoscale policy over this window; maybe scale.

        Scale-out fires when *any* selected signal breaches its out
        threshold; scale-in only when *every* selected signal is at or
        below its calm threshold (hysteresis).  Both directions respect
        their cooldowns, measured from the most recent membership change.
        A scale-in the cluster refuses (live-copy safety) is skipped and
        re-evaluated next window.
        """
        policy = self.autoscale
        assert policy is not None
        if self._last_scale_s is None:
            # The first observation anchors the cooldowns: a fresh loop
            # neither scales out on an empty window nor scales in at t=0.
            self._last_scale_s = float(now_s)
            return None
        cap = cluster.config.max_pending
        occupancy = cluster.pending_count() / cap if cap else 0.0
        values = {"shed": shed_rate, "queue": occupancy, "p99": p99_s}
        breached = [
            s for s in policy.signals if values[s] > policy.out_threshold(s)
        ]
        calm = all(
            values[s] <= policy.in_threshold(s) for s in policy.signals
        )
        n = cluster.n_active
        elapsed = now_s - self._last_scale_s
        target_n: Optional[int] = None
        reason = ""
        if breached and n < policy.max_replicas:
            if elapsed >= policy.cooldown_out_s:
                target_n = min(policy.max_replicas, n + policy.step_out)
                reason = "scale-out:" + ",".join(breached)
        elif calm and n > policy.min_replicas:
            if elapsed >= policy.cooldown_in_s:
                target_n = max(policy.min_replicas, n - policy.step_in)
                reason = "scale-in"
        if target_n is None or target_n == n:
            return None
        try:
            cluster.apply_tuning(n_replicas=target_n)
        except ServiceError:
            # Live-copy safety refused the retirement; membership stays
            # where the cluster left it and the window is re-evaluated
            # after the next one.
            return None
        self._last_scale_s = float(now_s)
        config = cluster.config
        decision = TuningDecision(
            at_s=float(now_s),
            reason=reason,
            max_batch_size=int(config.max_batch_size),
            max_wait_s=float(config.max_wait_s),
            max_pending=config.max_pending,
            window_p99_s=p99_s,
            window_shed_rate=shed_rate,
            window_throughput_qps=throughput,
            kind="membership",
            n_replicas=cluster.n_active,
        )
        self.decisions.append(decision)
        return decision

    def _apply_lanes(self, target: _Target, effective_wait_s: float) -> None:
        """Re-apply per-tenant wait deadlines on top of the global policy.

        Heavier tenants get proportionally shorter lanes:
        ``lane_wait = effective_wait * (min_weight / weight)``.  The
        heaviest declared tenant therefore flushes first under load; no
        lane ever waits longer than the global (budget-clamped) deadline.
        """
        weights = self.slo.tenant_weights
        if not weights:
            return
        min_weight = min(weight for _, weight in weights)
        for dataset, weight in weights:
            if dataset not in target.datasets:
                continue
            lane_wait = max(
                self.min_wait_s, effective_wait_s * (min_weight / weight)
            )
            target.apply_tuning(dataset=dataset, max_wait_s=lane_wait)
