"""SLO-aware self-tuning: declarative objectives driving live knobs.

The serving stack's knobs (batch size, wait deadline, hedge delay,
admission limit) were hand-set per benchmark; this package closes the loop
from the stack's own signals back to those knobs:

* :class:`~repro.control.slo.SLO` — a declarative objective spec (p99
  bound, shed-rate ceiling, throughput floor, per-tenant priority
  weights), serializable next to the configs it is enforced against;
* :class:`~repro.control.controller.Controller` — the online loop: window
  the metrics via :meth:`~repro.obs.metrics.MetricsSnapshot.delta`,
  compare against the SLO, retune through the services'
  ``apply_tuning()`` seam at a flush boundary.  Retuning never changes
  answers — only when batches flush and what they cost.

``repro.workloads.replay(..., controller=...)`` runs the loop during a
scenario replay; ``benchmarks/bench_adaptive.py`` measures it against the
best static configuration across the named scenario library.
"""

from .controller import WINDOW_BUCKETS_S, Controller, TuningDecision
from .slo import SLO

__all__ = ["SLO", "Controller", "TuningDecision", "WINDOW_BUCKETS_S"]
