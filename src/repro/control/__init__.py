"""SLO-aware self-tuning: declarative objectives driving live knobs.

The serving stack's knobs (batch size, wait deadline, hedge delay,
admission limit, replica count) were hand-set per benchmark; this package
closes the loop from the stack's own signals back to those knobs:

* :class:`~repro.control.slo.SLO` — a declarative objective spec (p99
  bound, shed-rate ceiling, throughput floor, per-tenant priority
  weights), serializable next to the configs it is enforced against;
* :class:`~repro.control.autoscale.AutoscalePolicy` — a declarative
  reactive-autoscaling spec (replica-count rails, per-signal scale-out /
  scale-in thresholds with hysteresis, per-direction cooldowns),
  serializable the same way;
* :class:`~repro.control.controller.Controller` — the online loop: window
  the metrics via :meth:`~repro.obs.metrics.MetricsSnapshot.delta`,
  compare against the SLO, retune through the services'
  ``apply_tuning()`` seam at a flush boundary, and (with a policy
  attached) drive ``n_replicas`` through the cluster's
  drain-before-retire ``scale_to()`` transition.  Retuning never changes
  answers — only when batches flush, what they cost, and how many
  replicas serve them.

``repro.workloads.replay(..., controller=...)`` runs the loop during a
scenario replay; ``benchmarks/bench_adaptive.py`` measures knob tuning
against the best static configuration across the named scenario library,
and ``benchmarks/bench_autoscale.py`` measures reactive scaling against
every static replica count on the flash crowd.
"""

from .autoscale import AUTOSCALE_SIGNALS, AutoscalePolicy
from .controller import WINDOW_BUCKETS_S, Controller, TuningDecision
from .slo import SLO

__all__ = [
    "AUTOSCALE_SIGNALS",
    "AutoscalePolicy",
    "SLO",
    "Controller",
    "TuningDecision",
    "WINDOW_BUCKETS_S",
]
