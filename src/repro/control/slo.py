"""Declarative service-level objectives for the serving stack.

An :class:`SLO` states *what* the operator wants — a tail-latency bound, a
shed-rate ceiling, a throughput floor, per-tenant priorities — without
saying anything about batch sizes or wait deadlines.  The
:class:`~repro.control.controller.Controller` owns the mapping from
objectives to knobs; keeping the spec declarative means the same SLO can
drive a single :class:`~repro.service.LCAQueryService` or a whole
:class:`~repro.service.ClusterService`, and can be serialized into a bench
manifest next to the :class:`~repro.service.config.ClusterConfig` it was
enforced against.

>>> slo = SLO(p99_latency_s=2e-4, max_shed_rate=0.01)
>>> SLO.from_json(slo.to_json()) == slo
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ServiceError

__all__ = ["SLO"]

#: ``None`` for every bound means "no objective" — rejected at construction.
_OBJECTIVES = ("p99_latency_s", "max_shed_rate", "min_throughput_qps")


@dataclass(frozen=True)
class SLO:
    """A declarative service-level objective.

    Every bound is optional; an SLO must declare at least one objective
    (a bound or tenant weights).  ``tenant_weights`` maps dataset names to
    relative priorities — higher weight means a shorter effective wait
    deadline for that tenant's lane (see
    :meth:`~repro.control.controller.Controller.observe`).

    >>> SLO(p99_latency_s=1e-4).p99_latency_s
    0.0001
    >>> SLO()
    Traceback (most recent call last):
        ...
    repro.errors.ServiceError: an SLO must declare at least one objective
    >>> SLO(p99_latency_s=1e-4,
    ...     tenant_weights=(("gold", 5.0), ("bronze", 1.0))).weight_of("gold")
    5.0
    """

    #: Modeled end-to-end p99 latency bound, seconds (``None`` = unbounded).
    p99_latency_s: Optional[float] = None
    #: Ceiling on the fraction of offered queries shed by admission control.
    max_shed_rate: Optional[float] = None
    #: Floor on delivered throughput, queries per second.
    min_throughput_qps: Optional[float] = None
    #: ``(dataset, weight)`` priority pairs; heavier tenants get shorter
    #: wait deadlines.  Stored as a tuple of pairs so the spec stays
    #: hashable and JSON-round-trippable.
    tenant_weights: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if (
            all(getattr(self, name) is None for name in _OBJECTIVES)
            and not self.tenant_weights
        ):
            raise ServiceError("an SLO must declare at least one objective")
        if self.p99_latency_s is not None and float(self.p99_latency_s) <= 0:
            raise ServiceError("p99_latency_s must be positive (or None)")
        if self.max_shed_rate is not None and not (
            0.0 <= float(self.max_shed_rate) <= 1.0
        ):
            raise ServiceError("max_shed_rate must be in [0, 1] (or None)")
        if (
            self.min_throughput_qps is not None
            and float(self.min_throughput_qps) <= 0
        ):
            raise ServiceError("min_throughput_qps must be positive (or None)")
        # Normalize list-of-lists (the JSON round-trip shape) to tuples.
        pairs = tuple(
            (str(name), float(weight)) for name, weight in self.tenant_weights
        )
        object.__setattr__(self, "tenant_weights", pairs)
        seen = set()
        for name, weight in pairs:
            if weight <= 0:
                raise ServiceError("tenant weights must be positive")
            if name in seen:
                raise ServiceError(f"duplicate tenant weight for {name!r}")
            seen.add(name)

    def weight_of(self, dataset: str) -> float:
        """The declared weight for ``dataset`` (1.0 when not listed).

        >>> SLO(tenant_weights=(("a", 3.0),)).weight_of("b")
        1.0
        """
        for name, weight in self.tenant_weights:
            if name == dataset:
                return weight
        return 1.0

    def to_dict(self) -> Dict[str, Any]:
        """The SLO as a plain dict (JSON-safe; bench-manifest shape)."""
        out = dataclasses.asdict(self)
        out["tenant_weights"] = [list(pair) for pair in self.tenant_weights]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLO":
        """Rebuild an SLO from :meth:`to_dict` output.

        >>> SLO.from_dict({"max_shed_rate": 0.05}).max_shed_rate
        0.05
        """
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ServiceError(f"unknown SLO fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "tenant_weights" in kwargs:
            kwargs["tenant_weights"] = tuple(
                (str(n), float(w)) for n, w in kwargs["tenant_weights"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        """The SLO as a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SLO":
        """Rebuild an SLO from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ServiceError(
                f"SLO JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
