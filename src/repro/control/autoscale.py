"""Declarative reactive-autoscaling policy for the cluster front door.

An :class:`AutoscalePolicy` states *when* the replica count should move —
which windowed signals to watch, the breach thresholds that trigger
scale-out, the (lower) calm thresholds that permit scale-in, and the
cooldowns that stop the loop from flapping — without saying anything about
*how* membership changes land.  The
:class:`~repro.control.controller.Controller` owns the mechanics: a firing
policy becomes a ``ClusterService.scale_to()`` call (drain-before-retire,
live-copy safety, warm spares — the PR 7 elasticity rules), recorded as a
``kind="membership"`` :class:`~repro.control.controller.TuningDecision`.

Three windowed signals are available, all measured over the controller's
observation window:

``"shed"``
    Fraction of offered queries rejected by admission control.
``"queue"``
    Queue-depth occupancy: cluster ``pending_count() / max_pending``
    (identically ``0.0`` on an unbounded cluster — declare a
    ``max_pending`` for this signal to bite).
``"p99"``
    Window p99 latency in seconds (``histogram_quantile`` over the
    controller's window histogram).

Hysteresis is structural: every scale-in threshold must sit strictly below
its scale-out threshold, scale-out fires when *any* selected signal
breaches, and scale-in only when *all* selected signals are calm — so the
loop never oscillates on a signal hovering at one threshold.

>>> policy = AutoscalePolicy(min_replicas=1, max_replicas=8)
>>> AutoscalePolicy.from_json(policy.to_json()) == policy
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..errors import ServiceError

__all__ = ["AutoscalePolicy", "AUTOSCALE_SIGNALS"]

#: The windowed signals a policy may watch, in canonical order.
AUTOSCALE_SIGNALS: Tuple[str, ...] = ("shed", "queue", "p99")


@dataclass(frozen=True)
class AutoscalePolicy:
    """A declarative reactive-autoscaling policy.

    ``signals`` selects which windowed measurements drive the loop (at
    least one, from :data:`AUTOSCALE_SIGNALS`).  Scale-out fires when *any*
    selected signal exceeds its ``*_out`` threshold; scale-in requires
    *every* selected signal at or below its ``*_in`` threshold.  Each
    direction has its own cooldown, measured from the most recent
    membership change in either direction.

    >>> AutoscalePolicy(max_replicas=4).signals
    ('shed', 'queue', 'p99')
    >>> AutoscalePolicy(min_replicas=5, max_replicas=2)
    Traceback (most recent call last):
        ...
    repro.errors.ServiceError: need 1 <= min_replicas <= max_replicas
    >>> AutoscalePolicy(signals=())
    Traceback (most recent call last):
        ...
    repro.errors.ServiceError: a policy must watch at least one signal
    """

    #: The replica-count rails; scale decisions never leave ``[min, max]``.
    min_replicas: int = 1
    max_replicas: int = 8
    #: Which windowed signals drive the loop (subset of
    #: :data:`AUTOSCALE_SIGNALS`, at least one).
    signals: Tuple[str, ...] = AUTOSCALE_SIGNALS
    #: Window shed-rate thresholds (fractions of offered queries).
    shed_out: float = 0.02
    shed_in: float = 0.0
    #: Queue-occupancy thresholds (``pending / max_pending`` fractions).
    queue_out: float = 0.75
    queue_in: float = 0.25
    #: Window-p99 thresholds, seconds.
    p99_out_s: float = 5e-4
    p99_in_s: float = 1e-4
    #: Minimum simulated seconds between membership changes, per direction.
    cooldown_out_s: float = 2e-3
    cooldown_in_s: float = 10e-3
    #: Replicas added / retired per firing decision.
    step_out: int = 1
    step_in: int = 1

    def __post_init__(self) -> None:
        if not 1 <= int(self.min_replicas) <= int(self.max_replicas):
            raise ServiceError("need 1 <= min_replicas <= max_replicas")
        # Normalize the JSON round-trip list shape back to a tuple.
        names = tuple(str(name) for name in self.signals)
        object.__setattr__(self, "signals", names)
        if not names:
            raise ServiceError("a policy must watch at least one signal")
        unknown = [name for name in names if name not in AUTOSCALE_SIGNALS]
        if unknown:
            raise ServiceError(
                f"unknown autoscale signals {unknown}; "
                f"choose from {list(AUTOSCALE_SIGNALS)}"
            )
        if len(set(names)) != len(names):
            raise ServiceError("duplicate autoscale signals")
        for low, high in (
            ("shed_in", "shed_out"),
            ("queue_in", "queue_out"),
            ("p99_in_s", "p99_out_s"),
        ):
            lo, hi = float(getattr(self, low)), float(getattr(self, high))
            if lo < 0:
                raise ServiceError(f"{low} must be non-negative")
            if not lo < hi:
                raise ServiceError(
                    f"hysteresis requires {low} < {high} "
                    f"(got {lo} >= {hi})"
                )
        if float(self.cooldown_out_s) <= 0 or float(self.cooldown_in_s) <= 0:
            raise ServiceError("cooldowns must be positive")
        if int(self.step_out) < 1 or int(self.step_in) < 1:
            raise ServiceError("scale steps must be at least 1")

    def to_dict(self) -> Dict[str, Any]:
        """The policy as a plain dict (JSON-safe; bench-manifest shape)."""
        out = dataclasses.asdict(self)
        out["signals"] = list(self.signals)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AutoscalePolicy":
        """Rebuild a policy from :meth:`to_dict` output.

        >>> AutoscalePolicy.from_dict({"max_replicas": 6}).max_replicas
        6
        """
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ServiceError(
                f"unknown AutoscalePolicy fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "signals" in kwargs:
            kwargs["signals"] = tuple(str(s) for s in kwargs["signals"])
        return cls(**kwargs)

    def to_json(self) -> str:
        """The policy as a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AutoscalePolicy":
        """Rebuild a policy from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ServiceError(
                f"AutoscalePolicy JSON must be an object, "
                f"got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def out_threshold(self, signal: str) -> float:
        """The scale-out threshold for ``signal``.

        >>> AutoscalePolicy(shed_out=0.1).out_threshold("shed")
        0.1
        """
        return float(
            {
                "shed": self.shed_out,
                "queue": self.queue_out,
                "p99": self.p99_out_s,
            }[signal]
        )

    def in_threshold(self, signal: str) -> float:
        """The scale-in (calm) threshold for ``signal``."""
        return float(
            {
                "shed": self.shed_in,
                "queue": self.queue_in,
                "p99": self.p99_in_s,
            }[signal]
        )
