"""Micro-batch scheduler: coalesce single queries into device-sized batches.

The paper's batch-size experiment (Fig. 6) shows that the GPU only pays off
once queries are handed over in batches of ~100 or more, and saturates around
10⁴.  An online service, however, receives queries one at a time.  The
standard resolution — the same one used by neural-inference servers — is
*micro-batching*: hold arriving queries in a queue and flush the queue as one
batch when either

* the queue reaches ``max_batch_size`` (**size trigger** — the device-sized
  batch is ready, no reason to wait), or
* the oldest queued query has waited ``max_wait_s`` (**wait trigger** — the
  latency budget is up, flush whatever has accumulated), or
* the caller forces it (**drain trigger** — e.g. shutdown or a benchmark
  boundary).

All timing uses the :class:`~repro.service.clock.SimulatedClock`, so flush
decisions are deterministic functions of the arrival timestamps: a
wait-triggered flush fires at exactly ``oldest_arrival + max_wait_s``, never
"roughly when the event loop got around to it".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ServiceError
from .clock import SimulatedClock

__all__ = ["BatchPolicy", "PendingQuery", "FlushedBatch", "MicroBatchScheduler"]


@dataclass(frozen=True)
class BatchPolicy:
    """The two knobs of the micro-batching trade-off.

    ``max_batch_size=1`` degenerates to pass-through serving (every query is
    its own batch); ``max_wait_s=0.0`` flushes a pending queue as soon as time
    moves at all, which bounds added queueing latency at zero but only forms
    batches out of queries arriving at the same instant.
    """

    max_batch_size: int = 1024
    max_wait_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServiceError("max_batch_size must be at least 1")
        if self.max_wait_s < 0:
            raise ServiceError("max_wait_s must be non-negative")


@dataclass(frozen=True)
class PendingQuery:
    """One queued LCA query with its arrival time."""

    ticket: int
    x: int
    y: int
    arrival_s: float


@dataclass(frozen=True)
class FlushedBatch:
    """A batch handed to the execution backend, with full timing provenance."""

    tickets: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    arrival_s: np.ndarray
    flush_s: float
    trigger: str

    @property
    def size(self) -> int:
        """Number of queries in the batch."""
        return int(self.xs.size)

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Per-query time spent waiting in the queue before the flush."""
        return self.flush_s - self.arrival_s


class MicroBatchScheduler:
    """Coalesces submitted queries into batches under a :class:`BatchPolicy`.

    The scheduler never executes anything itself — it returns
    :class:`FlushedBatch` objects and the caller (the service layer) runs them
    through a backend.  ``submit`` and ``advance_to`` may each produce several
    batches: advancing time far enough can expire several wait deadlines, and
    a submission can both expire old queries and complete a full batch.
    """

    def __init__(self, policy: Optional[BatchPolicy] = None, *,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.policy = policy or BatchPolicy()
        self.clock = clock or SimulatedClock()
        self._pending: List[PendingQuery] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of queries currently queued."""
        return len(self._pending)

    @property
    def next_deadline(self) -> Optional[float]:
        """Instant at which the oldest pending query must be flushed."""
        if not self._pending:
            return None
        return self._pending[0].arrival_s + self.policy.max_wait_s

    # ------------------------------------------------------------------
    # Submission and time
    # ------------------------------------------------------------------
    def submit(self, ticket: int, x: int, y: int, *,
               at: Optional[float] = None) -> List[FlushedBatch]:
        """Queue one query, returning any batches its arrival caused to flush.

        ``at`` is the arrival timestamp; omitted, the query arrives "now".
        Advancing to ``at`` first fires any wait deadlines that expire before
        the new query arrives, so batches never contain queries that should
        already have been served.
        """
        t = self.clock.now if at is None else self.clock.advance_to(at)
        # Only strictly-past deadlines flush here: a query arriving exactly at
        # the pending queue's deadline still joins that batch (and with
        # max_wait_s=0 this is what lets same-instant arrivals coalesce).
        flushed = self._flush_expired(t, include_equal=False)
        self._pending.append(PendingQuery(int(ticket), int(x), int(y), t))
        if len(self._pending) >= self.policy.max_batch_size:
            flushed.append(self._flush(t, "size"))
        return flushed

    def advance_to(self, t: float, *, include_equal: bool = True
                   ) -> List[FlushedBatch]:
        """Move simulated time to ``t``, flushing every expired wait deadline.

        With ``include_equal=False``, a deadline exactly at ``t`` is left
        pending — the service layer uses this on the submit path so a query
        arriving at ``t`` can still join that batch.
        """
        self.clock.advance_to(t)
        return self._flush_expired(float(t), include_equal=include_equal)

    def drain(self) -> List[FlushedBatch]:
        """Force out everything still pending (at the current time)."""
        out: List[FlushedBatch] = []
        while self._pending:
            out.append(self._flush(self.clock.now, "drain"))
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush_expired(self, t: float, *, include_equal: bool = True
                       ) -> List[FlushedBatch]:
        out: List[FlushedBatch] = []
        while self._pending:
            deadline = self._pending[0].arrival_s + self.policy.max_wait_s
            if deadline > t or (deadline == t and not include_equal):
                break
            # The flush happens at the deadline itself, not at t: with a
            # simulated clock there is no "checking late".
            out.append(self._flush(deadline, "wait"))
        return out

    def _flush(self, flush_s: float, trigger: str) -> FlushedBatch:
        take = min(len(self._pending), self.policy.max_batch_size)
        batch, self._pending = self._pending[:take], self._pending[take:]
        return FlushedBatch(
            tickets=np.asarray([p.ticket for p in batch], dtype=np.int64),
            xs=np.asarray([p.x for p in batch], dtype=np.int64),
            ys=np.asarray([p.y for p in batch], dtype=np.int64),
            arrival_s=np.asarray([p.arrival_s for p in batch], dtype=np.float64),
            flush_s=float(flush_s),
            trigger=trigger,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"MicroBatchScheduler(pending={self.pending_count}, "
                f"policy={self.policy}, now={self.clock.now})")
