"""Micro-batch scheduler: coalesce single queries into device-sized batches.

The paper's batch-size experiment (Fig. 6) shows that the GPU only pays off
once queries are handed over in batches of ~100 or more, and saturates around
10⁴.  An online service, however, receives queries one at a time.  The
standard resolution — the same one used by neural-inference servers — is
*micro-batching*: hold arriving queries in a queue and flush the queue as one
batch when either

* the queue reaches ``max_batch_size`` (**size trigger** — the device-sized
  batch is ready, no reason to wait), or
* the oldest queued query has waited ``max_wait_s`` (**wait trigger** — the
  latency budget is up, flush whatever has accumulated), or
* the caller forces it (**drain trigger** — e.g. shutdown or a benchmark
  boundary).

All timing uses the :class:`~repro.service.clock.SimulatedClock`, so flush
decisions are deterministic functions of the arrival timestamps: a
wait-triggered flush fires at exactly ``oldest_arrival + max_wait_s``, never
"roughly when the event loop got around to it".

Storage is *columnar*: the pending queue is four parallel preallocated NumPy
arrays (tickets / xs / ys / arrivals) with head and tail cursors, not a list
of per-query objects.  A flush is a zero-copy slice of those arrays, and
:meth:`MicroBatchScheduler.submit_block` admits a whole column block of
queries with array arithmetic — the per-query :meth:`MicroBatchScheduler.submit`
is a single-row write into the same buffers.  When a buffer fills, a fresh
one is allocated and the (small) pending window copied over; the old buffer
is left untouched so every previously flushed slice stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ServiceError
from ..obs.events import EV_ENQUEUE, EV_FLUSH, TraceRecorder
from .clock import SimulatedClock

__all__ = ["BatchPolicy", "PendingQuery", "FlushedBatch", "MicroBatchScheduler"]

#: Buffer sizing bounds: large enough to amortize refills, small enough that
#: a scheduler over a huge ``max_batch_size`` does not preallocate gigabytes.
_MIN_BUFFER = 64
_MAX_INITIAL_BUFFER = 1 << 16


@dataclass(frozen=True)
class BatchPolicy:
    """The two knobs of the micro-batching trade-off.

    ``max_batch_size=1`` degenerates to pass-through serving (every query is
    its own batch); ``max_wait_s=0.0`` flushes a pending queue as soon as time
    moves at all, which bounds added queueing latency at zero but only forms
    batches out of queries arriving at the same instant.

    >>> BatchPolicy(max_batch_size=256, max_wait_s=1e-4).max_batch_size
    256
    >>> BatchPolicy(max_batch_size=0)
    Traceback (most recent call last):
        ...
    repro.errors.ServiceError: max_batch_size must be at least 1
    """

    max_batch_size: int = 1024
    max_wait_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServiceError("max_batch_size must be at least 1")
        if self.max_wait_s < 0:
            raise ServiceError("max_wait_s must be non-negative")


@dataclass(frozen=True)
class PendingQuery:
    """One queued LCA query with its arrival time.

    The scheduler stores pending queries columnarly; this record is the
    row-wise view :attr:`MicroBatchScheduler.pending` materializes for
    introspection and debugging.
    """

    ticket: int
    x: int
    y: int
    arrival_s: float


@dataclass(frozen=True)
class FlushedBatch:
    """A batch handed to the execution backend, with full timing provenance.

    The arrays are zero-copy views into the scheduler's column buffers; the
    scheduler never overwrites a flushed region, so they remain valid for as
    long as the caller keeps them.
    """

    tickets: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    arrival_s: np.ndarray
    flush_s: float
    trigger: str
    #: Trace batch id (from the attached observer); -1 when untraced.
    batch_id: int = -1

    @property
    def size(self) -> int:
        """Number of queries in the batch.

        >>> s = MicroBatchScheduler()
        >>> _ = s.submit(0, 1, 2)
        >>> [b.size for b in s.drain()]
        [1]
        """
        return int(self.xs.size)

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Per-query time spent waiting in the queue before the flush.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=8,
        ...                                     max_wait_s=1e-3))
        >>> _ = s.submit(0, 1, 2, at=0.0)
        >>> [b.queue_wait_s.tolist() for b in s.advance_to(1e-2)]
        [[0.001]]
        """
        return self.flush_s - self.arrival_s


class MicroBatchScheduler:
    """Coalesces submitted queries into batches under a :class:`BatchPolicy`.

    The scheduler never executes anything itself — it returns
    :class:`FlushedBatch` objects and the caller (the service layer) runs them
    through a backend.  ``submit`` and ``advance_to`` may each produce several
    batches: advancing time far enough can expire several wait deadlines, and
    a submission can both expire old queries and complete a full batch.

    Internally the pending queue is a window ``[head, tail)`` over four
    parallel column buffers.  Two invariants keep the bookkeeping simple:

    * the pending count never exceeds ``max_batch_size`` between public
      calls (a submission that fills a batch flushes it immediately), and
    * flushed regions are never overwritten — exhausting a buffer allocates
      a fresh one rather than wrapping, so flushes are true zero-copy slices.
    """

    def __init__(self, policy: Optional[BatchPolicy] = None, *,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.policy = policy or BatchPolicy()
        self.clock = clock or SimulatedClock()
        self._head = 0
        self._tail = 0
        self._observer: Optional[TraceRecorder] = None
        self._obs_replica = 0
        self._allocate(self._initial_capacity())

    def set_observer(self, observer: Optional[TraceRecorder], *,
                     replica: int = 0) -> None:
        """Attach (or detach, with ``None``) a trace recorder.

        With an observer attached, every admission emits an ``enqueue``
        event and every flush a ``flush`` event carrying a fresh batch id
        (recorded on :attr:`FlushedBatch.batch_id` so downstream layers can
        correlate their events).  Without one, the hot paths pay a single
        ``is None`` check.
        """
        self._observer = observer
        self._obs_replica = int(replica)

    def _initial_capacity(self) -> int:
        return max(_MIN_BUFFER,
                   min(2 * self.policy.max_batch_size, _MAX_INITIAL_BUFFER))

    def _allocate(self, capacity: int) -> None:
        """Install fresh column buffers, migrating the pending window.

        The previous buffers are *not* reused: any flushed slices handed out
        earlier alias them, and NumPy keeps the backing memory alive for
        exactly as long as those views exist.
        """
        tickets = np.empty(capacity, dtype=np.int64)
        xs = np.empty(capacity, dtype=np.int64)
        ys = np.empty(capacity, dtype=np.int64)
        arrival = np.empty(capacity, dtype=np.float64)
        pending = self._tail - self._head
        if pending:
            h, t = self._head, self._tail
            tickets[:pending] = self._tickets[h:t]
            xs[:pending] = self._xs[h:t]
            ys[:pending] = self._ys[h:t]
            arrival[:pending] = self._arrival[h:t]
        self._tickets, self._xs, self._ys, self._arrival = tickets, xs, ys, arrival
        self._head, self._tail = 0, pending
        self._capacity = capacity

    def _ensure_room(self, count: int) -> None:
        if self._tail + count <= self._capacity:
            return
        pending = self._tail - self._head
        needed = pending + count
        capacity = max(self._initial_capacity(), 2 * needed)
        self._allocate(capacity)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of queries currently queued.

        >>> s = MicroBatchScheduler()
        >>> _ = s.submit(0, 1, 2)
        >>> s.pending_count
        1
        """
        return self._tail - self._head

    @property
    def next_deadline(self) -> Optional[float]:
        """Instant at which the oldest pending query must be flushed.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=8,
        ...                                     max_wait_s=1e-3))
        >>> s.next_deadline is None     # nothing queued, no deadline
        True
        >>> _ = s.submit(0, 1, 2, at=0.0)
        >>> s.next_deadline             # oldest arrival + max_wait_s
        0.001
        """
        if self._tail == self._head:
            return None
        return float(self._arrival[self._head]) + self.policy.max_wait_s

    @property
    def pending(self) -> List[PendingQuery]:
        """Row-wise snapshot of the queued queries (introspection only).

        >>> s = MicroBatchScheduler()
        >>> _ = s.submit(7, 1, 2, at=0.0)
        >>> s.pending
        [PendingQuery(ticket=7, x=1, y=2, arrival_s=0.0)]
        """
        h, t = self._head, self._tail
        return [
            PendingQuery(int(self._tickets[i]), int(self._xs[i]),
                         int(self._ys[i]), float(self._arrival[i]))
            for i in range(h, t)
        ]

    # ------------------------------------------------------------------
    # Submission and time
    # ------------------------------------------------------------------
    def submit(self, ticket: int, x: int, y: int, *,
               at: Optional[float] = None) -> List[FlushedBatch]:
        """Queue one query, returning any batches its arrival caused to flush.

        ``at`` is the arrival timestamp; omitted, the query arrives "now".
        Advancing to ``at`` first fires any wait deadlines that expire before
        the new query arrives, so batches never contain queries that should
        already have been served.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=2,
        ...                                     max_wait_s=1e-3))
        >>> s.submit(0, 1, 2, at=0.0)             # queued, nothing flushes
        []
        >>> [b.trigger for b in s.submit(1, 3, 4, at=1e-4)]   # batch full
        ['size']
        """
        t = self.clock.now if at is None else self.clock.advance_to(at)
        # Only strictly-past deadlines flush here: a query arriving exactly at
        # the pending queue's deadline still joins that batch (and with
        # max_wait_s=0 this is what lets same-instant arrivals coalesce).
        flushed = self._flush_expired(t, include_equal=False)
        self._ensure_room(1)
        i = self._tail
        self._tickets[i] = ticket
        self._xs[i] = x
        self._ys[i] = y
        self._arrival[i] = t
        self._tail = i + 1
        if self._observer is not None:
            self._observer.record(EV_ENQUEUE, t, ticket=int(ticket),
                                  replica=self._obs_replica)
        if self._tail - self._head >= self.policy.max_batch_size:
            flushed.append(self._flush(t, "size"))
        return flushed

    def submit_block(self, tickets: np.ndarray, xs: np.ndarray, ys: np.ndarray,
                     arrival_s: np.ndarray) -> List[FlushedBatch]:
        """Admit a column block of queries, returning every batch it flushed.

        Observationally equivalent to calling :meth:`submit` once per row, but
        the admission runs in bulk: the block is cut at wait deadlines and
        batch-size boundaries with array arithmetic, and each cut is copied
        into the pending buffers with one slice assignment.  The loop below
        iterates once per *flush*, not once per query.

        ``arrival_s`` must be non-decreasing and start at or after the current
        simulated time (the same monotonicity :meth:`submit` enforces through
        the clock).  The caller is expected to have validated the queries.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=2,
        ...                                     max_wait_s=1.0))
        >>> batches = s.submit_block(np.arange(3), np.array([1, 2, 3]),
        ...                          np.array([4, 5, 6]), np.zeros(3))
        >>> [(b.trigger, b.size) for b in batches]   # one size flush of 2
        [('size', 2)]
        >>> s.pending_count                          # the third query waits
        1
        """
        count = int(arrival_s.size)
        if count == 0:
            return []
        if float(arrival_s[0]) < self.clock.now:
            raise ServiceError(
                f"cannot move the clock backwards (now={self.clock.now}, "
                f"requested={float(arrival_s[0])})"
            )
        max_batch = self.policy.max_batch_size
        wait = self.policy.max_wait_s
        if self._observer is not None:
            # One block event for the whole admission: every query enqueues
            # at its own arrival time, so chunking adds no information.
            self._observer.record_block(EV_ENQUEUE, arrival_s, tickets,
                                        replica=self._obs_replica)
        out: List[FlushedBatch] = []
        p = 0
        while p < count:
            have = self._tail - self._head
            if have:
                deadline = float(self._arrival[self._head]) + wait
                if float(arrival_s[p]) > deadline:
                    out.append(self._flush(deadline, "wait"))
                    continue
            else:
                deadline = float(arrival_s[p]) + wait
            # Every query arriving at or before the pending window's deadline
            # joins it (arrival exactly at the deadline still joins — the
            # same include_equal=False rule as the per-query path).
            join = int(np.searchsorted(arrival_s, deadline, side="right"))
            take = min(join - p, max_batch - have)
            self._ensure_room(take)
            t0, t1 = self._tail, self._tail + take
            self._tickets[t0:t1] = tickets[p:p + take]
            self._xs[t0:t1] = xs[p:p + take]
            self._ys[t0:t1] = ys[p:p + take]
            self._arrival[t0:t1] = arrival_s[p:p + take]
            self._tail = t1
            p += take
            if self._tail - self._head >= max_batch:
                out.append(self._flush(float(arrival_s[p - 1]), "size"))
        self.clock.advance_to(float(arrival_s[-1]))
        return out

    def advance_to(self, t: float, *, include_equal: bool = True
                   ) -> List[FlushedBatch]:
        """Move simulated time to ``t``, flushing every expired wait deadline.

        With ``include_equal=False``, a deadline exactly at ``t`` is left
        pending — the service layer uses this on the submit path so a query
        arriving at ``t`` can still join that batch.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=8,
        ...                                     max_wait_s=1e-3))
        >>> _ = s.submit(0, 1, 2, at=0.0)
        >>> [b.trigger for b in s.advance_to(5e-3)]   # deadline passed
        ['wait']
        """
        self.clock.advance_to(t)
        return self._flush_expired(float(t), include_equal=include_equal)

    def drain(self) -> List[FlushedBatch]:
        """Force out everything still pending (at the current time).

        >>> s = MicroBatchScheduler()
        >>> _ = s.submit(0, 1, 2)
        >>> [b.trigger for b in s.drain()]
        ['drain']
        >>> s.drain()                   # empty queue: nothing to force out
        []
        """
        out: List[FlushedBatch] = []
        while self._tail > self._head:
            out.append(self._flush(self.clock.now, "drain"))
        return out

    def retune(self, policy: BatchPolicy) -> List[FlushedBatch]:
        """Hot-swap the batch policy; return the batches the swap forces out.

        The swap happens at a flush boundary (the current simulated
        instant): already-flushed batches are untouched, and the pending
        window is re-judged under the new policy exactly as if it had been
        in force all along —

        * a shrunk ``max_wait_s`` can make the oldest pending queries
          *late*; they flush with the ``wait`` trigger at their new
          (possibly already-passed) deadlines, oldest first, just as
          :meth:`advance_to` would have flushed them;
        * a shrunk ``max_batch_size`` can make the pending window
          *oversized*; size-complete batches flush at the current instant
          until the remainder fits.

        Deadlines landing exactly on the current instant stay pending (the
        same ``include_equal=False`` rule as the submit path), so a
        same-instant arrival after the retune can still join them.  The
        caller (the service layer) serves the returned batches.

        >>> s = MicroBatchScheduler(BatchPolicy(max_batch_size=8,
        ...                                     max_wait_s=1.0))
        >>> for i in range(3):
        ...     _ = s.submit(i, 1, 2, at=i * 1e-4)
        >>> batches = s.retune(BatchPolicy(max_batch_size=2, max_wait_s=1.0))
        >>> [(b.trigger, b.size) for b in batches]
        [('size', 2)]
        >>> s.pending_count
        1
        """
        self.policy = policy
        out = self._flush_expired(self.clock.now, include_equal=False)
        while self._tail - self._head >= policy.max_batch_size:
            out.append(self._flush(self.clock.now, "size"))
        return out

    def evict(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Remove the pending window without serving it; return its columns.

        The failure-handling path (a replica killed with queries still
        queued) uses this to pull the unserved queries back out so the
        cluster can re-dispatch them to a surviving copy.  The returned
        arrays are *copies* — the scheduler's state after the call is as if
        those queries were never submitted (time does not move).

        >>> s = MicroBatchScheduler()
        >>> _ = s.submit(7, 1, 2, at=0.0)
        >>> tickets, xs, ys, arrival = s.evict()
        >>> tickets.tolist(), s.pending_count
        ([7], 0)
        """
        h, t = self._head, self._tail
        columns = (self._tickets[h:t].copy(), self._xs[h:t].copy(),
                   self._ys[h:t].copy(), self._arrival[h:t].copy())
        self._head = self._tail
        return columns

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush_expired(self, t: float, *, include_equal: bool = True
                       ) -> List[FlushedBatch]:
        out: List[FlushedBatch] = []
        while self._tail > self._head:
            deadline = float(self._arrival[self._head]) + self.policy.max_wait_s
            if deadline > t or (deadline == t and not include_equal):
                break
            # The flush happens at the deadline itself, not at t: with a
            # simulated clock there is no "checking late".
            out.append(self._flush(deadline, "wait"))
        return out

    def _flush(self, flush_s: float, trigger: str) -> FlushedBatch:
        take = min(self._tail - self._head, self.policy.max_batch_size)
        h = self._head
        self._head = h + take
        batch_id = -1
        if self._observer is not None:
            batch_id = self._observer.next_batch_id()
            self._observer.record(
                EV_FLUSH, float(flush_s), batch=batch_id,
                replica=self._obs_replica, detail=float(take),
                aux=self._observer.intern(trigger))
        return FlushedBatch(
            tickets=self._tickets[h:h + take],
            xs=self._xs[h:h + take],
            ys=self._ys[h:h + take],
            arrival_s=self._arrival[h:h + take],
            flush_s=float(flush_s),
            trigger=trigger,
            batch_id=batch_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"MicroBatchScheduler(pending={self.pending_count}, "
                f"policy={self.policy}, now={self.clock.now})")
