"""Batched query-serving subsystem (beyond the paper: Fig. 6 as a system).

The paper's batch-size experiment shows GPU graph queries only pay off in
bulk; this subpackage turns that observation into a serving architecture:

* :class:`~repro.service.registry.ForestStore` / \
  :class:`~repro.service.registry.IndexRegistry` — named datasets with
  lazily built, byte-accounted, LRU-evicted index artifacts keyed by
  ``(dataset, kind, device)``;
* :class:`~repro.service.scheduler.MicroBatchScheduler` — coalesces single
  queries into batches under a max-size / max-wait
  :class:`~repro.service.scheduler.BatchPolicy`, on a deterministic
  :class:`~repro.service.clock.SimulatedClock`; storage is columnar
  (pending queries live in preallocated parallel NumPy buffers, flushes are
  zero-copy slices) and ``submit_block`` admits whole arrival blocks with
  array arithmetic;
* :class:`~repro.service.dispatch.CostModelDispatcher` — prices every batch
  on each candidate :class:`~repro.service.dispatch.Backend` with the device
  roofline model and picks the cheapest (CPU for singletons, GPU for bulk);
  under the skew-aware path it prices the batch's *unique cache-miss* count,
  so key skew moves the CPU/GPU crossover;
* :class:`~repro.service.cache.AnswerCache` — the skew-aware fast path's
  exact, bounded, vectorized per-pair answer cache (off by default; enabled
  with ``answer_cache_bytes=``), with intra-batch dedup provided by
  :mod:`repro.lca.dedup`'s canonical uint64 pair packing;
* :class:`~repro.service.stats.ServiceStats` — throughput, p50/p99 modeled
  latency, batch-size histogram, flush-trigger and cache accounting;
* :class:`~repro.service.service.LCAQueryService` — the façade wiring all of
  the above together; tickets index growable columnar answer/latency tables,
  so ``submit_many`` admission and ``results``/``latencies`` resolution are
  vectorized end to end (``submit`` is a single-row wrapper over the same
  core);
* :class:`~repro.service.cluster.ClusterService` — N replica workers behind
  one front door: consistent-hash placement with replication
  (:class:`~repro.service.routing.HashRing`), pluggable load-aware routing
  (:class:`~repro.service.routing.Router` policies), cluster-wide admission
  control raising the typed :class:`~repro.errors.Overloaded` error, and
  :class:`~repro.service.cluster.ClusterStats` aggregation with exact merged
  latency percentiles and a load-imbalance metric;
* :class:`~repro.service.faults.FaultInjector` — deterministic, scheduled
  fault injection (replica kills, recoveries, slowdowns, transient batch
  failures, live membership changes) on the shared simulated clock.  The
  cluster retries stranded work onto surviving copies with exact latency
  accounting, optionally hedges straggling batches (``hedge_delay_s=``),
  and raises the typed :class:`~repro.errors.ReplicaDown` when no copy
  survives — no admitted query is ever silently lost.
"""

from ..errors import Overloaded, ReplicaDown
from .cache import (
    ANSWER_CACHE_PROBE_COST,
    AnswerCache,
    answer_cache_probe_time,
)
from .clock import SimulatedClock, WallClock
from .cluster import ClusterService, ClusterStats
from .config import ClusterConfig, ServiceConfig
from .dispatch import (
    CPU_SEQUENTIAL_BACKEND,
    DEFAULT_BACKENDS,
    GPU_BATCH_BACKEND,
    Backend,
    CostModelDispatcher,
    dispatcher_for,
    estimate_batch_query_time,
    known_backend_keys,
    load_calibration_profile,
    make_backend,
)
from .faults import FAULT_ACTIONS, FaultEvent, FaultInjector
from .registry import (
    ARTIFACT_KINDS,
    ArtifactKey,
    CacheEntry,
    ForestStore,
    IndexRegistry,
    artifact_nbytes,
)
from .routing import (
    ROUTER_POLICIES,
    ConsistentHashRouter,
    HashRing,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    make_router,
    stable_hash,
)
from .scheduler import BatchPolicy, FlushedBatch, MicroBatchScheduler, PendingQuery
from .service import LCAQueryService
from .stats import ServiceStats, StatsCollector, batch_size_bucket

__all__ = [
    "SimulatedClock",
    "ForestStore",
    "IndexRegistry",
    "ArtifactKey",
    "CacheEntry",
    "ARTIFACT_KINDS",
    "artifact_nbytes",
    "BatchPolicy",
    "PendingQuery",
    "FlushedBatch",
    "MicroBatchScheduler",
    "Backend",
    "CPU_SEQUENTIAL_BACKEND",
    "GPU_BATCH_BACKEND",
    "DEFAULT_BACKENDS",
    "make_backend",
    "known_backend_keys",
    "estimate_batch_query_time",
    "CostModelDispatcher",
    "dispatcher_for",
    "load_calibration_profile",
    "WallClock",
    "ServiceStats",
    "StatsCollector",
    "batch_size_bucket",
    "LCAQueryService",
    # typed configuration surface
    "ServiceConfig",
    "ClusterConfig",
    # skew-aware fast path
    "AnswerCache",
    "ANSWER_CACHE_PROBE_COST",
    "answer_cache_probe_time",
    # cluster serving
    "ClusterService",
    "ClusterStats",
    "Overloaded",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "ConsistentHashRouter",
    "HashRing",
    "ROUTER_POLICIES",
    "make_router",
    "stable_hash",
    # fault tolerance + elasticity
    "FaultInjector",
    "FaultEvent",
    "FAULT_ACTIONS",
    "ReplicaDown",
]
